//! The system-level correctness contract, checked across all three
//! datasets and all three workload shapes:
//!
//! 1. **Ground truth**: every CIAO `COUNT(*)` equals a naive count
//!    computed by parsing every record and evaluating the query with
//!    typed semantics — no budget, plan, chunking, or block size may
//!    change an answer.
//! 2. **Baseline equivalence**: CIAO at budget B and the zero-budget
//!    baseline agree query by query.

use ciao::{CiaoConfig, Pipeline};
use ciao_datagen::Dataset;
use ciao_json::JsonValue;
use ciao_predicate::{eval_query, Query};
use ciao_workload::{build_pool, WorkloadConfig};

const RECORDS: usize = 3_000;
const QUERIES: usize = 15;

fn ground_truth(records: &[JsonValue], q: &Query) -> usize {
    records.iter().filter(|r| eval_query(q, r)).count()
}

fn check_dataset(dataset: Dataset, budget: f64, chunk_size: usize, block_size: usize) {
    let records = dataset.generate(7, RECORDS);
    let ndjson = dataset.generate_ndjson(7, RECORDS);
    let pool = build_pool(dataset);
    for (label, mut cfg) in WorkloadConfig::presets(dataset, 21) {
        cfg.queries = QUERIES;
        let queries = cfg.generate(&pool);
        let report = Pipeline::new(
            CiaoConfig::default()
                .with_budget_micros(budget)
                .with_chunk_size(chunk_size)
                .with_block_size(block_size)
                .with_sample_size(500),
        )
        .run(&ndjson, &queries)
        .unwrap_or_else(|e| panic!("{dataset} {label}: {e}"));

        for (q, result) in queries.iter().zip(&report.query_results) {
            let truth = ground_truth(&records, q);
            assert_eq!(
                result.count, truth,
                "{dataset} workload {label} budget {budget}: query `{q}` returned {} (truth {truth})",
                result.count
            );
        }
    }
}

#[test]
fn winlog_all_workloads_match_ground_truth() {
    check_dataset(Dataset::WinLog, 5.0, 512, 256);
}

#[test]
fn yelp_all_workloads_match_ground_truth() {
    check_dataset(Dataset::Yelp, 20.0, 1024, 512);
}

#[test]
fn ycsb_all_workloads_match_ground_truth() {
    check_dataset(Dataset::Ycsb, 50.0, 333, 128);
}

#[test]
fn odd_chunk_and_block_sizes_do_not_change_answers() {
    // Chunk/block boundaries that never align with each other or the
    // record count.
    check_dataset(Dataset::WinLog, 5.0, 7, 13);
}

#[test]
fn zero_budget_baseline_matches_ground_truth() {
    check_dataset(Dataset::WinLog, 0.0, 512, 256);
}

#[test]
fn budget_sweep_is_answer_invariant() {
    let dataset = Dataset::Ycsb;
    let ndjson = dataset.generate_ndjson(3, RECORDS);
    let pool = build_pool(dataset);
    let mut cfg = WorkloadConfig::workload_b(dataset, 5);
    cfg.queries = QUERIES;
    let queries = cfg.generate(&pool);

    let counts_at = |budget: f64| -> Vec<usize> {
        Pipeline::new(
            CiaoConfig::default()
                .with_budget_micros(budget)
                .with_sample_size(500),
        )
        .run(&ndjson, &queries)
        .expect("pipeline")
        .query_results
        .iter()
        .map(|r| r.count)
        .collect()
    };

    let baseline = counts_at(0.0);
    for budget in [1.0, 25.0, 75.0, 125.0] {
        assert_eq!(
            counts_at(budget),
            baseline,
            "budget {budget} changed answers"
        );
    }
}
