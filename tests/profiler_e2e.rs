//! Acceptance tests for the query profiler: the numbers `EXPLAIN
//! ANALYZE` renders must reconcile exactly with the engine's
//! [`QueryMetrics`](ciao_engine::QueryMetrics) and the service's
//! [`ServiceMetrics`](ciao_service::ServiceMetrics) for the same
//! statement, and the [`WorkloadStats`](ciao_service::WorkloadStats)
//! selectivity EWMAs must converge to ground-truth selectivity on a
//! fixed workload.

use ciao::PushdownPlan;
use ciao_columnar::Schema;
use ciao_engine::QueryResult;
use ciao_json::RecordChunk;
use ciao_optimizer::CostModel;
use ciao_predicate::parse_query;
use ciao_service::{Service, ServiceConfig};
use ciao_sql::SqlValue;
use std::sync::Arc;
use std::time::Duration;

/// Same deterministic 240-record shape as the SQL e2e suite: `stars`
/// clustered in runs of 48 (tight zone ranges per 16-row block),
/// `city` cycling through four values in every block.
fn dataset() -> Vec<String> {
    (0..240)
        .map(|i| {
            format!(
                r#"{{"id":{},"stars":{},"score":{},"city":"{}","active":{}}}"#,
                i,
                i / 48 + 1,
                (i % 20) as f64 * 0.5,
                ["Amsterdam", "Boston", "Chicago", "Denver"][i % 4],
                i % 3 == 0,
            )
        })
        .collect()
}

fn start_service(records: &[String], budget: f64, shards: usize) -> Service {
    let sample: Vec<_> = records
        .iter()
        .map(|r| ciao_json::parse(r).unwrap())
        .collect();
    let queries = vec![
        parse_query("q0", "stars = 5").unwrap(),
        parse_query("q1", "active = true").unwrap(),
    ];
    let plan = PushdownPlan::build(
        &queries,
        &sample,
        &CostModel::default_uncalibrated(),
        budget,
    )
    .unwrap();
    let schema = Arc::new(Schema::infer(&sample).unwrap());
    let service = Service::start(
        plan,
        schema,
        ServiceConfig::default()
            .with_shards(shards)
            .with_workers(0)
            .with_block_size(16)
            .with_slow_query_threshold(Duration::ZERO),
    );
    for chunk in RecordChunk::from_records(records).unwrap().split(48) {
        assert!(service.enqueue_raw(chunk).is_enqueued());
        service.drain();
    }
    service
}

/// Unwraps a `plan:str` result into its rendered lines.
fn plan_lines(result: &QueryResult) -> Vec<String> {
    assert_eq!(result.columns.len(), 1);
    assert_eq!(result.columns[0].name, "plan");
    result
        .rows
        .iter()
        .map(|row| match &row[0] {
            SqlValue::Str(s) => s.clone(),
            other => panic!("plan rows are strings, got {other:?}"),
        })
        .collect()
}

/// Extracts `key=<u64>` from a rendered annotation line.
fn field(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no `{key}=` in {line:?}"))
        .parse()
        .unwrap_or_else(|e| panic!("bad `{key}` in {line:?}: {e}"))
}

#[test]
fn explain_analyze_reconciles_with_query_and_service_metrics() {
    let records = dataset();
    let service = start_service(&records, 30.0, 3);
    let stmt = "SELECT city, COUNT(*) AS n FROM t \
                WHERE stars = 5 AND active = true \
                GROUP BY city ORDER BY n DESC, city";

    let selected = service.query_sql(stmt).unwrap();
    let analyzed = service
        .query_sql(&format!("EXPLAIN ANALYZE {stmt}"))
        .unwrap();

    // Same statement, same data: the ANALYZE run's carried profile is
    // identical to the plain run's, and both reconcile with their own
    // scan metrics.
    assert_eq!(analyzed.profile, selected.profile);
    assert!(selected.profile.reconciles_with(&selected.metrics));
    assert!(analyzed.profile.reconciles_with(&analyzed.metrics));

    // The rendered numbers are the metrics, re-read from the text.
    let lines = plan_lines(&analyzed);
    let m = &analyzed.metrics;
    let blocks = lines
        .iter()
        .find(|l| l.starts_with("blocks:"))
        .expect("blocks line");
    assert_eq!(
        field(blocks, "pruned_zone"),
        m.table_scan.blocks_pruned as u64
    );
    assert_eq!(
        field(blocks, "total"),
        (m.table_scan.blocks_pruned + m.table_scan.blocks_visited) as u64
    );
    let rows = lines
        .iter()
        .find(|l| l.starts_with("rows:"))
        .expect("rows line");
    assert_eq!(
        field(rows, "skipped_zone") + field(rows, "skipped_mask"),
        m.table_scan.rows_skipped as u64
    );
    assert_eq!(field(rows, "scanned"), m.table_scan.rows_scanned as u64);
    let parked = lines
        .iter()
        .find(|l| l.starts_with("parked fallback:"))
        .expect("parked line");
    assert_eq!(field(parked, "parsed"), m.raw_scan.records_parsed as u64);
    let matched = lines
        .iter()
        .find(|l| l.starts_with("rows matched:"))
        .expect("matched line");
    assert_eq!(
        matched.strip_prefix("rows matched: ").unwrap(),
        analyzed.profile.total_matched().to_string()
    );
    // Every per-clause line restates its profile entry, selectivity
    // included (rendered at 3 decimals from passed/evaluated).
    for clause in &analyzed.profile.clauses {
        let line = lines
            .iter()
            .find(|l| l.starts_with(&format!("clause {}:", clause.text)))
            .unwrap_or_else(|| panic!("no line for clause {}", clause.text));
        assert_eq!(field(line, "evaluated"), clause.rows_evaluated);
        assert_eq!(field(line, "passed"), clause.rows_passed);
        let rendered_sel = line.split("selectivity=").nth(1).unwrap();
        let expected_sel = clause
            .selectivity()
            .map_or_else(|| "n/a".to_owned(), |s| format!("{s:.3}"));
        assert_eq!(rendered_sel, expected_sel);
        assert!(clause.pushed, "both clauses ride pushed bitvectors");
    }

    // Service-level accounting agrees: the plain SELECT and the
    // ANALYZE both executed (plain EXPLAIN would not), and both landed
    // in the zero-threshold slow-query log with the same row counts.
    let sm = service.metrics();
    assert_eq!(sm.queries, 2);
    assert_eq!(sm.slow_queries, 2);
    let slow = service.slow_queries();
    assert_eq!(slow.len(), 2);
    assert_eq!(slow[0].rows_matched, analyzed.profile.total_matched());
    assert_eq!(slow[0].rows_returned, selected.rows.len());
    assert_eq!(slow[1].rows_matched, slow[0].rows_matched);

    // The span tree from the ANALYZE run covers all three shards and
    // exports to Chrome trace JSON.
    let trace = service.last_query_trace().expect("trace recorded");
    let names: Vec<&str> = trace.spans().iter().map(|s| s.name()).collect();
    for required in [
        "query_sql",
        "parse",
        "plan",
        "execute",
        "shard0",
        "shard1",
        "shard2",
    ] {
        assert!(
            names.contains(&required),
            "missing span {required}: {names:?}"
        );
    }
    assert!(trace.to_chrome_trace().starts_with("{\"traceEvents\":["));
    service.shutdown();
}

#[test]
fn workload_selectivity_ewma_converges_to_ground_truth() {
    let records = dataset();
    // Zero budget: nothing pushed, everything loaded columnar — each
    // query full-scans, so observed per-clause selectivity IS the
    // data's ground-truth selectivity.
    let service = start_service(&records, 0.0, 1);
    let stmt = r#"SELECT COUNT(*) FROM t WHERE city = "Boston""#;
    for _ in 0..20 {
        let result = service.query_sql(stmt).unwrap();
        assert_eq!(result.rows, vec![vec![SqlValue::Int(60)]]);
    }

    let matching = records
        .iter()
        .filter(|r| r.contains(r#""city":"Boston""#))
        .count();
    let truth = matching as f64 / records.len() as f64;
    assert_eq!(truth, 0.25, "fixed-seed dataset: 60 of 240 in Boston");

    let w = service.workload_stats();
    assert_eq!(w.queries, 20);
    let c = w.clause(r#"city = "Boston""#).expect("clause tracked");
    assert_eq!(c.queries_seen, 20);
    assert_eq!(c.observations, 20);
    assert!(!c.pushed);
    let sel = c.selectivity_ewma.unwrap();
    assert!(
        (sel - truth).abs() < 1e-9,
        "EWMA converged to ground truth {truth}, got {sel}"
    );
    assert!((c.frequency_ewma - 1.0).abs() < 1e-9);

    // Five queries without the clause decay its frequency EWMA by the
    // default alpha (0.2) each step: 0.8^5.
    for _ in 0..5 {
        service
            .query_sql("SELECT COUNT(*) FROM t WHERE stars = 5")
            .unwrap();
    }
    let w = service.workload_stats();
    let c = w.clause(r#"city = "Boston""#).unwrap();
    assert!(
        (c.frequency_ewma - 0.8f64.powi(5)).abs() < 1e-9,
        "frequency decayed to {}",
        c.frequency_ewma
    );
    assert!(
        (c.selectivity_ewma.unwrap() - truth).abs() < 1e-9,
        "absence does not touch selectivity"
    );
    service.shutdown();
}
