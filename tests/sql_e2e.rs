//! Acceptance test for the SQL frontend: a grouped aggregate with
//! `WHERE`, `GROUP BY`, `ORDER BY`, and `LIMIT` over a multi-shard
//! service must be **bit-identical** to a hand-rolled full scan of the
//! raw records, while the scan metrics prove the aggregate path rode
//! the data-skipping machinery (zone-map block pruning + pushed
//! bitvector skip masks) instead of scanning everything.

use ciao::PushdownPlan;
use ciao_columnar::Schema;
use ciao_json::RecordChunk;
use ciao_optimizer::CostModel;
use ciao_predicate::parse_query;
use ciao_service::telemetry::names;
use ciao_service::{Service, ServiceConfig};
use ciao_sql::SqlValue;
use std::collections::BTreeMap;
use std::sync::Arc;

/// 240 records, `stars` clustered in runs of 48 so each 16-row block
/// has a single-value zone range. `score` is a multiple of 0.5 — every
/// value and every partial sum is exactly representable in f64, so
/// AVG is bit-identical no matter how shards split the records.
fn dataset() -> Vec<String> {
    (0..240)
        .map(|i| {
            format!(
                r#"{{"id":{},"stars":{},"score":{},"city":"{}","active":{}}}"#,
                i,
                i / 48 + 1,
                (i % 20) as f64 * 0.5,
                ["Amsterdam", "Boston", "Chicago", "Denver"][i % 4],
                i % 3 == 0,
            )
        })
        .collect()
}

#[test]
fn grouped_aggregate_over_sharded_service_is_bit_identical_and_skips() {
    let records = dataset();
    let sample: Vec<_> = records
        .iter()
        .map(|r| ciao_json::parse(r).unwrap())
        .collect();
    let queries = vec![
        parse_query("q0", "stars = 5").unwrap(),
        parse_query("q1", "active = true").unwrap(),
    ];
    let plan =
        PushdownPlan::build(&queries, &sample, &CostModel::default_uncalibrated(), 30.0).unwrap();
    assert_eq!(plan.len(), 2, "both workload clauses are pushed");
    let schema = Arc::new(Schema::infer(&sample).unwrap());
    let service = Service::start(
        plan,
        schema,
        ServiceConfig::default()
            .with_shards(3)
            .with_workers(0)
            .with_block_size(16),
    );
    // 48-record chunks: each chunk holds one stars value, so each
    // shard's sealed 16-row blocks get single-value zone ranges.
    for chunk in RecordChunk::from_records(&records).unwrap().split(48) {
        assert!(service.enqueue_raw(chunk).is_enqueued());
        service.drain();
    }

    let sql = "SELECT city, COUNT(*) AS n, AVG(score) AS mean FROM t \
               WHERE stars = 5 AND active = true \
               GROUP BY city ORDER BY n DESC, city LIMIT 3";
    let got = service.query_sql(sql).unwrap();

    // Hand-rolled full-scan oracle over the raw records.
    let mut groups: BTreeMap<String, (i64, f64)> = BTreeMap::new();
    for r in &records {
        let v = ciao_json::parse(r).unwrap();
        if v.get("stars").unwrap().as_i64() != Some(5)
            || v.get("active").unwrap().as_bool() != Some(true)
        {
            continue;
        }
        let city = v.get("city").unwrap().as_str().unwrap().to_owned();
        let score = v.get("score").unwrap().as_f64().unwrap();
        let entry = groups.entry(city).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += score;
    }
    let mut expected: Vec<Vec<SqlValue>> = groups
        .into_iter()
        .map(|(city, (n, sum))| {
            vec![
                SqlValue::Str(city),
                SqlValue::Int(n),
                SqlValue::Float(sum / n as f64),
            ]
        })
        .collect();
    expected.sort_by(|a, b| a[1].cmp(&b[1]).reverse().then_with(|| a.cmp(b)));
    expected.truncate(3);
    assert!(!expected.is_empty(), "the oracle found matching groups");

    let column_names: Vec<&str> = got.columns.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(column_names, ["city", "n", "mean"]);
    assert_eq!(got.rows, expected, "bit-identical to the full-scan oracle");

    // The aggregate path consumed the skipping machinery: pushed
    // clauses activated skip masks, zone maps pruned whole blocks,
    // and the parked store was never parsed.
    assert!(got.metrics.used_skipping, "{:?}", got.metrics);
    assert!(
        got.metrics.table_scan.blocks_pruned > 0,
        "{:?}",
        got.metrics
    );
    assert!(got.metrics.table_scan.rows_skipped > 0, "{:?}", got.metrics);
    assert!(!got.metrics.scanned_parked, "{:?}", got.metrics);
    assert_eq!(got.metrics.raw_scan.records_parsed, 0, "{:?}", got.metrics);

    // Per-stage latencies landed in the service telemetry.
    let snap = service.telemetry_snapshot().unwrap();
    for name in [names::SQL_PARSE_NS, names::SQL_PLAN_NS, names::SQL_EXEC_NS] {
        let (_, h) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing histogram {name}"));
        assert_eq!(h.count, 1, "{name}");
    }
    assert!(snap.events.iter().any(|e| e.kind == names::EVENT_SQL_QUERY));
    service.shutdown();
}

#[test]
fn uncovered_sql_query_falls_back_to_full_scan() {
    let records = dataset();
    let sample: Vec<_> = records
        .iter()
        .map(|r| ciao_json::parse(r).unwrap())
        .collect();
    let queries = vec![parse_query("q0", "stars = 5").unwrap()];
    let plan =
        PushdownPlan::build(&queries, &sample, &CostModel::default_uncalibrated(), 0.0).unwrap();
    assert!(plan.is_empty(), "zero budget pushes nothing");
    let schema = Arc::new(Schema::infer(&sample).unwrap());
    let service = Service::start(plan, schema, ServiceConfig::default().with_workers(0));
    for chunk in RecordChunk::from_records(&records).unwrap().split(48) {
        assert!(service.enqueue_raw(chunk).is_enqueued());
    }
    let got = service
        .query_sql("SELECT COUNT(*) FROM t WHERE city = 'Boston'")
        .unwrap();
    assert_eq!(got.rows, vec![vec![SqlValue::Int(60)]]);
    assert!(
        !got.metrics.used_skipping,
        "nothing pushed, nothing skipped"
    );
    service.shutdown();
}
