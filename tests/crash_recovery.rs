//! Crash-recovery matrix: SIGKILL a durable service mid-ingest and
//! prove that recovery loses no acked chunk and answers exactly like a
//! service that never crashed.
//!
//! Mechanics live in `support::crash`: the parent re-executes this test
//! binary with `--ignored --exact crash_child_ingest_loop`, the child
//! ingests the deterministic fixture stream with `SyncPolicy::Always`
//! (acking each durable sequence number to a fsync'd file), and the
//! parent kills it — SIGKILL, no cleanup — at a seeded ack count. The
//! matrix crosses 1/2/4 shards with three kill seeds, with and without
//! compaction ticks interleaved, so crashes land before the first
//! checkpoint, on checkpoint boundaries, and deep into truncated-WAL
//! territory.

mod support;

use ciao_storage::ScratchDir;
use support::crash::{
    child_ingest_loop, crash_recover_and_verify, recover_and_verify, run_child_until_kill, KillPlan,
};

/// Child-process entry point — only meaningful when re-executed by the
/// harness with `CIAO_CRASH_DIR` set; a no-op (instant pass) if run
/// directly via `--ignored`.
#[test]
#[ignore = "crash-harness child entry point, re-executed by the parent tests"]
fn crash_child_ingest_loop() {
    child_ingest_loop();
}

/// Three seeded kill points per shard count, alternating the
/// compaction dimension so both code paths cross a crash boundary.
fn run_matrix(shards: usize) {
    for (seed, compact) in [(11, false), (29, true), (47, false), (64, true)] {
        let plan = KillPlan {
            shards,
            seed,
            compact,
            checkpoint_every: 8,
        };
        let scratch = ScratchDir::new("crash");
        crash_recover_and_verify("crash_child_ingest_loop", scratch.path(), &plan);
    }
}

#[test]
fn kill_recover_one_shard() {
    run_matrix(1);
}

#[test]
fn kill_recover_two_shards() {
    run_matrix(2);
}

#[test]
fn kill_recover_four_shards() {
    run_matrix(4);
}

/// Two crashes back to back: the first SIGKILL can leave a torn WAL
/// tail, the restarted child recovers (repairing that tail), resumes
/// ingest from the recovered high-water mark, and is killed again. The
/// final recovery then replays a log whose middle was once damaged —
/// the case where an unrepaired first corruption would silently drop
/// every segment the second life wrote.
#[test]
fn kill_twice_recover_both_lives() {
    for seed in [3, 23] {
        let plan = KillPlan {
            shards: 2,
            seed,
            compact: false,
            checkpoint_every: 8,
        };
        let scratch = ScratchDir::new("crash-twice");
        let first = run_child_until_kill(
            "crash_child_ingest_loop",
            scratch.path(),
            &plan,
            plan.kill_after() as usize,
        );
        // Second life: same directory, same plan; wait for another
        // kill_after acks past whatever the first life banked.
        let acked = run_child_until_kill(
            "crash_child_ingest_loop",
            scratch.path(),
            &plan,
            first.len() + plan.kill_after() as usize,
        );
        assert!(acked.len() > first.len(), "second life made progress");
        recover_and_verify(scratch.path(), &plan, &acked);
    }
}

/// A kill point below the first checkpoint boundary: recovery has no
/// snapshot at all and must rebuild purely from the WAL.
#[test]
fn kill_before_first_checkpoint_recovers_from_wal_alone() {
    let plan = KillPlan {
        shards: 2,
        seed: 0, // kill_after = 5 < checkpoint_every
        compact: false,
        checkpoint_every: 1_000,
    };
    let scratch = ScratchDir::new("crash-nockpt");
    crash_recover_and_verify("crash_child_ingest_loop", scratch.path(), &plan);
}
