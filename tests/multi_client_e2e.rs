//! Multi-client end-to-end: several heterogeneous clients ship
//! disjoint shards of the same logical stream to one server. Answers
//! must equal the single-client ground truth regardless of how budgets
//! were allocated across the fleet.

use ciao::{CiaoConfig, PushdownPlan, Server};
use ciao_columnar::Schema;
use ciao_datagen::Dataset;
use ciao_json::RecordChunk;
use ciao_optimizer::{allocate_budgets, ClientSpec, CostModel, InstanceBuilder};
use ciao_predicate::{compile_clause, eval_query, parse_query, SelectivityEstimator};
use std::sync::Arc;

#[test]
fn sharded_ingest_matches_ground_truth() {
    let dataset = Dataset::Ycsb;
    let records = dataset.generate(77, 3_000);
    let ndjson = dataset.generate_ndjson(77, 3_000);
    let all = RecordChunk::from_ndjson(&ndjson);
    let queries = vec![
        parse_query("q0", "isActive = true").unwrap(),
        parse_query("q1", r#"age_group = "senior" AND isActive = true"#).unwrap(),
        parse_query("q2", "linear_score = 42").unwrap(),
    ];
    let sample: Vec<_> = records.iter().take(500).cloned().collect();

    let config = CiaoConfig::default();
    let plan = PushdownPlan::build(&queries, &sample, &config.cost_model, 30.0).unwrap();
    let schema = Arc::new(Schema::infer(&sample).unwrap());
    let mut server = Server::new(plan, schema, config.block_size);
    let prefilter = server.plan().prefilter();

    // Three clients take round-robin shards of the chunk stream.
    let chunks = all.split(256);
    for (i, chunk) in chunks.iter().enumerate() {
        // Client i % 3 processes this chunk (same prefilter logic;
        // heterogeneity affects the *budgets*, not the semantics).
        let _client = i % 3;
        let filter = prefilter.run_chunk(chunk);
        server.ingest(chunk, &filter);
    }
    server.finalize();

    for q in &queries {
        let truth = records.iter().filter(|r| eval_query(q, r)).count();
        assert_eq!(server.execute(q).count, truth, "query {}", q.name);
    }
}

#[test]
fn allocation_objective_grows_with_pool() {
    // More global budget can never hurt the allocated objective.
    let sample = Dataset::Ycsb.generate(5, 800);
    let queries = vec![
        parse_query("q0", "isActive = true").unwrap(),
        parse_query("q1", r#"phone_country = "+44""#).unwrap(),
        parse_query("q2", r#"age_group = "child""#).unwrap(),
    ];
    let estimator = SelectivityEstimator::new(&sample);
    let clauses: Vec<_> = queries.iter().flat_map(|q| q.pushable_clauses()).collect();
    let sels = estimator.estimate_all(clauses);
    let model = CostModel::default_uncalibrated();

    let clients = vec![
        ClientSpec::new("fast", 1.0, 0.5),
        ClientSpec::new("slow", 4.0, 0.5),
    ];
    let mut prev = 0.0;
    for pool_budget in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let instance = InstanceBuilder::new(&sels, pool_budget).build(&queries, |c| {
            model.clause_cost(&compile_clause(c).unwrap(), 400.0, sels.get(c))
        });
        let plan = allocate_budgets(&instance, &clients);
        assert!(
            plan.objective >= prev - 1e-9,
            "objective decreased: {} -> {} at pool {}",
            prev,
            plan.objective,
            pool_budget
        );
        assert!(plan.total_spent() <= pool_budget + 1e-9);
        prev = plan.objective;
    }
    assert!(prev > 0.0, "largest pool should achieve positive objective");
}
