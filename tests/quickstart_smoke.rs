//! Workspace smoke test: the quickstart example's exact path, asserted.
//!
//! Runs the full system end-to-end — plan the pushdown, prefilter on
//! the client, partially load, answer queries with data skipping — and
//! checks every query's count against a ground-truth full scan of the
//! raw records through typed evaluation. Partial loading and skipping
//! are optimizations; they must never change an answer.

use ciao::{CiaoConfig, Pipeline};
use ciao_predicate::{eval_query, parse_query};

fn quickstart_ndjson(records: usize) -> String {
    (0..records)
        .map(|i| {
            format!(
                "{{\"level\":\"{}\",\"service\":\"svc{}\",\"latency_ms\":{}}}\n",
                match i % 20 {
                    0 => "Error",
                    1..=4 => "Warning",
                    _ => "Info",
                },
                i % 8,
                (i * 7) % 500,
            )
        })
        .collect()
}

#[test]
fn quickstart_path_end_to_end() {
    let ndjson = quickstart_ndjson(20_000);
    let queries = vec![
        parse_query("errors", r#"level = "Error""#).unwrap(),
        parse_query("errors_svc3", r#"level = "Error" AND service = "svc3""#).unwrap(),
        parse_query("warnings", r#"level = "Warning""#).unwrap(),
    ];

    let config = CiaoConfig::default().with_budget_micros(1.0);
    let report = Pipeline::new(config)
        .run(&ndjson, &queries)
        .expect("pipeline");

    // The plan actually pushed something down and loading was partial:
    // the pipeline exercised prefilter → park → skip, not a degenerate
    // load-everything path.
    assert!(!report.plan.predicates.is_empty(), "no predicates pushed");
    assert_eq!(report.records, 20_000);
    assert!(
        report.load.loaded_records < report.records,
        "partial loading did not park anything ({} of {} loaded)",
        report.load.loaded_records,
        report.records
    );

    // Ground truth by full typed scan over every raw record.
    let records: Vec<_> = ndjson
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| ciao_json::parse(l).expect("quickstart records are valid JSON"))
        .collect();
    assert_eq!(records.len(), report.records);

    for (query, result) in queries.iter().zip(&report.query_results) {
        assert_eq!(query.name, result.name);
        let truth = records.iter().filter(|r| eval_query(query, r)).count();
        assert_eq!(
            result.count, truth,
            "query {} diverged from full-scan ground truth",
            query.name
        );
    }

    // At least one pushed-down query must have used bitvector skipping.
    assert!(
        report.query_results.iter().any(|q| q.metrics.used_skipping),
        "no query used data skipping"
    );

    // Expected quickstart shape: 5% errors, 20% warnings.
    assert_eq!(report.query_results[0].count, 1_000);
    assert_eq!(report.query_results[2].count, 4_000);
}
