//! Property test for the checkpoint/replay equivalence at the heart of
//! recovery: for any stream prefix length `n`, any checkpoint position
//! `k <= n`, and any shard count, a service that snapshotted at `k` and
//! replayed the WAL tail `[k, n)` must be indistinguishable from one
//! that ingested all `n` chunks without ever restarting — same query
//! counts, same record totals, same dense sequence line.

mod support;

use ciao_service::{Service, ServiceConfig, StorageConfig};
use ciao_storage::ScratchDir;
use proptest::prelude::*;
use support::{chunk, plan_and_schema, queries, CHUNK_RECORDS};

fn durable(dir: &std::path::Path, shards: usize) -> Service {
    let (plan, schema) = plan_and_schema();
    Service::start(
        plan,
        schema,
        ServiceConfig::default()
            .with_shards(shards)
            .with_workers(0)
            .with_storage(StorageConfig::new(dir)),
    )
}

fn feed(service: &Service, range: std::ops::Range<u64>) {
    let prefilter = service.prefilter();
    for i in range {
        let c = chunk(i);
        let filter = prefilter.run_chunk(&c);
        assert!(service.enqueue(c, filter).is_enqueued());
        service.drain();
    }
}

proptest! {
    // Each case spins three services; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_plus_tail_equals_full_replay(
        n in 1u64..20,
        k_fraction in 0.0f64..=1.0,
        shards in 1usize..=4,
    ) {
        let k = (n as f64 * k_fraction) as u64; // checkpoint position, 0..=n
        let scratch = ScratchDir::new("props");

        // Life 1: ingest k chunks, checkpoint, ingest the tail, crash
        // (drop without shutdown — nothing past the checkpoint is
        // snapshotted, so [k, n) must come back via WAL replay).
        {
            let service = durable(scratch.path(), shards);
            feed(&service, 0..k);
            prop_assert!(service.checkpoint().is_some());
            feed(&service, k..n);
            drop(service);
        }

        // Life 2: recover and compare against a crash-free oracle.
        let recovered = durable(scratch.path(), shards);
        let report = recovered.recovery_report().expect("durable restart");
        prop_assert!(report.clean(), "uncorrupted dir recovers cleanly: {report:?}");
        prop_assert_eq!(recovered.metrics().accepted_chunks, n);
        let replayed = recovered
            .durability()
            .expect("durable service reports status")
            .wal_replayed;
        prop_assert_eq!(replayed, n - k, "tail replay is exactly [k, n)");

        let (counts, total) = support::crash::oracle(shards, n);
        for (q, expected) in queries().iter().zip(counts) {
            prop_assert_eq!(
                recovered.query(q).count,
                expected,
                "query {} diverged (n={}, k={}, shards={})",
                &q.name, n, k, shards
            );
        }
        prop_assert_eq!(recovered.metrics().load().total(), total);
        prop_assert_eq!(total as u64, n * CHUNK_RECORDS);
        recovered.shutdown();
    }
}
