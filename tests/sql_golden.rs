//! Golden-file SQL conformance suite.
//!
//! Every statement in `tests/support/sql_conformance.sql` runs against
//! two services holding the same 240 deterministic records:
//!
//! * a 2-shard service with a real pushdown plan (`stars = 5` and
//!   `active = true` ride client bitvectors), and
//! * a 1-shard zero-budget **oracle** that loaded everything columnar
//!   and scans it all.
//!
//! The suite asserts (a) the pushdown service's rendered output — or
//! caret-annotated error — matches the checked-in
//! `sql_conformance.expected` byte-for-byte, and (b) successful
//! answers are bit-identical to the oracle's. Regenerate the expected
//! file after an intentional change with:
//!
//! ```text
//! CIAO_UPDATE_GOLDEN=1 cargo test --test sql_golden
//! ```

use ciao::PushdownPlan;
use ciao_columnar::Schema;
use ciao_json::RecordChunk;
use ciao_optimizer::CostModel;
use ciao_predicate::parse_query;
use ciao_service::{Service, ServiceConfig};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

/// 240 deterministic records. `stars` is clustered (48 records per
/// value, in order) so sealed blocks get tight zone ranges; `email` is
/// NULL on every 7th record; `payload` exercises the `json` column
/// type.
fn dataset() -> Vec<String> {
    (0..240)
        .map(|i| {
            let email = if i % 7 == 0 {
                "null".to_owned()
            } else {
                format!(r#""u{i}@example.com""#)
            };
            format!(
                concat!(
                    r#"{{"id":{},"stars":{},"score":{},"name":"user{:03}","#,
                    r#""city":"{}","active":{},"email":{},"payload":{{"tag":{}}}}}"#
                ),
                i,
                i / 48 + 1,
                (i % 20) as f64 * 0.5,
                i,
                ["Amsterdam", "Boston", "Chicago", "Denver"][i % 4],
                i % 3 == 0,
                email,
                i % 2,
            )
        })
        .collect()
}

fn start_service(records: &[String], budget: f64, shards: usize) -> Service {
    let sample: Vec<_> = records
        .iter()
        .map(|r| ciao_json::parse(r).unwrap())
        .collect();
    let queries = vec![
        parse_query("q0", "stars = 5").unwrap(),
        parse_query("q1", "active = true").unwrap(),
    ];
    let plan = PushdownPlan::build(
        &queries,
        &sample,
        &CostModel::default_uncalibrated(),
        budget,
    )
    .unwrap();
    let schema = Arc::new(Schema::infer(&sample).unwrap());
    let service = Service::start(
        plan,
        schema,
        ServiceConfig::default()
            .with_shards(shards)
            .with_workers(0)
            .with_block_size(16),
    );
    for chunk in RecordChunk::from_records(records).unwrap().split(48) {
        assert!(service.enqueue_raw(chunk).is_enqueued());
        service.drain();
    }
    service
}

fn corpus_statements(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("--"))
        .map(str::to_owned)
        .collect()
}

/// `EXPLAIN ANALYZE` output depends on the service shape (a sharded
/// budgeted service prunes differently than the zero-budget oracle),
/// so the oracle comparison is restricted to the config-invariant
/// lines: the plan tree (rendered from the plan alone) and the `rows
/// matched:` / `rows returned:` annotations, which restate the
/// statement's answer rather than the skipping strategy. The golden
/// file still pins the service's full render — it is deterministic for
/// the suite's fixed configuration.
fn stable_analyze_lines(result: &ciao_engine::QueryResult) -> Vec<String> {
    let mut stable = Vec::new();
    let mut in_tree = true;
    for row in &result.rows {
        let ciao_sql::SqlValue::Str(line) = &row[0] else {
            panic!("EXPLAIN rows are strings, got {row:?}");
        };
        if line == "-- analyze --" {
            in_tree = false;
        }
        if in_tree || line.starts_with("rows matched:") || line.starts_with("rows returned:") {
            stable.push(line.clone());
        }
    }
    stable
}

#[test]
fn conformance_corpus_matches_golden_file_and_oracle() {
    let support = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/support");
    let corpus = std::fs::read_to_string(support.join("sql_conformance.sql"))
        .expect("read sql_conformance.sql");
    let statements = corpus_statements(&corpus);
    assert!(
        statements.len() >= 40,
        "corpus holds {} statements",
        statements.len()
    );

    let records = dataset();
    let service = start_service(&records, 30.0, 2);
    let oracle = start_service(&records, 0.0, 1);

    let mut rendered = String::new();
    for stmt in &statements {
        writeln!(rendered, ">>> {stmt}").unwrap();
        match service.query_sql(stmt) {
            Ok(result) => {
                // Bit-identical to the full scan, shard count and
                // pushdown notwithstanding.
                let truth = oracle
                    .query_sql(stmt)
                    .expect("oracle accepts what the service accepts");
                assert_eq!(result.columns, truth.columns, "columns diverged: {stmt}");
                if stmt.to_ascii_uppercase().starts_with("EXPLAIN ANALYZE") {
                    assert_eq!(
                        stable_analyze_lines(&result),
                        stable_analyze_lines(&truth),
                        "stable EXPLAIN ANALYZE lines diverged: {stmt}"
                    );
                } else {
                    assert_eq!(result.rows, truth.rows, "rows diverged from oracle: {stmt}");
                }
                writeln!(rendered, "{}", result.render()).unwrap();
            }
            Err(err) => {
                let truth = oracle
                    .query_sql(stmt)
                    .expect_err("oracle rejects what the service rejects");
                assert_eq!(err, truth, "errors diverged: {stmt}");
                writeln!(rendered, "{}", err.render(stmt)).unwrap();
            }
        }
        rendered.push('\n');
    }

    let expected_path = support.join("sql_conformance.expected");
    if std::env::var_os("CIAO_UPDATE_GOLDEN").is_some() {
        std::fs::write(&expected_path, &rendered).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&expected_path)
        .expect("read sql_conformance.expected (set CIAO_UPDATE_GOLDEN=1 to create it)");
    assert!(
        rendered == expected,
        "golden mismatch — rerun with CIAO_UPDATE_GOLDEN=1 and diff.\n--- got ---\n{rendered}"
    );
}
