//! Shared fixtures for the workspace integration tests.
//!
//! Declared as `mod support;` per test binary; not every binary uses
//! every helper, hence the crate-level `dead_code` allowance.
#![allow(dead_code)]

pub mod crash;

use ciao::PushdownPlan;
use ciao_columnar::Schema;
use ciao_json::RecordChunk;
use ciao_optimizer::CostModel;
use ciao_predicate::{parse_query, Query};
use std::sync::Arc;

/// Records per deterministic ingest chunk.
pub const CHUNK_RECORDS: u64 = 40;

/// The deterministic chunk with index `i` — identical in every
/// process, so a crashed child's ingest stream can be reproduced
/// exactly by an oracle that never crashed.
pub fn chunk(i: u64) -> RecordChunk {
    let records: Vec<String> = (0..CHUNK_RECORDS)
        .map(|j| {
            let id = i * CHUNK_RECORDS + j;
            format!(r#"{{"stars":{},"id":{id}}}"#, id % 5 + 1)
        })
        .collect();
    RecordChunk::from_records(&records).expect("fixture records are newline-free")
}

/// The queries every durability test answers and cross-checks.
pub fn queries() -> Vec<Query> {
    vec![
        parse_query("hot", "stars = 5").unwrap(),
        parse_query("cold", "stars = 2").unwrap(),
    ]
}

/// A deterministic plan + schema over the fixture's record shape —
/// the same in the crashing child, the recovering parent, and the
/// crash-free oracle.
pub fn plan_and_schema() -> (PushdownPlan, Arc<Schema>) {
    let sample: Vec<_> = chunk(0)
        .iter()
        .map(|r| ciao_json::parse(r).unwrap())
        .collect();
    let plan = PushdownPlan::build(
        &queries(),
        &sample,
        &CostModel::default_uncalibrated(),
        10.0,
    )
    .unwrap();
    let schema = Arc::new(Schema::infer(&sample).unwrap());
    (plan, schema)
}
