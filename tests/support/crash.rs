//! Kill-and-recover harness: run ingest in a child process, SIGKILL it
//! at a seeded point, restart against the same storage directory, and
//! check the recovered answers against a crash-free oracle.
//!
//! The child is this very test binary re-executed with
//! `--ignored --exact <child test name>` — no helper binaries, no
//! build-system coupling. Parent and child coordinate through a
//! directory: the child appends every acked sequence number to an ack
//! file (fsync'd after each line), the parent polls that file until the
//! seeded kill point and then delivers SIGKILL, so the crash lands at a
//! different ingest/checkpoint/fsync boundary per seed.
//!
//! The durability contract under test: every chunk whose sequence
//! number reached the ack file was acked with [`SyncPolicy::Always`],
//! so after recovery the service must hold a prefix `[0, next_seq)` of
//! the deterministic chunk stream with `next_seq` strictly past every
//! acked sequence — and answer queries exactly like a service that
//! ingested that prefix without ever crashing.

use super::{chunk, plan_and_schema, queries, CHUNK_RECORDS};
use ciao_service::{EnqueueResult, Service, ServiceConfig, StorageConfig, SyncPolicy};
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Coordination directory handed to the child (storage dir + ack file
/// live under it).
pub const ENV_DIR: &str = "CIAO_CRASH_DIR";
/// Shard count for the child's service.
pub const ENV_SHARDS: &str = "CIAO_CRASH_SHARDS";
/// `"1"` to interleave compaction ticks with ingest.
pub const ENV_COMPACT: &str = "CIAO_CRASH_COMPACT";
/// Checkpoint every N acked chunks (`"0"` disables checkpoints).
pub const ENV_CHECKPOINT_EVERY: &str = "CIAO_CRASH_CHECKPOINT_EVERY";
/// Set by CI: export the recovered manifest + a summary here.
pub const ENV_ARTIFACT_DIR: &str = "CIAO_DURABILITY_ARTIFACT_DIR";

/// Ack file name inside the coordination directory: one acked sequence
/// number per line, fsync'd after each.
pub const ACK_FILE: &str = "acked.seq";
/// Storage root inside the coordination directory.
pub const STORE_DIR: &str = "store";

/// Upper bound on chunks the child ingests — the parent kills it long
/// before this; the cap only keeps an orphaned child from spinning
/// forever if the parent dies first.
const CHILD_MAX_CHUNKS: u64 = 10_000;

/// One cell of the crash matrix.
#[derive(Debug, Clone, Copy)]
pub struct KillPlan {
    /// Shards (and workers) in the crashing child and the recovery.
    pub shards: usize,
    /// Seed selecting the kill point.
    pub seed: u64,
    /// Whether the child interleaves compaction ticks.
    pub compact: bool,
    /// Child checkpoints every this many acked chunks (0 = never).
    pub checkpoint_every: u64,
}

impl KillPlan {
    /// The seeded kill point: SIGKILL once this many chunks are acked.
    /// Spread over [5, 45) so different seeds land before the first
    /// checkpoint, right on a checkpoint boundary, and well past one.
    pub fn kill_after(&self) -> u64 {
        5 + (self.seed.wrapping_mul(7)) % 40
    }
}

/// Child-process entry point, called from the `#[ignore]`d test the
/// parent re-executes. Ingests the deterministic chunk stream with
/// `SyncPolicy::Always` durability, acking each accepted sequence to
/// the ack file, until killed. A no-op when the coordination env var is
/// absent (i.e. someone ran the ignored test directly).
///
/// The child picks up wherever the storage directory left off: it
/// starts ingesting at the recovered `accepted_chunks` high-water mark,
/// so re-running it against a crashed directory models a process that
/// restarts, recovers, and keeps serving — the double-crash cells kill
/// that second life too.
pub fn child_ingest_loop() {
    let Ok(dir) = std::env::var(ENV_DIR) else {
        return;
    };
    let dir = PathBuf::from(dir);
    let shards: usize = read_env(ENV_SHARDS, 1);
    let compact = std::env::var(ENV_COMPACT).as_deref() == Ok("1");
    let checkpoint_every: u64 = read_env(ENV_CHECKPOINT_EVERY, 8);

    let (plan, schema) = plan_and_schema();
    let service = Service::start(
        plan,
        schema,
        ServiceConfig::default()
            .with_shards(shards)
            .with_workers(shards)
            .with_storage(StorageConfig::new(dir.join(STORE_DIR)).with_sync(SyncPolicy::Always)),
    );
    let prefilter = service.prefilter();
    let mut ack = OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(ACK_FILE))
        .expect("open ack file");

    let base = service.metrics().accepted_chunks;
    for i in base..CHILD_MAX_CHUNKS {
        let c = chunk(i);
        let filter = prefilter.run_chunk(&c);
        let EnqueueResult::Enqueued { seq, .. } = service.enqueue_wait(c, filter) else {
            break;
        };
        assert_eq!(seq, i, "a single-producer child acks in sequence order");
        // The ack is only recorded once it is durable: single write,
        // then fsync, so an acked line in the file is a real promise.
        ack.write_all(format!("{seq}\n").as_bytes())
            .expect("append ack");
        ack.sync_data().expect("fsync ack");
        if checkpoint_every > 0 && (i + 1) % checkpoint_every == 0 {
            service.checkpoint();
        }
        if compact && (i + 1) % 3 == 0 {
            service.compact();
        }
    }
}

/// Sequence numbers the child durably acked. Only complete lines count
/// — SIGKILL can tear the final line mid-write, and a torn digit prefix
/// must not masquerade as an ack.
pub fn read_acks(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let complete = match text.rfind('\n') {
        Some(end) => &text[..end],
        None => return Vec::new(),
    };
    complete
        .lines()
        .map(|l| l.trim().parse().expect("ack lines are integers"))
        .collect()
}

/// Parent half: re-execute this test binary as the crashing child,
/// poll the ack file until it holds `target_acks` total lines (an
/// absolute count, so a second child life extends the same file),
/// SIGKILL the child, and return every acked sequence number.
pub fn run_child_until_kill(
    child_test: &str,
    dir: &Path,
    plan: &KillPlan,
    target_acks: usize,
) -> Vec<u64> {
    let exe = std::env::current_exe().expect("current test binary path");
    let mut child = Command::new(exe)
        .args([
            "--ignored",
            "--exact",
            child_test,
            "--test-threads=1",
            "--nocapture",
        ])
        .env(ENV_DIR, dir)
        .env(ENV_SHARDS, plan.shards.to_string())
        .env(ENV_COMPACT, if plan.compact { "1" } else { "0" })
        .env(ENV_CHECKPOINT_EVERY, plan.checkpoint_every.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn crash child");

    let ack_path = dir.join(ACK_FILE);
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if read_acks(&ack_path).len() >= target_acks {
            break;
        }
        if let Some(status) = child.try_wait().expect("poll crash child") {
            panic!("crash child exited ({status}) before the kill point ({plan:?})");
        }
        assert!(
            Instant::now() < deadline,
            "crash child never reached the kill point ({plan:?})"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    // SIGKILL — no atexit, no Drop, no flush. The recovery must stand
    // on what fsync already put on disk.
    child.kill().expect("SIGKILL crash child");
    child.wait().expect("reap crash child");
    read_acks(&ack_path)
}

/// A crash-free oracle: an in-memory service over the deterministic
/// chunk prefix `[0, chunks)`. Returns the per-query counts and the
/// total loaded+parked record count.
pub fn oracle(shards: usize, chunks: u64) -> (Vec<usize>, usize) {
    let (plan, schema) = plan_and_schema();
    let service = Service::start(
        plan,
        schema,
        ServiceConfig::default().with_shards(shards).with_workers(0),
    );
    let prefilter = service.prefilter();
    for i in 0..chunks {
        let c = chunk(i);
        let filter = prefilter.run_chunk(&c);
        assert!(service.enqueue(c, filter).is_enqueued());
        service.drain();
    }
    let counts = queries().iter().map(|q| service.query(q).count).collect();
    let total = service.shutdown().load().total();
    (counts, total)
}

/// Run one matrix cell end to end: crash the child at the seeded
/// point, recover in-process from the surviving directory, and assert
/// the recovered service (a) lost no acked chunk, (b) holds a clean
/// prefix of the stream, and (c) answers exactly like the oracle.
pub fn crash_recover_and_verify(child_test: &str, dir: &Path, plan: &KillPlan) {
    let acked = run_child_until_kill(child_test, dir, plan, plan.kill_after() as usize);
    assert!(
        acked.len() as u64 >= plan.kill_after(),
        "kill fired before the seeded point ({plan:?})"
    );
    recover_and_verify(dir, plan, &acked);
}

/// Recovery half of a matrix cell, reusable after any number of child
/// lives: restart in-process from the surviving directory and hold the
/// recovered service to the durability contract against the oracle.
pub fn recover_and_verify(dir: &Path, plan: &KillPlan, acked: &[u64]) {
    let max_acked = *acked.iter().max().expect("at least one ack");

    let (pushdown, schema) = plan_and_schema();
    let recovered = Service::start(
        pushdown,
        schema,
        ServiceConfig::default()
            .with_shards(plan.shards)
            .with_workers(0)
            .with_storage(StorageConfig::new(dir.join(STORE_DIR)).with_sync(SyncPolicy::Always)),
    );
    let report = recovered
        .recovery_report()
        .expect("durable restart produces a recovery report")
        .clone();

    // No acked chunk may be lost: the recovered sequence line must sit
    // strictly past every ack the child recorded before dying.
    let next_seq = recovered.metrics().accepted_chunks;
    assert!(
        next_seq > max_acked,
        "recovery lost acked chunks: next_seq {next_seq} <= max acked {max_acked} \
         ({plan:?}, report {report:?})"
    );

    // The recovered state is a prefix [0, next_seq) of the stream —
    // possibly one chunk past the last ack (logged, then killed before
    // the ack line landed). Answers must match a crash-free service
    // over that same prefix, record for record.
    let (expected_counts, expected_total) = oracle(plan.shards, next_seq);
    for (q, expected) in queries().iter().zip(expected_counts) {
        let got = recovered.query(q).count;
        assert_eq!(
            got, expected,
            "query {} diverged after crash recovery ({plan:?}, report {report:?})",
            q.name
        );
    }
    let total = recovered.metrics().load().total();
    assert_eq!(
        total, expected_total,
        "recovered record total diverged ({plan:?}, report {report:?})"
    );
    assert_eq!(
        total as u64,
        next_seq * CHUNK_RECORDS,
        "recovered prefix is not dense ({plan:?})"
    );

    export_artifact(dir, plan, next_seq, max_acked);
    recovered.shutdown();
}

/// When CI asks for it, export the recovered manifest plus a one-line
/// summary per matrix cell so a failed durability-smoke run leaves
/// evidence behind.
fn export_artifact(dir: &Path, plan: &KillPlan, next_seq: u64, max_acked: u64) {
    let Ok(out) = std::env::var(ENV_ARTIFACT_DIR) else {
        return;
    };
    let out = PathBuf::from(out);
    if std::fs::create_dir_all(&out).is_err() {
        return;
    }
    let cell = format!(
        "s{}-seed{}-{}",
        plan.shards,
        plan.seed,
        if plan.compact { "compact" } else { "plain" }
    );
    let manifest = dir
        .join(STORE_DIR)
        .join(ciao_storage::manifest::MANIFEST_FILE);
    if manifest.is_file() {
        let _ = std::fs::copy(&manifest, out.join(format!("MANIFEST-{cell}")));
    }
    let summary = format!(
        "{cell}: kill_after={} max_acked={max_acked} next_seq={next_seq}\n",
        plan.kill_after()
    );
    if let Ok(mut f) = OpenOptions::new()
        .create(true)
        .append(true)
        .open(out.join("summary.txt"))
    {
        let _ = f.write_all(summary.as_bytes());
    }
}

fn read_env<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
