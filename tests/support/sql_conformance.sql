-- SQL conformance corpus: one statement per line. Blank lines and
-- `--` comment lines are skipped; everything else runs against both
-- the pushdown service and the full-scan oracle, and its rendered
-- output (or caret-annotated error) is checked against
-- sql_conformance.expected. Regenerate with CIAO_UPDATE_GOLDEN=1.
-- NOTE: projections must carry ORDER BY — without it row order
-- depends on the shard count, and the suite compares bit-identically
-- across a 2-shard service and a 1-shard oracle.

-- Projections and WHERE forms.
SELECT id, name FROM t WHERE stars = 5 ORDER BY id LIMIT 5
SELECT * FROM t WHERE id < 3 ORDER BY 1
SELECT name AS who, city FROM t WHERE active = true ORDER BY who LIMIT 4
SELECT id FROM t WHERE stars = 5 AND active = true ORDER BY id LIMIT 6
SELECT id, email FROM t WHERE email IS NOT NULL ORDER BY id LIMIT 3
SELECT id FROM t WHERE name LIKE "%user00%" ORDER BY id
SELECT id, city FROM t WHERE city IN ("Boston", "Denver") ORDER BY id LIMIT 5
SELECT id FROM t WHERE stars > 4 ORDER BY id LIMIT 5
SELECT id FROM t WHERE stars <= 1 ORDER BY id LIMIT 5
SELECT id FROM t WHERE score = 0.5 ORDER BY id LIMIT 5
SELECT id FROM t WHERE stars != NULL ORDER BY id LIMIT 3
SELECT id, stars FROM t WHERE id > 234 ORDER BY stars DESC, id
SELECT id FROM t ORDER BY id DESC LIMIT 3
SELECT id FROM t WHERE active = false AND city = 'Chicago' ORDER BY id LIMIT 5

-- Ungrouped aggregates.
SELECT COUNT(*) FROM t
SELECT COUNT(*) FROM t WHERE stars = 5
SELECT COUNT(email) FROM t
SELECT COUNT(*), AVG(score), MIN(score), MAX(score) FROM t WHERE stars = 5
SELECT SUM(stars) FROM t
SELECT AVG(stars) FROM t WHERE active = true
SELECT MIN(name), MAX(name) FROM t
SELECT COUNT(*) FROM t WHERE stars = 9
SELECT SUM(score), AVG(score) FROM t WHERE stars = 9
SELECT MIN(score) AS lo, MAX(score) AS hi FROM t WHERE city = "Denver"

-- GROUP BY / ORDER BY / LIMIT.
SELECT stars, COUNT(*) FROM t GROUP BY stars
SELECT stars, COUNT(*) AS n, AVG(score) FROM t GROUP BY stars ORDER BY stars
SELECT city, COUNT(*) FROM t WHERE active = true GROUP BY city ORDER BY 2 DESC, city
SELECT active, COUNT(*) FROM t GROUP BY active ORDER BY active
SELECT city, stars, COUNT(*) FROM t GROUP BY city, stars ORDER BY city, stars LIMIT 8
SELECT stars, SUM(id) FROM t GROUP BY stars ORDER BY stars DESC
SELECT city, COUNT(email) AS emails FROM t GROUP BY city ORDER BY city
SELECT stars, COUNT(*) FROM t WHERE stars > 7 GROUP BY stars
SELECT city, MIN(id), MAX(id) FROM t WHERE stars = 3 GROUP BY city ORDER BY city LIMIT 3

-- Keyword case, semicolons, inline comments.
select stars, count(*) from t group by stars order by stars limit 2;
SELECT COUNT(*) FROM t WHERE stars = 5 -- trailing comment

-- Errors: unknown columns, type mismatches, malformed grammar.
SELECT nope FROM t
SELECT COUNT(*) FROM t WHERE stars = "five"
SELECT name, COUNT(*) FROM t
SELECT AVG(name) FROM t
SELECT id FROM t ORDER BY 7
SELECT COUNT(*) FROM t WHERE payload = 1
SELECT id FROM t LIMIT -1
SELECT SUM(*) FROM t
SELECT * FROM t GROUP BY stars
SELECT id FROM t WHERE stars <

-- EXPLAIN renders the physical plan without executing; EXPLAIN ANALYZE
-- executes and appends live profile annotations. Only config-invariant
-- lines are oracle-compared (see sql_golden.rs).
EXPLAIN SELECT city, stars FROM t WHERE stars = 5 AND active = true LIMIT 5
EXPLAIN SELECT city, COUNT(*) AS n, AVG(score) FROM t WHERE stars > 2 GROUP BY city ORDER BY n DESC, city LIMIT 3
EXPLAIN SELECT COUNT(*) FROM t WHERE city LIKE "%os%" AND email != NULL
explain select stars, count(*) from t group by stars;
EXPLAIN ANALYZE SELECT COUNT(*) FROM t WHERE stars = 5
EXPLAIN ANALYZE SELECT city, COUNT(*) AS n FROM t WHERE stars = 5 AND active = true GROUP BY city ORDER BY n DESC, city
EXPLAIN ANALYZE SELECT id, city FROM t WHERE id > 200 ORDER BY id LIMIT 4

-- EXPLAIN error paths: inner statements fail like any other; ANALYZE
-- alone and bare EXPLAIN are grammar errors.
EXPLAIN SELECT nope FROM t
EXPLAIN ANALYZE SELECT AVG(name) FROM t
ANALYZE SELECT id FROM t
EXPLAIN
