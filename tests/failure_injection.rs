//! Failure injection across the stack: malformed records, budget
//! exhaustion, schema-violating values, desynchronized bitvectors.
//! CIAO's contract under failure is "never lose a record, never return
//! a wrong count" — degradation is allowed, silence is not.

use ciao::{AdmissionPolicy, CiaoConfig, Loader, Pipeline, PushdownPlan, Server};
use ciao_client::{Budget, BudgetedPrefilter, ClientStats, Prefilter};
use ciao_columnar::Schema;
use ciao_json::RecordChunk;
use ciao_optimizer::CostModel;
use ciao_predicate::{compile_clause, parse_clause, parse_query};
use std::sync::Arc;

fn dirty_ndjson(n: usize) -> String {
    (0..n)
        .map(|i| match i % 10 {
            // A malformed line every 10 records.
            3 => "{\"stars\": oops not json\n".to_owned(),
            // A schema-violating value (string in an int field).
            7 => format!("{{\"stars\":\"five\",\"name\":\"u{i}\"}}\n"),
            _ => format!("{{\"stars\":{},\"name\":\"u{}\"}}\n", i % 5 + 1, i),
        })
        .collect()
}

#[test]
fn malformed_records_survive_end_to_end() {
    let data = dirty_ndjson(500);
    let queries = vec![
        parse_query("q0", "stars = 5").unwrap(),
        parse_query("q1", r#"name = "u7""#).unwrap(), // i=7 is the bad-stars record
    ];
    let report = Pipeline::new(CiaoConfig::default().with_budget_micros(5.0))
        .run(&data, &queries)
        .expect("pipeline survives dirty input");

    // Ground truth over the 500 lines: malformed lines match nothing;
    // stars = 5 ⇔ i % 5 == 4 and i % 10 ∉ {3, 7}.
    let expected_stars5 = (0..500)
        .filter(|i| i % 5 == 4 && i % 10 != 3 && i % 10 != 7)
        .count();
    assert_eq!(report.query_results[0].count, expected_stars5);
    // u7's stars field is the string "five": stored as NULL in the int
    // column, but the name predicate still finds the record.
    assert_eq!(report.query_results[1].count, 1);
    // Nothing was dropped.
    assert_eq!(report.records, 500);
    assert_eq!(report.load.total(), 500);
    assert!(report.load.coercion_failures > 0);
}

#[test]
fn budget_degradation_preserves_answers() {
    // A zero runtime budget forces the client to degrade every chunk
    // to all-ones bits. More records get loaded (no filtering power),
    // but every count must stay exact.
    let raw: Vec<String> = (0..400)
        .map(|i| format!(r#"{{"stars":{},"name":"u{}"}}"#, i % 5 + 1, i))
        .collect();
    let chunk = RecordChunk::from_records(&raw).unwrap();
    let sample: Vec<_> = raw.iter().map(|r| ciao_json::parse(r).unwrap()).collect();
    let queries = vec![parse_query("q", "stars = 5").unwrap()];
    let plan =
        PushdownPlan::build(&queries, &sample, &CostModel::default_uncalibrated(), 10.0).unwrap();
    assert!(!plan.is_empty());
    let schema = Arc::new(Schema::infer(&sample).unwrap());
    let mut server = Server::new(plan, schema, 64);

    let budgeted =
        BudgetedPrefilter::new(server.plan().prefilter(), Budget::per_record_micros(0.0))
            .with_check_interval(1)
            .with_slack(1.0);
    let mut stats = ClientStats::default();
    for sub in chunk.split(64) {
        let filter = budgeted.run_chunk(&sub, &mut stats);
        server.ingest(&sub, &filter);
    }
    server.finalize();
    assert!(
        stats.degraded_chunks > 0,
        "degradation should have triggered"
    );

    let out = server.execute(&queries[0]);
    assert_eq!(out.count, 80, "degraded bits must not change the answer");
}

#[test]
fn loader_rejects_desynchronized_bitvectors() {
    let schema = Arc::new(Schema::infer(&[ciao_json::parse(r#"{"a":1}"#).unwrap()]).unwrap());
    let pattern = compile_clause(&parse_clause("a = 1").unwrap()).unwrap();
    let pf = Prefilter::new([(0, pattern)]);
    let short = RecordChunk::from_records(&[r#"{"a":1}"#]).unwrap();
    let long = RecordChunk::from_records(&[r#"{"a":1}"#, r#"{"a":2}"#]).unwrap();
    let filter = pf.run_chunk(&short);
    let mut loader = Loader::new(schema, &[0], AdmissionPolicy::from_coverage(&[vec![0]]), 16);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        loader.load_chunk(&long, &filter);
    }));
    assert!(result.is_err(), "framing desync must fail loudly");
}

#[test]
fn all_garbage_chunk_is_fully_parked() {
    let schema = Arc::new(Schema::infer(&[ciao_json::parse(r#"{"a":1}"#).unwrap()]).unwrap());
    let chunk = RecordChunk::from_records(&["garbage", "also garbage {"]).unwrap();
    let filter = Prefilter::new([]).run_chunk(&chunk);
    let mut loader = Loader::new(schema, &[], AdmissionPolicy::LoadAll, 16);
    loader.load_chunk(&chunk, &filter);
    let (table, parked, stats) = loader.finish();
    assert_eq!(table.row_count(), 0);
    assert_eq!(parked.len(), 2);
    assert_eq!(stats.parse_errors, 2);
}

#[test]
fn queries_over_empty_server_return_zero() {
    let queries = vec![parse_query("q", "stars = 5").unwrap()];
    let sample = vec![ciao_json::parse(r#"{"stars":1}"#).unwrap()];
    let plan =
        PushdownPlan::build(&queries, &sample, &CostModel::default_uncalibrated(), 1.0).unwrap();
    let schema = Arc::new(Schema::infer(&sample).unwrap());
    let mut server = Server::new(plan, schema, 16);
    server.finalize();
    assert_eq!(server.execute(&queries[0]).count, 0);
}
