//! Failure injection across the stack: malformed records, budget
//! exhaustion, schema-violating values, desynchronized bitvectors —
//! and, for the durable service, corrupted storage (torn WAL tails,
//! flipped checksum bytes, deleted snapshots, a broken manifest).
//! CIAO's contract under failure is "never lose a record, never return
//! a wrong count" — degradation is allowed, silence is not.

mod support;

use ciao::{AdmissionPolicy, CiaoConfig, Loader, Pipeline, PushdownPlan, Server};
use ciao_client::{Budget, BudgetedPrefilter, ClientStats, Prefilter};
use ciao_columnar::Schema;
use ciao_json::RecordChunk;
use ciao_optimizer::CostModel;
use ciao_predicate::{compile_clause, parse_clause, parse_query};
use std::sync::Arc;

fn dirty_ndjson(n: usize) -> String {
    (0..n)
        .map(|i| match i % 10 {
            // A malformed line every 10 records.
            3 => "{\"stars\": oops not json\n".to_owned(),
            // A schema-violating value (string in an int field).
            7 => format!("{{\"stars\":\"five\",\"name\":\"u{i}\"}}\n"),
            _ => format!("{{\"stars\":{},\"name\":\"u{}\"}}\n", i % 5 + 1, i),
        })
        .collect()
}

#[test]
fn malformed_records_survive_end_to_end() {
    let data = dirty_ndjson(500);
    let queries = vec![
        parse_query("q0", "stars = 5").unwrap(),
        parse_query("q1", r#"name = "u7""#).unwrap(), // i=7 is the bad-stars record
    ];
    let report = Pipeline::new(CiaoConfig::default().with_budget_micros(5.0))
        .run(&data, &queries)
        .expect("pipeline survives dirty input");

    // Ground truth over the 500 lines: malformed lines match nothing;
    // stars = 5 ⇔ i % 5 == 4 and i % 10 ∉ {3, 7}.
    let expected_stars5 = (0..500)
        .filter(|i| i % 5 == 4 && i % 10 != 3 && i % 10 != 7)
        .count();
    assert_eq!(report.query_results[0].count, expected_stars5);
    // u7's stars field is the string "five": stored as NULL in the int
    // column, but the name predicate still finds the record.
    assert_eq!(report.query_results[1].count, 1);
    // Nothing was dropped.
    assert_eq!(report.records, 500);
    assert_eq!(report.load.total(), 500);
    assert!(report.load.coercion_failures > 0);
}

#[test]
fn budget_degradation_preserves_answers() {
    // A zero runtime budget forces the client to degrade every chunk
    // to all-ones bits. More records get loaded (no filtering power),
    // but every count must stay exact.
    let raw: Vec<String> = (0..400)
        .map(|i| format!(r#"{{"stars":{},"name":"u{}"}}"#, i % 5 + 1, i))
        .collect();
    let chunk = RecordChunk::from_records(&raw).unwrap();
    let sample: Vec<_> = raw.iter().map(|r| ciao_json::parse(r).unwrap()).collect();
    let queries = vec![parse_query("q", "stars = 5").unwrap()];
    let plan =
        PushdownPlan::build(&queries, &sample, &CostModel::default_uncalibrated(), 10.0).unwrap();
    assert!(!plan.is_empty());
    let schema = Arc::new(Schema::infer(&sample).unwrap());
    let mut server = Server::new(plan, schema, 64);

    let budgeted =
        BudgetedPrefilter::new(server.plan().prefilter(), Budget::per_record_micros(0.0))
            .with_check_interval(1)
            .with_slack(1.0);
    let mut stats = ClientStats::default();
    for sub in chunk.split(64) {
        let filter = budgeted.run_chunk(&sub, &mut stats);
        server.ingest(&sub, &filter);
    }
    server.finalize();
    assert!(
        stats.degraded_chunks > 0,
        "degradation should have triggered"
    );

    let out = server.execute(&queries[0]);
    assert_eq!(out.count, 80, "degraded bits must not change the answer");
}

#[test]
fn loader_rejects_desynchronized_bitvectors() {
    let schema = Arc::new(Schema::infer(&[ciao_json::parse(r#"{"a":1}"#).unwrap()]).unwrap());
    let pattern = compile_clause(&parse_clause("a = 1").unwrap()).unwrap();
    let pf = Prefilter::new([(0, pattern)]);
    let short = RecordChunk::from_records(&[r#"{"a":1}"#]).unwrap();
    let long = RecordChunk::from_records(&[r#"{"a":1}"#, r#"{"a":2}"#]).unwrap();
    let filter = pf.run_chunk(&short);
    let mut loader = Loader::new(schema, &[0], AdmissionPolicy::from_coverage(&[vec![0]]), 16);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        loader.load_chunk(&long, &filter);
    }));
    assert!(result.is_err(), "framing desync must fail loudly");
}

#[test]
fn all_garbage_chunk_is_fully_parked() {
    let schema = Arc::new(Schema::infer(&[ciao_json::parse(r#"{"a":1}"#).unwrap()]).unwrap());
    let chunk = RecordChunk::from_records(&["garbage", "also garbage {"]).unwrap();
    let filter = Prefilter::new([]).run_chunk(&chunk);
    let mut loader = Loader::new(schema, &[], AdmissionPolicy::LoadAll, 16);
    loader.load_chunk(&chunk, &filter);
    let (table, parked, stats) = loader.finish();
    assert_eq!(table.row_count(), 0);
    assert_eq!(parked.len(), 2);
    assert_eq!(stats.parse_errors, 2);
}

#[test]
fn queries_over_empty_server_return_zero() {
    let queries = vec![parse_query("q", "stars = 5").unwrap()];
    let sample = vec![ciao_json::parse(r#"{"stars":1}"#).unwrap()];
    let plan =
        PushdownPlan::build(&queries, &sample, &CostModel::default_uncalibrated(), 1.0).unwrap();
    let schema = Arc::new(Schema::infer(&sample).unwrap());
    let mut server = Server::new(plan, schema, 16);
    server.finalize();
    assert_eq!(server.execute(&queries[0]).count, 0);
}

// ---------------------------------------------------------------------
// Storage fault injection: damage the on-disk state between two lives
// of a durable service and require graceful degradation — every intact
// prefix recovered, every degradation surfaced in the recovery report,
// never a panic, never a wrong count over what survived.
// ---------------------------------------------------------------------

mod storage_faults {
    use crate::support::{self, chunk, CHUNK_RECORDS};
    use ciao_service::{Service, ServiceConfig, StorageConfig};
    use ciao_storage::{list_snapshots, manifest::MANIFEST_FILE, ScratchDir};
    use std::fs::OpenOptions;
    use std::path::{Path, PathBuf};

    const SHARDS: usize = 2;

    /// A deterministic durable service over the shared fixture: no
    /// worker threads, explicit drains, `SyncPolicy::Always` (the
    /// `StorageConfig` default).
    fn durable(dir: &Path) -> Service {
        let (plan, schema) = support::plan_and_schema();
        Service::start(
            plan,
            schema,
            ServiceConfig::default()
                .with_shards(SHARDS)
                .with_workers(0)
                .with_storage(StorageConfig::new(dir)),
        )
    }

    fn feed(service: &Service, range: std::ops::Range<u64>) {
        let prefilter = service.prefilter();
        for i in range {
            let c = chunk(i);
            let filter = prefilter.run_chunk(&c);
            assert!(service.enqueue(c, filter).is_enqueued());
            service.drain();
        }
    }

    /// Recover from `dir` and require the service to hold exactly the
    /// dense chunk prefix `[0, expected_next_seq)` with oracle-equal
    /// answers.
    fn assert_recovers_prefix(dir: &Path, expected_next_seq: u64) -> Service {
        let recovered = durable(dir);
        let next_seq = recovered.metrics().accepted_chunks;
        assert_eq!(next_seq, expected_next_seq, "recovered sequence line");
        assert_eq!(
            recovered.metrics().load().total() as u64,
            next_seq * CHUNK_RECORDS,
            "recovered prefix is not dense"
        );
        let (counts, _) = support::crash::oracle(SHARDS, next_seq);
        for (q, expected) in support::queries().iter().zip(counts) {
            assert_eq!(
                recovered.query(q).count,
                expected,
                "query {} diverged after fault recovery",
                q.name
            );
        }
        recovered
    }

    /// Newest WAL segment in `dir` (the one holding the tail).
    fn newest_wal_segment(dir: &Path) -> PathBuf {
        let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                let name = p.file_name().unwrap().to_string_lossy();
                name.starts_with("wal-") && name.ends_with(".log")
            })
            .collect();
        segments.sort();
        segments.pop().expect("a WAL segment exists")
    }

    fn flip_byte(path: &Path, offset: usize) {
        let mut bytes = std::fs::read(path).unwrap();
        bytes[offset] ^= 0xFF;
        std::fs::write(path, bytes).unwrap();
    }

    #[test]
    fn torn_wal_tail_drops_only_the_torn_record() {
        let scratch = ScratchDir::new("fault-torn");
        {
            let service = durable(scratch.path());
            feed(&service, 0..12);
            drop(service); // no shutdown: no checkpoint, WAL holds everything
        }
        // Cut into the final frame, as a crash mid-append would.
        let segment = newest_wal_segment(scratch.path());
        let len = std::fs::metadata(&segment).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&segment)
            .unwrap()
            .set_len(len - 5)
            .unwrap();

        let recovered = assert_recovers_prefix(scratch.path(), 11);
        let report = recovered.recovery_report().unwrap();
        assert!(!report.clean(), "a torn tail must be surfaced");
        assert!(report.wal_corruption.is_some());
        assert!(report.wal_dropped_bytes > 0);
        recovered.shutdown();
    }

    #[test]
    fn torn_wal_tail_is_repaired_so_a_second_crash_loses_nothing() {
        let scratch = ScratchDir::new("fault-torn-twice");
        {
            let service = durable(scratch.path());
            feed(&service, 0..12);
            drop(service);
        }
        let segment = newest_wal_segment(scratch.path());
        let len = std::fs::metadata(&segment).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&segment)
            .unwrap()
            .set_len(len - 5)
            .unwrap();

        // First recovery drops the torn record AND truncates the
        // damage out of the segment; the resumed life appends past it.
        {
            let recovered = assert_recovers_prefix(scratch.path(), 11);
            assert!(recovered
                .recovery_report()
                .unwrap()
                .wal_corruption
                .is_some());
            feed(&recovered, 11..18);
            drop(recovered); // crash again: no checkpoint, WAL is all there is
        }
        // Second recovery must replay both lives cleanly. Without the
        // repair, replay would stop at the old tear and lose every
        // chunk the second life acked.
        let recovered = assert_recovers_prefix(scratch.path(), 18);
        let report = recovered.recovery_report().unwrap();
        assert!(
            report.wal_corruption.is_none(),
            "the first recovery's repair left a clean log: {report:?}"
        );
        recovered.shutdown();
    }

    #[test]
    fn flipped_wal_byte_recovers_the_intact_prefix() {
        const CHUNKS: u64 = 16;
        let scratch = ScratchDir::new("fault-flip");
        {
            let service = durable(scratch.path());
            feed(&service, 0..CHUNKS);
            drop(service);
        }
        // Flip one byte mid-segment: replay must stop at the broken
        // frame (checksum or framing, whichever the byte lands in) and
        // keep every record before it.
        let segment = newest_wal_segment(scratch.path());
        let len = std::fs::metadata(&segment).unwrap().len() as usize;
        flip_byte(&segment, len / 2);

        let recovered = durable(scratch.path());
        let report = recovered.recovery_report().unwrap().clone();
        assert!(!report.clean());
        assert!(report.wal_corruption.is_some());
        assert!(report.wal_dropped_bytes > 0);
        let next_seq = recovered.metrics().accepted_chunks;
        assert!(
            (1..CHUNKS).contains(&next_seq),
            "a mid-file flip keeps a proper, non-empty prefix (got {next_seq})"
        );
        drop(recovered);
        assert_recovers_prefix(scratch.path(), next_seq).shutdown();
    }

    #[test]
    fn deleted_newest_snapshots_fall_back_a_generation() {
        let scratch = ScratchDir::new("fault-snap");
        {
            let service = durable(scratch.path());
            feed(&service, 0..6);
            assert!(service.checkpoint().is_some()); // generation 1
            feed(&service, 6..12);
            assert!(service.checkpoint().is_some()); // generation 2
            feed(&service, 12..15); // WAL tail past the last checkpoint
            drop(service);
        }
        // Delete the newest snapshot of every shard. Retention keeps
        // two generations and truncates the WAL only below the oldest
        // retained ceiling, so the previous generation plus the
        // surviving log must still reconstruct everything.
        let snapshots = list_snapshots(scratch.path()).unwrap();
        for shard in 0..SHARDS as u32 {
            let newest = snapshots
                .iter()
                .rfind(|s| s.shard == shard)
                .expect("two generations on disk");
            std::fs::remove_file(&newest.path).unwrap();
        }

        let recovered = assert_recovers_prefix(scratch.path(), 15);
        let report = recovered.recovery_report().unwrap();
        assert!(!report.clean());
        assert_eq!(
            report.snapshot_fallbacks, SHARDS,
            "every shard fell back one generation"
        );
        recovered.shutdown();
    }

    #[test]
    fn corrupt_manifest_degrades_to_directory_scan() {
        let scratch = ScratchDir::new("fault-manifest");
        {
            let service = durable(scratch.path());
            feed(&service, 0..10);
            assert!(service.checkpoint().is_some());
            feed(&service, 10..13);
            drop(service);
        }
        flip_byte(&scratch.path().join(MANIFEST_FILE), 10);

        let recovered = assert_recovers_prefix(scratch.path(), 13);
        let report = recovered.recovery_report().unwrap();
        assert!(!report.manifest_ok, "manifest corruption must be noticed");
        assert!(!report.clean());
        recovered.shutdown();
    }
}
