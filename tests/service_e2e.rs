//! End-to-end service guarantees: a sharded, multi-threaded
//! `ciao_service::Service` must be observationally identical to one
//! single-threaded `ciao::Server` over the same records — for every
//! shard count, before and after compaction, and under concurrent
//! producers.

use ciao::{PushdownPlan, Server};
use ciao_columnar::Schema;
use ciao_datagen::Dataset;
use ciao_json::RecordChunk;
use ciao_optimizer::CostModel;
use ciao_predicate::{parse_query, Query};
use ciao_service::{CompactionPolicy, EnqueueResult, Service, ServiceConfig};
use std::sync::Arc;

const RECORDS: usize = 3_000;
const SEED: u64 = 77;
const CHUNK: usize = 128;

struct Fixture {
    plan: PushdownPlan,
    schema: Arc<Schema>,
    chunks: Vec<RecordChunk>,
    queries: Vec<Query>,
}

/// YCSB records with a plan that pushes some clauses (so partial
/// loading actually parks rows) while q2 stays uncovered (so queries
/// exercise the parked path too).
fn fixture() -> Fixture {
    let records = Dataset::Ycsb.generate(SEED, RECORDS);
    let ndjson = Dataset::Ycsb.generate_ndjson(SEED, RECORDS);
    let queries = vec![
        parse_query("q0", "isActive = true").unwrap(),
        parse_query("q1", r#"age_group = "senior" AND isActive = true"#).unwrap(),
        parse_query("q2", "linear_score = 42").unwrap(),
    ];
    let sample: Vec<_> = records.iter().take(500).cloned().collect();
    let plan =
        PushdownPlan::build(&queries, &sample, &CostModel::default_uncalibrated(), 30.0).unwrap();
    let schema = Arc::new(Schema::infer(&sample).unwrap());
    let chunks = RecordChunk::from_ndjson(&ndjson).split(CHUNK);
    Fixture {
        plan,
        schema,
        chunks,
        queries,
    }
}

/// The single-threaded ground truth: one `Server`, same plan, same
/// chunks.
fn baseline(f: &Fixture) -> Vec<usize> {
    let mut server = Server::new(f.plan.clone(), Arc::clone(&f.schema), 1024);
    let prefilter = server.plan().prefilter();
    for chunk in &f.chunks {
        let filter = prefilter.run_chunk(chunk);
        server.ingest(chunk, &filter);
    }
    server.finalize();
    f.queries.iter().map(|q| server.execute(q).count).collect()
}

#[test]
fn shard_count_invariance() {
    let f = fixture();
    let truth = baseline(&f);
    assert!(truth.iter().any(|&c| c > 0), "fixture queries must hit");

    for shards in [1, 2, 4] {
        let service = Service::start(
            f.plan.clone(),
            Arc::clone(&f.schema),
            ServiceConfig::default()
                .with_shards(shards)
                .with_workers(shards),
        );
        let prefilter = service.prefilter();
        for chunk in &f.chunks {
            let filter = prefilter.run_chunk(chunk);
            assert!(service.enqueue_wait(chunk.clone(), filter).is_enqueued());
        }
        for (q, &expected) in f.queries.iter().zip(&truth) {
            let out = service.query(q);
            assert_eq!(
                out.count, expected,
                "{} diverged at {shards} shards",
                q.name
            );
        }
        let metrics = service.shutdown();
        assert_eq!(metrics.load().total(), RECORDS);
        assert_eq!(metrics.shards.len(), shards);
    }
}

#[test]
fn compaction_ticks_shrink_parked_ratio_and_preserve_answers() {
    let f = fixture();
    let truth = baseline(&f);
    let service = Service::start(
        f.plan.clone(),
        Arc::clone(&f.schema),
        ServiceConfig::default()
            .with_shards(4)
            .with_workers(2)
            // Small batches force several ticks, each of which must
            // make strictly-decreasing progress.
            .with_compaction(CompactionPolicy::default().with_batch(64)),
    );
    for chunk in &f.chunks {
        assert!(service
            .enqueue_wait(chunk.clone(), service.prefilter().run_chunk(chunk))
            .is_enqueued());
    }
    service.drain();
    let mut ratio = service.metrics().parked_ratio();
    assert!(
        ratio > 0.0,
        "fixture must park rows for compaction to matter"
    );

    let mut ticks = 0;
    while service.metrics().parked() > 0 {
        let delta = service.compact();
        assert!(
            delta.promoted > 0,
            "every tick over a parked backlog promotes"
        );
        let next = service.metrics().parked_ratio();
        assert!(next < ratio, "tick {ticks} did not shrink the parked ratio");
        ratio = next;
        ticks += 1;
        assert!(ticks <= 64, "compaction failed to converge");
        // Results stay identical mid-compaction, not just at the end.
        for (q, &expected) in f.queries.iter().zip(&truth) {
            assert_eq!(service.query(q).count, expected, "{} after tick", q.name);
        }
    }
    assert!(ticks > 1, "batch size should force multiple ticks");
    let metrics = service.shutdown();
    assert_eq!(metrics.parked(), 0);
    assert_eq!(metrics.compaction().promoted, metrics.load().parked_records);
}

#[test]
fn backpressure_queue_full_then_successful_drain() {
    let f = fixture();
    // No workers: nothing drains until we say so.
    let service = Service::start(
        f.plan.clone(),
        Arc::clone(&f.schema),
        ServiceConfig::default()
            .with_shards(2)
            .with_workers(0)
            .with_queue_capacity(3),
    );
    let prefilter = service.prefilter();
    let filters: Vec<_> = f.chunks.iter().map(|c| prefilter.run_chunk(c)).collect();

    // Fill the bounded queue...
    for i in 0..3 {
        assert!(service
            .enqueue(f.chunks[i].clone(), filters[i].clone())
            .is_enqueued());
    }
    // ...observe backpressure...
    assert_eq!(
        service.enqueue(f.chunks[3].clone(), filters[3].clone()),
        EnqueueResult::QueueFull { capacity: 3 }
    );
    assert_eq!(service.metrics().queue_depth, 3);
    assert_eq!(service.metrics().rejected_chunks, 1);

    // ...drain, and the refused chunk now goes through.
    service.drain();
    assert_eq!(service.metrics().queue_depth, 0);
    assert!(service
        .enqueue(f.chunks[3].clone(), filters[3].clone())
        .is_enqueued());
    for (chunk, filter) in f.chunks.iter().zip(&filters).skip(4) {
        assert!(service.enqueue(chunk.clone(), filter.clone()).is_enqueued());
        service.drain();
    }
    service.drain();

    let truth = baseline(&f);
    for (q, &expected) in f.queries.iter().zip(&truth) {
        assert_eq!(service.query(q).count, expected, "{} after refill", q.name);
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.ingested_chunks, f.chunks.len() as u64);
    assert_eq!(metrics.rejected_chunks, 1);
}

/// Deterministic stress: many producer threads race many ingest
/// workers through a small bounded queue (so backpressure paths run),
/// with compaction ticks interleaved — and the merged answers still
/// equal the single-threaded baseline. Fixed seed; counts are
/// insensitive to interleaving by construction, which is exactly the
/// invariant under test.
#[test]
fn concurrent_producers_stress_matches_baseline() {
    const PRODUCERS: usize = 8;
    let f = fixture();
    let truth = baseline(&f);
    let service = Service::start(
        f.plan.clone(),
        Arc::clone(&f.schema),
        ServiceConfig::default()
            .with_shards(4)
            .with_workers(4)
            .with_queue_capacity(4),
    );
    let prefilter = service.prefilter();

    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let service = &service;
            let prefilter = &prefilter;
            let chunks = &f.chunks;
            scope.spawn(move || {
                // Producer p ships every PRODUCERS-th chunk.
                for chunk in chunks.iter().skip(p).step_by(PRODUCERS) {
                    let filter = prefilter.run_chunk(chunk);
                    assert!(service.enqueue_wait(chunk.clone(), filter).is_enqueued());
                }
            });
        }
        // A maintenance thread ticks compaction while ingest races.
        let service = &service;
        scope.spawn(move || {
            for _ in 0..16 {
                let _ = service.compact();
                std::thread::yield_now();
            }
        });
    });

    for (q, &expected) in f.queries.iter().zip(&truth) {
        assert_eq!(service.query(q).count, expected, "{} under stress", q.name);
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.ingested_records as usize, RECORDS);
    assert_eq!(metrics.rejected_chunks, 0, "enqueue_wait never rejects");
}

#[test]
fn telemetry_snapshot_is_consistent_and_json_exports_parse() {
    let f = fixture();
    let service = Service::start(
        f.plan.clone(),
        Arc::clone(&f.schema),
        ServiceConfig::default().with_shards(2).with_workers(2),
    );
    let prefilter = service.prefilter();
    for chunk in &f.chunks {
        let filter = prefilter.run_chunk(chunk);
        assert!(service.enqueue_wait(chunk.clone(), filter).is_enqueued());
    }
    for q in &f.queries {
        service.query(q);
    }
    service.compact();

    let t = service.telemetry().expect("telemetry on by default");
    assert_eq!(
        t.ingest_ack_merged().count() as usize,
        f.chunks.len(),
        "every ingested chunk recorded an ack latency"
    );
    assert_eq!(t.query.count() as usize, f.queries.len());
    assert!(t.query.p99() >= t.query.p50());

    let metrics = service.metrics();
    assert_eq!(
        metrics.sealed_epochs() as u64,
        t.snapshot()
            .counter(ciao_service::telemetry::names::EPOCHS_SEALED_TOTAL)
            .unwrap(),
        "snapshot counter agrees with per-shard sealed counts"
    );
    assert!(metrics.sealed_blocks() > 0);

    // Both exports must be machine-readable: JSON through the strict
    // oracle parser, Prometheus text by line shape.
    let snap = service.telemetry_snapshot().unwrap();
    let json: serde_json::Value =
        serde_json::from_str(&snap.to_json()).expect("snapshot JSON is strict RFC 8259");
    let histograms = json.get("histograms").unwrap().as_object().unwrap();
    let query_series = histograms
        .get(ciao_service::telemetry::names::QUERY_NS)
        .expect("query latency series exported");
    assert_eq!(
        query_series.get("count").unwrap().as_i64().unwrap() as usize,
        f.queries.len()
    );
    for line in snap.prometheus_text().lines() {
        assert!(
            line.starts_with('#') || line.contains(' '),
            "malformed exposition line: {line}"
        );
    }
    service.shutdown();
}
