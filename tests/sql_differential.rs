//! Differential suite: the predicate parser shim (now a thin layer
//! over the `ciao_sql` lexer/parser) must agree with the seed parser
//! it replaced. The `legacy` module below is a verbatim copy of the
//! pre-SQL `crates/predicate/src/parser.rs`; every corpus string the
//! legacy parser accepts must parse to the identical clause list
//! through the shim, and a list of malformed inputs must be rejected
//! by both. (The shim's grammar is a superset — `<=`, `>=` and `--`
//! comments are new — so only legacy-accepted strings are compared.)

use ciao_datagen::Dataset;
use ciao_predicate::Clause;

/// The seed predicate parser, copied from the pre-SQL
/// `crates/predicate/src/parser.rs` with only the AST imports
/// rewritten to go through the public crate API.
mod legacy {
    use ciao_predicate::{Clause, SimplePredicate};

    /// Parse failure with byte offset into the predicate text.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct PredicateParseError {
        /// Byte offset of the offending token.
        pub offset: usize,
        /// Human-readable description.
        pub message: String,
    }

    impl std::fmt::Display for PredicateParseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "predicate parse error at byte {}: {}",
                self.offset, self.message
            )
        }
    }

    impl std::error::Error for PredicateParseError {}

    #[derive(Debug, Clone, PartialEq)]
    enum Token {
        Ident(String),
        Str(String),
        Int(i64),
        Float(f64),
        Eq,
        Neq,
        Lt,
        Gt,
        LParen,
        RParen,
        Comma,
    }

    struct Lexer<'a> {
        input: &'a str,
        pos: usize,
    }

    impl<'a> Lexer<'a> {
        fn err(&self, message: impl Into<String>) -> PredicateParseError {
            PredicateParseError {
                offset: self.pos,
                message: message.into(),
            }
        }

        fn tokens(mut self) -> Result<Vec<(usize, Token)>, PredicateParseError> {
            let mut out = Vec::new();
            let bytes = self.input.as_bytes();
            while self.pos < bytes.len() {
                let start = self.pos;
                let b = bytes[self.pos];
                match b {
                    b' ' | b'\t' | b'\n' | b'\r' => {
                        self.pos += 1;
                    }
                    b'(' => {
                        out.push((start, Token::LParen));
                        self.pos += 1;
                    }
                    b')' => {
                        out.push((start, Token::RParen));
                        self.pos += 1;
                    }
                    b',' => {
                        out.push((start, Token::Comma));
                        self.pos += 1;
                    }
                    b'=' => {
                        out.push((start, Token::Eq));
                        self.pos += 1;
                    }
                    b'<' => {
                        out.push((start, Token::Lt));
                        self.pos += 1;
                    }
                    b'>' => {
                        out.push((start, Token::Gt));
                        self.pos += 1;
                    }
                    b'!' => {
                        if bytes.get(self.pos + 1) == Some(&b'=') {
                            out.push((start, Token::Neq));
                            self.pos += 2;
                        } else {
                            return Err(self.err("expected `!=`"));
                        }
                    }
                    b'"' | b'\'' => {
                        let quote = b;
                        self.pos += 1;
                        let content_start = self.pos;
                        while self.pos < bytes.len() && bytes[self.pos] != quote {
                            self.pos += 1;
                        }
                        if self.pos == bytes.len() {
                            return Err(self.err("unterminated string literal"));
                        }
                        out.push((
                            start,
                            Token::Str(self.input[content_start..self.pos].to_owned()),
                        ));
                        self.pos += 1;
                    }
                    b'-' | b'0'..=b'9' => {
                        let num_start = self.pos;
                        self.pos += 1;
                        while self.pos < bytes.len()
                            && matches!(
                                bytes[self.pos],
                                b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'
                            )
                        {
                            // Stop `-` from being consumed as part of a second number.
                            if matches!(bytes[self.pos], b'+' | b'-')
                                && !matches!(bytes[self.pos - 1], b'e' | b'E')
                            {
                                break;
                            }
                            self.pos += 1;
                        }
                        let text = &self.input[num_start..self.pos];
                        if let Ok(i) = text.parse::<i64>() {
                            out.push((num_start, Token::Int(i)));
                        } else if let Ok(f) = text.parse::<f64>() {
                            out.push((num_start, Token::Float(f)));
                        } else {
                            return Err(PredicateParseError {
                                offset: num_start,
                                message: format!("malformed number `{text}`"),
                            });
                        }
                    }
                    c if c.is_ascii_alphabetic() || c == b'_' => {
                        while self.pos < bytes.len()
                            && (bytes[self.pos].is_ascii_alphanumeric()
                                || matches!(bytes[self.pos], b'_' | b'.'))
                        {
                            self.pos += 1;
                        }
                        out.push((start, Token::Ident(self.input[start..self.pos].to_owned())));
                    }
                    other => {
                        return Err(self.err(format!("unexpected character `{}`", other as char)));
                    }
                }
            }
            Ok(out)
        }
    }

    struct TokenStream {
        tokens: Vec<(usize, Token)>,
        idx: usize,
        input_len: usize,
    }

    impl TokenStream {
        fn peek(&self) -> Option<&Token> {
            self.tokens.get(self.idx).map(|(_, t)| t)
        }

        fn offset(&self) -> usize {
            self.tokens
                .get(self.idx)
                .map_or(self.input_len, |(o, _)| *o)
        }

        fn next(&mut self) -> Option<Token> {
            let t = self.tokens.get(self.idx).map(|(_, t)| t.clone());
            if t.is_some() {
                self.idx += 1;
            }
            t
        }

        fn err(&self, message: impl Into<String>) -> PredicateParseError {
            PredicateParseError {
                offset: self.offset(),
                message: message.into(),
            }
        }

        fn expect_ident_kw(&mut self, kw: &str) -> Result<(), PredicateParseError> {
            match self.next() {
                Some(Token::Ident(w)) if w.eq_ignore_ascii_case(kw) => Ok(()),
                _ => Err(self.err(format!("expected keyword `{kw}`"))),
            }
        }

        fn peek_is_kw(&self, kw: &str) -> bool {
            matches!(self.peek(), Some(Token::Ident(w)) if w.eq_ignore_ascii_case(kw))
        }
    }

    /// Parses a full `WHERE` body into its conjunctive clauses.
    pub fn parse_where(input: &str) -> Result<Vec<Clause>, PredicateParseError> {
        let tokens = Lexer { input, pos: 0 }.tokens()?;
        let mut ts = TokenStream {
            tokens,
            idx: 0,
            input_len: input.len(),
        };
        let mut clauses = vec![parse_clause_inner(&mut ts)?];
        while ts.peek_is_kw("and") {
            ts.next();
            clauses.push(parse_clause_inner(&mut ts)?);
        }
        if ts.peek().is_some() {
            return Err(ts.err("trailing input after predicates"));
        }
        Ok(clauses)
    }

    fn parse_clause_inner(ts: &mut TokenStream) -> Result<Clause, PredicateParseError> {
        if ts.peek() == Some(&Token::LParen) {
            ts.next();
            let mut disjuncts = vec![parse_simple(ts)?];
            while ts.peek_is_kw("or") {
                ts.next();
                disjuncts.push(parse_simple(ts)?);
            }
            match ts.next() {
                Some(Token::RParen) => Ok(Clause::new(disjuncts)),
                _ => Err(ts.err("expected `)` to close disjunction")),
            }
        } else {
            // Could be `key IN (...)` which desugars to a disjunction.
            parse_simple_or_in(ts)
        }
    }

    fn parse_simple_or_in(ts: &mut TokenStream) -> Result<Clause, PredicateParseError> {
        // Look ahead: key IN '(' ... ')'
        let save = ts.idx;
        if let Some(Token::Ident(key)) = ts.next() {
            if ts.peek_is_kw("in") {
                ts.next();
                if ts.next() != Some(Token::LParen) {
                    return Err(ts.err("expected `(` after IN"));
                }
                let mut disjuncts = Vec::new();
                loop {
                    let p = match ts.next() {
                        Some(Token::Str(s)) => SimplePredicate::StrEq {
                            key: key.clone(),
                            value: s,
                        },
                        Some(Token::Int(i)) => SimplePredicate::IntEq {
                            key: key.clone(),
                            value: i,
                        },
                        _ => return Err(ts.err("expected string or integer literal in IN list")),
                    };
                    disjuncts.push(p);
                    match ts.next() {
                        Some(Token::Comma) => continue,
                        Some(Token::RParen) => break,
                        _ => return Err(ts.err("expected `,` or `)` in IN list")),
                    }
                }
                return Ok(Clause::new(disjuncts));
            }
        }
        ts.idx = save;
        Ok(Clause::single(parse_simple(ts)?))
    }

    fn parse_simple(ts: &mut TokenStream) -> Result<SimplePredicate, PredicateParseError> {
        let key = match ts.next() {
            Some(Token::Ident(k)) => k,
            _ => return Err(ts.err("expected a key identifier")),
        };
        match ts.next() {
            Some(Token::Eq) => match ts.next() {
                Some(Token::Str(s)) => Ok(SimplePredicate::StrEq { key, value: s }),
                Some(Token::Int(i)) => Ok(SimplePredicate::IntEq { key, value: i }),
                Some(Token::Float(x)) => Ok(SimplePredicate::FloatEq { key, value: x }),
                Some(Token::Ident(w)) if w.eq_ignore_ascii_case("true") => {
                    Ok(SimplePredicate::BoolEq { key, value: true })
                }
                Some(Token::Ident(w)) if w.eq_ignore_ascii_case("false") => {
                    Ok(SimplePredicate::BoolEq { key, value: false })
                }
                _ => Err(ts.err("expected literal after `=`")),
            },
            Some(Token::Neq) => match ts.next() {
                Some(Token::Ident(w)) if w.eq_ignore_ascii_case("null") => {
                    Ok(SimplePredicate::NotNull { key })
                }
                _ => Err(ts.err("only `!= NULL` is supported after `!=`")),
            },
            Some(Token::Lt) => match ts.next() {
                Some(Token::Int(i)) => Ok(SimplePredicate::IntLt { key, value: i }),
                _ => Err(ts.err("expected integer after `<`")),
            },
            Some(Token::Gt) => match ts.next() {
                Some(Token::Int(i)) => Ok(SimplePredicate::IntGt { key, value: i }),
                _ => Err(ts.err("expected integer after `>`")),
            },
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case("like") => match ts.next() {
                Some(Token::Str(s)) => {
                    let needle = s
                        .strip_prefix('%')
                        .and_then(|s| s.strip_suffix('%'))
                        .ok_or_else(|| ts.err("LIKE pattern must be \"%needle%\""))?;
                    if needle.contains('%') || needle.is_empty() {
                        return Err(
                            ts.err("LIKE pattern must be \"%needle%\" with a non-empty needle")
                        );
                    }
                    Ok(SimplePredicate::StrContains {
                        key,
                        needle: needle.to_owned(),
                    })
                }
                _ => Err(ts.err("expected string pattern after LIKE")),
            },
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case("is") => {
                ts.expect_ident_kw("not")?;
                ts.expect_ident_kw("null")?;
                Ok(SimplePredicate::NotNull { key })
            }
            _ => Err(ts.err("expected an operator (=, !=, <, >, LIKE, IS NOT NULL, IN)")),
        }
    }
}

/// Every string here is accepted by the seed parser; the shim must
/// produce the identical clause list for each.
const HANDWRITTEN: &[&str] = &[
    r#"name = "Bob""#,
    "name = 'Bob'",
    "age = 10",
    "score = 2.5",
    "score = -1.5",
    "n = -42",
    "rate = 1e3",
    "isActive = true",
    "isActive = FALSE",
    "email != NULL",
    "email != null",
    "email IS NOT NULL",
    "email is not null",
    r#"text LIKE "%delicious%""#,
    "text like '%good%'",
    "age < 30",
    "age > 18",
    r#"city IN ("Boston", "Denver")"#,
    "stars IN (1, 2, 3)",
    r#"(name = "a" OR name = "b")"#,
    "(stars = 1 OR stars = 2 OR active = true)",
    r#"name = "Bob" AND age = 20"#,
    r#"a = 1 AND (b = "x" OR b = "y") AND c IS NOT NULL AND d LIKE "%z%""#,
    r#"address.city = "Chicago""#,
    "a_b = 1",
    "  spaced   =   7  ",
];

/// Malformed inputs both parsers must reject (the seed parser's own
/// rejection list).
const MALFORMED: &[&str] = &[
    "",
    "= 1",
    "a =",
    "a != 5",
    "a LIKE \"no-wildcards\"",
    "a LIKE \"%%\"",
    "a LIKE \"%x%y%\"",
    "a IN ()",
    "a IN (true)",
    "(a = 1",
    "a = 1 AND",
    "a = 1 extra",
    "a < 1.5",
    "a IS NULL",
    "\"unterminated",
];

fn assert_agree(text: &str) {
    let old =
        legacy::parse_where(text).unwrap_or_else(|e| panic!("seed parser rejected {text:?}: {e}"));
    let new =
        ciao_predicate::parse_where(text).unwrap_or_else(|e| panic!("shim rejected {text:?}: {e}"));
    assert_eq!(old, new, "parsers diverged on {text:?}");
}

#[test]
fn handwritten_corpus_parses_identically() {
    for text in HANDWRITTEN {
        assert_agree(text);
    }
}

#[test]
fn workload_pool_clauses_round_trip_identically() {
    for dataset in [Dataset::Yelp, Dataset::WinLog, Dataset::Ycsb] {
        let pool = ciao_workload::pool::build_pool(dataset);
        assert!(!pool.is_empty());
        // Each pool clause rendered back to predicate text must parse
        // identically through both parsers, and round-trip to itself.
        for clause in &pool.clauses {
            let text = clause.to_string();
            assert_agree(&text);
            assert_eq!(
                ciao_predicate::parse_where(&text).unwrap(),
                vec![clause.clone()],
                "round trip changed {text:?}"
            );
        }
        // Conjunctions and synthesized disjunctions over pool clauses.
        let conjunction = pool.clauses[..4.min(pool.len())]
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" AND ");
        assert_agree(&conjunction);
        let eq_only: Vec<_> = pool
            .clauses
            .iter()
            .flat_map(|c| c.disjuncts().iter().cloned())
            .filter(|p| {
                matches!(
                    p,
                    ciao_predicate::SimplePredicate::IntEq { .. }
                        | ciao_predicate::SimplePredicate::StrEq { .. }
                )
            })
            .take(6)
            .collect();
        if eq_only.len() >= 2 {
            let disjunction = Clause::new(eq_only).to_string();
            assert_agree(&disjunction);
        }
    }
}

#[test]
fn both_parsers_reject_malformed_inputs() {
    for text in MALFORMED {
        assert!(
            legacy::parse_where(text).is_err(),
            "seed parser accepted {text:?}"
        );
        assert!(
            ciao_predicate::parse_where(text).is_err(),
            "shim accepted {text:?}"
        );
    }
}
