//! Persistence: the partially loaded columnar state (including its
//! bitvector metadata) must survive a serialize/deserialize cycle with
//! identical query results — the "Parquet file on disk" path — and the
//! disk-touching tests must each own a unique, self-cleaning directory
//! (a fixed path collides the moment two test binaries run at once).

use ciao::{CiaoConfig, PushdownPlan, Server};
use ciao_columnar::{read_table, write_table, Schema};
use ciao_datagen::Dataset;
use ciao_engine::Executor;
use ciao_json::RecordChunk;
use ciao_predicate::parse_query;
use ciao_storage::{read_snapshot, write_snapshot, ScratchDir, ShardSnapshot};
use ciao_workload::{build_pool, WorkloadConfig};
use std::sync::Arc;

/// A finalized server over 2k Yelp records with a 10-query workload —
/// the loaded state every roundtrip test persists and reloads.
fn loaded_server() -> (Server, Vec<ciao_predicate::Query>) {
    let ndjson = Dataset::Yelp.generate_ndjson(31, 2_000);
    let all = RecordChunk::from_ndjson(&ndjson);
    let sample: Vec<_> = all
        .iter()
        .take(500)
        .filter_map(|r| ciao_json::parse(r).ok())
        .collect();
    let pool = build_pool(Dataset::Yelp);
    let mut cfg = WorkloadConfig::workload_a(Dataset::Yelp, 17);
    cfg.queries = 10;
    let queries = cfg.generate(&pool);

    let config = CiaoConfig::default();
    let plan = PushdownPlan::build(&queries, &sample, &config.cost_model, 20.0).unwrap();
    let schema = Arc::new(Schema::infer(&sample).unwrap());
    let mut server = Server::new(plan, schema, config.block_size);
    let prefilter = server.plan().prefilter();
    for chunk in all.split(config.chunk_size) {
        let filter = prefilter.run_chunk(&chunk);
        server.ingest(&chunk, &filter);
    }
    server.finalize();
    (server, queries)
}

#[test]
fn loaded_state_roundtrips_through_bytes() {
    let (server, queries) = loaded_server();

    // Serialize the columnar side, read it back, and re-attach an
    // executor with the same registry.
    let bytes = write_table(server.table());
    let reloaded = read_table(&bytes).expect("roundtrip");
    assert_eq!(reloaded.row_count(), server.table().row_count());

    let executor = Executor::new(
        server
            .plan()
            .predicates
            .iter()
            .map(|p| (p.clause.clone(), p.id)),
    );
    let parked: Vec<String> = server.parked().to_vec();
    for q in &queries {
        let live = server.execute(q);
        let disk = executor.execute_count(&reloaded, &parked, q);
        assert_eq!(
            live.count, disk.count,
            "query {} diverged after reload",
            q.name
        );
        assert_eq!(
            live.metrics.used_skipping, disk.metrics.used_skipping,
            "skipping decision diverged after reload"
        );
    }
}

#[test]
fn loaded_state_roundtrips_through_a_file_on_disk() {
    // The same roundtrip through an actual file — in a per-test unique
    // scratch directory. A fixed path here would collide the moment two
    // test binaries (or two parallel tests) persist at once; this test
    // also pins that the directory cleans up after itself.
    let (server, queries) = loaded_server();
    let scratch = ScratchDir::new("persist-table");
    let path = scratch.path().join("table.bin");
    std::fs::write(&path, write_table(server.table())).unwrap();
    let reloaded = read_table(&std::fs::read(&path).unwrap()).expect("disk roundtrip");
    assert_eq!(reloaded.row_count(), server.table().row_count());

    let executor = Executor::new(
        server
            .plan()
            .predicates
            .iter()
            .map(|p| (p.clause.clone(), p.id)),
    );
    let parked: Vec<String> = server.parked().to_vec();
    for q in &queries {
        assert_eq!(
            server.execute(q).count,
            executor.execute_count(&reloaded, &parked, q).count,
            "query {} diverged after file reload",
            q.name
        );
    }

    let dir = scratch.path().to_path_buf();
    drop(scratch);
    assert!(!dir.exists(), "scratch dir must remove itself on drop");
}

#[test]
fn shard_snapshot_roundtrips_on_disk() {
    // The storage layer's snapshot file must carry a real loaded state
    // (blocks, bitvector metadata, parked rows) bit-for-bit, with the
    // (shard, epochs, ceiling) identity recoverable from the file name
    // alone.
    let (server, _) = loaded_server();
    let table = server.table();
    let snapshot = ShardSnapshot {
        shard: 3,
        sealed_epochs: 2,
        ceiling: 41,
        stats: ciao::LoadStats::default(),
        schema: table.schema().map(|s| Arc::new(s.clone())),
        blocks: table.blocks().to_vec(),
        parked: server.parked().to_vec(),
    };

    let scratch = ScratchDir::new("persist-snap");
    let name = write_snapshot(scratch.path(), &snapshot).unwrap();
    assert_eq!((name.shard, name.epochs, name.ceiling), (3, 2, 41));
    let back = read_snapshot(&name.path).expect("snapshot roundtrip");
    assert_eq!(back, snapshot);
}

#[test]
fn plan_roundtrips_through_serde() {
    // The pushdown plan is what a real deployment persists/ships; it
    // must survive serde and rebuild an identical prefilter.
    let sample = Dataset::WinLog.generate(5, 300);
    let queries = vec![
        parse_query("q0", r#"level = "Error""#).unwrap(),
        parse_query("q1", r#"level = "Error" AND service = "CBS""#).unwrap(),
    ];
    let plan = PushdownPlan::build(
        &queries,
        &sample,
        &ciao_optimizer::CostModel::default_uncalibrated(),
        5.0,
    )
    .unwrap();
    assert!(!plan.is_empty());

    let json = serde_json::to_string(&plan).unwrap();
    let back: PushdownPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), plan.len());
    assert_eq!(back.query_coverage, plan.query_coverage);

    // Both prefilters produce identical bitvectors.
    let chunk = RecordChunk::from_ndjson(&Dataset::WinLog.generate_ndjson(6, 500));
    let a = plan.prefilter().run_chunk(&chunk);
    let b = back.prefilter().run_chunk(&chunk);
    assert_eq!(a.bitvecs, b.bitvecs);
}
