//! Adaptive stream: selectivity drift, replanning, and just-in-time
//! promotion — the operational extensions on top of the paper's core.
//!
//! Run with: `cargo run --release --example adaptive_stream`
//!
//! Scenario: a log stream is planned against yesterday's sample. Then
//! the stream *drifts* — the predicate the optimizer bet on ("Error"
//! lines are rare) stops being selective because an outage makes
//! errors common. The client's own match counters expose the drift;
//! the server replans with observed selectivities. Finally an ad-hoc
//! query that no pushed predicate covers triggers JIT promotion of the
//! parked store.

use ciao::{adaptive, CiaoConfig, PushdownPlan, Server};
use ciao_client::ClientStats;
use ciao_columnar::Schema;
use ciao_json::RecordChunk;
use ciao_predicate::parse_query;
use std::sync::Arc;

fn record(i: usize, error_rate_pct: usize) -> String {
    format!(
        r#"{{"level":"{}","service":"svc{}","code":{}}}"#,
        if i % 100 < error_rate_pct {
            "Error"
        } else {
            "Info"
        },
        i % 6,
        i % 17,
    )
}

fn main() {
    let config = CiaoConfig::default().with_budget_micros(0.35);

    // Yesterday's sample: errors are rare (2%).
    let sample: Vec<_> = (0..2000)
        .map(|i| ciao_json::parse(&record(i, 2)).unwrap())
        .collect();
    let queries = vec![
        parse_query("errors", r#"level = "Error""#).unwrap(),
        parse_query("svc3", r#"service = "svc3""#).unwrap(),
    ];
    let plan = PushdownPlan::build(&queries, &sample, &config.cost_model, config.budget_micros)
        .expect("plan");
    println!("== initial plan (budget {:.2} µs) ==", config.budget_micros);
    for p in &plan.predicates {
        println!(
            "  #{} {}  (planned sel {:.3}, cost {:.3} µs)",
            p.id, p.clause, p.selectivity, p.cost
        );
    }

    // Today's stream: an outage pushes the error rate to 60%.
    let stream: Vec<String> = (0..20_000).map(|i| record(i, 60)).collect();
    let chunk = RecordChunk::from_records(&stream).expect("chunk");
    let schema = Arc::new(Schema::infer(&sample).expect("schema"));
    let mut server = Server::new(plan, Arc::clone(&schema), config.block_size);
    let prefilter = server.plan().prefilter();
    let mut stats = ClientStats::default();
    for sub in chunk.split(config.chunk_size) {
        let filter = prefilter.run_chunk_with_stats(&sub, &mut stats);
        server.ingest(&sub, &filter);
    }
    server.finalize();
    println!(
        "\ningested {} records; loading ratio {:.1}% (the drifted predicate admits far more than planned)",
        stats.records_processed,
        100.0 * server.load_stats().loading_ratio()
    );

    // The client's counters expose the drift.
    let report = adaptive::drift_report(server.plan(), &stats);
    println!("\n== drift report ==");
    for e in &report {
        println!(
            "  predicate #{}: planned sel {:.3}, observed {:.3} (drift {:.3})",
            e.id,
            e.planned,
            e.observed,
            e.drift()
        );
    }
    let threshold = 0.2;
    if adaptive::should_replan(&report, threshold) {
        let new_plan = adaptive::replan_with_observations(
            &queries,
            &sample,
            server.plan(),
            &stats,
            &config.cost_model,
            config.budget_micros,
        )
        .expect("replan");
        println!("\n== replanned (drift > {threshold}) ==");
        for p in &new_plan.predicates {
            println!(
                "  #{} {}  (sel {:.3}, cost {:.3} µs)",
                p.id, p.clause, p.selectivity, p.cost
            );
        }
        println!("(the next ingestion epoch would push this set instead)");
    }

    // An ad-hoc query outside the planned workload: JIT promotion.
    let adhoc = parse_query("adhoc", "code = 13").unwrap();
    let parked_before = server.parked().len();
    let out = server.execute_jit(&adhoc);
    println!(
        "\nad-hoc `{adhoc}`: count = {} — promoted {} parked records during the scan ({} → {} parked)",
        out.count,
        server.promotions().promoted,
        parked_before,
        server.parked().len(),
    );
    let again = server.execute_jit(&adhoc);
    println!(
        "re-run: count = {} with {} raw records parsed (promotion paid off)",
        again.count, again.metrics.raw_scan.records_parsed
    );
}
