//! Budget tuning: reproduce the shape of the paper's Figs. 3–5 on one
//! dataset from the command line.
//!
//! Run with: `cargo run --release --example budget_tuning [records]`
//!
//! Sweeps the client budget over the Yelp dataset and prints the
//! stacked prefilter / load / query breakdown per budget, showing the
//! trade-off the administrator tunes: more client microseconds buy
//! fewer loaded records and faster queries, with diminishing returns.

use ciao::{CiaoConfig, Pipeline};
use ciao_datagen::Dataset;
use ciao_workload::{build_pool, WorkloadConfig};

fn main() {
    let records: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);

    println!("== CIAO budget tuning (Yelp Review, {records} records) ==");
    let ndjson = Dataset::Yelp.generate_ndjson(11, records);
    let pool = build_pool(Dataset::Yelp);
    let mut cfg = WorkloadConfig::workload_b(Dataset::Yelp, 3);
    cfg.queries = 30;
    let queries = cfg.generate(&pool);

    println!(
        "{:>8} | {:>6} | {:>9} | {:>10} | {:>9} | {:>9} | {:>9}",
        "budget", "#preds", "f(S)", "load ratio", "prefilter", "load", "query"
    );
    for budget in [0.0, 1.0, 3.0, 5.0, 10.0, 20.0, 50.0] {
        let report = Pipeline::new(
            CiaoConfig::default()
                .with_budget_micros(budget)
                .with_sample_size(2000),
        )
        .run(&ndjson, &queries)
        .expect("pipeline");
        let (p, l, q) = report.timings.as_secs();
        println!(
            "{:>7.1}µ | {:>6} | {:>9.3} | {:>9.1}% | {:>8.3}s | {:>8.3}s | {:>8.3}s",
            budget,
            report.plan.len(),
            report.plan.objective,
            100.0 * report.load.loading_ratio(),
            p,
            l,
            q,
        );
    }
    println!(
        "\nExpected shape (paper Figs. 3–5): loading and query time fall steeply \
         with the first few microseconds of budget, then flatten (submodular \
         diminishing returns); prefiltering time grows with the budget."
    );
}
