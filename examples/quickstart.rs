//! Quickstart: the smallest complete CIAO deployment.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Generates a small stream of log-like JSON records, declares a
//! prospective query workload, and lets CIAO plan the pushdown, run
//! the client prefilter, partially load the data, and answer the
//! queries — printing what happened at every stage.

use ciao::{CiaoConfig, Pipeline};
use ciao_predicate::parse_query;

fn main() {
    // 1. Raw data as the clients would produce it: NDJSON.
    let ndjson: String = (0..20_000)
        .map(|i| {
            format!(
                "{{\"level\":\"{}\",\"service\":\"svc{}\",\"latency_ms\":{}}}\n",
                match i % 20 {
                    0 => "Error",
                    1..=4 => "Warning",
                    _ => "Info",
                },
                i % 8,
                (i * 7) % 500,
            )
        })
        .collect();

    // 2. The prospective workload (what analysts are expected to ask).
    let queries = vec![
        parse_query("errors", r#"level = "Error""#).unwrap(),
        parse_query("errors_svc3", r#"level = "Error" AND service = "svc3""#).unwrap(),
        parse_query("warnings", r#"level = "Warning""#).unwrap(),
    ];

    // 3. Run the whole system with a 1 µs/record client budget.
    let config = CiaoConfig::default().with_budget_micros(1.0);
    let report = Pipeline::new(config)
        .run(&ndjson, &queries)
        .expect("pipeline");

    // 4. Inspect the outcome.
    println!("== CIAO quickstart ==");
    println!(
        "plan: {} predicate(s) pushed (budget {:.1} µs, modeled cost {:.3} µs, f(S) = {:.3}, winner: {})",
        report.plan.len(),
        report.plan.budget,
        report.plan.total_cost,
        report.plan.objective,
        report.plan.winner,
    );
    for p in &report.plan.predicates {
        println!(
            "  predicate #{}: {}  (sel {:.3}, cost {:.3} µs)",
            p.id, p.clause, p.selectivity, p.cost
        );
    }
    println!(
        "loading: {} of {} records loaded into columnar format ({:.1}% loading ratio), {} parked",
        report.load.loaded_records,
        report.records,
        100.0 * report.load.loading_ratio(),
        report.load.parked_records,
    );
    for q in &report.query_results {
        println!(
            "query {:<12} count = {:<6} skipping = {:<5} scanned {} rows, skipped {}",
            q.name,
            q.count,
            q.metrics.used_skipping,
            q.metrics.table_scan.rows_scanned,
            q.metrics.table_scan.rows_skipped,
        );
    }
    println!("timings: {}", report.timings);
}
