//! Edge sensors: heterogeneous clients with runtime budget enforcement.
//!
//! Run with: `cargo run --release --example edge_sensors`
//!
//! The YCSB-customers scenario from the paper's intro: a fleet of edge
//! devices of different speeds ships JSON to one server. This example
//! exercises two CIAO features beyond the basic pipeline:
//!
//! 1. **Multi-client budget allocation** (the abstract's "different
//!    budgets for different clients"): a global budget pool is split
//!    across fast/slow devices by marginal benefit per unit cost.
//! 2. **Hard runtime enforcement**: each device wraps its prefilter in
//!    a [`ciao_client::BudgetedPrefilter`] so a stalled device degrades
//!    to all-ones bits (correct, just less useful) instead of falling
//!    behind.

use ciao::{PushdownPlan, Server};
use ciao_client::{Budget, BudgetedPrefilter, ClientStats};
use ciao_columnar::Schema;
use ciao_datagen::Dataset;
use ciao_json::RecordChunk;
use ciao_optimizer::{allocate_budgets, ClientSpec, InstanceBuilder};
use ciao_predicate::{compile_clause, parse_query, SelectivityEstimator};
use std::sync::Arc;

fn main() {
    const RECORDS_PER_CLIENT: usize = 5_000;

    println!("== CIAO edge sensors (YCSB customers) ==");

    // The fleet: a beefy gateway and two slow sensors.
    let fleet = [
        ClientSpec::new("gateway", 1.0, 0.6),
        ClientSpec::new("sensor-a", 3.0, 0.25),
        ClientSpec::new("sensor-b", 5.0, 0.15),
    ];

    // Prospective workload.
    let queries = vec![
        parse_query("active_us", r#"isActive = true AND phone_country = "+1""#).unwrap(),
        parse_query("seniors", r#"age_group = "senior""#).unwrap(),
        parse_query("gmail", r#"email LIKE "%@gmail.test%""#).unwrap(),
        parse_query("top_score", "linear_score = 99").unwrap(),
    ];

    // Sample for planning.
    let sample = Dataset::Ycsb.generate(1, 2000);
    let estimator = SelectivityEstimator::new(&sample);
    let clauses: Vec<_> = queries.iter().flat_map(|q| q.pushable_clauses()).collect();
    let sels = estimator.estimate_all(clauses);
    let cost_model = ciao_optimizer::CostModel::default_uncalibrated();
    let mean_len = sample
        .iter()
        .map(|r| ciao_json::to_string(r).len())
        .sum::<usize>() as f64
        / sample.len() as f64;

    // Global budget pool split across the fleet.
    let instance = InstanceBuilder::new(&sels, 6.0).build(&queries, |c| {
        cost_model.clause_cost(&compile_clause(c).unwrap(), mean_len, sels.get(c))
    });
    let allocation = allocate_budgets(&instance, &fleet);
    println!(
        "global budget pool: 6.0 µs/record, spent {:.2}",
        allocation.total_spent()
    );
    for (spec, (selected, spent)) in fleet
        .iter()
        .zip(allocation.selections.iter().zip(&allocation.spent))
    {
        println!(
            "  {:<9} (speed ×{:.0}, share {:>4.0}%): {} predicate(s), {:.2} µs/record",
            spec.name,
            spec.speed_factor,
            spec.data_share * 100.0,
            selected.len(),
            spent
        );
        for &i in selected {
            println!("      {}", instance.candidates[i].clause);
        }
    }

    // Run the gateway's share end to end with hard budget enforcement.
    let plan = PushdownPlan::build(&queries, &sample, &cost_model, 6.0).expect("plan");
    let schema = Arc::new(Schema::infer(&sample).expect("schema"));
    let mut server = Server::new(plan, schema, 1024);

    let mut stats = ClientStats::default();
    let budgeted = BudgetedPrefilter::new(
        server.plan().prefilter(),
        Budget::per_record_micros(25.0), // generous: no degradation expected
    );
    let ndjson = Dataset::Ycsb.generate_ndjson(2, RECORDS_PER_CLIENT);
    for chunk in RecordChunk::from_ndjson(&ndjson).split(1024) {
        let filter = budgeted.run_chunk(&chunk, &mut stats);
        server.ingest(&chunk, &filter);
    }
    server.finalize();

    println!(
        "\ngateway shipped {} records in {} chunks ({} degraded), measured {:.2} µs/record",
        stats.records_processed,
        stats.chunks,
        stats.degraded_chunks,
        stats.micros_per_record(),
    );
    println!(
        "server: loaded {} / parked {} (loading ratio {:.1}%)",
        server.load_stats().loaded_records,
        server.load_stats().parked_records,
        100.0 * server.load_stats().loading_ratio(),
    );
    for q in &queries {
        let out = server.execute(q);
        println!(
            "query {:<10} count = {:<5} (skipping: {}, parked scanned: {})",
            q.name, out.count, out.metrics.used_skipping, out.metrics.scanned_parked
        );
    }
}
