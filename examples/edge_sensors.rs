//! Edge sensors: a heterogeneous client fleet feeding a sharded service.
//!
//! Run with: `cargo run --release --example edge_sensors`
//!
//! The YCSB-customers scenario from the paper's intro: a fleet of edge
//! devices of different speeds ships JSON to one server. This example
//! exercises three CIAO features beyond the basic pipeline:
//!
//! 1. **Multi-client budget allocation** (the abstract's "different
//!    budgets for different clients"): a global budget pool is split
//!    across fast/slow devices by marginal benefit per unit cost.
//! 2. **Hard runtime enforcement**: each device wraps its prefilter in
//!    a [`ciao_client::BudgetedPrefilter`] so a stalled device degrades
//!    to all-ones bits (correct, just less useful) instead of falling
//!    behind.
//! 3. **A sharded concurrent service**: the devices run as real
//!    threads, pushing prefiltered chunks into a bounded-queue
//!    [`ciao_service::Service`] (blocking on backpressure), while
//!    worker threads drain into shards and background compaction ticks
//!    promote parked raw rows into columnar blocks.

use ciao::PushdownPlan;
use ciao_client::{Budget, BudgetedPrefilter, ClientStats};
use ciao_columnar::Schema;
use ciao_datagen::Dataset;
use ciao_json::RecordChunk;
use ciao_optimizer::{allocate_budgets, ClientSpec, InstanceBuilder};
use ciao_predicate::{compile_clause, parse_query, SelectivityEstimator};
use ciao_service::{CompactionPolicy, Service, ServiceConfig};
use std::sync::Arc;

fn main() {
    const RECORDS_PER_CLIENT: usize = 5_000;
    const SHARDS: usize = 4;

    println!("== CIAO edge sensors (YCSB customers → sharded service) ==");

    // The fleet: a beefy gateway and two slow sensors.
    let fleet = [
        ClientSpec::new("gateway", 1.0, 0.6),
        ClientSpec::new("sensor-a", 3.0, 0.25),
        ClientSpec::new("sensor-b", 5.0, 0.15),
    ];

    // Prospective workload.
    let queries = vec![
        parse_query("active_us", r#"isActive = true AND phone_country = "+1""#).unwrap(),
        parse_query("seniors", r#"age_group = "senior""#).unwrap(),
        parse_query("gmail", r#"email LIKE "%@gmail.test%""#).unwrap(),
        parse_query("top_score", "linear_score = 99").unwrap(),
    ];

    // Sample for planning.
    let sample = Dataset::Ycsb.generate(1, 2000);
    let estimator = SelectivityEstimator::new(&sample);
    let clauses: Vec<_> = queries.iter().flat_map(|q| q.pushable_clauses()).collect();
    let sels = estimator.estimate_all(clauses);
    let cost_model = ciao_optimizer::CostModel::default_uncalibrated();
    let mean_len = sample
        .iter()
        .map(|r| ciao_json::to_string(r).len())
        .sum::<usize>() as f64
        / sample.len() as f64;

    // Global budget pool split across the fleet.
    let instance = InstanceBuilder::new(&sels, 6.0).build(&queries, |c| {
        cost_model.clause_cost(&compile_clause(c).unwrap(), mean_len, sels.get(c))
    });
    let allocation = allocate_budgets(&instance, &fleet);
    println!(
        "global budget pool: 6.0 µs/record, spent {:.2}",
        allocation.total_spent()
    );
    for (spec, (selected, spent)) in fleet
        .iter()
        .zip(allocation.selections.iter().zip(&allocation.spent))
    {
        println!(
            "  {:<9} (speed ×{:.0}, share {:>4.0}%): {} predicate(s), {:.2} µs/record",
            spec.name,
            spec.speed_factor,
            spec.data_share * 100.0,
            selected.len(),
            spent
        );
        for &i in selected {
            println!("      {}", instance.candidates[i].clause);
        }
    }

    // Start the sharded service: SHARDS shards, SHARDS ingest workers,
    // a bounded queue so slow draining pushes back on producers, and a
    // compaction policy that promotes parked rows that queries keep
    // scanning.
    let plan = PushdownPlan::build(&queries, &sample, &cost_model, 6.0).expect("plan");
    let schema = Arc::new(Schema::infer(&sample).expect("schema"));
    let service = Service::start(
        plan,
        schema,
        ServiceConfig::default()
            .with_shards(SHARDS)
            .with_workers(SHARDS)
            .with_queue_capacity(16)
            .with_block_size(1024)
            .with_compaction(CompactionPolicy::default().with_batch(2048)),
    );

    // Each fleet member runs as a real producer thread with hard
    // budget enforcement, blocking on backpressure when the service
    // falls behind.
    let per_client_stats: Vec<ClientStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = fleet
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let service = &service;
                scope.spawn(move || {
                    let mut stats = ClientStats::default();
                    let budgeted = BudgetedPrefilter::new(
                        service.prefilter(),
                        Budget::per_record_micros(25.0), // generous: no degradation expected
                    );
                    let ndjson = Dataset::Ycsb.generate_ndjson(2 + i as u64, RECORDS_PER_CLIENT);
                    for chunk in RecordChunk::from_ndjson(&ndjson).split(1024) {
                        let filter = budgeted.run_chunk(&chunk, &mut stats);
                        assert!(
                            service.enqueue_wait(chunk, filter).is_enqueued(),
                            "{}: service shut down mid-stream",
                            spec.name
                        );
                    }
                    stats
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    service.drain();

    for (spec, stats) in fleet.iter().zip(&per_client_stats) {
        println!(
            "{:<9} shipped {} records in {} chunks ({} degraded), measured {:.2} µs/record",
            spec.name,
            stats.records_processed,
            stats.chunks,
            stats.degraded_chunks,
            stats.micros_per_record(),
        );
    }

    let before = service.metrics();
    println!(
        "\nservice: {} shards, {} rows columnar / {} parked (parked ratio {:.1}%)",
        before.shards.len(),
        before.rows(),
        before.parked(),
        100.0 * before.parked_ratio(),
    );
    for (i, s) in before.shards.iter().enumerate() {
        println!(
            "  shard {i}: {} rows, {} parked, loading ratio {:.1}%",
            s.rows,
            s.parked,
            100.0 * s.load.loading_ratio(),
        );
    }

    for q in &queries {
        let out = service.query(q);
        println!(
            "query {:<10} count = {:<5} (skipping: {}, parked scanned: {})",
            q.name, out.count, out.metrics.used_skipping, out.metrics.scanned_parked
        );
    }

    // Background maintenance: tick compaction until the parked store
    // is fully promoted, then show the queries again — same answers,
    // no raw parsing left anywhere.
    let mut ticks = 0;
    while service.metrics().parked() > 0 {
        service.compact();
        ticks += 1;
    }
    let after = service.metrics();
    println!(
        "\ncompaction: {} ticks promoted {} rows ({} unparseable observations); parked ratio {:.1}% → {:.1}%",
        ticks,
        after.compaction().promoted,
        after.compaction().unparseable,
        100.0 * before.parked_ratio(),
        100.0 * after.parked_ratio(),
    );
    for q in &queries {
        let out = service.query(q);
        println!(
            "query {:<10} count = {:<5} (raw records parsed: {})",
            q.name, out.count, out.metrics.raw_scan.records_parsed
        );
    }

    // Final telemetry report, read before shutdown tears the handles
    // down: latency quantiles from the service's own histograms and
    // the recent event timeline from the bounded trace ring.
    let t = service.telemetry().expect("telemetry is on by default");
    let ack = t.ingest_ack_merged();
    let ticks_hist = t.compaction_tick_merged();
    println!("\n== telemetry report ==");
    println!(
        "ingest-ack latency : p50 {:>7.1} µs, p99 {:>7.1} µs, max {:>7.1} µs ({} chunks)",
        ack.p50() as f64 / 1e3,
        ack.p99() as f64 / 1e3,
        ack.max() as f64 / 1e3,
        ack.count(),
    );
    println!(
        "query latency      : p50 {:>7.1} µs, p99 {:>7.1} µs ({} queries)",
        t.query.p50() as f64 / 1e3,
        t.query.p99() as f64 / 1e3,
        t.query.count(),
    );
    println!(
        "compaction ticks   : p50 {:>7.1} µs, p99 {:>7.1} µs ({} ticks)",
        ticks_hist.p50() as f64 / 1e3,
        ticks_hist.p99() as f64 / 1e3,
        ticks_hist.count(),
    );
    println!(
        "backpressure       : {} QueueFull rejections, producers blocked in enqueue_wait {} times",
        t.queue_full.get(),
        t.enqueue_wait.count(),
    );
    let events = t.events().snapshot();
    let seals = events
        .iter()
        .filter(|e| e.kind == ciao_service::telemetry::names::EVENT_EPOCH_SEAL)
        .count();
    println!(
        "event ring         : {} events retained ({} dropped), {} epoch seals",
        events.len(),
        t.events().dropped(),
        seals,
    );
    println!("compaction timeline (from the trace ring):");
    for e in events
        .iter()
        .filter(|e| e.kind == ciao_service::telemetry::names::EVENT_COMPACTION_TICK)
    {
        let shard = e.shard.map_or_else(|| "?".into(), |s| s.to_string());
        let fields: Vec<String> = e.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!(
            "  +{:>8.3}ms shard {shard}: {}",
            e.t.as_secs_f64() * 1e3,
            fields.join(", "),
        );
    }

    let final_metrics = service.shutdown();
    println!(
        "\nshutdown: {} chunks / {} records ingested, {} queries served, queue rejected {}, \
         producers blocked {:.1} ms total",
        final_metrics.ingested_chunks,
        final_metrics.ingested_records,
        final_metrics.queries,
        final_metrics.rejected_chunks,
        final_metrics.blocked.as_secs_f64() * 1e3,
    );
}
