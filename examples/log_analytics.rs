//! Log analytics: the paper's Windows System Log scenario.
//!
//! Run with: `cargo run --release --example log_analytics`
//!
//! Builds a synthetic Windows event log (the intro's "single log
//! server collecting syslog events"), generates the paper's three
//! workload shapes (Table III: A = highly skewed, B = moderate,
//! C = uniform), and shows how the same budget buys very different
//! outcomes depending on predicate overlap and skewness.

use ciao::{CiaoConfig, Pipeline};
use ciao_datagen::Dataset;
use ciao_workload::{build_pool, predicate_counts, skewness_factor, WorkloadConfig};

fn main() {
    const RECORDS: usize = 30_000;
    const QUERIES: usize = 40;
    const BUDGET_MICROS: f64 = 3.0;

    println!("== CIAO log analytics (Windows System Log) ==");
    let ndjson = Dataset::WinLog.generate_ndjson(42, RECORDS);
    println!(
        "dataset: {} records, {:.1} MB raw",
        RECORDS,
        ndjson.len() as f64 / 1e6
    );

    let pool = build_pool(Dataset::WinLog);
    println!("predicate pool: {} candidates (paper Table II)", pool.len());

    for (label, mut cfg) in WorkloadConfig::presets(Dataset::WinLog, 7) {
        cfg.queries = QUERIES;
        let queries = cfg.generate(&pool);
        let skew = skewness_factor(&predicate_counts(&queries));

        let report = Pipeline::new(
            CiaoConfig::default()
                .with_budget_micros(BUDGET_MICROS)
                .with_sample_size(2000),
        )
        .run(&ndjson, &queries)
        .expect("pipeline");

        let (p, l, q) = report.timings.as_secs();
        println!(
            "\nworkload {label} ({}) — skewness factor {:.2}",
            cfg.kind.label(),
            skew
        );
        println!(
            "  pushed {:>3} predicates | loading ratio {:>5.1}% | {} / {} queries used skipping",
            report.plan.len(),
            100.0 * report.load.loading_ratio(),
            report.queries_with_skipping(),
            queries.len(),
        );
        println!(
            "  prefilter {p:.3}s | load {l:.3}s | query {q:.3}s | total {:.3}s",
            report.timings.total().as_secs_f64()
        );
    }

    println!(
        "\nExpected shape (paper Fig. 3): workload A loads the least and answers \
         fastest; workload C sees little partial loading at the same budget."
    );
}
