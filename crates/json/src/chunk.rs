//! Raw, unparsed record chunks.
//!
//! CIAO clients ship newline-delimited JSON in chunks (the paper uses
//! ~1k objects per chunk, §III). A [`RecordChunk`] owns the raw text
//! once and exposes each record as a borrowed `&str` slice, because the
//! whole point of client-assisted loading is that nobody tokenizes these
//! bytes until the server decides a record is worth parsing.

/// Errors from chunk construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkError {
    /// A record contained an interior newline (would corrupt NDJSON
    /// framing downstream).
    EmbeddedNewline {
        /// Index of the offending record.
        record: usize,
    },
}

impl std::fmt::Display for ChunkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChunkError::EmbeddedNewline { record } => {
                write!(f, "record {record} contains an embedded newline")
            }
        }
    }
}

impl std::error::Error for ChunkError {}

/// A chunk of raw newline-delimited JSON records.
///
/// Blank lines are dropped at construction; records are otherwise kept
/// byte-for-byte, including any malformed JSON — validation is the
/// *server's* job at load time, never the client's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordChunk {
    text: String,
    /// Byte ranges of each record within `text` (exclusive end, no
    /// trailing newline included).
    spans: Vec<(u32, u32)>,
}

impl RecordChunk {
    /// Splits NDJSON text into one chunk containing every non-blank line.
    pub fn from_ndjson(text: &str) -> RecordChunk {
        let mut spans = Vec::new();
        let mut start = 0usize;
        let bytes = text.as_bytes();
        for i in 0..=bytes.len() {
            if i == bytes.len() || bytes[i] == b'\n' {
                let mut end = i;
                // Tolerate CRLF producers.
                if end > start && bytes[end - 1] == b'\r' {
                    end -= 1;
                }
                if text[start..end].trim().is_empty() {
                    start = i + 1;
                    continue;
                }
                spans.push((start as u32, end as u32));
                start = i + 1;
            }
        }
        RecordChunk {
            text: text.to_owned(),
            spans,
        }
    }

    /// Builds a chunk from individual record strings.
    pub fn from_records<S: AsRef<str>>(records: &[S]) -> Result<RecordChunk, ChunkError> {
        let mut text = String::new();
        let mut spans = Vec::with_capacity(records.len());
        for (i, r) in records.iter().enumerate() {
            let r = r.as_ref();
            if r.contains('\n') {
                return Err(ChunkError::EmbeddedNewline { record: i });
            }
            let start = text.len() as u32;
            text.push_str(r);
            spans.push((start, text.len() as u32));
            text.push('\n');
        }
        Ok(RecordChunk { text, spans })
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the chunk holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The raw text of record `i`.
    #[inline]
    pub fn record(&self, i: usize) -> &str {
        let (s, e) = self.spans[i];
        &self.text[s as usize..e as usize]
    }

    /// Iterates the raw records in order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &str> + '_ {
        self.spans
            .iter()
            .map(move |&(s, e)| &self.text[s as usize..e as usize])
    }

    /// Canonical NDJSON serialization: every record followed by one
    /// `\n`, blank lines and CRLF normalized away. This is the byte
    /// form durable logs persist — `from_ndjson(&c.to_ndjson())`
    /// yields a chunk with identical records.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::with_capacity(self.payload_bytes() + self.len());
        for record in self.iter() {
            out.push_str(record);
            out.push('\n');
        }
        out
    }

    /// Total payload size in bytes (records only, no framing).
    pub fn payload_bytes(&self) -> usize {
        self.spans.iter().map(|&(s, e)| (e - s) as usize).sum()
    }

    /// Mean record length in bytes (0 for an empty chunk). This is the
    /// `len(t)` statistic the cost model of paper §V-D consumes.
    pub fn mean_record_len(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.payload_bytes() as f64 / self.len() as f64
        }
    }

    /// Splits into sub-chunks of at most `records_per_chunk` records.
    pub fn split(&self, records_per_chunk: usize) -> Vec<RecordChunk> {
        assert!(records_per_chunk > 0, "chunk size must be positive");
        self.spans
            .chunks(records_per_chunk)
            .map(|spans| {
                let records: Vec<&str> = spans
                    .iter()
                    .map(|&(s, e)| &self.text[s as usize..e as usize])
                    .collect();
                RecordChunk::from_records(&records).expect("records already newline-free")
            })
            .collect()
    }
}

impl<'a> IntoIterator for &'a RecordChunk {
    type Item = &'a str;
    type IntoIter = Box<dyn ExactSizeIterator<Item = &'a str> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

/// Streams fixed-size [`RecordChunk`]s out of any NDJSON byte source
/// without materializing the whole stream — the production ingestion
/// path for multi-gigabyte logs (`File` → `BufReader` → chunks).
///
/// Blank lines are dropped; CRLF is tolerated; I/O errors surface on
/// the iterator. Lines that are not valid UTF-8 are yielded as an
/// error (JSON must be UTF-8).
#[derive(Debug)]
pub struct ChunkReader<R> {
    reader: R,
    records_per_chunk: usize,
    done: bool,
}

impl<R: std::io::BufRead> ChunkReader<R> {
    /// Wraps a buffered reader, emitting chunks of at most
    /// `records_per_chunk` records.
    pub fn new(reader: R, records_per_chunk: usize) -> ChunkReader<R> {
        assert!(records_per_chunk > 0, "chunk size must be positive");
        ChunkReader {
            reader,
            records_per_chunk,
            done: false,
        }
    }

    fn read_chunk(&mut self) -> std::io::Result<Option<RecordChunk>> {
        let mut records: Vec<String> = Vec::with_capacity(self.records_per_chunk);
        let mut line = String::new();
        while records.len() < self.records_per_chunk {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                self.done = true;
                break;
            }
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if trimmed.trim().is_empty() {
                continue;
            }
            records.push(trimmed.to_owned());
        }
        if records.is_empty() {
            return Ok(None);
        }
        Ok(Some(
            RecordChunk::from_records(&records).expect("read_line strips newlines"),
        ))
    }
}

impl<R: std::io::BufRead> Iterator for ChunkReader<R> {
    type Item = std::io::Result<RecordChunk>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.read_chunk() {
            Ok(Some(chunk)) => Some(Ok(chunk)),
            Ok(None) => None,
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_ndjson_basic() {
        let c = RecordChunk::from_ndjson("{\"a\":1}\n{\"b\":2}\n{\"c\":3}");
        assert_eq!(c.len(), 3);
        assert_eq!(c.record(0), "{\"a\":1}");
        assert_eq!(c.record(2), "{\"c\":3}");
        assert_eq!(c.iter().count(), 3);
    }

    #[test]
    fn blank_lines_and_trailing_newline() {
        let c = RecordChunk::from_ndjson("{\"a\":1}\n\n  \n{\"b\":2}\n");
        assert_eq!(c.len(), 2);
        assert_eq!(c.record(1), "{\"b\":2}");
    }

    #[test]
    fn crlf_tolerated() {
        let c = RecordChunk::from_ndjson("{\"a\":1}\r\n{\"b\":2}\r\n");
        assert_eq!(c.len(), 2);
        assert_eq!(c.record(0), "{\"a\":1}");
        assert_eq!(c.record(1), "{\"b\":2}");
    }

    #[test]
    fn empty_input() {
        let c = RecordChunk::from_ndjson("");
        assert!(c.is_empty());
        assert_eq!(c.payload_bytes(), 0);
        assert_eq!(c.mean_record_len(), 0.0);
    }

    #[test]
    fn from_records_roundtrip() {
        let recs = ["{\"x\":1}", "{\"y\":2}"];
        let c = RecordChunk::from_records(&recs).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.record(0), recs[0]);
        assert_eq!(c.record(1), recs[1]);
    }

    #[test]
    fn from_records_rejects_newline() {
        let err = RecordChunk::from_records(&["ok", "bad\nline"]).unwrap_err();
        assert_eq!(err, ChunkError::EmbeddedNewline { record: 1 });
    }

    #[test]
    fn to_ndjson_roundtrips_and_normalizes() {
        let c = RecordChunk::from_ndjson("{\"a\":1}\r\n\n{\"b\":2}\n   \n{\"c\":3}");
        assert_eq!(c.to_ndjson(), "{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n");
        let back = RecordChunk::from_ndjson(&c.to_ndjson());
        assert_eq!(
            back.iter().collect::<Vec<_>>(),
            c.iter().collect::<Vec<_>>()
        );
        assert_eq!(RecordChunk::from_ndjson("").to_ndjson(), "");
    }

    #[test]
    fn payload_stats() {
        let c = RecordChunk::from_records(&["aaaa", "bb"]).unwrap();
        assert_eq!(c.payload_bytes(), 6);
        assert_eq!(c.mean_record_len(), 3.0);
    }

    #[test]
    fn split_into_subchunks() {
        let recs: Vec<String> = (0..10).map(|i| format!("{{\"i\":{i}}}")).collect();
        let c = RecordChunk::from_records(&recs).unwrap();
        let parts = c.split(3);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0].len(), 3);
        assert_eq!(parts[3].len(), 1);
        // Order and contents preserved across the split.
        let mut all = Vec::new();
        for p in &parts {
            all.extend(p.iter().map(str::to_owned));
        }
        assert_eq!(all, recs);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn split_zero_panics() {
        RecordChunk::from_ndjson("x").split(0);
    }

    #[test]
    fn malformed_json_is_kept_verbatim() {
        // The chunk layer must not validate — that's the server's job.
        let c = RecordChunk::from_ndjson("not json at all\n{\"ok\":1}");
        assert_eq!(c.len(), 2);
        assert_eq!(c.record(0), "not json at all");
    }

    #[test]
    fn chunk_reader_streams_fixed_chunks() {
        let text: String = (0..10).map(|i| format!("{{\"i\":{i}}}\n")).collect();
        let reader = ChunkReader::new(std::io::Cursor::new(text), 3);
        let chunks: Vec<RecordChunk> = reader.map(|c| c.unwrap()).collect();
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0].len(), 3);
        assert_eq!(chunks[3].len(), 1);
        assert_eq!(chunks[1].record(0), "{\"i\":3}");
    }

    #[test]
    fn chunk_reader_matches_from_ndjson() {
        let text = "{\"a\":1}\r\n\n{\"b\":2}\n   \n{\"c\":3}";
        let streamed: Vec<String> = ChunkReader::new(std::io::Cursor::new(text), 2)
            .flat_map(|c| c.unwrap().iter().map(str::to_owned).collect::<Vec<_>>())
            .collect();
        let batch: Vec<String> = RecordChunk::from_ndjson(text)
            .iter()
            .map(str::to_owned)
            .collect();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn chunk_reader_empty_source() {
        let mut reader = ChunkReader::new(std::io::Cursor::new(""), 8);
        assert!(reader.next().is_none());
        let mut blanks = ChunkReader::new(std::io::Cursor::new("\n\n \n"), 8);
        assert!(blanks.next().is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn chunk_reader_zero_size() {
        ChunkReader::new(std::io::Cursor::new(""), 0);
    }
}
