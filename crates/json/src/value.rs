//! The JSON document object model.

use crate::number::JsonNumber;

/// A parsed JSON value.
///
/// Objects keep their key-value pairs in **insertion order** in a flat
/// `Vec`. CIAO's datasets are machine-generated records with a handful
/// of fields, where a vector beats a hash map on both construction cost
/// and iteration, and order preservation keeps the serialized text
/// byte-comparable with the raw record the client matched against.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (see [`JsonNumber`] for the int/float split).
    Number(JsonNumber),
    /// A (fully unescaped) string.
    String(String),
    /// An ordered array of values.
    Array(Vec<JsonValue>),
    /// An object as ordered key-value pairs. Duplicate keys are kept
    /// as-is; lookups return the first match (matching rapidJSON).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object value from an iterator of pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array value.
    pub fn array(items: impl IntoIterator<Item = JsonValue>) -> JsonValue {
        JsonValue::Array(items.into_iter().collect())
    }

    /// Looks up `key` in an object (first match). `None` for non-objects
    /// and missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Indexes into an array. `None` for non-arrays and out-of-range.
    pub fn get_index(&self, idx: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Array(items) => items.get(idx),
            _ => None,
        }
    }

    /// Follows a dotted path of object keys, e.g. `"address.city"`.
    pub fn get_path(&self, path: &str) -> Option<&JsonValue> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = cur.get(seg)?;
        }
        Some(cur)
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view of a number (exact integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Floating-point view of a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// True when the value contains `key` as a direct object member.
    pub fn has_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Human-readable type name, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Number(_) => "number",
            JsonValue::String(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }

    /// Recursively counts scalar leaves; used by load-cost accounting.
    pub fn leaf_count(&self) -> usize {
        match self {
            JsonValue::Array(items) => items.iter().map(JsonValue::leaf_count).sum(),
            JsonValue::Object(pairs) => pairs.iter().map(|(_, v)| v.leaf_count()).sum(),
            _ => 1,
        }
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<i64> for JsonValue {
    fn from(n: i64) -> Self {
        JsonValue::Number(JsonNumber::Int(n))
    }
}

impl From<i32> for JsonValue {
    fn from(n: i32) -> Self {
        JsonValue::Number(JsonNumber::Int(n as i64))
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Number(JsonNumber::Float(n))
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(o: Option<T>) -> Self {
        o.map_or(JsonValue::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JsonValue {
        JsonValue::object([
            ("name", JsonValue::from("Bob")),
            ("age", JsonValue::from(22)),
            (
                "address",
                JsonValue::object([("city", JsonValue::from("Chicago"))]),
            ),
            (
                "tags",
                JsonValue::array([JsonValue::from("a"), JsonValue::from("b")]),
            ),
            ("score", JsonValue::from(4.5)),
            ("active", JsonValue::from(true)),
            ("email", JsonValue::Null),
        ])
    }

    #[test]
    fn accessors() {
        let v = sample();
        assert_eq!(v.get("name").unwrap().as_str(), Some("Bob"));
        assert_eq!(v.get("age").unwrap().as_i64(), Some(22));
        assert_eq!(v.get("score").unwrap().as_f64(), Some(4.5));
        assert_eq!(v.get("active").unwrap().as_bool(), Some(true));
        assert!(v.get("email").unwrap().is_null());
        assert!(v.get("missing").is_none());
        assert_eq!(
            v.get_path("address.city").unwrap().as_str(),
            Some("Chicago")
        );
        assert!(v.get_path("address.zip").is_none());
        assert_eq!(
            v.get("tags").unwrap().get_index(1).unwrap().as_str(),
            Some("b")
        );
        assert!(v.get("tags").unwrap().get_index(2).is_none());
    }

    #[test]
    fn type_mismatches_return_none() {
        let v = JsonValue::from("text");
        assert_eq!(v.as_i64(), None);
        assert_eq!(v.as_bool(), None);
        assert!(v.as_array().is_none());
        assert!(v.as_object().is_none());
        assert!(v.get("x").is_none());
        assert!(v.get_index(0).is_none());
    }

    #[test]
    fn int_float_views() {
        let i = JsonValue::from(7);
        assert_eq!(i.as_i64(), Some(7));
        assert_eq!(i.as_f64(), Some(7.0));
        let f = JsonValue::from(7.5);
        assert_eq!(f.as_i64(), None);
        assert_eq!(f.as_f64(), Some(7.5));
    }

    #[test]
    fn duplicate_keys_first_wins() {
        let v = JsonValue::Object(vec![
            ("k".into(), JsonValue::from(1)),
            ("k".into(), JsonValue::from(2)),
        ]);
        assert_eq!(v.get("k").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn leaf_count_recurses() {
        assert_eq!(sample().leaf_count(), 8);
        assert_eq!(JsonValue::Null.leaf_count(), 1);
        assert_eq!(JsonValue::array([]).leaf_count(), 0);
    }

    #[test]
    fn type_names() {
        assert_eq!(JsonValue::Null.type_name(), "null");
        assert_eq!(JsonValue::from(true).type_name(), "bool");
        assert_eq!(JsonValue::from(1).type_name(), "number");
        assert_eq!(JsonValue::from("s").type_name(), "string");
        assert_eq!(JsonValue::array([]).type_name(), "array");
        assert_eq!(JsonValue::object::<String>([]).type_name(), "object");
    }

    #[test]
    fn option_conversion() {
        let some: JsonValue = Some(3i64).into();
        assert_eq!(some.as_i64(), Some(3));
        let none: JsonValue = Option::<i64>::None.into();
        assert!(none.is_null());
    }
}
