//! JSON string escaping and unescaping.

/// Appends `s` to `out` with JSON escaping applied (no surrounding
/// quotes). Escapes the two mandatory characters (`"`, `\`), control
/// characters below 0x20, and nothing else — multi-byte UTF-8 passes
/// through verbatim, which keeps serialized records byte-identical to
//  typical producers (rapidJSON, serde_json default behaviour).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\x08' => out.push_str("\\b"),
            '\x0c' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Escapes a string, returning a fresh buffer (with quotes omitted).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(s, &mut out);
    out
}

/// Errors from [`unescape`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnescapeError {
    /// `\` at end of input.
    TrailingBackslash,
    /// `\x` where `x` is not a legal escape introducer.
    InvalidEscape(char),
    /// `\u` not followed by 4 hex digits.
    InvalidUnicodeEscape,
    /// A high surrogate without a following low surrogate (or vice
    /// versa), or a combined pair outside the scalar range.
    LoneSurrogate,
}

impl std::fmt::Display for UnescapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnescapeError::TrailingBackslash => write!(f, "backslash at end of string"),
            UnescapeError::InvalidEscape(c) => write!(f, "invalid escape sequence `\\{c}`"),
            UnescapeError::InvalidUnicodeEscape => write!(f, "`\\u` needs four hex digits"),
            UnescapeError::LoneSurrogate => write!(f, "unpaired UTF-16 surrogate"),
        }
    }
}

impl std::error::Error for UnescapeError {}

/// Decodes the escape sequences in the *contents* of a JSON string
/// (quotes already stripped). Handles `\uXXXX` including surrogate
/// pairs.
pub fn unescape(s: &str) -> Result<String, UnescapeError> {
    if !s.contains('\\') {
        return Ok(s.to_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        let esc = chars.next().ok_or(UnescapeError::TrailingBackslash)?;
        match esc {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'b' => out.push('\x08'),
            'f' => out.push('\x0c'),
            'u' => {
                let hi = read_hex4(&mut chars)?;
                let scalar = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: must be followed by \uDC00..\uDFFF.
                    if chars.next() != Some('\\') || chars.next() != Some('u') {
                        return Err(UnescapeError::LoneSurrogate);
                    }
                    let lo = read_hex4(&mut chars)?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(UnescapeError::LoneSurrogate);
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(UnescapeError::LoneSurrogate);
                } else {
                    hi
                };
                out.push(char::from_u32(scalar).ok_or(UnescapeError::LoneSurrogate)?);
            }
            other => return Err(UnescapeError::InvalidEscape(other)),
        }
    }
    Ok(out)
}

fn read_hex4(chars: &mut std::str::Chars<'_>) -> Result<u32, UnescapeError> {
    let mut v = 0u32;
    for _ in 0..4 {
        let c = chars.next().ok_or(UnescapeError::InvalidUnicodeEscape)?;
        let d = c.to_digit(16).ok_or(UnescapeError::InvalidUnicodeEscape)?;
        v = v * 16 + d;
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line1\nline2\ttab"), "line1\\nline2\\ttab");
        assert_eq!(escape("\x01"), "\\u0001");
        assert_eq!(escape("héllo ünïcode"), "héllo ünïcode");
    }

    #[test]
    fn unescape_simple() {
        assert_eq!(unescape("plain").unwrap(), "plain");
        assert_eq!(unescape("a\\\"b").unwrap(), "a\"b");
        assert_eq!(unescape("a\\/b").unwrap(), "a/b");
        assert_eq!(unescape("\\n\\r\\t\\b\\f").unwrap(), "\n\r\t\x08\x0c");
    }

    #[test]
    fn unescape_unicode() {
        assert_eq!(unescape("\\u0041").unwrap(), "A");
        assert_eq!(unescape("\\u00e9").unwrap(), "é");
        // U+1F600 as surrogate pair
        assert_eq!(unescape("\\ud83d\\ude00").unwrap(), "😀");
    }

    #[test]
    fn unescape_errors() {
        assert_eq!(
            unescape("bad\\").unwrap_err(),
            UnescapeError::TrailingBackslash
        );
        assert_eq!(
            unescape("\\q").unwrap_err(),
            UnescapeError::InvalidEscape('q')
        );
        assert_eq!(
            unescape("\\u12").unwrap_err(),
            UnescapeError::InvalidUnicodeEscape
        );
        assert_eq!(
            unescape("\\uZZZZ").unwrap_err(),
            UnescapeError::InvalidUnicodeEscape
        );
        assert_eq!(
            unescape("\\ud800x").unwrap_err(),
            UnescapeError::LoneSurrogate
        );
        assert_eq!(
            unescape("\\udc00").unwrap_err(),
            UnescapeError::LoneSurrogate
        );
        assert_eq!(
            unescape("\\ud83d\\u0041").unwrap_err(),
            UnescapeError::LoneSurrogate
        );
    }

    #[test]
    fn roundtrip() {
        for s in [
            "",
            "plain",
            "with \"quotes\"",
            "tab\there",
            "emoji 😀",
            "\x07bell",
        ] {
            assert_eq!(
                unescape(&escape(s)).unwrap(),
                s,
                "roundtrip failed for {s:?}"
            );
        }
    }
}
