//! From-scratch JSON substrate for CIAO.
//!
//! The paper's server fully parses JSON (rapidJSON) only for the records
//! that survive client prefiltering; everything else stays as raw text.
//! This crate supplies both sides of that asymmetry:
//!
//! * a **DOM + recursive-descent parser + serializer** ([`JsonValue`],
//!   [`parse`], [`to_string`]) used at load time and for JIT parsing of
//!   parked records, and
//! * **raw chunking** ([`chunk::RecordChunk`]) that splits
//!   newline-delimited JSON into per-record byte slices *without*
//!   parsing, which is all the client ever does.
//!
//! The parser is strict RFC 8259 except where noted (it accepts any
//! top-level value, not just objects/arrays).
//!
//! # Example
//!
//! ```
//! use ciao_json::{parse, JsonValue};
//!
//! let v = parse(r#"{"name":"Bob","age":22}"#).unwrap();
//! assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("Bob"));
//! assert_eq!(v.get("age").and_then(JsonValue::as_i64), Some(22));
//! ```

#![warn(missing_docs)]

pub mod chunk;
mod escape;
mod number;
mod parse;
mod ser;
mod value;

pub use chunk::{ChunkError, ChunkReader, RecordChunk};
pub use escape::{escape, escape_into, unescape, UnescapeError};
pub use number::JsonNumber;
pub use parse::{parse, parse_bytes, ParseError, ParserOptions};
pub use ser::{to_pretty_string, to_string, write_value};
pub use value::JsonValue;
