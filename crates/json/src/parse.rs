//! A strict recursive-descent JSON parser.
//!
//! This is the "expensive full parse" side of CIAO's cost asymmetry: it
//! allocates a DOM, unescapes every string, and validates numbers —
//! exactly the work the client-side prefilter avoids. It is therefore
//! written to be *correct and representative*, not exotic: one pass,
//! byte-oriented, with a recursion-depth limit so adversarial inputs
//! cannot blow the stack.

use crate::escape::unescape;
use crate::number::JsonNumber;
use crate::value::JsonValue;

/// Position-annotated parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The failure categories the parser reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended inside a value.
    UnexpectedEof,
    /// A byte that cannot start/continue the expected production.
    UnexpectedByte(u8),
    /// Malformed number literal.
    BadNumber,
    /// Malformed string literal (bad escape, unpaired surrogate, raw
    /// control character, or invalid UTF-8).
    BadString(String),
    /// Nesting exceeded [`ParserOptions::max_depth`].
    TooDeep,
    /// Valid value followed by trailing non-whitespace bytes.
    TrailingData,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            ParseErrorKind::UnexpectedEof => {
                write!(f, "unexpected end of input at byte {}", self.offset)
            }
            ParseErrorKind::UnexpectedByte(b) => write!(
                f,
                "unexpected byte {:?} at offset {}",
                char::from(*b),
                self.offset
            ),
            ParseErrorKind::BadNumber => write!(f, "malformed number at offset {}", self.offset),
            ParseErrorKind::BadString(msg) => {
                write!(f, "malformed string at offset {}: {msg}", self.offset)
            }
            ParseErrorKind::TooDeep => write!(f, "nesting too deep at offset {}", self.offset),
            ParseErrorKind::TrailingData => {
                write!(f, "trailing data after value at offset {}", self.offset)
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parser knobs.
#[derive(Debug, Clone, Copy)]
pub struct ParserOptions {
    /// Maximum object/array nesting depth (default 128).
    pub max_depth: usize,
}

impl Default for ParserOptions {
    fn default() -> Self {
        ParserOptions { max_depth: 128 }
    }
}

/// Parses a complete JSON document from a string.
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    parse_bytes(input.as_bytes())
}

/// Parses a complete JSON document from bytes (must be UTF-8 in string
/// literals; everything structural is ASCII).
pub fn parse_bytes(input: &[u8]) -> Result<JsonValue, ParseError> {
    parse_bytes_with(input, ParserOptions::default())
}

/// Parses with explicit options.
pub fn parse_bytes_with(input: &[u8], options: ParserOptions) -> Result<JsonValue, ParseError> {
    let mut p = Cursor {
        input,
        pos: 0,
        options,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err(ParseErrorKind::TrailingData));
    }
    Ok(v)
}

struct Cursor<'a> {
    input: &'a [u8],
    pos: usize,
    options: ParserOptions,
}

impl<'a> Cursor<'a> {
    #[inline]
    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError {
            offset: self.pos,
            kind,
        }
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    #[inline]
    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        match self.peek() {
            Some(x) if x == b => {
                self.pos += 1;
                Ok(())
            }
            Some(x) => Err(self.err(ParseErrorKind::UnexpectedByte(x))),
            None => Err(self.err(ParseErrorKind::UnexpectedEof)),
        }
    }

    fn literal(&mut self, word: &[u8], value: JsonValue) -> Result<JsonValue, ParseError> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else if self.input.len() - self.pos < word.len() {
            Err(self.err(ParseErrorKind::UnexpectedEof))
        } else {
            Err(self.err(ParseErrorKind::UnexpectedByte(self.input[self.pos])))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, ParseError> {
        if depth > self.options.max_depth {
            return Err(self.err(ParseErrorKind::TooDeep));
        }
        match self.peek() {
            None => Err(self.err(ParseErrorKind::UnexpectedEof)),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal(b"true", JsonValue::Bool(true)),
            Some(b'f') => self.literal(b"false", JsonValue::Bool(false)),
            Some(b'n') => self.literal(b"null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(ParseErrorKind::UnexpectedByte(b))),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                Some(b) => return Err(self.err(ParseErrorKind::UnexpectedByte(b))),
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                Some(b) => return Err(self.err(ParseErrorKind::UnexpectedByte(b))),
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    /// Parses a string literal, returning its unescaped contents.
    fn string(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        self.expect(b'"')?;
        let content_start = self.pos;
        // Scan to the closing quote, honoring backslash escapes and
        // rejecting raw control characters.
        loop {
            match self.peek() {
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                Some(b'"') => break,
                Some(b'\\') => {
                    self.pos += 1;
                    if self.peek().is_none() {
                        return Err(self.err(ParseErrorKind::UnexpectedEof));
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(ParseError {
                        offset: self.pos,
                        kind: ParseErrorKind::BadString(format!(
                            "raw control character 0x{b:02x} in string"
                        )),
                    });
                }
                Some(_) => self.pos += 1,
            }
        }
        let raw = &self.input[content_start..self.pos];
        self.pos += 1; // consume closing quote
        let raw_str = std::str::from_utf8(raw).map_err(|e| ParseError {
            offset: start,
            kind: ParseErrorKind::BadString(format!("invalid UTF-8: {e}")),
        })?;
        unescape(raw_str).map_err(|e| ParseError {
            offset: start,
            kind: ParseErrorKind::BadString(e.to_string()),
        })
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err(ParseErrorKind::BadNumber)),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err(ParseErrorKind::BadNumber));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err(ParseErrorKind::BadNumber));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The scanned range is pure ASCII by construction.
        let text = std::str::from_utf8(&self.input[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Number(JsonNumber::Int(i)));
            }
            // Integer overflow: fall back to float like most parsers.
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(JsonValue::Number(JsonNumber::Float(f))),
            _ => Err(ParseError {
                offset: start,
                kind: ParseErrorKind::BadNumber,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::from(42));
        assert_eq!(parse("-7").unwrap(), JsonValue::from(-7));
        assert_eq!(parse("2.5").unwrap(), JsonValue::from(2.5));
        assert_eq!(parse("1e3").unwrap(), JsonValue::from(1000.0));
        assert_eq!(parse("2.5E-1").unwrap(), JsonValue::from(0.25));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::from("hi"));
    }

    #[test]
    fn containers() {
        let v = parse(r#"  {"a": [1, 2, {"b": null}], "c": "x"}  "#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert!(a[2].get("b").unwrap().is_null());
        assert_eq!(parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(vec![]));
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""tab\there A \"q\" 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\there A \"q\" 😀"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "nul",
            "tru",
            "{",
            "[",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "01",
            "1.",
            ".5",
            "1e",
            "+1",
            "--1",
            "\"unterminated",
            "[1]]",
            "{} x",
            "\"bad \\q escape\"",
            "nan",
            "Infinity",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn raw_control_char_rejected() {
        let err = parse("\"a\nb\"").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadString(_)));
    }

    #[test]
    fn error_offsets() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert_eq!(err.kind, ParseErrorKind::UnexpectedByte(b'x'));
    }

    #[test]
    fn trailing_data() {
        let err = parse("1 1").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::TrailingData);
    }

    #[test]
    fn depth_limit() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = parse(&deep).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::TooDeep);
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());

        let custom = parse_bytes_with(b"[[1]]", ParserOptions { max_depth: 1 });
        assert!(custom.is_err());
    }

    #[test]
    fn integer_overflow_becomes_float() {
        let v = parse("99999999999999999999999").unwrap();
        assert!(v.as_i64().is_none());
        assert!(v.as_f64().unwrap() > 9.9e22);
    }

    #[test]
    fn huge_exponent_rejected() {
        // Overflows to infinity, which JSON cannot represent.
        assert!(parse("1e999").is_err());
    }

    #[test]
    fn duplicate_keys_preserved() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.as_object().unwrap().len(), 2);
        assert_eq!(v.get("k").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn negative_zero_and_int_bounds() {
        assert_eq!(parse("-0").unwrap().as_i64(), Some(0));
        assert_eq!(
            parse("9223372036854775807").unwrap().as_i64(),
            Some(i64::MAX)
        );
        assert_eq!(
            parse("-9223372036854775808").unwrap().as_i64(),
            Some(i64::MIN)
        );
    }
}
