//! JSON numbers with an exact-integer / floating split.
//!
//! CIAO's key-value match compares the *textual* representation of a
//! number (paper §IV-B explicitly refuses to unify `2.4` and `24e-1`
//! because that would risk false negatives). Keeping integers exact
//! means that serializing a parsed record reproduces the digits the
//! client pattern-matched.

/// A JSON number: either an exact 64-bit integer or a double.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JsonNumber {
    /// Written without fraction/exponent and fits `i64`.
    Int(i64),
    /// Everything else.
    Float(f64),
}

impl JsonNumber {
    /// The exact integer, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonNumber::Int(i) => Some(*i),
            JsonNumber::Float(_) => None,
        }
    }

    /// A floating view (lossy above 2^53 for integers).
    pub fn as_f64(&self) -> f64 {
        match self {
            JsonNumber::Int(i) => *i as f64,
            JsonNumber::Float(f) => *f,
        }
    }

    /// True for the integer variant.
    pub fn is_int(&self) -> bool {
        matches!(self, JsonNumber::Int(_))
    }

    /// Formats with the same rules the serializer uses.
    pub fn to_json_string(&self) -> String {
        match self {
            JsonNumber::Int(i) => i.to_string(),
            JsonNumber::Float(f) => format_float(*f),
        }
    }
}

/// Formats a float as JSON: shortest round-trippable form, with a
/// trailing `.0` added to integral floats so the value re-parses as a
/// float (`1.0`, not `1`). Extreme magnitudes use scientific notation
/// — both for compactness and because very long decimal expansions
/// tickle rounding bugs in fast float parsers downstream.
pub(crate) fn format_float(f: f64) -> String {
    debug_assert!(
        f.is_finite(),
        "non-finite floats are unrepresentable in JSON"
    );
    let a = f.abs();
    if a != 0.0 && !(1e-5..1e17).contains(&a) {
        return format!("{f:e}");
    }
    let s = format!("{f}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

impl std::fmt::Display for JsonNumber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

impl From<i64> for JsonNumber {
    fn from(i: i64) -> Self {
        JsonNumber::Int(i)
    }
}

impl From<f64> for JsonNumber {
    fn from(f: f64) -> Self {
        JsonNumber::Float(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_views() {
        let n = JsonNumber::Int(-42);
        assert_eq!(n.as_i64(), Some(-42));
        assert_eq!(n.as_f64(), -42.0);
        assert!(n.is_int());
        assert_eq!(n.to_json_string(), "-42");
    }

    #[test]
    fn float_views() {
        let n = JsonNumber::Float(2.5);
        assert_eq!(n.as_i64(), None);
        assert_eq!(n.as_f64(), 2.5);
        assert!(!n.is_int());
        assert_eq!(n.to_json_string(), "2.5");
    }

    #[test]
    fn integral_float_keeps_point() {
        assert_eq!(JsonNumber::Float(3.0).to_json_string(), "3.0");
        assert_eq!(JsonNumber::Float(-0.0).to_json_string(), "-0.0");
    }

    #[test]
    fn display_matches_to_json_string() {
        assert_eq!(format!("{}", JsonNumber::Int(5)), "5");
        assert_eq!(format!("{}", JsonNumber::Float(0.125)), "0.125");
    }

    #[test]
    fn scientific_preserved_by_format() {
        let tiny = JsonNumber::Float(1e-300);
        let s = tiny.to_json_string();
        assert!(
            s.contains('e'),
            "extreme magnitude should use scientific: {s}"
        );
        let reparsed: f64 = s.parse().unwrap();
        assert_eq!(reparsed, 1e-300);
    }

    #[test]
    fn extreme_magnitudes_roundtrip_exactly() {
        for &x in &[
            1.8313042101781934e-4,
            3.387399918868267e156,
            -1.4059539319553631e32,
            9.901469416441159e-145,
            f64::MAX,
            f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
        ] {
            let s = format_float(x);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back, x, "roundtrip failed for {x:e} via {s}");
        }
    }
}
