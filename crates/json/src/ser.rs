//! JSON serialization (compact and pretty).

use crate::escape::escape_into;
use crate::value::JsonValue;

/// Serializes a value to compact JSON (no whitespace) — the format the
/// data generators emit and the client pattern-matches against.
pub fn to_string(value: &JsonValue) -> String {
    let mut out = String::with_capacity(64);
    write_value(value, &mut out);
    out
}

/// Appends the compact serialization of `value` to `out`.
pub fn write_value(value: &JsonValue, out: &mut String) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::Number(n) => out.push_str(&n.to_json_string()),
        JsonValue::String(s) => {
            out.push('"');
            escape_into(s, out);
            out.push('"');
        }
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        JsonValue::Object(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_into(k, out);
                out.push_str("\":");
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

/// Serializes with two-space indentation, for human consumption.
pub fn to_pretty_string(value: &JsonValue) -> String {
    let mut out = String::with_capacity(128);
    write_pretty(value, &mut out, 0);
    out
}

fn write_pretty(value: &JsonValue, out: &mut String, indent: usize) {
    match value {
        JsonValue::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        JsonValue::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                out.push('"');
                escape_into(k, out);
                out.push_str("\": ");
                write_pretty(v, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

impl std::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact_shapes() {
        let v = JsonValue::object([
            ("name", JsonValue::from("Bob")),
            ("age", JsonValue::from(22)),
            (
                "xs",
                JsonValue::array([JsonValue::from(1), JsonValue::Null]),
            ),
        ]);
        assert_eq!(to_string(&v), r#"{"name":"Bob","age":22,"xs":[1,null]}"#);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string(&JsonValue::Array(vec![])), "[]");
        assert_eq!(to_string(&JsonValue::Object(vec![])), "{}");
        assert_eq!(to_pretty_string(&JsonValue::Array(vec![])), "[]");
        assert_eq!(to_pretty_string(&JsonValue::Object(vec![])), "{}");
    }

    #[test]
    fn escapes_in_keys_and_values() {
        let v = JsonValue::object([("a\"b", JsonValue::from("x\ny"))]);
        let s = to_string(&v);
        assert_eq!(s, "{\"a\\\"b\":\"x\\ny\"}");
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn parse_serialize_roundtrip() {
        let inputs = [
            r#"{"a":1,"b":[true,false,null],"c":{"d":"e"},"f":2.5}"#,
            r#"[1,2,3]"#,
            r#""just a string""#,
            r#"-0.125"#,
        ];
        for input in inputs {
            let v = parse(input).unwrap();
            assert_eq!(to_string(&v), input);
        }
    }

    #[test]
    fn pretty_is_reparseable() {
        let v = parse(r#"{"a":[1,{"b":2}],"c":"x"}"#).unwrap();
        let pretty = to_pretty_string(&v);
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn display_matches_to_string() {
        let v = parse("[1,2]").unwrap();
        assert_eq!(format!("{v}"), "[1,2]");
    }
}
