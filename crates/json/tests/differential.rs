//! Differential and property tests for the JSON substrate.
//!
//! `serde_json` is used purely as a reference oracle (dev-dependency):
//! whatever our parser accepts must agree with serde_json's reading,
//! and parse→serialize→parse must be the identity on our DOM.

use ciao_json::{parse, to_string, JsonValue};
use proptest::prelude::*;

/// Strategy for arbitrary JSON values with bounded size/depth.
fn arb_json() -> impl Strategy<Value = JsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::from),
        any::<i64>().prop_map(JsonValue::from),
        // Finite floats only; JSON has no NaN/inf.
        prop::num::f64::NORMAL.prop_map(JsonValue::from),
        "[a-zA-Z0-9 _\\-\"\\\\\n\t😀é]{0,20}".prop_map(JsonValue::from),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(JsonValue::Array),
            prop::collection::vec(("[a-z]{1,8}", inner), 0..6)
                .prop_map(|pairs| JsonValue::Object(pairs.into_iter().collect())),
        ]
    })
}

fn to_serde(v: &JsonValue) -> serde_json::Value {
    serde_json::from_str(&to_string(v)).expect("our serializer must emit valid JSON")
}

fn assert_equivalent(ours: &JsonValue, theirs: &serde_json::Value) {
    match (ours, theirs) {
        (JsonValue::Null, serde_json::Value::Null) => {}
        (JsonValue::Bool(a), serde_json::Value::Bool(b)) => assert_eq!(a, b),
        (JsonValue::String(a), serde_json::Value::String(b)) => assert_eq!(a, b),
        (JsonValue::Number(a), serde_json::Value::Number(b)) => {
            // `-0` is a known representational split (we: Int(0), serde:
            // Float(-0.0)); compare numerically when the int views differ.
            match (a.as_i64(), b.as_i64()) {
                (Some(x), Some(y)) => assert_eq!(x, y),
                _ => {
                    let theirs = b.as_f64().expect("numeric view");
                    assert!(
                        (a.as_f64() - theirs).abs() <= f64::EPSILON * a.as_f64().abs().max(1.0),
                        "float mismatch: {} vs {theirs}",
                        a.as_f64()
                    );
                }
            };
        }
        (JsonValue::Array(a), serde_json::Value::Array(b)) => {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_equivalent(x, y);
            }
        }
        (JsonValue::Object(a), serde_json::Value::Object(b)) => {
            // serde_json's map dedups duplicate keys keeping the LAST
            // value; our DOM keeps every pair (lookups return the
            // first, like rapidJSON). Compare serde's view against our
            // last occurrence per key.
            let mut last: std::collections::HashMap<&str, &JsonValue> = Default::default();
            for (k, v) in a {
                last.insert(k.as_str(), v);
            }
            assert_eq!(last.len(), b.len(), "distinct key counts differ");
            for (k, v) in last {
                let theirs = b.get(k).unwrap_or_else(|| panic!("missing key {k}"));
                assert_equivalent(v, theirs);
            }
        }
        (x, y) => panic!("shape mismatch: {} vs {y:?}", x.type_name()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip_is_identity(v in arb_json()) {
        let text = to_string(&v);
        let back = parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn serde_json_agrees(v in arb_json()) {
        let theirs = to_serde(&v);
        assert_equivalent(&v, &theirs);
    }

    #[test]
    fn we_accept_what_serde_emits(v in arb_json()) {
        // serde_json reserializes our document; we must re-parse it to an
        // equivalent DOM (numbers may change spelling but not value).
        let theirs = to_serde(&v);
        let retext = serde_json::to_string(&theirs).unwrap();
        let back = parse(&retext).unwrap();
        assert_equivalent(&back, &theirs);
    }

    #[test]
    fn rejection_agreement_on_mutations(v in arb_json(), cut in 0usize..64) {
        // Truncated documents must be rejected by both parsers.
        let text = to_string(&v);
        if text.len() > 1 {
            let cut = 1 + cut % (text.len() - 1);
            if text.is_char_boundary(cut) {
                let broken = &text[..cut];
                let ours = parse(broken).is_ok();
                let theirs = serde_json::from_str::<serde_json::Value>(broken).is_ok();
                prop_assert_eq!(ours, theirs, "disagreement on {:?}", broken);
            }
        }
    }
}

#[test]
fn corpus_agreement() {
    // Hand-picked tricky documents, all valid.
    let corpus = [
        r#"{"a":[[],{},[{}]],"b":"A😀","c":1e-3}"#,
        r#"[0.1, -0, 1E+2, 123456789012345678901234567890]"#,
        r#"{"nested":{"very":{"deep":{"value":null}}}}"#,
        "[true,false,null]",
        r#""\\\"\/\b\f\n\r\t""#,
    ];
    for doc in corpus {
        let ours = parse(doc).unwrap_or_else(|e| panic!("we rejected {doc:?}: {e}"));
        let theirs: serde_json::Value = serde_json::from_str(doc).unwrap();
        assert_equivalent(&ours, &theirs);
    }
}
