//! Exhaustive-ish float round-trip fuzz: serialize → parse must be the
//! identity for every finite f64, including subnormals and extreme
//! magnitudes, through BOTH our parser and the (correctly rounded)
//! serde_json oracle. This caught a real bug: long decimal expansions
//! of extreme magnitudes are mis-rounded by fast float parsers, which
//! is why the serializer switches to scientific notation outside
//! [1e-5, 1e17).

use ciao_json::{parse, to_string, JsonValue};

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

#[test]
fn random_bit_patterns_roundtrip() {
    let mut state: u64 = 0x0123_4567_89ab_cdef;
    let mut tested = 0u64;
    while tested < 500_000 {
        let f = f64::from_bits(xorshift(&mut state));
        if !f.is_finite() {
            continue;
        }
        tested += 1;
        let s = to_string(&JsonValue::from(f));

        // Our own parser.
        let ours = parse(&s).unwrap_or_else(|e| panic!("rejected {s}: {e}"));
        let got = ours.as_f64().expect("number");
        assert!(
            got == f || (f == 0.0 && got == 0.0),
            "our parser drifted: {f:e} -> {s} -> {got:e}"
        );

        // The oracle.
        let oracle: serde_json::Value = serde_json::from_str(&s).unwrap();
        let theirs = oracle.as_f64().expect("number");
        assert!(
            theirs == f || (f == 0.0 && theirs == 0.0),
            "oracle drifted: {f:e} -> {s} -> {theirs:e}"
        );
    }
}

#[test]
fn boundary_values_roundtrip() {
    for &f in &[
        0.0,
        -0.0,
        1.0,
        -1.0,
        f64::MAX,
        f64::MIN,
        f64::MIN_POSITIVE,
        5e-324,
        1e-5,
        9.999999999999999e-6,
        1e17,
        1e17,
    ] {
        let s = to_string(&JsonValue::from(f));
        let back = parse(&s).unwrap().as_f64().unwrap();
        assert!(
            back == f || (f == 0.0 && back == 0.0),
            "{f:e} via {s} gave {back:e}"
        );
    }
}
