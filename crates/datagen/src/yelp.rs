//! Synthetic Yelp `review.json` records.
//!
//! Field and value domains follow paper Table II:
//!
//! | template                | candidates |
//! |-------------------------|------------|
//! | `useful = <int>`        | 100        |
//! | `cool = <int>`          | 100        |
//! | `funny = <int>`         | 100        |
//! | `stars = <int>`         | 5          |
//! | `user_id = <string>`    | 5 (popular users) |
//! | `text LIKE <string>`    | 5 keywords |
//! | `date LIKE "%20..%"`    | 14 years   |
//! | `date LIKE "%-..-%"`    | 12 months  |

use crate::text::{sentence, weighted_index, ZipfSampler, YELP_KEYWORDS};
use ciao_json::JsonValue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Popular user ids targeted by the `user_id = <string>` template.
pub const POPULAR_USERS: [&str; 5] = [
    "u-kx1aF2YNtW",
    "u-qQ9rT7LbsM",
    "u-Zw3pC5VhdR",
    "u-Jf8nS2KmxA",
    "u-Ty6vB9GceL",
];

/// Deterministic Yelp review generator.
#[derive(Debug)]
pub struct YelpGenerator {
    rng: StdRng,
    vote_zipf: ZipfSampler,
    serial: u64,
}

impl YelpGenerator {
    /// Creates a generator with a seed.
    pub fn new(seed: u64) -> YelpGenerator {
        YelpGenerator {
            rng: StdRng::seed_from_u64(seed ^ 0x59454c50), // "YELP"
            // useful/funny/cool votes are heavily skewed toward 0.
            vote_zipf: ZipfSampler::new(100, 1.3),
            serial: 0,
        }
    }

    /// Generates one review record.
    pub fn record(&mut self) -> JsonValue {
        let rng = &mut self.rng;
        self.serial += 1;

        // ~20% of reviews come from one of the 5 popular users.
        let user_id = if rng.gen_bool(0.2) {
            POPULAR_USERS[rng.gen_range(0..POPULAR_USERS.len())].to_owned()
        } else {
            format!("u-{:012x}", rng.gen::<u64>() & 0xffff_ffff_ffff)
        };

        // Stars follow Yelp's J-shape: lots of 5s and 1s.
        let stars = [1i64, 2, 3, 4, 5][weighted_index(rng, &[0.15, 0.08, 0.12, 0.25, 0.40])];

        // Each sentiment keyword appears in ~8% of reviews.
        let mut kws: Vec<&str> = Vec::new();
        for kw in YELP_KEYWORDS {
            if rng.gen_bool(0.08) {
                kws.push(kw);
            }
        }
        let words = rng.gen_range(12..60);
        let text = sentence(rng, words, &kws);

        let year = 2004 + rng.gen_range(0..14);
        let month = rng.gen_range(1..=12);
        let day = rng.gen_range(1..=28);
        let date = format!("{year}-{month:02}-{day:02}");

        JsonValue::object([
            (
                "review_id",
                JsonValue::from(format!("r-{:08}", self.serial)),
            ),
            ("user_id", JsonValue::from(user_id)),
            (
                "business_id",
                JsonValue::from(format!("b-{:06x}", rng.gen_range(0..0x100_0000))),
            ),
            ("stars", JsonValue::from(stars)),
            ("useful", JsonValue::from(self.vote_zipf.sample(rng) as i64)),
            ("funny", JsonValue::from(self.vote_zipf.sample(rng) as i64)),
            ("cool", JsonValue::from(self.vote_zipf.sample(rng) as i64)),
            ("text", JsonValue::from(text)),
            ("date", JsonValue::from(date)),
        ])
    }

    /// Generates `n` records.
    pub fn generate(&mut self, n: usize) -> Vec<JsonValue> {
        (0..n).map(|_| self.record()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<JsonValue> {
        YelpGenerator::new(7).generate(n)
    }

    #[test]
    fn schema_matches_table2() {
        let recs = sample(100);
        for r in &recs {
            for key in [
                "review_id",
                "user_id",
                "business_id",
                "stars",
                "useful",
                "funny",
                "cool",
                "text",
                "date",
            ] {
                assert!(r.has_key(key), "missing {key}");
            }
            let stars = r.get("stars").unwrap().as_i64().unwrap();
            assert!((1..=5).contains(&stars));
            let useful = r.get("useful").unwrap().as_i64().unwrap();
            assert!((0..100).contains(&useful));
            let date = r.get("date").unwrap().as_str().unwrap();
            assert_eq!(date.len(), 10);
            let year: i32 = date[..4].parse().unwrap();
            assert!((2004..=2017).contains(&year));
        }
    }

    #[test]
    fn popular_users_appear_often() {
        let recs = sample(2000);
        let popular = recs
            .iter()
            .filter(|r| POPULAR_USERS.contains(&r.get("user_id").unwrap().as_str().unwrap()))
            .count();
        let frac = popular as f64 / recs.len() as f64;
        assert!((0.15..0.25).contains(&frac), "popular fraction {frac}");
    }

    #[test]
    fn keywords_have_expected_frequency() {
        let recs = sample(2000);
        for kw in crate::text::YELP_KEYWORDS {
            let hits = recs
                .iter()
                .filter(|r| r.get("text").unwrap().as_str().unwrap().contains(kw))
                .count();
            let frac = hits as f64 / recs.len() as f64;
            assert!((0.04..0.14).contains(&frac), "{kw} selectivity {frac}");
        }
    }

    #[test]
    fn votes_skew_toward_zero() {
        let recs = sample(2000);
        let zeros = recs
            .iter()
            .filter(|r| r.get("useful").unwrap().as_i64() == Some(0))
            .count();
        assert!(zeros > recs.len() / 5, "vote skew missing: {zeros}");
    }
}
