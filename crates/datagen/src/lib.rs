//! Synthetic datasets for the CIAO experiments.
//!
//! The paper evaluates on three real datasets (Yelp reviews 5 GB,
//! Windows event log 27 GB, YCSB/fakeit customers 20 GB) that are not
//! redistributable here. These generators produce records with the
//! **same top-level schema and the same predicate-template domains as
//! paper Table II**, with controlled value frequencies so that every
//! experiment's independent variable (selectivity, overlap, skewness)
//! is reproducible at laptop scale. All generators are deterministic
//! per seed.

#![warn(missing_docs)]

pub mod text;
pub mod winlog;
pub mod ycsb;
pub mod yelp;

pub use winlog::WinLogGenerator;
pub use ycsb::YcsbGenerator;
pub use yelp::YelpGenerator;

use ciao_json::JsonValue;

/// The three paper datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Yelp Open Dataset `review.json`.
    Yelp,
    /// Windows System Log (Loghub).
    WinLog,
    /// YCSB customers (fakeit).
    Ycsb,
}

impl Dataset {
    /// All datasets, in the paper's presentation order.
    pub fn all() -> [Dataset; 3] {
        [Dataset::WinLog, Dataset::Yelp, Dataset::Ycsb]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Yelp => "Yelp Review",
            Dataset::WinLog => "Windows System Log",
            Dataset::Ycsb => "YCSB",
        }
    }

    /// Generates `n` records with the given seed.
    pub fn generate(&self, seed: u64, n: usize) -> Vec<JsonValue> {
        match self {
            Dataset::Yelp => YelpGenerator::new(seed).generate(n),
            Dataset::WinLog => WinLogGenerator::new(seed).generate(n),
            Dataset::Ycsb => YcsbGenerator::new(seed).generate(n),
        }
    }

    /// Generates `n` records as raw NDJSON text (what the clients ship).
    pub fn generate_ndjson(&self, seed: u64, n: usize) -> String {
        let mut out = String::new();
        for rec in self.generate(seed, n) {
            ciao_json::write_value(&rec, &mut out);
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate() {
        for ds in Dataset::all() {
            let recs = ds.generate(1, 50);
            assert_eq!(recs.len(), 50, "{ds}");
            for r in &recs {
                assert!(r.as_object().is_some(), "{ds} records are objects");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        for ds in Dataset::all() {
            let a = ds.generate_ndjson(42, 20);
            let b = ds.generate_ndjson(42, 20);
            let c = ds.generate_ndjson(43, 20);
            assert_eq!(a, b, "{ds} not deterministic");
            assert_ne!(a, c, "{ds} ignores seed");
        }
    }

    #[test]
    fn ndjson_reparses() {
        for ds in Dataset::all() {
            let text = ds.generate_ndjson(7, 25);
            let mut count = 0;
            for line in text.lines() {
                ciao_json::parse(line).unwrap_or_else(|e| panic!("{ds}: {e}\n{line}"));
                count += 1;
            }
            assert_eq!(count, 25);
        }
    }
}
