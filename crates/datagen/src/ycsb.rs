//! Synthetic YCSB customer records (fakeit substitute).
//!
//! The paper generates 25-attribute customer documents with fakeit.
//! Table II templates covered here: `isActive = <bool>` (2),
//! `linear_score = <int>` (100), `weighted_score = <int>` (100),
//! `phone_country = <string>` (3), `age_group = <string>` (4),
//! `age_by_group = <int>` (100), `url_domain LIKE <string>` (12),
//! `url_site LIKE <string>` (14), `email LIKE <string>` (2).
//!
//! Records also carry nested objects and arrays (address, children,
//! visited places) so the columnar `Json` path and the raw-matching
//! multi-occurrence key search see realistic structure.

use crate::text::weighted_index;
use ciao_json::JsonValue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Phone country codes (3 candidates).
pub const PHONE_COUNTRIES: [&str; 3] = ["+1", "+44", "+86"];

/// Age groups (4 candidates).
pub const AGE_GROUPS: [&str; 4] = ["child", "young_adult", "adult", "senior"];

/// URL domains (12 candidates).
pub const URL_DOMAINS: [&str; 12] = [
    "com", "org", "net", "io", "dev", "app", "shop", "blog", "info", "biz", "co", "ai",
];

/// URL sites (14 candidates).
pub const URL_SITES: [&str; 14] = [
    "alphamart",
    "bitforge",
    "cloudnest",
    "dataharbor",
    "echolab",
    "fluxcart",
    "gridpoint",
    "hyperloop",
    "ironclad",
    "jetstream",
    "kiteworks",
    "lumenfield",
    "moonbase",
    "novatrade",
];

/// Email domains (2 candidates).
pub const EMAIL_DOMAINS: [&str; 2] = ["@gmail.test", "@corp.test"];

/// First names for generated customers.
const FIRST_NAMES: [&str; 12] = [
    "Ava", "Ben", "Cleo", "Dan", "Elle", "Finn", "Gus", "Hana", "Iris", "Jack", "Kira", "Liam",
];

/// City pool for nested addresses.
const CITIES: [&str; 8] = [
    "Chicago",
    "Austin",
    "Seattle",
    "Denver",
    "Boston",
    "Miami",
    "Portland",
    "Nashville",
];

/// Deterministic YCSB customer generator.
#[derive(Debug)]
pub struct YcsbGenerator {
    rng: StdRng,
    serial: u64,
}

impl YcsbGenerator {
    /// Creates a generator with a seed.
    pub fn new(seed: u64) -> YcsbGenerator {
        YcsbGenerator {
            rng: StdRng::seed_from_u64(seed ^ 0x59435342), // "YCSB"
            serial: 0,
        }
    }

    /// Generates one customer record (25 attributes, some nested).
    pub fn record(&mut self) -> JsonValue {
        let rng = &mut self.rng;
        self.serial += 1;

        let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
        let age_group_idx = weighted_index(rng, &[0.15, 0.3, 0.4, 0.15]);
        let age_group = AGE_GROUPS[age_group_idx];
        let age = match age_group_idx {
            0 => rng.gen_range(1..18),
            1 => rng.gen_range(18..30),
            2 => rng.gen_range(30..65),
            _ => rng.gen_range(65..100),
        };
        let site = URL_SITES[rng.gen_range(0..URL_SITES.len())];
        let domain = URL_DOMAINS[rng.gen_range(0..URL_DOMAINS.len())];
        let email_user = format!("{}{}", first.to_lowercase(), self.serial % 9973);
        let email_domain = EMAIL_DOMAINS[rng.gen_range(0..EMAIL_DOMAINS.len())];
        let children: Vec<JsonValue> = (0..rng.gen_range(0..4))
            .map(|i| {
                JsonValue::object([
                    (
                        "name",
                        JsonValue::from(FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())]),
                    ),
                    ("age", JsonValue::from(rng.gen_range(0i64..18))),
                    ("idx", JsonValue::from(i as i64)),
                ])
            })
            .collect();
        let visited: Vec<JsonValue> = (0..rng.gen_range(0..5))
            .map(|_| JsonValue::from(CITIES[rng.gen_range(0..CITIES.len())]))
            .collect();

        JsonValue::object([
            (
                "customer_id",
                JsonValue::from(format!("c-{:08}", self.serial)),
            ),
            ("first_name", JsonValue::from(first)),
            (
                "last_name",
                JsonValue::from(format!("L{}", rng.gen_range(0..500))),
            ),
            ("isActive", JsonValue::from(rng.gen_bool(0.7))),
            ("linear_score", JsonValue::from(rng.gen_range(0i64..100))),
            (
                "weighted_score",
                // Quadratic skew toward low scores.
                JsonValue::from({
                    let u: f64 = rng.gen_range(0.0..1.0);
                    (u * u * 100.0) as i64
                }),
            ),
            (
                "phone_country",
                JsonValue::from(PHONE_COUNTRIES[rng.gen_range(0..3usize)]),
            ),
            (
                "phone",
                JsonValue::from(format!("{:010}", rng.gen_range(0u64..10_000_000_000))),
            ),
            ("age_group", JsonValue::from(age_group)),
            ("age_by_group", JsonValue::from(age)),
            (
                "url",
                JsonValue::from(format!("https://{site}.{domain}/u/{}", self.serial)),
            ),
            ("url_site", JsonValue::from(site)),
            ("url_domain", JsonValue::from(domain)),
            (
                "email",
                JsonValue::from(format!("{email_user}{email_domain}")),
            ),
            (
                "address",
                JsonValue::object([
                    (
                        "street",
                        JsonValue::from(format!("{} Main St", rng.gen_range(1..2000))),
                    ),
                    (
                        "city",
                        JsonValue::from(CITIES[rng.gen_range(0..CITIES.len())]),
                    ),
                    (
                        "zip",
                        JsonValue::from(format!("{:05}", rng.gen_range(10000..99999))),
                    ),
                ]),
            ),
            ("children", JsonValue::Array(children)),
            ("visited_places", JsonValue::Array(visited)),
            ("balance", JsonValue::from(rng.gen_range(0.0..10_000.0))),
            (
                "loyalty_points",
                JsonValue::from(rng.gen_range(0i64..50_000)),
            ),
            ("signup_year", JsonValue::from(rng.gen_range(2010i64..2021))),
            ("newsletter", JsonValue::from(rng.gen_bool(0.4))),
            ("premium", JsonValue::from(rng.gen_bool(0.12))),
            (
                "device",
                JsonValue::from(["ios", "android", "web"][rng.gen_range(0..3usize)]),
            ),
            (
                "locale",
                JsonValue::from(["en-US", "en-GB", "zh-CN", "es-MX"][rng.gen_range(0..4usize)]),
            ),
            ("notes", JsonValue::Null),
        ])
    }

    /// Generates `n` records.
    pub fn generate(&mut self, n: usize) -> Vec<JsonValue> {
        (0..n).map(|_| self.record()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<JsonValue> {
        YcsbGenerator::new(5).generate(n)
    }

    #[test]
    fn has_25_attributes() {
        for r in sample(20) {
            assert_eq!(r.as_object().unwrap().len(), 25);
        }
    }

    #[test]
    fn table2_domains_respected() {
        for r in sample(500) {
            assert!(PHONE_COUNTRIES.contains(&r.get("phone_country").unwrap().as_str().unwrap()));
            assert!(AGE_GROUPS.contains(&r.get("age_group").unwrap().as_str().unwrap()));
            assert!(URL_DOMAINS.contains(&r.get("url_domain").unwrap().as_str().unwrap()));
            assert!(URL_SITES.contains(&r.get("url_site").unwrap().as_str().unwrap()));
            let ls = r.get("linear_score").unwrap().as_i64().unwrap();
            assert!((0..100).contains(&ls));
            let ws = r.get("weighted_score").unwrap().as_i64().unwrap();
            assert!((0..100).contains(&ws));
            let email = r.get("email").unwrap().as_str().unwrap();
            assert!(EMAIL_DOMAINS.iter().any(|d| email.ends_with(d)), "{email}");
        }
    }

    #[test]
    fn age_consistent_with_group() {
        for r in sample(500) {
            let group = r.get("age_group").unwrap().as_str().unwrap();
            let age = r.get("age_by_group").unwrap().as_i64().unwrap();
            let ok = match group {
                "child" => (1..18).contains(&age),
                "young_adult" => (18..30).contains(&age),
                "adult" => (30..65).contains(&age),
                "senior" => (65..100).contains(&age),
                other => panic!("unknown group {other}"),
            };
            assert!(ok, "{group} has age {age}");
        }
    }

    #[test]
    fn nested_structures_present() {
        let recs = sample(100);
        assert!(recs.iter().any(|r| {
            r.get("children")
                .unwrap()
                .as_array()
                .is_some_and(|a| !a.is_empty())
        }));
        for r in &recs {
            assert!(r.get("address").unwrap().get("city").is_some());
            assert!(r.get("notes").unwrap().is_null());
        }
    }

    #[test]
    fn weighted_score_skews_low() {
        let recs = sample(2000);
        let low = recs
            .iter()
            .filter(|r| r.get("weighted_score").unwrap().as_i64().unwrap() < 25)
            .count();
        // Quadratic skew puts ~50% of scores below 25 (uniform would put
        // ~25%); test the midpoint so the assertion is not a coin flip
        // on the exact expected value.
        assert!(low > recs.len() * 2 / 5, "quadratic skew missing: {low}");
    }
}
