//! Synthetic Windows System Log records (Loghub substitute).
//!
//! Table II templates: `info LIKE <string>` over 200 message keywords,
//! plus `time LIKE` templates for month/day/hour/minute/second.
//!
//! The `level` field carries the calibrated frequencies that the §VII-E
//! selectivity micro-benchmarks rely on (paper values 0.35 / 0.15 /
//! 0.01): `Info` ≈ 0.49, `Warning` ≈ 0.35, `Error` ≈ 0.15,
//! `Critical` ≈ 0.01.

use crate::text::{keyword_pool, sentence, weighted_index, ZipfSampler};
use ciao_json::JsonValue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Log levels with their generation frequencies.
pub const LEVELS: [(&str, f64); 4] = [
    ("Info", 0.49),
    ("Warning", 0.35),
    ("Error", 0.15),
    ("Critical", 0.01),
];

/// Windows services that emit log lines.
pub const SERVICES: [&str; 8] = [
    "CBS",
    "CSI",
    "WuaEng",
    "DnsClient",
    "Kernel-Power",
    "Defrag",
    "SideBySide",
    "WinLogon",
];

/// Deterministic Windows-log generator.
#[derive(Debug)]
pub struct WinLogGenerator {
    rng: StdRng,
    keywords: Vec<String>,
    keyword_zipf: ZipfSampler,
    /// Seconds since the epoch of the simulated trace start; advances
    /// monotonically like a real log.
    clock: u64,
}

impl WinLogGenerator {
    /// Creates a generator with a seed.
    pub fn new(seed: u64) -> WinLogGenerator {
        WinLogGenerator {
            rng: StdRng::seed_from_u64(seed ^ 0x57494e4c), // "WINL"
            keywords: keyword_pool(200),
            keyword_zipf: ZipfSampler::new(200, 1.1),
            // 2016-01-01 00:00:00 in a simplified civil calendar.
            clock: 0,
        }
    }

    /// Generates one log record.
    pub fn record(&mut self) -> JsonValue {
        let rng = &mut self.rng;
        // Advance 0–10 seconds per line; 226 days ≈ 19.5M seconds of
        // span at realistic volumes.
        self.clock += rng.gen_range(0..=10u64);
        let time = format_time(self.clock);

        let weights: Vec<f64> = LEVELS.iter().map(|(_, w)| *w).collect();
        let level = LEVELS[weighted_index(rng, &weights)].0;

        let service = SERVICES[rng.gen_range(0..SERVICES.len())];

        // 1–3 zipf-distributed keywords embedded in the message: head
        // keywords are common (high selectivity spread for Table II's
        // 200-candidate pool).
        let kw_count = rng.gen_range(1..=3);
        let mut kws: Vec<&str> = Vec::with_capacity(kw_count);
        for _ in 0..kw_count {
            kws.push(self.keywords[self.keyword_zipf.sample(rng)].as_str());
        }
        let words = rng.gen_range(6..20);
        let info = sentence(rng, words, &kws);

        JsonValue::object([
            ("time", JsonValue::from(time)),
            ("level", JsonValue::from(level)),
            ("service", JsonValue::from(service)),
            ("pid", JsonValue::from(rng.gen_range(4i64..2000))),
            ("info", JsonValue::from(info)),
        ])
    }

    /// Generates `n` records.
    pub fn generate(&mut self, n: usize) -> Vec<JsonValue> {
        (0..n).map(|_| self.record()).collect()
    }

    /// The message keyword pool (for workload construction).
    pub fn keywords(&self) -> &[String] {
        &self.keywords
    }
}

/// Formats seconds-since-trace-start as `YYYY-MM-DD HH:MM:SS,mmm`
/// using a simplified 30-day-month calendar (the predicate templates
/// only pattern-match digits, so civil-calendar fidelity is
/// irrelevant).
fn format_time(clock: u64) -> String {
    let secs = clock % 60;
    let mins = (clock / 60) % 60;
    let hours = (clock / 3600) % 24;
    let days = clock / 86_400;
    let month = (days / 30) % 12 + 1;
    let day = days % 30 + 1;
    let year = 2016 + days / 360;
    let millis = (clock * 997) % 1000;
    format!("{year}-{month:02}-{day:02} {hours:02}:{mins:02}:{secs:02},{millis:03}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<JsonValue> {
        WinLogGenerator::new(3).generate(n)
    }

    #[test]
    fn schema_fields_present() {
        for r in sample(50) {
            for key in ["time", "level", "service", "pid", "info"] {
                assert!(r.has_key(key), "missing {key}");
            }
        }
    }

    #[test]
    fn level_frequencies_match_design() {
        let recs = sample(20_000);
        let frac = |lvl: &str| {
            recs.iter()
                .filter(|r| r.get("level").unwrap().as_str() == Some(lvl))
                .count() as f64
                / recs.len() as f64
        };
        assert!(
            (frac("Warning") - 0.35).abs() < 0.03,
            "Warning {}",
            frac("Warning")
        );
        assert!(
            (frac("Error") - 0.15).abs() < 0.02,
            "Error {}",
            frac("Error")
        );
        assert!(
            (frac("Critical") - 0.01).abs() < 0.006,
            "Critical {}",
            frac("Critical")
        );
    }

    #[test]
    fn time_is_monotone_and_well_formed() {
        let recs = sample(200);
        let mut prev = String::new();
        for r in recs {
            let t = r.get("time").unwrap().as_str().unwrap().to_owned();
            assert_eq!(t.len(), 23, "bad time format {t}");
            assert!(t >= prev, "time went backwards: {prev} then {t}");
            prev = t;
        }
    }

    #[test]
    fn keyword_skew() {
        let recs = sample(5_000);
        let count = |kw: &str| {
            recs.iter()
                .filter(|r| r.get("info").unwrap().as_str().unwrap().contains(kw))
                .count()
        };
        // Head keyword far more common than a tail keyword.
        assert!(
            count("kw000") > 10 * count("kw150").max(1),
            "head {} tail {}",
            count("kw000"),
            count("kw150")
        );
    }

    #[test]
    fn time_format_edges() {
        assert_eq!(format_time(0), "2016-01-01 00:00:00,000");
        assert!(format_time(86_400).starts_with("2016-01-02 00:00:00"));
        assert!(format_time(86_400 * 30).starts_with("2016-02-01"));
    }
}
