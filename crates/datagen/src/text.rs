//! Text synthesis helpers shared by the generators.

use rand::rngs::StdRng;
use rand::Rng;

/// Neutral filler words for review/message text.
pub const FILLER: &[&str] = &[
    "the",
    "a",
    "and",
    "with",
    "for",
    "this",
    "place",
    "was",
    "really",
    "very",
    "quite",
    "just",
    "had",
    "got",
    "our",
    "their",
    "service",
    "time",
    "staff",
    "menu",
    "order",
    "table",
    "night",
    "day",
    "visit",
    "experience",
    "price",
    "portion",
    "flavor",
    "dish",
    "drink",
    "coffee",
    "burger",
    "pizza",
    "salad",
    "again",
    "definitely",
    "maybe",
    "also",
    "then",
    "still",
];

/// Sentiment keywords used by the Yelp `text LIKE <string>` templates
/// (5 candidates per Table II).
pub const YELP_KEYWORDS: &[&str] = &["delicious", "terrible", "friendly", "overpriced", "cozy"];

/// Builds a vocabulary of `n` synthetic message keywords
/// (`kw000`…`kwNNN`) for the Windows-log `info LIKE <string>` template
/// (200 candidates per Table II).
pub fn keyword_pool(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("kw{i:03}")).collect()
}

/// Generates a sentence of `words` filler words, optionally embedding
/// each provided keyword.
pub fn sentence(rng: &mut StdRng, words: usize, keywords: &[&str]) -> String {
    let mut parts: Vec<&str> = (0..words)
        .map(|_| FILLER[rng.gen_range(0..FILLER.len())])
        .collect();
    for kw in keywords {
        let at = rng.gen_range(0..=parts.len());
        parts.insert(at, kw);
    }
    parts.join(" ")
}

/// Picks an index from explicit weights.
pub fn weighted_index(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut t = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if t < *w {
            return i;
        }
        t -= w;
    }
    weights.len() - 1
}

/// A Zipf-ish sampler over `0..n`: index `i` has weight `1/(i+1)^s`.
/// Used to give log keywords and user ids realistic skew.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        assert!(n > 0, "zipf needs at least one rank");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        ZipfSampler { cumulative }
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let t = rng.gen_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&t).expect("finite"))
        {
            Ok(i) => i + 1,
            Err(i) => i,
        }
        .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sentence_embeds_keywords() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = sentence(&mut rng, 10, &["delicious", "cozy"]);
        assert!(s.contains("delicious"));
        assert!(s.contains("cozy"));
        assert!(s.split(' ').count() >= 12);
    }

    #[test]
    fn keyword_pool_shape() {
        let pool = keyword_pool(200);
        assert_eq!(pool.len(), 200);
        assert_eq!(pool[0], "kw000");
        assert_eq!(pool[199], "kw199");
        // All distinct and none a substring of another (fixed width),
        // so LIKE selectivities don't bleed into each other.
        let set: std::collections::HashSet<_> = pool.iter().collect();
        assert_eq!(set.len(), 200);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let weights = [0.8, 0.15, 0.05];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert!(counts[0] > 7_500 && counts[0] < 8_500, "{counts:?}");
        assert!(counts[2] < 800, "{counts:?}");
    }

    #[test]
    fn zipf_is_skewed() {
        let mut rng = StdRng::seed_from_u64(3);
        let z = ZipfSampler::new(100, 1.2);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[10] && counts[10] > counts[50],
            "{:?}",
            &counts[..12]
        );
        // Every sample in range.
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        ZipfSampler::new(0, 1.0);
    }
}
