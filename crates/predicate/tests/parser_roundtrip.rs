//! Parser ↔ printer round-trip: `parse(display(x)) == x` for every
//! representable predicate (the `Display` impls are the canonical SQL
//! form used in reports and plans, so they must stay parseable).

use ciao_predicate::{parse_clause, parse_where, Clause, Query, SimplePredicate};
use proptest::prelude::*;

fn arb_simple() -> impl Strategy<Value = SimplePredicate> {
    let key = "[a-z][a-z_]{0,8}";
    prop_oneof![
        (key, "[a-zA-Z0-9 _\\.\\-]{0,12}")
            .prop_map(|(key, value)| SimplePredicate::StrEq { key, value }),
        (key, "[a-zA-Z0-9_\\-]{1,10}")
            .prop_map(|(key, needle)| { SimplePredicate::StrContains { key, needle } }),
        key.prop_map(|key| SimplePredicate::NotNull { key }),
        (key, -1000i64..1000).prop_map(|(key, value)| SimplePredicate::IntEq { key, value }),
        (key, any::<bool>()).prop_map(|(key, value)| SimplePredicate::BoolEq { key, value }),
        (key, -1000i64..1000).prop_map(|(key, value)| SimplePredicate::IntLt { key, value }),
        (key, -1000i64..1000).prop_map(|(key, value)| SimplePredicate::IntGt { key, value }),
    ]
}

fn arb_clause() -> impl Strategy<Value = Clause> {
    prop::collection::vec(arb_simple(), 1..4).prop_map(Clause::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn simple_predicate_roundtrips(p in arb_simple()) {
        let text = p.to_string();
        let back = parse_clause(&text)
            .unwrap_or_else(|e| panic!("display output {text:?} failed to parse: {e}"));
        prop_assert_eq!(back, Clause::single(p));
    }

    #[test]
    fn clause_roundtrips(c in arb_clause()) {
        let text = c.to_string();
        let back = parse_clause(&text)
            .unwrap_or_else(|e| panic!("display output {text:?} failed to parse: {e}"));
        prop_assert_eq!(back, c);
    }

    #[test]
    fn conjunction_roundtrips(clauses in prop::collection::vec(arb_clause(), 1..5)) {
        let q = Query::new("q", clauses.clone());
        // Strip the "SELECT COUNT(*) WHERE " prefix from Display.
        let text = q.to_string();
        let body = text.strip_prefix("SELECT COUNT(*) WHERE ").unwrap();
        let back = parse_where(body)
            .unwrap_or_else(|e| panic!("query body {body:?} failed to parse: {e}"));
        prop_assert_eq!(back, clauses);
    }
}

#[test]
fn float_eq_displays_parseably_for_fractional_values() {
    // FloatEq's Display uses Rust float formatting; fractional values
    // round-trip, integral ones parse back as IntEq (documented
    // asymmetry — FloatEq on an integral literal is not constructible
    // from SQL text either).
    let p = SimplePredicate::FloatEq {
        key: "score".into(),
        value: 2.5,
    };
    let back = parse_clause(&p.to_string()).unwrap();
    assert_eq!(back, Clause::single(p));
}
