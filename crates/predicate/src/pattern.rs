//! Compilation of supported predicates into pattern strings (Table I).
//!
//! | Predicate            | Example                     | Pattern string(s)    |
//! |----------------------|-----------------------------|----------------------|
//! | Exact string match   | `name = "Bob"`              | `"Bob"` (quoted)     |
//! | Substring match      | `text LIKE "%delicious%"`   | `delicious`          |
//! | Key-presence match   | `email != NULL`             | `"email"` (quoted)   |
//! | Key-value match      | `age = 10`                  | `"age"` then `10`    |
//!
//! A [`Pattern`] is what ships to the client. `Find` is a single
//! substring search over the raw record. `KeyThenValue` first locates
//! the quoted key, then scans forward for the value text, stopping at
//! the next key-value delimiter (`,`) — exactly the two-phase search
//! described in §IV-B. Both are conservative: they may return false
//! positives (pattern appears somewhere unrelated) but never false
//! negatives.

use crate::ast::{Clause, SimplePredicate};
use ciao_json::escape;
use serde::{Deserialize, Serialize};

/// A compiled raw-text matching program for one simple predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// Match when `needle` occurs anywhere in the raw record.
    Find {
        /// Bytes to search for (includes JSON quotes where Table I says
        /// so).
        needle: String,
    },
    /// Match when `key` occurs, and `value` occurs between the key and
    /// the next `,` (or end of record).
    KeyThenValue {
        /// Quoted key to locate first, e.g. `"age"`.
        key: String,
        /// Value text to find in the window after the key, e.g. `10`.
        value: String,
    },
}

impl Pattern {
    /// Total pattern length in bytes — the `len(p)` input of the cost
    /// model (paper §V-D).
    pub fn pattern_len(&self) -> usize {
        match self {
            Pattern::Find { needle } => needle.len(),
            Pattern::KeyThenValue { key, value } => key.len() + value.len(),
        }
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Pattern::Find { needle } => write!(f, "find({needle:?})"),
            Pattern::KeyThenValue { key, value } => write!(f, "kv({key:?}, {value:?})"),
        }
    }
}

/// Compiles one simple predicate to its pattern, or `None` when the
/// predicate is not client-supported.
///
/// Pattern text is built from the **JSON-escaped** form of keys and
/// values: the client matches against serialized records, where a
/// value like `a"b` appears as `a\"b`. Because JSON escaping maps each
/// character independently, `value contains needle` implies
/// `escape(value) contains escape(needle)` — so escaping preserves the
/// no-false-negative guarantee.
pub fn compile_simple(p: &SimplePredicate) -> Option<Pattern> {
    match p {
        SimplePredicate::StrEq { value, .. } => Some(Pattern::Find {
            // The paper's exact match searches the *quoted operand*; the
            // key is deliberately not part of the pattern (false
            // positives accepted, §IV-B).
            needle: format!("\"{}\"", escape(value)),
        }),
        SimplePredicate::StrContains { needle, .. } => Some(Pattern::Find {
            needle: escape(needle),
        }),
        SimplePredicate::NotNull { key } => Some(Pattern::Find {
            needle: format!("\"{}\"", escape(key)),
        }),
        SimplePredicate::IntEq { key, value } => Some(Pattern::KeyThenValue {
            key: format!("\"{}\"", escape(key)),
            value: value.to_string(),
        }),
        SimplePredicate::BoolEq { key, value } => Some(Pattern::KeyThenValue {
            key: format!("\"{}\"", escape(key)),
            value: value.to_string(),
        }),
        SimplePredicate::IntLt { .. }
        | SimplePredicate::IntGt { .. }
        | SimplePredicate::FloatEq { .. } => None,
    }
}

/// A compiled clause: the record matches when **any** of the patterns
/// matches (the clause is a disjunction).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClausePattern {
    /// One pattern per disjunct.
    pub patterns: Vec<Pattern>,
}

impl ClausePattern {
    /// Summed pattern length — the clause-level `len(p)` for costing.
    /// A disjunction's cost is the sum of its disjunct costs (§V-D).
    pub fn pattern_len(&self) -> usize {
        self.patterns.iter().map(Pattern::pattern_len).sum()
    }
}

/// Compiles a clause; `None` when any disjunct is unsupported (such a
/// clause cannot be a pushdown candidate, §V-A).
pub fn compile_clause(c: &Clause) -> Option<ClausePattern> {
    let patterns: Option<Vec<Pattern>> = c.disjuncts().iter().map(compile_simple).collect();
    patterns.map(|patterns| ClausePattern { patterns })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_exact_match() {
        let p = SimplePredicate::StrEq {
            key: "name".into(),
            value: "Bob".into(),
        };
        assert_eq!(
            compile_simple(&p),
            Some(Pattern::Find {
                needle: "\"Bob\"".into()
            })
        );
    }

    #[test]
    fn table1_substring_match() {
        let p = SimplePredicate::StrContains {
            key: "text".into(),
            needle: "delicious".into(),
        };
        assert_eq!(
            compile_simple(&p),
            Some(Pattern::Find {
                needle: "delicious".into()
            })
        );
    }

    #[test]
    fn table1_key_presence() {
        let p = SimplePredicate::NotNull {
            key: "email".into(),
        };
        assert_eq!(
            compile_simple(&p),
            Some(Pattern::Find {
                needle: "\"email\"".into()
            })
        );
    }

    #[test]
    fn table1_key_value() {
        let p = SimplePredicate::IntEq {
            key: "age".into(),
            value: 10,
        };
        assert_eq!(
            compile_simple(&p),
            Some(Pattern::KeyThenValue {
                key: "\"age\"".into(),
                value: "10".into()
            })
        );
        let b = SimplePredicate::BoolEq {
            key: "isActive".into(),
            value: true,
        };
        assert_eq!(
            compile_simple(&b),
            Some(Pattern::KeyThenValue {
                key: "\"isActive\"".into(),
                value: "true".into()
            })
        );
    }

    #[test]
    fn unsupported_predicates_do_not_compile() {
        assert_eq!(
            compile_simple(&SimplePredicate::IntLt {
                key: "a".into(),
                value: 1
            }),
            None
        );
        assert_eq!(
            compile_simple(&SimplePredicate::IntGt {
                key: "a".into(),
                value: 1
            }),
            None
        );
        assert_eq!(
            compile_simple(&SimplePredicate::FloatEq {
                key: "a".into(),
                value: 2.4
            }),
            None
        );
    }

    #[test]
    fn clause_compilation_is_all_or_nothing() {
        let ok = Clause::new(vec![
            SimplePredicate::StrEq {
                key: "name".into(),
                value: "Bob".into(),
            },
            SimplePredicate::StrEq {
                key: "name".into(),
                value: "John".into(),
            },
        ]);
        let cp = compile_clause(&ok).unwrap();
        assert_eq!(cp.patterns.len(), 2);
        assert_eq!(cp.pattern_len(), 5 + 6); // "Bob" + "John" with quotes

        let mixed = Clause::new(vec![
            SimplePredicate::StrEq {
                key: "name".into(),
                value: "Bob".into(),
            },
            SimplePredicate::IntLt {
                key: "age".into(),
                value: 20,
            },
        ]);
        assert_eq!(compile_clause(&mixed), None);
    }

    #[test]
    fn escapable_characters_compiled_escaped() {
        let p = SimplePredicate::StrEq {
            key: "k".into(),
            value: "a\"b\\c".into(),
        };
        assert_eq!(
            compile_simple(&p),
            Some(Pattern::Find {
                needle: "\"a\\\"b\\\\c\"".into()
            })
        );
        let c = SimplePredicate::StrContains {
            key: "k".into(),
            needle: "x\ny".into(),
        };
        assert_eq!(
            compile_simple(&c),
            Some(Pattern::Find {
                needle: "x\\ny".into()
            })
        );
    }

    #[test]
    fn pattern_len() {
        let p = Pattern::Find {
            needle: "abc".into(),
        };
        assert_eq!(p.pattern_len(), 3);
        let kv = Pattern::KeyThenValue {
            key: "\"age\"".into(),
            value: "10".into(),
        };
        assert_eq!(kv.pattern_len(), 7);
    }

    #[test]
    fn display() {
        let p = Pattern::Find { needle: "x".into() };
        assert_eq!(p.to_string(), "find(\"x\")");
    }
}
