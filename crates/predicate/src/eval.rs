//! Exact (typed) predicate evaluation on parsed records.
//!
//! This is the server-side ground truth. Because client-side raw
//! matching admits false positives, every tuple surviving data skipping
//! is re-checked with these functions before it reaches a query result
//! (paper §IV-B). The invariant tying the two worlds together — raw
//! matching never returns `false` when typed evaluation returns `true`
//! — is property-tested in `ciao-client`.

use crate::ast::{Clause, Query, SimplePredicate};
use ciao_json::JsonValue;

/// Evaluates one simple predicate against a parsed record.
///
/// Missing keys make every predicate false (SQL-ish semantics: a
/// comparison with an absent value cannot be satisfied). Type
/// mismatches are false, not errors — records in CIAO's target
/// workloads are heterogeneous machine logs.
pub fn eval_simple(p: &SimplePredicate, record: &JsonValue) -> bool {
    match p {
        SimplePredicate::StrEq { key, value } => record
            .get(key)
            .and_then(JsonValue::as_str)
            .is_some_and(|s| s == value),
        SimplePredicate::StrContains { key, needle } => record
            .get(key)
            .and_then(JsonValue::as_str)
            .is_some_and(|s| s.contains(needle.as_str())),
        SimplePredicate::NotNull { key } => record.get(key).is_some_and(|v| !v.is_null()),
        SimplePredicate::IntEq { key, value } => record
            .get(key)
            .and_then(JsonValue::as_i64)
            .is_some_and(|i| i == *value),
        SimplePredicate::BoolEq { key, value } => record
            .get(key)
            .and_then(JsonValue::as_bool)
            .is_some_and(|b| b == *value),
        SimplePredicate::IntLt { key, value } => record
            .get(key)
            .and_then(JsonValue::as_i64)
            .is_some_and(|i| i < *value),
        SimplePredicate::IntGt { key, value } => record
            .get(key)
            .and_then(JsonValue::as_i64)
            .is_some_and(|i| i > *value),
        SimplePredicate::FloatEq { key, value } => record
            .get(key)
            .and_then(JsonValue::as_f64)
            .is_some_and(|f| f == *value),
    }
}

/// Evaluates a clause (disjunction): true when any disjunct holds.
pub fn eval_clause(c: &Clause, record: &JsonValue) -> bool {
    c.disjuncts().iter().any(|p| eval_simple(p, record))
}

/// Evaluates a query's full conjunction: true when every clause holds.
pub fn eval_query(q: &Query, record: &JsonValue) -> bool {
    q.clauses.iter().all(|c| eval_clause(c, record))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_json::parse;

    fn record() -> JsonValue {
        parse(
            r#"{"name":"Bob","age":22,"score":4.5,"active":true,
                "email":null,"text":"absolutely delicious food"}"#,
        )
        .unwrap()
    }

    #[test]
    fn str_eq() {
        let r = record();
        assert!(eval_simple(
            &SimplePredicate::StrEq {
                key: "name".into(),
                value: "Bob".into()
            },
            &r
        ));
        assert!(!eval_simple(
            &SimplePredicate::StrEq {
                key: "name".into(),
                value: "Bo".into()
            },
            &r
        ));
        assert!(!eval_simple(
            &SimplePredicate::StrEq {
                key: "missing".into(),
                value: "Bob".into()
            },
            &r
        ));
        // Type mismatch: age is a number, not the string "22".
        assert!(!eval_simple(
            &SimplePredicate::StrEq {
                key: "age".into(),
                value: "22".into()
            },
            &r
        ));
    }

    #[test]
    fn str_contains() {
        let r = record();
        assert!(eval_simple(
            &SimplePredicate::StrContains {
                key: "text".into(),
                needle: "delicious".into()
            },
            &r
        ));
        assert!(!eval_simple(
            &SimplePredicate::StrContains {
                key: "text".into(),
                needle: "horrible".into()
            },
            &r
        ));
        // Empty needle matches any present string.
        assert!(eval_simple(
            &SimplePredicate::StrContains {
                key: "text".into(),
                needle: "".into()
            },
            &r
        ));
    }

    #[test]
    fn not_null_semantics() {
        let r = record();
        assert!(eval_simple(
            &SimplePredicate::NotNull { key: "name".into() },
            &r
        ));
        // Present but null fails.
        assert!(!eval_simple(
            &SimplePredicate::NotNull {
                key: "email".into()
            },
            &r
        ));
        // Absent fails.
        assert!(!eval_simple(
            &SimplePredicate::NotNull {
                key: "phone".into()
            },
            &r
        ));
    }

    #[test]
    fn int_and_bool_eq() {
        let r = record();
        assert!(eval_simple(
            &SimplePredicate::IntEq {
                key: "age".into(),
                value: 22
            },
            &r
        ));
        assert!(!eval_simple(
            &SimplePredicate::IntEq {
                key: "age".into(),
                value: 23
            },
            &r
        ));
        // Float-valued field does not satisfy integer equality.
        assert!(!eval_simple(
            &SimplePredicate::IntEq {
                key: "score".into(),
                value: 4
            },
            &r
        ));
        assert!(eval_simple(
            &SimplePredicate::BoolEq {
                key: "active".into(),
                value: true
            },
            &r
        ));
        assert!(!eval_simple(
            &SimplePredicate::BoolEq {
                key: "active".into(),
                value: false
            },
            &r
        ));
    }

    #[test]
    fn ranges_and_float() {
        let r = record();
        assert!(eval_simple(
            &SimplePredicate::IntLt {
                key: "age".into(),
                value: 30
            },
            &r
        ));
        assert!(!eval_simple(
            &SimplePredicate::IntLt {
                key: "age".into(),
                value: 22
            },
            &r
        ));
        assert!(eval_simple(
            &SimplePredicate::IntGt {
                key: "age".into(),
                value: 21
            },
            &r
        ));
        assert!(eval_simple(
            &SimplePredicate::FloatEq {
                key: "score".into(),
                value: 4.5
            },
            &r
        ));
        // Integer field satisfies float equality via numeric view.
        assert!(eval_simple(
            &SimplePredicate::FloatEq {
                key: "age".into(),
                value: 22.0
            },
            &r
        ));
    }

    #[test]
    fn clause_disjunction() {
        let r = record();
        let c = Clause::new(vec![
            SimplePredicate::StrEq {
                key: "name".into(),
                value: "Alice".into(),
            },
            SimplePredicate::StrEq {
                key: "name".into(),
                value: "Bob".into(),
            },
        ]);
        assert!(eval_clause(&c, &r));
        let miss = Clause::new(vec![
            SimplePredicate::StrEq {
                key: "name".into(),
                value: "Alice".into(),
            },
            SimplePredicate::StrEq {
                key: "name".into(),
                value: "Carol".into(),
            },
        ]);
        assert!(!eval_clause(&miss, &r));
    }

    #[test]
    fn query_conjunction() {
        let r = record();
        let hit = Query::new(
            "q",
            vec![
                Clause::single(SimplePredicate::StrEq {
                    key: "name".into(),
                    value: "Bob".into(),
                }),
                Clause::single(SimplePredicate::IntEq {
                    key: "age".into(),
                    value: 22,
                }),
            ],
        );
        assert!(eval_query(&hit, &r));
        let miss = Query::new(
            "q",
            vec![
                Clause::single(SimplePredicate::StrEq {
                    key: "name".into(),
                    value: "Bob".into(),
                }),
                Clause::single(SimplePredicate::IntEq {
                    key: "age".into(),
                    value: 99,
                }),
            ],
        );
        assert!(!eval_query(&miss, &r));
        // Empty conjunction is vacuously true.
        assert!(eval_query(&Query::new("q", vec![]), &r));
    }

    #[test]
    fn non_object_records() {
        let arr = parse("[1,2,3]").unwrap();
        assert!(!eval_simple(
            &SimplePredicate::NotNull { key: "a".into() },
            &arr
        ));
        assert!(!eval_simple(
            &SimplePredicate::StrEq {
                key: "a".into(),
                value: "x".into()
            },
            &arr
        ));
    }
}
