//! Selectivity estimation from sampled records.
//!
//! The optimizer's objective `f(S) = Σ_q freq(q)·(1 − Π sel(p))` needs
//! per-clause selectivities. The paper estimates them "by evaluating
//! \[predicates\] on sampled datasets" (§VII-C); this module does exactly
//! that: evaluate each clause with exact typed semantics over a sample
//! and take the hit fraction, with Laplace smoothing so that a clause
//! that misses the whole sample is not treated as impossibly selective.

use crate::ast::Clause;
use crate::eval::eval_clause;
use ciao_json::JsonValue;
use std::collections::HashMap;

/// A map from clause to estimated selectivity in `(0, 1]`.
#[derive(Debug, Clone)]
pub struct SelectivityMap {
    map: HashMap<Clause, f64>,
    /// Returned for clauses never estimated; deliberately pessimistic
    /// (a predicate we know nothing about filters nothing).
    default: f64,
}

impl SelectivityMap {
    /// Creates an empty map with the given default selectivity.
    pub fn with_default(default: f64) -> SelectivityMap {
        assert!(
            (0.0..=1.0).contains(&default),
            "selectivity must be in [0,1]"
        );
        SelectivityMap {
            map: HashMap::new(),
            default,
        }
    }

    /// Records a selectivity for a clause.
    pub fn insert(&mut self, clause: Clause, sel: f64) {
        assert!(
            (0.0..=1.0).contains(&sel) && sel.is_finite(),
            "selectivity {sel} out of range for {clause}"
        );
        self.map.insert(clause, sel);
    }

    /// Looks up a clause, falling back to the default.
    pub fn get(&self, clause: &Clause) -> f64 {
        self.map.get(clause).copied().unwrap_or(self.default)
    }

    /// True when the clause has an explicit estimate.
    pub fn contains(&self, clause: &Clause) -> bool {
        self.map.contains_key(clause)
    }

    /// Number of explicit estimates.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no explicit estimates exist.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(clause, selectivity)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&Clause, f64)> {
        self.map.iter().map(|(c, s)| (c, *s))
    }
}

/// Estimates the selectivity of one clause over a sample using exact
/// evaluation, with add-one (Laplace) smoothing:
/// `(hits + 1) / (n + 2)`. Returns the smoothed prior `0.5` on an
/// empty sample.
pub fn estimate_clause_selectivity(clause: &Clause, sample: &[JsonValue]) -> f64 {
    let n = sample.len();
    let hits = sample.iter().filter(|r| eval_clause(clause, r)).count();
    (hits + 1) as f64 / (n + 2) as f64
}

/// Builds selectivity estimates for many clauses over one sample pass.
#[derive(Debug)]
pub struct SelectivityEstimator<'a> {
    sample: &'a [JsonValue],
}

impl<'a> SelectivityEstimator<'a> {
    /// Wraps a sample of parsed records.
    pub fn new(sample: &'a [JsonValue]) -> Self {
        SelectivityEstimator { sample }
    }

    /// Sample size.
    pub fn sample_size(&self) -> usize {
        self.sample.len()
    }

    /// Estimates every clause into a [`SelectivityMap`]. Duplicate
    /// clauses are estimated once.
    pub fn estimate_all<'c>(
        &self,
        clauses: impl IntoIterator<Item = &'c Clause>,
    ) -> SelectivityMap {
        let mut map = SelectivityMap::with_default(1.0);
        for clause in clauses {
            if !map.contains(clause) {
                map.insert(
                    clause.clone(),
                    estimate_clause_selectivity(clause, self.sample),
                );
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::SimplePredicate;
    use ciao_json::parse;

    fn sample() -> Vec<JsonValue> {
        (0..100)
            .map(|i| parse(&format!(r#"{{"stars":{},"name":"user{}"}}"#, i % 5 + 1, i)).unwrap())
            .collect()
    }

    fn stars_eq(v: i64) -> Clause {
        Clause::single(SimplePredicate::IntEq {
            key: "stars".into(),
            value: v,
        })
    }

    #[test]
    fn estimates_hit_fraction() {
        let s = sample();
        // 20 of 100 records have stars = 3; smoothed (20+1)/102.
        let sel = estimate_clause_selectivity(&stars_eq(3), &s);
        assert!((sel - 21.0 / 102.0).abs() < 1e-12);
    }

    #[test]
    fn zero_hits_smoothed_above_zero() {
        let s = sample();
        let sel = estimate_clause_selectivity(&stars_eq(99), &s);
        assert!(sel > 0.0);
        assert!(sel < 0.02);
    }

    #[test]
    fn all_hits_smoothed_below_one() {
        let s = sample();
        let c = Clause::single(SimplePredicate::NotNull {
            key: "stars".into(),
        });
        let sel = estimate_clause_selectivity(&c, &s);
        assert!(sel < 1.0);
        assert!(sel > 0.98);
    }

    #[test]
    fn empty_sample_gives_prior() {
        let sel = estimate_clause_selectivity(&stars_eq(1), &[]);
        assert_eq!(sel, 0.5);
    }

    #[test]
    fn estimator_dedups() {
        let s = sample();
        let clauses = vec![stars_eq(1), stars_eq(2), stars_eq(1)];
        let map = SelectivityEstimator::new(&s).estimate_all(&clauses);
        assert_eq!(map.len(), 2);
        assert!(map.contains(&stars_eq(1)));
        assert!(map.contains(&stars_eq(2)));
        // Unknown clause falls back to default 1.0 (filters nothing).
        assert_eq!(map.get(&stars_eq(5)), 1.0);
    }

    #[test]
    fn map_validation() {
        let mut map = SelectivityMap::with_default(1.0);
        map.insert(stars_eq(1), 0.25);
        assert_eq!(map.get(&stars_eq(1)), 0.25);
        assert_eq!(map.iter().count(), 1);
        assert!(!map.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_selectivity() {
        let mut map = SelectivityMap::with_default(1.0);
        map.insert(stars_eq(1), 1.5);
    }
}
