//! Predicate model for CIAO.
//!
//! A query's `WHERE` clause is a **conjunction of disjunctive clauses**
//! (paper §V-A): `name IN ("Bob","John") AND age = 20` has two clauses,
//! the first a two-way disjunction. The clause is CIAO's atomic unit of
//! pushdown — pushing only `name = "Bob"` could wrongly discard records
//! matching `name = "John"`.
//!
//! This crate owns:
//!
//! * the AST ([`SimplePredicate`], [`Clause`], [`Query`]),
//! * compilation of supported predicates into **pattern strings**
//!   (paper Table I) that clients evaluate with pure substring search
//!   ([`Pattern`], [`compile_simple`], [`compile_clause`]),
//! * exact **typed evaluation** against parsed records ([`eval`]) —
//!   the ground truth used by the server to re-verify client bits
//!   (client matching may produce false positives, never negatives),
//! * a small SQL-ish text [`parser`] for examples and tests, and
//! * [`selectivity`] estimation from sampled records.

#![warn(missing_docs)]

pub mod ast;
pub mod eval;
pub mod parser;
pub mod pattern;
pub mod selectivity;
pub mod sql_bridge;

pub use ast::{Clause, Query, SimplePredicate};
pub use eval::{eval_clause, eval_query, eval_simple};
pub use parser::{parse_clause, parse_query, parse_where, PredicateParseError};
pub use pattern::{compile_clause, compile_simple, ClausePattern, Pattern};
pub use selectivity::{estimate_clause_selectivity, SelectivityEstimator, SelectivityMap};
pub use sql_bridge::{clause_from_sql, clauses_from_sql, simple_from_sql};
