//! A small SQL-ish parser for predicate text.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! where   := clause ( AND clause )*
//! clause  := '(' simple ( OR simple )* ')'
//!          | key IN '(' literal ( ',' literal )* ')'
//!          | simple
//! simple  := key '=' literal
//!          | key LIKE string          -- string must be "%needle%"
//!          | key '!=' NULL | key IS NOT NULL
//!          | key '<' int | key '>' int
//! literal := string | int | float | true | false
//! ```
//!
//! Since the SQL frontend landed, this module is a thin back-compat
//! shim: the grammar above is exactly the WHERE sub-grammar of
//! `ciao_sql`, so parsing delegates to
//! [`ciao_sql::parse_where_body`] and the resulting SQL predicate
//! tree is folded into [`Clause`]s by [`crate::sql_bridge`]. Existing
//! callers (`parse_where(r#"name = "Bob" AND age = 20"#)`, the
//! optimizer's workload files) keep parsing identically — the
//! differential suite in `tests/sql_differential.rs` holds this shim
//! to the seed parser's behavior.

use crate::ast::{Clause, Query};
use crate::sql_bridge::clauses_from_sql;

/// Parse failure with byte offset into the predicate text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicateParseError {
    /// Byte offset of the offending token.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for PredicateParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "predicate parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for PredicateParseError {}

impl From<ciao_sql::SqlError> for PredicateParseError {
    fn from(e: ciao_sql::SqlError) -> PredicateParseError {
        PredicateParseError {
            offset: e.span.start,
            message: e.message,
        }
    }
}

/// Parses a full `WHERE` body into its conjunctive clauses.
pub fn parse_where(input: &str) -> Result<Vec<Clause>, PredicateParseError> {
    let clauses = ciao_sql::parse_where_body(input)?;
    Ok(clauses_from_sql(&clauses))
}

/// Parses a single clause, e.g. `(name = "a" OR name = "b")`.
pub fn parse_clause(input: &str) -> Result<Clause, PredicateParseError> {
    let clauses = parse_where(input)?;
    if clauses.len() != 1 {
        return Err(PredicateParseError {
            offset: 0,
            message: format!("expected one clause, found {}", clauses.len()),
        });
    }
    Ok(clauses.into_iter().next().expect("checked length"))
}

/// Parses a named query from a `WHERE` body with frequency 1.
pub fn parse_query(name: &str, where_body: &str) -> Result<Query, PredicateParseError> {
    Ok(Query::new(name, parse_where(where_body)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::SimplePredicate;

    #[test]
    fn simple_forms() {
        assert_eq!(
            parse_clause(r#"name = "Bob""#).unwrap(),
            Clause::single(SimplePredicate::StrEq {
                key: "name".into(),
                value: "Bob".into()
            })
        );
        assert_eq!(
            parse_clause("age = 10").unwrap(),
            Clause::single(SimplePredicate::IntEq {
                key: "age".into(),
                value: 10
            })
        );
        assert_eq!(
            parse_clause("score = 2.5").unwrap(),
            Clause::single(SimplePredicate::FloatEq {
                key: "score".into(),
                value: 2.5
            })
        );
        assert_eq!(
            parse_clause("isActive = true").unwrap(),
            Clause::single(SimplePredicate::BoolEq {
                key: "isActive".into(),
                value: true
            })
        );
        assert_eq!(
            parse_clause("email != NULL").unwrap(),
            Clause::single(SimplePredicate::NotNull {
                key: "email".into()
            })
        );
        assert_eq!(
            parse_clause("email IS NOT NULL").unwrap(),
            Clause::single(SimplePredicate::NotNull {
                key: "email".into()
            })
        );
        assert_eq!(
            parse_clause(r#"text LIKE "%delicious%""#).unwrap(),
            Clause::single(SimplePredicate::StrContains {
                key: "text".into(),
                needle: "delicious".into()
            })
        );
        assert_eq!(
            parse_clause("age < 30").unwrap(),
            Clause::single(SimplePredicate::IntLt {
                key: "age".into(),
                value: 30
            })
        );
        assert_eq!(
            parse_clause("age > -5").unwrap(),
            Clause::single(SimplePredicate::IntGt {
                key: "age".into(),
                value: -5
            })
        );
    }

    #[test]
    fn inclusive_bounds_lower_onto_exclusive() {
        // New with the SQL frontend: `<=`/`>=` desugar onto the
        // existing exclusive predicates.
        assert_eq!(
            parse_clause("age <= 29").unwrap(),
            Clause::single(SimplePredicate::IntLt {
                key: "age".into(),
                value: 30
            })
        );
        assert_eq!(
            parse_clause("age >= -4").unwrap(),
            Clause::single(SimplePredicate::IntGt {
                key: "age".into(),
                value: -5
            })
        );
    }

    #[test]
    fn in_list_desugars_to_disjunction() {
        let c = parse_clause(r#"name IN ("Bob", "John")"#).unwrap();
        assert_eq!(c.arity(), 2);
        assert_eq!(
            c.disjuncts()[1],
            SimplePredicate::StrEq {
                key: "name".into(),
                value: "John".into()
            }
        );
        let ints = parse_clause("stars IN (4, 5)").unwrap();
        assert_eq!(
            ints.disjuncts()[0],
            SimplePredicate::IntEq {
                key: "stars".into(),
                value: 4
            }
        );
    }

    #[test]
    fn parenthesized_or() {
        let c = parse_clause(r#"(name = "Bob" OR age = 20)"#).unwrap();
        assert_eq!(c.arity(), 2);
    }

    #[test]
    fn conjunction() {
        let clauses =
            parse_where(r#"name IN ("Bob","John") AND age = 20 AND text LIKE "%x%""#).unwrap();
        assert_eq!(clauses.len(), 3);
        assert_eq!(clauses[0].arity(), 2);
    }

    #[test]
    fn full_query() {
        let q = parse_query("q7", r#"level = "Error" AND info LIKE "%disk%""#).unwrap();
        assert_eq!(q.name, "q7");
        assert_eq!(q.clauses.len(), 2);
        assert_eq!(q.freq, 1.0);
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse_where(r#"a = 1 and b = 2"#).is_ok());
        assert!(parse_clause(r#"t like "%x%""#).is_ok());
        assert!(parse_clause(r#"k in (1,2)"#).is_ok());
    }

    #[test]
    fn single_quotes_accepted() {
        let c = parse_clause("name = 'Bob'").unwrap();
        assert_eq!(
            c,
            Clause::single(SimplePredicate::StrEq {
                key: "name".into(),
                value: "Bob".into()
            })
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse_where("name = ").unwrap_err();
        assert!(err.message.contains("literal"));
        let err = parse_where(r#"name ~ "Bob""#).unwrap_err();
        assert!(err.offset > 0);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "= 1",
            "a =",
            "a != 5",
            "a LIKE \"no-wildcards\"",
            "a LIKE \"%%\"",
            "a LIKE \"%x%y%\"",
            "a IN ()",
            "a IN (true)",
            "(a = 1",
            "a = 1 AND",
            "a = 1 extra",
            "a < 1.5",
            "a IS NULL",
            "\"unterminated",
        ] {
            assert!(parse_where(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn dotted_keys() {
        let c = parse_clause(r#"address.city = "Chicago""#).unwrap();
        assert_eq!(c.disjuncts()[0].key(), "address.city");
    }
}
