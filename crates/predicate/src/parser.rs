//! A small SQL-ish parser for predicate text.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! where   := clause ( AND clause )*
//! clause  := '(' simple ( OR simple )* ')'
//!          | key IN '(' literal ( ',' literal )* ')'
//!          | simple
//! simple  := key '=' literal
//!          | key LIKE string          -- string must be "%needle%"
//!          | key '!=' NULL | key IS NOT NULL
//!          | key '<' int | key '>' int
//! literal := string | int | float | true | false
//! ```
//!
//! This exists for ergonomic examples and tests
//! (`parse_where(r#"name = "Bob" AND age = 20"#)`), not as a general
//! SQL front end.

use crate::ast::{Clause, Query, SimplePredicate};

/// Parse failure with byte offset into the predicate text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicateParseError {
    /// Byte offset of the offending token.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for PredicateParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "predicate parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for PredicateParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    Eq,
    Neq,
    Lt,
    Gt,
    LParen,
    RParen,
    Comma,
}

struct Lexer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn err(&self, message: impl Into<String>) -> PredicateParseError {
        PredicateParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn tokens(mut self) -> Result<Vec<(usize, Token)>, PredicateParseError> {
        let mut out = Vec::new();
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len() {
            let start = self.pos;
            let b = bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => {
                    self.pos += 1;
                }
                b'(' => {
                    out.push((start, Token::LParen));
                    self.pos += 1;
                }
                b')' => {
                    out.push((start, Token::RParen));
                    self.pos += 1;
                }
                b',' => {
                    out.push((start, Token::Comma));
                    self.pos += 1;
                }
                b'=' => {
                    out.push((start, Token::Eq));
                    self.pos += 1;
                }
                b'<' => {
                    out.push((start, Token::Lt));
                    self.pos += 1;
                }
                b'>' => {
                    out.push((start, Token::Gt));
                    self.pos += 1;
                }
                b'!' => {
                    if bytes.get(self.pos + 1) == Some(&b'=') {
                        out.push((start, Token::Neq));
                        self.pos += 2;
                    } else {
                        return Err(self.err("expected `!=`"));
                    }
                }
                b'"' | b'\'' => {
                    let quote = b;
                    self.pos += 1;
                    let content_start = self.pos;
                    while self.pos < bytes.len() && bytes[self.pos] != quote {
                        self.pos += 1;
                    }
                    if self.pos == bytes.len() {
                        return Err(self.err("unterminated string literal"));
                    }
                    out.push((
                        start,
                        Token::Str(self.input[content_start..self.pos].to_owned()),
                    ));
                    self.pos += 1;
                }
                b'-' | b'0'..=b'9' => {
                    let num_start = self.pos;
                    self.pos += 1;
                    while self.pos < bytes.len()
                        && matches!(
                            bytes[self.pos],
                            b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'
                        )
                    {
                        // Stop `-` from being consumed as part of a second number.
                        if matches!(bytes[self.pos], b'+' | b'-')
                            && !matches!(bytes[self.pos - 1], b'e' | b'E')
                        {
                            break;
                        }
                        self.pos += 1;
                    }
                    let text = &self.input[num_start..self.pos];
                    if let Ok(i) = text.parse::<i64>() {
                        out.push((num_start, Token::Int(i)));
                    } else if let Ok(f) = text.parse::<f64>() {
                        out.push((num_start, Token::Float(f)));
                    } else {
                        return Err(PredicateParseError {
                            offset: num_start,
                            message: format!("malformed number `{text}`"),
                        });
                    }
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    while self.pos < bytes.len()
                        && (bytes[self.pos].is_ascii_alphanumeric()
                            || matches!(bytes[self.pos], b'_' | b'.'))
                    {
                        self.pos += 1;
                    }
                    out.push((start, Token::Ident(self.input[start..self.pos].to_owned())));
                }
                other => {
                    return Err(self.err(format!("unexpected character `{}`", other as char)));
                }
            }
        }
        Ok(out)
    }
}

struct TokenStream {
    tokens: Vec<(usize, Token)>,
    idx: usize,
    input_len: usize,
}

impl TokenStream {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.idx).map(|(_, t)| t)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.idx)
            .map_or(self.input_len, |(o, _)| *o)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.idx).map(|(_, t)| t.clone());
        if t.is_some() {
            self.idx += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> PredicateParseError {
        PredicateParseError {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn expect_ident_kw(&mut self, kw: &str) -> Result<(), PredicateParseError> {
        match self.next() {
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case(kw) => Ok(()),
            _ => Err(self.err(format!("expected keyword `{kw}`"))),
        }
    }

    fn peek_is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(w)) if w.eq_ignore_ascii_case(kw))
    }
}

/// Parses a full `WHERE` body into its conjunctive clauses.
pub fn parse_where(input: &str) -> Result<Vec<Clause>, PredicateParseError> {
    let tokens = Lexer { input, pos: 0 }.tokens()?;
    let mut ts = TokenStream {
        tokens,
        idx: 0,
        input_len: input.len(),
    };
    let mut clauses = vec![parse_clause_inner(&mut ts)?];
    while ts.peek_is_kw("and") {
        ts.next();
        clauses.push(parse_clause_inner(&mut ts)?);
    }
    if ts.peek().is_some() {
        return Err(ts.err("trailing input after predicates"));
    }
    Ok(clauses)
}

/// Parses a single clause, e.g. `(name = "a" OR name = "b")`.
pub fn parse_clause(input: &str) -> Result<Clause, PredicateParseError> {
    let clauses = parse_where(input)?;
    if clauses.len() != 1 {
        return Err(PredicateParseError {
            offset: 0,
            message: format!("expected one clause, found {}", clauses.len()),
        });
    }
    Ok(clauses.into_iter().next().expect("checked length"))
}

/// Parses a named query from a `WHERE` body with frequency 1.
pub fn parse_query(name: &str, where_body: &str) -> Result<Query, PredicateParseError> {
    Ok(Query::new(name, parse_where(where_body)?))
}

fn parse_clause_inner(ts: &mut TokenStream) -> Result<Clause, PredicateParseError> {
    if ts.peek() == Some(&Token::LParen) {
        ts.next();
        let mut disjuncts = vec![parse_simple(ts)?];
        while ts.peek_is_kw("or") {
            ts.next();
            disjuncts.push(parse_simple(ts)?);
        }
        match ts.next() {
            Some(Token::RParen) => Ok(Clause::new(disjuncts)),
            _ => Err(ts.err("expected `)` to close disjunction")),
        }
    } else {
        // Could be `key IN (...)` which desugars to a disjunction.
        parse_simple_or_in(ts)
    }
}

fn parse_simple_or_in(ts: &mut TokenStream) -> Result<Clause, PredicateParseError> {
    // Look ahead: key IN '(' ... ')'
    let save = ts.idx;
    if let Some(Token::Ident(key)) = ts.next() {
        if ts.peek_is_kw("in") {
            ts.next();
            if ts.next() != Some(Token::LParen) {
                return Err(ts.err("expected `(` after IN"));
            }
            let mut disjuncts = Vec::new();
            loop {
                let p = match ts.next() {
                    Some(Token::Str(s)) => SimplePredicate::StrEq {
                        key: key.clone(),
                        value: s,
                    },
                    Some(Token::Int(i)) => SimplePredicate::IntEq {
                        key: key.clone(),
                        value: i,
                    },
                    _ => return Err(ts.err("expected string or integer literal in IN list")),
                };
                disjuncts.push(p);
                match ts.next() {
                    Some(Token::Comma) => continue,
                    Some(Token::RParen) => break,
                    _ => return Err(ts.err("expected `,` or `)` in IN list")),
                }
            }
            return Ok(Clause::new(disjuncts));
        }
    }
    ts.idx = save;
    Ok(Clause::single(parse_simple(ts)?))
}

fn parse_simple(ts: &mut TokenStream) -> Result<SimplePredicate, PredicateParseError> {
    let key = match ts.next() {
        Some(Token::Ident(k)) => k,
        _ => return Err(ts.err("expected a key identifier")),
    };
    match ts.next() {
        Some(Token::Eq) => match ts.next() {
            Some(Token::Str(s)) => Ok(SimplePredicate::StrEq { key, value: s }),
            Some(Token::Int(i)) => Ok(SimplePredicate::IntEq { key, value: i }),
            Some(Token::Float(x)) => Ok(SimplePredicate::FloatEq { key, value: x }),
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case("true") => {
                Ok(SimplePredicate::BoolEq { key, value: true })
            }
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case("false") => {
                Ok(SimplePredicate::BoolEq { key, value: false })
            }
            _ => Err(ts.err("expected literal after `=`")),
        },
        Some(Token::Neq) => match ts.next() {
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case("null") => {
                Ok(SimplePredicate::NotNull { key })
            }
            _ => Err(ts.err("only `!= NULL` is supported after `!=`")),
        },
        Some(Token::Lt) => match ts.next() {
            Some(Token::Int(i)) => Ok(SimplePredicate::IntLt { key, value: i }),
            _ => Err(ts.err("expected integer after `<`")),
        },
        Some(Token::Gt) => match ts.next() {
            Some(Token::Int(i)) => Ok(SimplePredicate::IntGt { key, value: i }),
            _ => Err(ts.err("expected integer after `>`")),
        },
        Some(Token::Ident(w)) if w.eq_ignore_ascii_case("like") => match ts.next() {
            Some(Token::Str(s)) => {
                let needle = s
                    .strip_prefix('%')
                    .and_then(|s| s.strip_suffix('%'))
                    .ok_or_else(|| ts.err("LIKE pattern must be \"%needle%\""))?;
                if needle.contains('%') || needle.is_empty() {
                    return Err(ts.err("LIKE pattern must be \"%needle%\" with a non-empty needle"));
                }
                Ok(SimplePredicate::StrContains {
                    key,
                    needle: needle.to_owned(),
                })
            }
            _ => Err(ts.err("expected string pattern after LIKE")),
        },
        Some(Token::Ident(w)) if w.eq_ignore_ascii_case("is") => {
            ts.expect_ident_kw("not")?;
            ts.expect_ident_kw("null")?;
            Ok(SimplePredicate::NotNull { key })
        }
        _ => Err(ts.err("expected an operator (=, !=, <, >, LIKE, IS NOT NULL, IN)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_forms() {
        assert_eq!(
            parse_clause(r#"name = "Bob""#).unwrap(),
            Clause::single(SimplePredicate::StrEq {
                key: "name".into(),
                value: "Bob".into()
            })
        );
        assert_eq!(
            parse_clause("age = 10").unwrap(),
            Clause::single(SimplePredicate::IntEq {
                key: "age".into(),
                value: 10
            })
        );
        assert_eq!(
            parse_clause("score = 2.5").unwrap(),
            Clause::single(SimplePredicate::FloatEq {
                key: "score".into(),
                value: 2.5
            })
        );
        assert_eq!(
            parse_clause("isActive = true").unwrap(),
            Clause::single(SimplePredicate::BoolEq {
                key: "isActive".into(),
                value: true
            })
        );
        assert_eq!(
            parse_clause("email != NULL").unwrap(),
            Clause::single(SimplePredicate::NotNull {
                key: "email".into()
            })
        );
        assert_eq!(
            parse_clause("email IS NOT NULL").unwrap(),
            Clause::single(SimplePredicate::NotNull {
                key: "email".into()
            })
        );
        assert_eq!(
            parse_clause(r#"text LIKE "%delicious%""#).unwrap(),
            Clause::single(SimplePredicate::StrContains {
                key: "text".into(),
                needle: "delicious".into()
            })
        );
        assert_eq!(
            parse_clause("age < 30").unwrap(),
            Clause::single(SimplePredicate::IntLt {
                key: "age".into(),
                value: 30
            })
        );
        assert_eq!(
            parse_clause("age > -5").unwrap(),
            Clause::single(SimplePredicate::IntGt {
                key: "age".into(),
                value: -5
            })
        );
    }

    #[test]
    fn in_list_desugars_to_disjunction() {
        let c = parse_clause(r#"name IN ("Bob", "John")"#).unwrap();
        assert_eq!(c.arity(), 2);
        assert_eq!(
            c.disjuncts()[1],
            SimplePredicate::StrEq {
                key: "name".into(),
                value: "John".into()
            }
        );
        let ints = parse_clause("stars IN (4, 5)").unwrap();
        assert_eq!(
            ints.disjuncts()[0],
            SimplePredicate::IntEq {
                key: "stars".into(),
                value: 4
            }
        );
    }

    #[test]
    fn parenthesized_or() {
        let c = parse_clause(r#"(name = "Bob" OR age = 20)"#).unwrap();
        assert_eq!(c.arity(), 2);
    }

    #[test]
    fn conjunction() {
        let clauses =
            parse_where(r#"name IN ("Bob","John") AND age = 20 AND text LIKE "%x%""#).unwrap();
        assert_eq!(clauses.len(), 3);
        assert_eq!(clauses[0].arity(), 2);
    }

    #[test]
    fn full_query() {
        let q = parse_query("q7", r#"level = "Error" AND info LIKE "%disk%""#).unwrap();
        assert_eq!(q.name, "q7");
        assert_eq!(q.clauses.len(), 2);
        assert_eq!(q.freq, 1.0);
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse_where(r#"a = 1 and b = 2"#).is_ok());
        assert!(parse_clause(r#"t like "%x%""#).is_ok());
        assert!(parse_clause(r#"k in (1,2)"#).is_ok());
    }

    #[test]
    fn single_quotes_accepted() {
        let c = parse_clause("name = 'Bob'").unwrap();
        assert_eq!(
            c,
            Clause::single(SimplePredicate::StrEq {
                key: "name".into(),
                value: "Bob".into()
            })
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse_where("name = ").unwrap_err();
        assert!(err.message.contains("literal"));
        let err = parse_where(r#"name ~ "Bob""#).unwrap_err();
        assert!(err.offset > 0);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "= 1",
            "a =",
            "a != 5",
            "a LIKE \"no-wildcards\"",
            "a LIKE \"%%\"",
            "a LIKE \"%x%y%\"",
            "a IN ()",
            "a IN (true)",
            "(a = 1",
            "a = 1 AND",
            "a = 1 extra",
            "a < 1.5",
            "a IS NULL",
            "\"unterminated",
        ] {
            assert!(parse_where(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn dotted_keys() {
        let c = parse_clause(r#"address.city = "Chicago""#).unwrap();
        assert_eq!(c.disjuncts()[0].key(), "address.city");
    }
}
