//! Bridge from the `ciao_sql` WHERE AST to predicate [`Clause`]s.
//!
//! `ciao_sql` owns the grammar but cannot depend on this crate (the
//! dependency points the other way), so its WHERE tree uses a
//! structural twin of [`SimplePredicate`]. This module is the one
//! place that twin is folded back into the real AST — both for the
//! [`parser`](crate::parser) shim and for the engine, which compiles a
//! physical plan's filter into clauses so pushdown plans, zone maps,
//! and `PatternSet` prefilters keep working untouched.

use crate::ast::{Clause, SimplePredicate};
use ciao_sql::{SqlPredicate, WhereClause};

/// Converts one SQL predicate into a [`SimplePredicate`].
pub fn simple_from_sql(p: &SqlPredicate) -> SimplePredicate {
    match p {
        SqlPredicate::StrEq { key, value } => SimplePredicate::StrEq {
            key: key.name.clone(),
            value: value.clone(),
        },
        SqlPredicate::StrContains { key, needle } => SimplePredicate::StrContains {
            key: key.name.clone(),
            needle: needle.clone(),
        },
        SqlPredicate::NotNull { key } => SimplePredicate::NotNull {
            key: key.name.clone(),
        },
        SqlPredicate::IntEq { key, value } => SimplePredicate::IntEq {
            key: key.name.clone(),
            value: *value,
        },
        SqlPredicate::BoolEq { key, value } => SimplePredicate::BoolEq {
            key: key.name.clone(),
            value: *value,
        },
        SqlPredicate::IntLt { key, value } => SimplePredicate::IntLt {
            key: key.name.clone(),
            value: *value,
        },
        SqlPredicate::IntGt { key, value } => SimplePredicate::IntGt {
            key: key.name.clone(),
            value: *value,
        },
        SqlPredicate::FloatEq { key, value } => SimplePredicate::FloatEq {
            key: key.name.clone(),
            value: *value,
        },
    }
}

/// Converts one SQL WHERE clause (a disjunction) into a [`Clause`].
pub fn clause_from_sql(clause: &WhereClause) -> Clause {
    Clause::new(clause.disjuncts.iter().map(simple_from_sql).collect())
}

/// Converts a full WHERE conjunction.
pub fn clauses_from_sql(clauses: &[WhereClause]) -> Vec<Clause> {
    clauses.iter().map(clause_from_sql).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_round_trips() {
        let clauses = ciao_sql::parse_where_body(
            r#"name IN ("a", 3) AND text LIKE "%x%" AND e != NULL AND b = true
                   AND i < 5 AND i > 1 AND f = 2.5"#,
        )
        .unwrap();
        let converted = clauses_from_sql(&clauses);
        assert_eq!(converted.len(), 7);
        assert_eq!(converted[0].arity(), 2);
        assert_eq!(
            converted[0].disjuncts()[1],
            SimplePredicate::IntEq {
                key: "name".into(),
                value: 3
            }
        );
        assert_eq!(
            converted[6].disjuncts()[0],
            SimplePredicate::FloatEq {
                key: "f".into(),
                value: 2.5
            }
        );
    }
}
