//! Predicate and query AST.

use serde::{Deserialize, Serialize};

/// One simple (non-disjunctive) predicate over a single JSON key.
///
/// The first five variants are the client-supported forms of paper
/// Table I. The remaining variants exist so workloads can contain
/// realistic predicates that CIAO must *refuse* to push down (range and
/// float-equality matching on raw text would allow false negatives,
/// §IV-B) — they are still evaluated exactly on the server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SimplePredicate {
    /// `key = "value"` — exact string equality.
    StrEq {
        /// JSON object key.
        key: String,
        /// Expected string value.
        value: String,
    },
    /// `key LIKE "%needle%"` — substring containment.
    StrContains {
        /// JSON object key.
        key: String,
        /// Substring to find.
        needle: String,
    },
    /// `key != NULL` — key present with a non-null value.
    NotNull {
        /// JSON object key.
        key: String,
    },
    /// `key = 10` — integer equality (textual on the client).
    IntEq {
        /// JSON object key.
        key: String,
        /// Expected integer.
        value: i64,
    },
    /// `key = true` — boolean equality.
    BoolEq {
        /// JSON object key.
        key: String,
        /// Expected boolean.
        value: bool,
    },
    /// `key < v` — **not pushable** (raw text can't order numbers
    /// without risking false negatives).
    IntLt {
        /// JSON object key.
        key: String,
        /// Exclusive upper bound.
        value: i64,
    },
    /// `key > v` — not pushable.
    IntGt {
        /// JSON object key.
        key: String,
        /// Exclusive lower bound.
        value: i64,
    },
    /// `key = 2.4` — not pushable: `2.4` vs `24e-1` would false-negative
    /// under textual matching (paper §IV-B).
    FloatEq {
        /// JSON object key.
        key: String,
        /// Expected float.
        value: f64,
    },
}

impl SimplePredicate {
    /// Whether the client can evaluate this predicate with substring
    /// search without risking false negatives (paper Table I).
    pub fn is_pushable(&self) -> bool {
        matches!(
            self,
            SimplePredicate::StrEq { .. }
                | SimplePredicate::StrContains { .. }
                | SimplePredicate::NotNull { .. }
                | SimplePredicate::IntEq { .. }
                | SimplePredicate::BoolEq { .. }
        )
    }

    /// The key this predicate constrains.
    pub fn key(&self) -> &str {
        match self {
            SimplePredicate::StrEq { key, .. }
            | SimplePredicate::StrContains { key, .. }
            | SimplePredicate::NotNull { key }
            | SimplePredicate::IntEq { key, .. }
            | SimplePredicate::BoolEq { key, .. }
            | SimplePredicate::IntLt { key, .. }
            | SimplePredicate::IntGt { key, .. }
            | SimplePredicate::FloatEq { key, .. } => key,
        }
    }
}

impl std::fmt::Display for SimplePredicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimplePredicate::StrEq { key, value } => write!(f, "{key} = \"{value}\""),
            SimplePredicate::StrContains { key, needle } => {
                write!(f, "{key} LIKE \"%{needle}%\"")
            }
            SimplePredicate::NotNull { key } => write!(f, "{key} != NULL"),
            SimplePredicate::IntEq { key, value } => write!(f, "{key} = {value}"),
            SimplePredicate::BoolEq { key, value } => write!(f, "{key} = {value}"),
            SimplePredicate::IntLt { key, value } => write!(f, "{key} < {value}"),
            SimplePredicate::IntGt { key, value } => write!(f, "{key} > {value}"),
            SimplePredicate::FloatEq { key, value } => write!(f, "{key} = {value}"),
        }
    }
}

impl PartialEq for SimplePredicate {
    fn eq(&self, other: &Self) -> bool {
        use SimplePredicate::*;
        match (self, other) {
            (StrEq { key: k1, value: v1 }, StrEq { key: k2, value: v2 }) => k1 == k2 && v1 == v2,
            (
                StrContains {
                    key: k1,
                    needle: n1,
                },
                StrContains {
                    key: k2,
                    needle: n2,
                },
            ) => k1 == k2 && n1 == n2,
            (NotNull { key: k1 }, NotNull { key: k2 }) => k1 == k2,
            (IntEq { key: k1, value: v1 }, IntEq { key: k2, value: v2 }) => k1 == k2 && v1 == v2,
            (BoolEq { key: k1, value: v1 }, BoolEq { key: k2, value: v2 }) => k1 == k2 && v1 == v2,
            (IntLt { key: k1, value: v1 }, IntLt { key: k2, value: v2 }) => k1 == k2 && v1 == v2,
            (IntGt { key: k1, value: v1 }, IntGt { key: k2, value: v2 }) => k1 == k2 && v1 == v2,
            (FloatEq { key: k1, value: v1 }, FloatEq { key: k2, value: v2 }) => {
                // Bit equality so Eq/Hash stay coherent (NaN never occurs
                // in parsed JSON).
                k1 == k2 && v1.to_bits() == v2.to_bits()
            }
            _ => false,
        }
    }
}

impl Eq for SimplePredicate {}

impl std::hash::Hash for SimplePredicate {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        use SimplePredicate::*;
        std::mem::discriminant(self).hash(state);
        match self {
            StrEq { key, value } => {
                key.hash(state);
                value.hash(state);
            }
            StrContains { key, needle } => {
                key.hash(state);
                needle.hash(state);
            }
            NotNull { key } => key.hash(state),
            IntEq { key, value } | IntLt { key, value } | IntGt { key, value } => {
                key.hash(state);
                value.hash(state);
            }
            BoolEq { key, value } => {
                key.hash(state);
                value.hash(state);
            }
            FloatEq { key, value } => {
                key.hash(state);
                value.to_bits().hash(state);
            }
        }
    }
}

/// A disjunction of simple predicates — CIAO's atomic pushdown unit.
///
/// `name IN ("Bob","John")` is `Clause(vec![StrEq(name,Bob),
/// StrEq(name,John)])`. An empty clause is disallowed by construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Clause {
    disjuncts: Vec<SimplePredicate>,
}

impl Clause {
    /// Builds a clause. Panics on an empty disjunction (a vacuously
    /// false clause is never what a workload means).
    pub fn new(disjuncts: Vec<SimplePredicate>) -> Clause {
        assert!(
            !disjuncts.is_empty(),
            "clause must have at least one disjunct"
        );
        Clause { disjuncts }
    }

    /// Single-predicate convenience constructor.
    pub fn single(p: SimplePredicate) -> Clause {
        Clause { disjuncts: vec![p] }
    }

    /// The disjuncts, in declaration order.
    pub fn disjuncts(&self) -> &[SimplePredicate] {
        &self.disjuncts
    }

    /// A clause is pushable only when *every* disjunct is (paper §V-A:
    /// a clause with any unsupported disjunct is not a candidate).
    pub fn is_pushable(&self) -> bool {
        self.disjuncts.iter().all(SimplePredicate::is_pushable)
    }

    /// Number of disjuncts.
    pub fn arity(&self) -> usize {
        self.disjuncts.len()
    }
}

impl std::fmt::Display for Clause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.disjuncts.len() == 1 {
            write!(f, "{}", self.disjuncts[0])
        } else {
            write!(f, "(")?;
            for (i, d) in self.disjuncts.iter().enumerate() {
                if i > 0 {
                    write!(f, " OR ")?;
                }
                write!(f, "{d}")?;
            }
            write!(f, ")")
        }
    }
}

/// A workload query: `SELECT COUNT(*) FROM t WHERE c1 AND c2 AND …`
/// plus a relative frequency weight (paper §V-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Identifier used in reports (`q0`, `q1`, …).
    pub name: String,
    /// The conjunctive clauses.
    pub clauses: Vec<Clause>,
    /// Relative execution frequency `freq(q)`; the paper's experiments
    /// use uniform frequencies.
    pub freq: f64,
}

impl Query {
    /// Builds a query with frequency 1.
    pub fn new(name: impl Into<String>, clauses: Vec<Clause>) -> Query {
        Query {
            name: name.into(),
            clauses,
            freq: 1.0,
        }
    }

    /// Sets the relative frequency.
    pub fn with_freq(mut self, freq: f64) -> Query {
        assert!(
            freq >= 0.0 && freq.is_finite(),
            "frequency must be non-negative"
        );
        self.freq = freq;
        self
    }

    /// The pushable clauses of this query (candidate set `P_i`).
    pub fn pushable_clauses(&self) -> impl Iterator<Item = &Clause> + '_ {
        self.clauses.iter().filter(|c| c.is_pushable())
    }

    /// Total number of simple predicates, for Table III's `#Predicates`.
    pub fn simple_predicate_count(&self) -> usize {
        self.clauses.iter().map(Clause::arity).sum()
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SELECT COUNT(*) WHERE ")?;
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p_streq() -> SimplePredicate {
        SimplePredicate::StrEq {
            key: "name".into(),
            value: "Bob".into(),
        }
    }

    #[test]
    fn pushability() {
        assert!(p_streq().is_pushable());
        assert!(SimplePredicate::StrContains {
            key: "t".into(),
            needle: "x".into()
        }
        .is_pushable());
        assert!(SimplePredicate::NotNull {
            key: "email".into()
        }
        .is_pushable());
        assert!(SimplePredicate::IntEq {
            key: "age".into(),
            value: 10
        }
        .is_pushable());
        assert!(SimplePredicate::BoolEq {
            key: "a".into(),
            value: true
        }
        .is_pushable());
        assert!(!SimplePredicate::IntLt {
            key: "age".into(),
            value: 10
        }
        .is_pushable());
        assert!(!SimplePredicate::IntGt {
            key: "age".into(),
            value: 10
        }
        .is_pushable());
        assert!(!SimplePredicate::FloatEq {
            key: "s".into(),
            value: 2.4
        }
        .is_pushable());
    }

    #[test]
    fn clause_pushable_iff_all_disjuncts_are() {
        let good = Clause::new(vec![
            p_streq(),
            SimplePredicate::IntEq {
                key: "age".into(),
                value: 20,
            },
        ]);
        assert!(good.is_pushable());
        let mixed = Clause::new(vec![
            p_streq(),
            SimplePredicate::IntLt {
                key: "age".into(),
                value: 20,
            },
        ]);
        assert!(!mixed.is_pushable());
    }

    #[test]
    #[should_panic(expected = "at least one disjunct")]
    fn empty_clause_rejected() {
        Clause::new(vec![]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(p_streq().to_string(), "name = \"Bob\"");
        assert_eq!(
            SimplePredicate::StrContains {
                key: "text".into(),
                needle: "delicious".into()
            }
            .to_string(),
            "text LIKE \"%delicious%\""
        );
        assert_eq!(
            SimplePredicate::NotNull {
                key: "email".into()
            }
            .to_string(),
            "email != NULL"
        );
        let c = Clause::new(vec![
            p_streq(),
            SimplePredicate::StrEq {
                key: "name".into(),
                value: "John".into(),
            },
        ]);
        assert_eq!(c.to_string(), "(name = \"Bob\" OR name = \"John\")");
        let q = Query::new(
            "q0",
            vec![
                c,
                Clause::single(SimplePredicate::IntEq {
                    key: "age".into(),
                    value: 20,
                }),
            ],
        );
        assert_eq!(
            q.to_string(),
            "SELECT COUNT(*) WHERE (name = \"Bob\" OR name = \"John\") AND age = 20"
        );
    }

    #[test]
    fn equality_and_hash() {
        use std::collections::HashSet;
        let a = Clause::single(p_streq());
        let b = Clause::single(p_streq());
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));

        let f1 = SimplePredicate::FloatEq {
            key: "x".into(),
            value: 2.4,
        };
        let f2 = SimplePredicate::FloatEq {
            key: "x".into(),
            value: 2.4,
        };
        let f3 = SimplePredicate::FloatEq {
            key: "x".into(),
            value: 2.5,
        };
        assert_eq!(f1, f2);
        assert_ne!(f1, f3);
    }

    #[test]
    fn query_helpers() {
        let q = Query::new(
            "q",
            vec![
                Clause::single(p_streq()),
                Clause::single(SimplePredicate::IntLt {
                    key: "age".into(),
                    value: 30,
                }),
            ],
        )
        .with_freq(0.5);
        assert_eq!(q.freq, 0.5);
        assert_eq!(q.pushable_clauses().count(), 1);
        assert_eq!(q.simple_predicate_count(), 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_freq_rejected() {
        Query::new("q", vec![Clause::single(p_streq())]).with_freq(-1.0);
    }

    #[test]
    fn key_accessor_covers_all_variants() {
        let preds = [
            p_streq(),
            SimplePredicate::StrContains {
                key: "k".into(),
                needle: "n".into(),
            },
            SimplePredicate::NotNull { key: "k".into() },
            SimplePredicate::IntEq {
                key: "k".into(),
                value: 1,
            },
            SimplePredicate::BoolEq {
                key: "k".into(),
                value: false,
            },
            SimplePredicate::IntLt {
                key: "k".into(),
                value: 1,
            },
            SimplePredicate::IntGt {
                key: "k".into(),
                value: 1,
            },
            SimplePredicate::FloatEq {
                key: "k".into(),
                value: 1.5,
            },
        ];
        assert_eq!(preds[0].key(), "name");
        for p in &preds[1..] {
            assert_eq!(p.key(), "k");
        }
    }
}
