//! Word-wise logical operations.
//!
//! The server intersects per-predicate bitvectors with `AND` to apply a
//! query's conjunctive clauses (data skipping, paper §VI-B) and unions
//! them with `OR` to decide which records to load at all (partial
//! loading, paper §VI-A). These are the hot loops of chunk admission, so
//! they all run a `u64` at a time.

use crate::BitVec;

impl BitVec {
    /// In-place intersection: `self &= other`.
    ///
    /// Panics when lengths differ — mismatched lengths mean a chunk /
    /// bitvector desynchronization upstream, which must not be masked.
    pub fn and_assign(&mut self, other: &BitVec) {
        self.check_len(other, "and");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place union: `self |= other`.
    pub fn or_assign(&mut self, other: &BitVec) {
        self.check_len(other, "or");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place symmetric difference: `self ^= other`.
    pub fn xor_assign(&mut self, other: &BitVec) {
        self.check_len(other, "xor");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= *b;
        }
    }

    /// In-place difference: clears every bit of `self` that is set in
    /// `other` (`self &= !other`).
    pub fn and_not_assign(&mut self, other: &BitVec) {
        self.check_len(other, "and_not");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Flips every bit in place.
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Returns `self & other` as a new vector.
    pub fn and(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// Returns `self | other` as a new vector.
    pub fn or(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// Returns `self ^ other` as a new vector.
    pub fn xor(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.xor_assign(other);
        out
    }

    /// Returns `!self` as a new vector.
    pub fn not(&self) -> BitVec {
        let mut out = self.clone();
        out.not_assign();
        out
    }

    /// `popcount(self & other)` without materializing the intersection.
    pub fn count_and(&self, other: &BitVec) -> usize {
        self.check_len(other, "count_and");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `popcount(self & !other)` without materializing either the
    /// complement or the difference. Sound despite `!other`'s tail bits
    /// because `self`'s tail is zero by invariant.
    pub fn count_and_not(&self, other: &BitVec) -> usize {
        self.check_len(other, "count_and_not");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// `popcount(self & other)` without materializing the intersection.
    /// Alias of [`BitVec::count_and`], kept for the original API.
    pub fn intersection_count(&self, other: &BitVec) -> usize {
        self.count_and(other)
    }

    /// `popcount(self | other)` without materializing the union.
    pub fn union_count(&self, other: &BitVec) -> usize {
        self.check_len(other, "union_count");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// True when every set bit of `self` is also set in `other`.
    pub fn is_subset_of(&self, other: &BitVec) -> bool {
        self.check_len(other, "is_subset_of");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Fused multi-operand intersection. Folding with `k - 1`
    /// [`BitVec::and_assign`] sweeps re-streams the whole accumulator
    /// from memory once per operand; here the accumulator is walked
    /// **once** in L1-sized tiles, with every operand folded into each
    /// tile while it is hot. Inner loops stay `iter().zip()` so they
    /// vectorize like the two-operand kernels. Returns `None` when the
    /// slice is empty (an empty conjunction has no well-defined width
    /// here; callers that want "all ones" should use [`BitVec::ones`]
    /// explicitly).
    pub fn and_all(vecs: &[&BitVec]) -> Option<BitVec> {
        Self::fused_reduce(vecs, "and_all", |a, b| *a &= b)
    }

    /// Fused multi-operand union; see [`BitVec::and_all`] for the
    /// shape. Returns `None` when the slice is empty.
    pub fn or_all(vecs: &[&BitVec]) -> Option<BitVec> {
        Self::fused_reduce(vecs, "or_all", |a, b| *a |= b)
    }

    fn fused_reduce(vecs: &[&BitVec], op_name: &str, op: impl Fn(&mut u64, u64)) -> Option<BitVec> {
        /// Words per tile: 4 KiB, comfortably inside L1 alongside one
        /// operand stream.
        const TILE_WORDS: usize = 512;
        let (first, rest) = vecs.split_first()?;
        for v in rest {
            first.check_len(v, op_name);
        }
        let mut out = (*first).clone();
        let mut offset = 0;
        while offset < out.words.len() {
            let end = (offset + TILE_WORDS).min(out.words.len());
            let tile = &mut out.words[offset..end];
            for v in rest {
                for (a, &b) in tile.iter_mut().zip(&v.words[offset..end]) {
                    op(a, b);
                }
            }
            offset = end;
        }
        Some(out)
    }

    /// Intersects an arbitrary number of equal-length vectors. Alias of
    /// the fused [`BitVec::and_all`], kept for the original API.
    pub fn intersect_all(vecs: &[&BitVec]) -> Option<BitVec> {
        BitVec::and_all(vecs)
    }

    /// Unions an arbitrary number of equal-length vectors. Alias of the
    /// fused [`BitVec::or_all`], kept for the original API.
    pub fn union_all(vecs: &[&BitVec]) -> Option<BitVec> {
        BitVec::or_all(vecs)
    }

    #[inline]
    fn check_len(&self, other: &BitVec, op: &str) {
        assert_eq!(
            self.len, other.len,
            "bitvec length mismatch in `{op}`: {} vs {}",
            self.len, other.len
        );
    }
}

impl std::ops::BitAnd for &BitVec {
    type Output = BitVec;
    fn bitand(self, rhs: Self) -> BitVec {
        self.and(rhs)
    }
}

impl std::ops::BitOr for &BitVec {
    type Output = BitVec;
    fn bitor(self, rhs: Self) -> BitVec {
        self.or(rhs)
    }
}

impl std::ops::BitXor for &BitVec {
    type Output = BitVec;
    fn bitxor(self, rhs: Self) -> BitVec {
        self.xor(rhs)
    }
}

impl std::ops::Not for &BitVec {
    type Output = BitVec;
    fn not(self) -> BitVec {
        BitVec::not(self)
    }
}

impl std::ops::BitAndAssign<&BitVec> for BitVec {
    fn bitand_assign(&mut self, rhs: &BitVec) {
        self.and_assign(rhs);
    }
}

impl std::ops::BitOrAssign<&BitVec> for BitVec {
    fn bitor_assign(&mut self, rhs: &BitVec) {
        self.or_assign(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evens(n: usize) -> BitVec {
        BitVec::from_fn(n, |i| i % 2 == 0)
    }
    fn div3(n: usize) -> BitVec {
        BitVec::from_fn(n, |i| i % 3 == 0)
    }

    #[test]
    fn and_or_xor_not() {
        let n = 130;
        let a = evens(n);
        let b = div3(n);

        let and = a.and(&b);
        let or = a.or(&b);
        let xor = a.xor(&b);
        let not_a = a.not();

        for i in 0..n {
            assert_eq!(and.bit(i), i % 2 == 0 && i % 3 == 0);
            assert_eq!(or.bit(i), i % 2 == 0 || i % 3 == 0);
            assert_eq!(xor.bit(i), (i % 2 == 0) ^ (i % 3 == 0));
            assert_eq!(not_a.bit(i), i % 2 != 0);
        }
    }

    #[test]
    fn not_preserves_tail_invariant() {
        let a = BitVec::zeros(70);
        let n = a.not();
        assert_eq!(n.count_ones(), 70);
        // Double negation round-trips.
        assert_eq!(n.not(), a);
    }

    #[test]
    fn operators() {
        let a = evens(64);
        let b = div3(64);
        assert_eq!(&a & &b, a.and(&b));
        assert_eq!(&a | &b, a.or(&b));
        assert_eq!(&a ^ &b, a.xor(&b));
        assert_eq!(!&a, a.not());
        let mut c = a.clone();
        c &= &b;
        assert_eq!(c, a.and(&b));
        let mut d = a.clone();
        d |= &b;
        assert_eq!(d, a.or(&b));
    }

    #[test]
    fn counts_without_materializing() {
        let a = evens(100);
        let b = div3(100);
        assert_eq!(a.intersection_count(&b), a.and(&b).count_ones());
        assert_eq!(a.union_count(&b), a.or(&b).count_ones());
        assert_eq!(a.count_and(&b), a.and(&b).count_ones());
        let mut diff = a.clone();
        diff.and_not_assign(&b);
        assert_eq!(a.count_and_not(&b), diff.count_ones());
    }

    #[test]
    fn count_and_not_honors_tail_invariant() {
        // `!other` flips tail bits past `len`; the count must not see
        // them because `self`'s tail is zero.
        let a = BitVec::ones(67);
        let b = BitVec::zeros(67);
        assert_eq!(a.count_and_not(&b), 67);
        assert_eq!(b.count_and_not(&a), 0);
    }

    #[test]
    fn fused_reductions_match_pairwise_folds() {
        let n = 131;
        let a = evens(n);
        let b = div3(n);
        let c = BitVec::from_fn(n, |i| i % 5 == 0);

        let mut and_fold = a.clone();
        and_fold.and_assign(&b);
        and_fold.and_assign(&c);
        assert_eq!(BitVec::and_all(&[&a, &b, &c]).unwrap(), and_fold);

        let mut or_fold = a.clone();
        or_fold.or_assign(&b);
        or_fold.or_assign(&c);
        assert_eq!(BitVec::or_all(&[&a, &b, &c]).unwrap(), or_fold);

        assert_eq!(BitVec::and_all(&[&a]).unwrap(), a);
        assert_eq!(BitVec::or_all(&[&a]).unwrap(), a);
        assert!(BitVec::and_all(&[]).is_none());
        assert!(BitVec::or_all(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fused_reduction_length_mismatch_panics() {
        let a = BitVec::zeros(10);
        let b = BitVec::zeros(11);
        BitVec::and_all(&[&a, &b]);
    }

    #[test]
    fn subset() {
        let a = BitVec::from_fn(50, |i| i % 6 == 0);
        let b = BitVec::from_fn(50, |i| i % 3 == 0);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(BitVec::zeros(50).is_subset_of(&a));
    }

    #[test]
    fn intersect_union_all() {
        let n = 40;
        let a = evens(n);
        let b = div3(n);
        let c = BitVec::from_fn(n, |i| i % 5 == 0);

        let inter = BitVec::intersect_all(&[&a, &b, &c]).unwrap();
        let union = BitVec::union_all(&[&a, &b, &c]).unwrap();
        for i in 0..n {
            assert_eq!(inter.bit(i), i % 30 == 0);
            assert_eq!(union.bit(i), i % 2 == 0 || i % 3 == 0 || i % 5 == 0);
        }
        assert!(BitVec::intersect_all(&[]).is_none());
        assert!(BitVec::union_all(&[]).is_none());
        assert_eq!(BitVec::intersect_all(&[&a]).unwrap(), a);
    }

    #[test]
    fn and_not() {
        let a = evens(64);
        let b = div3(64);
        let mut d = a.clone();
        d.and_not_assign(&b);
        for i in 0..64 {
            assert_eq!(d.bit(i), i % 2 == 0 && i % 3 != 0);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut a = BitVec::zeros(10);
        let b = BitVec::zeros(11);
        a.and_assign(&b);
    }
}
