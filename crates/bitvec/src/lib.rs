//! Dense, word-packed bitvectors.
//!
//! CIAO clients attach one bitvector per pushed-down predicate to every
//! chunk of raw JSON records: bit `i` is 1 when record `i` *may* satisfy
//! the predicate (false positives allowed, false negatives never). The
//! server combines these with `AND`/`OR` to drive partial loading and
//! data skipping, so the bitvector is the single most heavily exercised
//! data structure in the system.
//!
//! The implementation packs bits little-endian into `u64` words. All
//! bulk operations (`and`, `or`, `count_ones`, …) work a word at a time.
//!
//! # Example
//!
//! ```
//! use ciao_bitvec::BitVec;
//!
//! let mut bv = BitVec::zeros(10);
//! bv.set(3, true);
//! bv.set(7, true);
//! assert_eq!(bv.count_ones(), 2);
//! assert_eq!(bv.iter_ones().collect::<Vec<_>>(), vec![3, 7]);
//! ```

#![warn(missing_docs)]

mod iter;
mod ops;
mod serde_impl;
mod wire;

pub use iter::{BitIter, OnesIter};
pub use wire::WireError;

const WORD_BITS: usize = 64;

/// A growable, densely packed vector of bits.
///
/// Invariant: all bits in `words` at positions `>= len` are zero. Every
/// mutating operation restores this invariant, which lets bulk word-wise
/// operations (`count_ones`, `union_count`, equality) avoid per-bit
/// masking.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

#[inline]
pub(crate) fn words_for(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

impl BitVec {
    /// Creates an empty bitvector.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bitvector with room for `cap` bits before
    /// reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        BitVec {
            words: Vec::with_capacity(words_for(cap)),
            len: 0,
        }
    }

    /// Creates a bitvector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0; words_for(len)],
            len,
        }
    }

    /// Creates a bitvector of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut bv = BitVec {
            words: vec![!0u64; words_for(len)],
            len,
        };
        bv.mask_tail();
        bv
    }

    /// Builds a bitvector by evaluating `f` at every index in `0..len`.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut bv = BitVec::zeros(len);
        for i in 0..len {
            if f(i) {
                bv.set(i, true);
            }
        }
        bv
    }

    /// Builds a bitvector from a slice of booleans.
    pub fn from_bools(bools: &[bool]) -> Self {
        Self::from_fn(bools.len(), |i| bools[i])
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`, or `None` when out of range.
    #[inline]
    pub fn get(&self, i: usize) -> Option<bool> {
        if i >= self.len {
            return None;
        }
        Some(unsafe { self.get_unchecked(i) })
    }

    /// Returns bit `i` without bounds checking.
    ///
    /// # Safety
    ///
    /// `i` must be `< self.len()`.
    #[inline]
    pub unsafe fn get_unchecked(&self, i: usize) -> bool {
        (self.words.get_unchecked(i / WORD_BITS) >> (i % WORD_BITS)) & 1 == 1
    }

    /// Returns bit `i`, panicking when out of range.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        unsafe { self.get_unchecked(i) }
    }

    /// Sets bit `i` to `value`. Panics when out of range.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Appends one bit.
    #[inline]
    pub fn push(&mut self, value: bool) {
        let i = self.len;
        if i / WORD_BITS == self.words.len() {
            self.words.push(0);
        }
        self.len += 1;
        if value {
            self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
        }
    }

    /// Removes and returns the last bit.
    pub fn pop(&mut self) -> Option<bool> {
        if self.len == 0 {
            return None;
        }
        let last = self.bit(self.len - 1);
        self.truncate(self.len - 1);
        Some(last)
    }

    /// Shortens the vector to `len` bits. No-op if already shorter.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len {
            return;
        }
        self.len = len;
        self.words.truncate(words_for(len));
        self.mask_tail();
    }

    /// Resizes to `len` bits, filling new bits with `value`.
    pub fn resize(&mut self, len: usize, value: bool) {
        if len <= self.len {
            self.truncate(len);
            return;
        }
        if value {
            // Fill the tail of the current last word, then whole words.
            while self.len < len && !self.len.is_multiple_of(WORD_BITS) {
                self.push(true);
            }
            while len - self.len >= WORD_BITS {
                self.words.push(!0u64);
                self.len += WORD_BITS;
            }
            while self.len < len {
                self.push(true);
            }
        } else {
            self.words.resize(words_for(len), 0);
            self.len = len;
        }
    }

    /// Removes all bits.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of clear bits.
    #[inline]
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// True when at least one bit is set.
    #[inline]
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// True when no bit is set.
    #[inline]
    pub fn none(&self) -> bool {
        !self.any()
    }

    /// True when every bit is set (vacuously true when empty).
    pub fn all(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Number of set bits strictly before index `i` (classic `rank`).
    ///
    /// Panics when `i > len` (note: `i == len` is allowed and counts all
    /// set bits).
    pub fn rank(&self, i: usize) -> usize {
        assert!(
            i <= self.len,
            "rank index {i} out of range (len {})",
            self.len
        );
        let full_words = i / WORD_BITS;
        let mut count: usize = self.words[..full_words]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        let rem = i % WORD_BITS;
        if rem != 0 {
            let mask = (1u64 << rem) - 1;
            count += (self.words[full_words] & mask).count_ones() as usize;
        }
        count
    }

    /// Index of the `k`-th (0-based) set bit, or `None` if fewer than
    /// `k + 1` bits are set (classic `select`).
    pub fn select(&self, k: usize) -> Option<usize> {
        let mut remaining = k;
        for (wi, &w) in self.words.iter().enumerate() {
            let ones = w.count_ones() as usize;
            if remaining < ones {
                let mut word = w;
                for _ in 0..remaining {
                    word &= word - 1; // clear lowest set bit
                }
                return Some(wi * WORD_BITS + word.trailing_zeros() as usize);
            }
            remaining -= ones;
        }
        None
    }

    /// Index of the first set bit.
    pub fn first_one(&self) -> Option<usize> {
        self.select(0)
    }

    /// Index of the last set bit.
    pub fn last_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(wi * WORD_BITS + (63 - w.leading_zeros() as usize));
            }
        }
        None
    }

    /// Fraction of set bits, in `[0, 1]`. Returns 0 for an empty vector.
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Appends all bits of `other`.
    pub fn extend_from_bitvec(&mut self, other: &BitVec) {
        if self.len.is_multiple_of(WORD_BITS) {
            // Word-aligned fast path.
            self.words.extend_from_slice(&other.words);
            self.len += other.len;
            // other's invariant guarantees our tail stays masked.
        } else {
            for b in other.iter() {
                self.push(b);
            }
        }
    }

    /// Access to the raw words (tail bits beyond `len` are zero).
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Zeroes any bits at positions `>= len` in the last word.
    #[inline]
    pub(crate) fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        const PREVIEW: usize = 128;
        for i in 0..self.len.min(PREVIEW) {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        if self.len > PREVIEW {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let iter = iter.into_iter();
        let mut bv = BitVec::with_capacity(iter.size_hint().0);
        for b in iter {
            bv.push(b);
        }
        bv
    }
}

impl Extend<bool> for BitVec {
    fn extend<T: IntoIterator<Item = bool>>(&mut self, iter: T) {
        for b in iter {
            self.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(100);
        assert_eq!(z.len(), 100);
        assert_eq!(z.count_ones(), 0);
        assert!(z.none());
        assert!(!z.all());

        let o = BitVec::ones(100);
        assert_eq!(o.count_ones(), 100);
        assert!(o.all());
        assert!(o.any());
    }

    #[test]
    fn empty_vector_properties() {
        let e = BitVec::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(e.all(), "all() is vacuously true on empty");
        assert!(e.none());
        assert_eq!(e.first_one(), None);
        assert_eq!(e.last_one(), None);
        assert_eq!(e.density(), 0.0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut bv = BitVec::zeros(130);
        for i in (0..130).step_by(7) {
            bv.set(i, true);
        }
        for i in 0..130 {
            assert_eq!(bv.bit(i), i % 7 == 0, "bit {i}");
        }
        bv.set(0, false);
        assert!(!bv.bit(0));
    }

    #[test]
    fn get_out_of_range_is_none() {
        let bv = BitVec::zeros(10);
        assert_eq!(bv.get(10), None);
        assert_eq!(bv.get(9), Some(false));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut bv = BitVec::zeros(10);
        bv.set(10, true);
    }

    #[test]
    fn push_pop() {
        let mut bv = BitVec::new();
        for i in 0..200 {
            bv.push(i % 3 == 0);
        }
        assert_eq!(bv.len(), 200);
        assert_eq!(bv.count_ones(), 67);
        assert_eq!(bv.pop(), Some(false)); // index 199
        assert_eq!(bv.pop(), Some(true)); // index 198, divisible by 3
        assert_eq!(bv.pop(), Some(false)); // index 197
        assert_eq!(bv.len(), 197);
    }

    #[test]
    fn pop_empty() {
        let mut bv = BitVec::new();
        assert_eq!(bv.pop(), None);
    }

    #[test]
    fn truncate_masks_tail() {
        let mut bv = BitVec::ones(100);
        bv.truncate(65);
        assert_eq!(bv.len(), 65);
        assert_eq!(bv.count_ones(), 65);
        // Growing again must not resurrect stale bits.
        bv.resize(100, false);
        assert_eq!(bv.count_ones(), 65);
    }

    #[test]
    fn resize_with_ones() {
        let mut bv = BitVec::zeros(10);
        bv.resize(200, true);
        assert_eq!(bv.len(), 200);
        assert_eq!(bv.count_ones(), 190);
        assert!(!bv.bit(9));
        assert!(bv.bit(10));
        assert!(bv.bit(199));
    }

    #[test]
    fn rank_select_inverse() {
        let bv = BitVec::from_fn(300, |i| i % 5 == 2);
        assert_eq!(bv.rank(0), 0);
        assert_eq!(bv.rank(3), 1);
        assert_eq!(bv.rank(300), 60);
        for k in 0..60 {
            let pos = bv.select(k).unwrap();
            assert_eq!(bv.rank(pos), k);
            assert!(bv.bit(pos));
        }
        assert_eq!(bv.select(60), None);
    }

    #[test]
    fn first_last_one() {
        let mut bv = BitVec::zeros(500);
        bv.set(77, true);
        bv.set(402, true);
        assert_eq!(bv.first_one(), Some(77));
        assert_eq!(bv.last_one(), Some(402));
    }

    #[test]
    fn from_bools_and_iter() {
        let bools = [true, false, true, true, false];
        let bv = BitVec::from_bools(&bools);
        let back: Vec<bool> = bv.iter().collect();
        assert_eq!(back, bools);
        let collected: BitVec = bools.iter().copied().collect();
        assert_eq!(collected, bv);
    }

    #[test]
    fn extend_from_bitvec_aligned_and_unaligned() {
        let a = BitVec::from_fn(64, |i| i % 2 == 0);
        let b = BitVec::from_fn(37, |i| i % 3 == 0);

        let mut aligned = a.clone();
        aligned.extend_from_bitvec(&b);
        assert_eq!(aligned.len(), 101);

        let mut unaligned = BitVec::from_fn(10, |i| i % 2 == 0);
        unaligned.extend_from_bitvec(&b);
        assert_eq!(unaligned.len(), 47);

        for i in 0..37 {
            assert_eq!(aligned.bit(64 + i), b.bit(i));
            assert_eq!(unaligned.bit(10 + i), b.bit(i));
        }
    }

    #[test]
    fn density() {
        let bv = BitVec::from_fn(100, |i| i < 25);
        assert!((bv.density() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn debug_format_truncates() {
        let bv = BitVec::ones(3);
        assert_eq!(format!("{bv:?}"), "BitVec[3; 111]");
        let long = BitVec::zeros(200);
        assert!(format!("{long:?}").contains('…'));
    }
}
