//! Iterators over bits and over set-bit positions.

use crate::{BitVec, WORD_BITS};

/// Iterator over every bit as `bool`, in index order.
pub struct BitIter<'a> {
    bv: &'a BitVec,
    front: usize,
    back: usize, // one past the last unyielded index
}

impl<'a> Iterator for BitIter<'a> {
    type Item = bool;

    #[inline]
    fn next(&mut self) -> Option<bool> {
        if self.front == self.back {
            return None;
        }
        let b = unsafe { self.bv.get_unchecked(self.front) };
        self.front += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.back - self.front;
        (n, Some(n))
    }
}

impl<'a> DoubleEndedIterator for BitIter<'a> {
    fn next_back(&mut self) -> Option<bool> {
        if self.front == self.back {
            return None;
        }
        self.back -= 1;
        Some(unsafe { self.bv.get_unchecked(self.back) })
    }
}

impl<'a> ExactSizeIterator for BitIter<'a> {}

/// Iterator over the indices of set bits, ascending.
///
/// Walks the word array and peels off one trailing-zeros position per
/// `next`, so iteration cost is proportional to the number of set bits
/// plus the number of words — fast on the sparse bitvectors produced by
/// selective predicates.
pub struct OnesIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl<'a> Iterator for OnesIter<'a> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

impl BitVec {
    /// Iterates every bit in order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            bv: self,
            front: 0,
            back: self.len(),
        }
    }

    /// Iterates the indices of set bits, ascending.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            words: self.as_words(),
            word_idx: 0,
            current: self.as_words().first().copied().unwrap_or(0),
        }
    }

    /// Collects set-bit indices into a vector.
    pub fn ones_positions(&self) -> Vec<usize> {
        self.iter_ones().collect()
    }
}

impl<'a> IntoIterator for &'a BitVec {
    type Item = bool;
    type IntoIter = BitIter<'a>;
    fn into_iter(self) -> BitIter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_iter_roundtrip() {
        let bv = BitVec::from_fn(133, |i| i % 7 == 3);
        let bools: Vec<bool> = bv.iter().collect();
        assert_eq!(bools.len(), 133);
        for (i, b) in bools.iter().enumerate() {
            assert_eq!(*b, i % 7 == 3);
        }
    }

    #[test]
    fn bit_iter_reversed() {
        let bv = BitVec::from_bools(&[true, false, true]);
        let rev: Vec<bool> = bv.iter().rev().collect();
        assert_eq!(rev, vec![true, false, true]);
        assert_eq!(bv.iter().len(), 3);
    }

    #[test]
    fn ones_iter_sparse() {
        let mut bv = BitVec::zeros(1000);
        let set = [0usize, 63, 64, 127, 500, 999];
        for &i in &set {
            bv.set(i, true);
        }
        assert_eq!(bv.ones_positions(), set);
    }

    #[test]
    fn ones_iter_empty_and_full() {
        assert_eq!(BitVec::zeros(100).iter_ones().count(), 0);
        assert_eq!(BitVec::new().iter_ones().count(), 0);
        let full = BitVec::ones(70);
        assert_eq!(full.ones_positions(), (0..70).collect::<Vec<_>>());
    }

    #[test]
    fn ones_iter_matches_count() {
        let bv = BitVec::from_fn(321, |i| (i * i) % 11 == 4);
        assert_eq!(bv.iter_ones().count(), bv.count_ones());
    }
}
