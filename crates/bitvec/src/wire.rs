//! Compact wire format for shipping bitvectors from client to server.
//!
//! Layout (all little-endian):
//!
//! ```text
//! [u64 len_in_bits][packed words: ceil(len/64) * 8 bytes]
//! ```
//!
//! The format is deliberately trivial: clients in the paper are
//! under-powered edge devices, so encoding must be a `memcpy`, not an
//! entropy coder. Sparse compression happens implicitly because parked
//! records never ship their payloads.

use crate::{words_for, BitVec};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Errors produced when decoding a bitvector from bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes available than the header demands.
    Truncated {
        /// Bytes required to finish decoding.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Bits beyond `len` in the final word were set — the producer
    /// violated the tail-invariant, so the payload is suspect.
    DirtyTail,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, available } => write!(
                f,
                "truncated bitvec payload: need {needed} bytes, have {available}"
            ),
            WireError::DirtyTail => write!(f, "bitvec payload has set bits beyond its length"),
        }
    }
}

impl std::error::Error for WireError {}

impl BitVec {
    /// Serialized size in bytes.
    pub fn wire_len(&self) -> usize {
        8 + self.as_words().len() * 8
    }

    /// Appends the wire encoding to `buf`.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.reserve(self.wire_len());
        buf.put_u64_le(self.len() as u64);
        for &w in self.as_words() {
            buf.put_u64_le(w);
        }
    }

    /// Encodes into a fresh byte buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Decodes one bitvector from the front of `buf`, advancing it.
    pub fn decode_from(buf: &mut impl Buf) -> Result<BitVec, WireError> {
        if buf.remaining() < 8 {
            return Err(WireError::Truncated {
                needed: 8,
                available: buf.remaining(),
            });
        }
        let len = buf.get_u64_le() as usize;
        let nwords = words_for(len);
        if buf.remaining() < nwords * 8 {
            return Err(WireError::Truncated {
                needed: nwords * 8,
                available: buf.remaining(),
            });
        }
        let mut words = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            words.push(buf.get_u64_le());
        }
        // Enforce tail invariant on untrusted input.
        let rem = len % 64;
        if rem != 0 {
            if let Some(&last) = words.last() {
                if last & !((1u64 << rem) - 1) != 0 {
                    return Err(WireError::DirtyTail);
                }
            }
        }
        Ok(BitVec { words, len })
    }

    /// Decodes a bitvector that must occupy the whole slice.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<BitVec, WireError> {
        BitVec::decode_from(&mut bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for n in [0usize, 1, 63, 64, 65, 128, 1000] {
            let bv = BitVec::from_fn(n, |i| i % 13 == 5);
            let bytes = bv.to_bytes();
            assert_eq!(bytes.len(), bv.wire_len());
            let back = BitVec::from_bytes(&bytes).unwrap();
            assert_eq!(back, bv);
        }
    }

    #[test]
    fn sequential_decode() {
        let a = BitVec::from_fn(10, |i| i % 2 == 0);
        let b = BitVec::from_fn(77, |i| i % 3 == 0);
        let mut buf = BytesMut::new();
        a.encode_into(&mut buf);
        b.encode_into(&mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(BitVec::decode_from(&mut bytes).unwrap(), a);
        assert_eq!(BitVec::decode_from(&mut bytes).unwrap(), b);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn truncated_header() {
        let err = BitVec::from_bytes(&[1, 2, 3]).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }));
    }

    #[test]
    fn truncated_body() {
        let bv = BitVec::ones(100);
        let bytes = bv.to_bytes();
        let err = BitVec::from_bytes(&bytes[..bytes.len() - 1]).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }));
    }

    #[test]
    fn dirty_tail_rejected() {
        // len = 4 bits but a bit at position 10 set.
        let mut buf = BytesMut::new();
        buf.put_u64_le(4);
        buf.put_u64_le(0b100_0000_1111);
        let err = BitVec::from_bytes(&buf.freeze()).unwrap_err();
        assert_eq!(err, WireError::DirtyTail);
    }
}
