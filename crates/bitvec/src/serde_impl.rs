//! Serde support: a `BitVec` serializes as `(len, words)`.
//!
//! The serde representation exists so bitvectors can ride inside larger
//! serde-encoded structures (plans, reports); the hot client→server path
//! uses the leaner [`crate::wire`] format instead.

use crate::{words_for, BitVec};
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

impl Serialize for BitVec {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (self.len(), self.as_words()).serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for BitVec {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let (len, words): (usize, Vec<u64>) = Deserialize::deserialize(deserializer)?;
        if words.len() != words_for(len) {
            return Err(D::Error::custom(format!(
                "bitvec word count {} inconsistent with length {len}",
                words.len()
            )));
        }
        let rem = len % 64;
        if rem != 0 {
            if let Some(&last) = words.last() {
                if last & !((1u64 << rem) - 1) != 0 {
                    return Err(D::Error::custom("bitvec has set bits beyond its length"));
                }
            }
        }
        Ok(BitVec { words, len })
    }
}

#[cfg(test)]
mod tests {
    use crate::BitVec;

    #[test]
    fn serde_roundtrip_json() {
        let bv = BitVec::from_fn(100, |i| i % 9 == 1);
        let json = serde_json::to_string(&bv).unwrap();
        let back: BitVec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, bv);
    }

    #[test]
    fn serde_rejects_inconsistent_words() {
        let json = "[100, [1, 2]]"; // needs 2 words for 100 bits: ok count but dirty tail
                                    // 100 bits -> words_for = 2, rem = 36; word[1] = 2 has bit 1 set -> bit 65 < 100, fine.
        let ok: Result<BitVec, _> = serde_json::from_str(json);
        assert!(ok.is_ok());

        let short = "[100, [1]]";
        let err: Result<BitVec, _> = serde_json::from_str(short);
        assert!(err.is_err());

        // len 4 but bit 10 set in the single word.
        let dirty = format!("[4, [{}]]", 0b100_0000_1111u64);
        let err: Result<BitVec, _> = serde_json::from_str(&dirty);
        assert!(err.is_err());
    }
}
