//! Property-based tests for the bitvector invariants the rest of CIAO
//! leans on: boolean-algebra identities, rank/select duality, and
//! encode/decode round-trips.

use ciao_bitvec::BitVec;
use proptest::prelude::*;

fn arb_bitvec(max_len: usize) -> impl Strategy<Value = BitVec> {
    prop::collection::vec(any::<bool>(), 0..=max_len).prop_map(|v| BitVec::from_bools(&v))
}

/// Two equal-length bitvectors.
fn arb_pair(max_len: usize) -> impl Strategy<Value = (BitVec, BitVec)> {
    (0..=max_len).prop_flat_map(|n| {
        (
            prop::collection::vec(any::<bool>(), n),
            prop::collection::vec(any::<bool>(), n),
        )
            .prop_map(|(a, b)| (BitVec::from_bools(&a), BitVec::from_bools(&b)))
    })
}

proptest! {
    #[test]
    fn from_bools_roundtrip(bools in prop::collection::vec(any::<bool>(), 0..300)) {
        let bv = BitVec::from_bools(&bools);
        prop_assert_eq!(bv.len(), bools.len());
        let back: Vec<bool> = bv.iter().collect();
        prop_assert_eq!(back, bools);
    }

    #[test]
    fn wire_roundtrip(bv in arb_bitvec(300)) {
        let bytes = bv.to_bytes();
        let back = BitVec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, bv);
    }

    #[test]
    fn serde_roundtrip(bv in arb_bitvec(300)) {
        let s = serde_json::to_string(&bv).unwrap();
        let back: BitVec = serde_json::from_str(&s).unwrap();
        prop_assert_eq!(back, bv);
    }

    #[test]
    fn de_morgan((a, b) in arb_pair(256)) {
        let lhs = a.and(&b).not();
        let rhs = a.not().or(&b.not());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn and_or_absorption((a, b) in arb_pair(256)) {
        prop_assert_eq!(a.and(&a.or(&b)), a.clone());
        prop_assert_eq!(a.or(&a.and(&b)), a.clone());
    }

    #[test]
    fn xor_self_is_zero(bv in arb_bitvec(256)) {
        let z = bv.xor(&bv);
        prop_assert!(z.none());
        prop_assert_eq!(z.len(), bv.len());
    }

    #[test]
    fn inclusion_exclusion((a, b) in arb_pair(256)) {
        prop_assert_eq!(
            a.count_ones() + b.count_ones(),
            a.union_count(&b) + a.intersection_count(&b)
        );
    }

    #[test]
    fn rank_select_duality(bv in arb_bitvec(256)) {
        let ones = bv.count_ones();
        for k in 0..ones {
            let pos = bv.select(k).unwrap();
            prop_assert!(bv.bit(pos));
            prop_assert_eq!(bv.rank(pos), k);
        }
        prop_assert!(bv.select(ones).is_none());
        prop_assert_eq!(bv.rank(bv.len()), ones);
    }

    #[test]
    fn iter_ones_matches_bits(bv in arb_bitvec(256)) {
        let from_iter: Vec<usize> = bv.iter_ones().collect();
        let from_scan: Vec<usize> = (0..bv.len()).filter(|&i| bv.bit(i)).collect();
        prop_assert_eq!(from_iter, from_scan);
    }

    #[test]
    fn extend_matches_concat((a, b) in (arb_bitvec(200), arb_bitvec(200))) {
        let mut joined = a.clone();
        joined.extend_from_bitvec(&b);
        prop_assert_eq!(joined.len(), a.len() + b.len());
        for i in 0..a.len() {
            prop_assert_eq!(joined.bit(i), a.bit(i));
        }
        for i in 0..b.len() {
            prop_assert_eq!(joined.bit(a.len() + i), b.bit(i));
        }
    }

    #[test]
    fn truncate_then_ops_safe(bv in arb_bitvec(256), cut in 0usize..256) {
        let mut t = bv.clone();
        let cut = cut.min(t.len());
        t.truncate(cut);
        prop_assert_eq!(t.len(), cut);
        // not() twice must be identity even after truncation (tail invariant).
        prop_assert_eq!(t.not().not(), t);
    }

    /// Fused counts vs materialize-then-count, at lengths straddling
    /// the word boundary (63/64/65) where the tail-bit invariant is
    /// easiest to violate.
    #[test]
    fn fused_counts_match_materialized((a, b) in arb_word_boundary_pair()) {
        prop_assert_eq!(a.count_and(&b), a.and(&b).count_ones());
        prop_assert_eq!(a.count_and_not(&b), a.and(&b.not()).count_ones());
        prop_assert_eq!(a.intersection_count(&b), a.count_and(&b));
    }

    /// `and_not_assign` vs the two-step `not` + `and` composition.
    #[test]
    fn and_not_assign_matches_composition((a, b) in arb_word_boundary_pair()) {
        let mut fused = a.clone();
        fused.and_not_assign(&b);
        prop_assert_eq!(fused, a.and(&b.not()));
    }

    /// Fused multi-operand reductions vs folding pairwise ops, for
    /// 1–6 operands (1 exercises the clone-only path; > tile-free
    /// sizes are covered by the unit tests on `BitVec::ones`).
    #[test]
    fn fused_reductions_match_pairwise((vecs, _n) in arb_operand_family()) {
        let refs: Vec<&BitVec> = vecs.iter().collect();
        let fused_and = BitVec::and_all(&refs).unwrap();
        let fused_or = BitVec::or_all(&refs).unwrap();
        let mut fold_and = vecs[0].clone();
        let mut fold_or = vecs[0].clone();
        for v in &vecs[1..] {
            fold_and.and_assign(v);
            fold_or.or_assign(v);
        }
        prop_assert_eq!(fused_and, fold_and);
        prop_assert_eq!(fused_or, fold_or);
    }
}

/// Two equal-length bitvectors whose length clusters on word edges.
fn arb_word_boundary_pair() -> impl Strategy<Value = (BitVec, BitVec)> {
    prop::sample::select(vec![0usize, 1, 62, 63, 64, 65, 127, 128, 129, 200]).prop_flat_map(|n| {
        (
            prop::collection::vec(any::<bool>(), n),
            prop::collection::vec(any::<bool>(), n),
        )
            .prop_map(|(a, b)| (BitVec::from_bools(&a), BitVec::from_bools(&b)))
    })
}

/// 1–6 equal-length random operands at a word-boundary length.
fn arb_operand_family() -> impl Strategy<Value = (Vec<BitVec>, usize)> {
    (
        prop::sample::select(vec![0usize, 1, 63, 64, 65, 130]),
        1usize..=6,
    )
        .prop_flat_map(|(n, k)| {
            prop::collection::vec(prop::collection::vec(any::<bool>(), n), k)
                .prop_map(move |vs| (vs.iter().map(|v| BitVec::from_bools(v)).collect(), n))
        })
}

#[test]
fn subset_transitivity_smoke() {
    let a = BitVec::from_fn(100, |i| i % 12 == 0);
    let b = BitVec::from_fn(100, |i| i % 6 == 0);
    let c = BitVec::from_fn(100, |i| i % 3 == 0);
    assert!(a.is_subset_of(&b));
    assert!(b.is_subset_of(&c));
    assert!(a.is_subset_of(&c));
}
