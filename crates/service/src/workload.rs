//! Workload statistics: what the query stream actually looks like.
//!
//! Every executed SQL statement's [`QueryProfile`] folds into a
//! [`WorkloadStats`] collector — per-clause observed frequency and
//! selectivity EWMAs — plus a bounded [`SlowQueryLog`] ring. This is
//! the observed-workload input a future online re-optimization pass
//! (ROADMAP item 5) feeds back into submodular plan re-selection: the
//! paper's plan is built from an *assumed* workload, and these
//! statistics are the drift signal between that assumption and
//! production traffic.

use ciao_engine::QueryProfile;
use std::collections::VecDeque;
use std::time::Duration;

/// Smoothing factor the collectors default to: each new query moves an
/// EWMA 20% of the way toward the fresh observation.
pub const DEFAULT_EWMA_ALPHA: f64 = 0.2;

/// Exponentially weighted statistics for one WHERE clause, keyed by
/// its canonical text.
#[derive(Debug, Clone, PartialEq)]
pub struct ClauseStats {
    /// Canonical clause text (`ciao_predicate::Clause` display form).
    pub text: String,
    /// Whether any observed execution rode a pushed bitvector.
    pub pushed: bool,
    /// Queries whose WHERE conjunction contained this clause.
    pub queries_seen: u64,
    /// Executions that actually evaluated the clause on ≥1 row (zero
    /// while every query the clause appeared in was fully pruned).
    pub observations: u64,
    /// EWMA of per-query presence (1 when a query used the clause, 0
    /// when it did not) — the clause's observed workload frequency.
    pub frequency_ewma: f64,
    /// EWMA of observed selectivity (`rows_passed / rows_evaluated`),
    /// `None` until the first real observation. Under conjunctive
    /// short-circuiting this is conditional on clause order.
    pub selectivity_ewma: Option<f64>,
}

/// Per-clause frequency/selectivity EWMAs over every executed query.
#[derive(Debug, Clone)]
pub struct WorkloadStats {
    alpha: f64,
    /// Profiles folded in so far.
    pub queries: u64,
    clauses: Vec<ClauseStats>,
}

impl Default for WorkloadStats {
    fn default() -> Self {
        WorkloadStats::new(DEFAULT_EWMA_ALPHA)
    }
}

impl WorkloadStats {
    /// An empty collector with the given EWMA smoothing factor
    /// (`0 < alpha <= 1`; larger forgets faster).
    pub fn new(alpha: f64) -> WorkloadStats {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        WorkloadStats {
            alpha,
            queries: 0,
            clauses: Vec::new(),
        }
    }

    /// Folds one executed query's profile in. Every already-known
    /// clause gets a frequency observation (present or absent); a
    /// clause first seen here is seeded at frequency 1. Selectivity
    /// only updates when the clause was evaluated on at least one row,
    /// so fully-pruned executions don't dilute it.
    pub fn observe(&mut self, profile: &QueryProfile) {
        self.queries += 1;
        for cp in &profile.clauses {
            if !self.clauses.iter().any(|c| c.text == cp.text) {
                self.clauses.push(ClauseStats {
                    text: cp.text.clone(),
                    pushed: false,
                    queries_seen: 0,
                    observations: 0,
                    frequency_ewma: 1.0,
                    selectivity_ewma: None,
                });
            }
        }
        for stats in &mut self.clauses {
            let in_query = profile.clauses.iter().find(|cp| cp.text == stats.text);
            let present = if in_query.is_some() { 1.0 } else { 0.0 };
            if stats.queries_seen > 0 || in_query.is_none() {
                stats.frequency_ewma += self.alpha * (present - stats.frequency_ewma);
            }
            let Some(cp) = in_query else {
                continue;
            };
            stats.queries_seen += 1;
            stats.pushed |= cp.pushed;
            if let Some(s) = cp.selectivity() {
                stats.observations += 1;
                stats.selectivity_ewma = Some(match stats.selectivity_ewma {
                    Some(prev) => prev + self.alpha * (s - prev),
                    None => s,
                });
            }
        }
    }

    /// Every clause seen so far, in first-seen order.
    pub fn clauses(&self) -> &[ClauseStats] {
        &self.clauses
    }

    /// Looks up one clause's statistics by canonical text.
    pub fn clause(&self, text: &str) -> Option<&ClauseStats> {
        self.clauses.iter().find(|c| c.text == text)
    }
}

/// One entry in the slow-query log.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowQueryEntry {
    /// 1-based position in the service's executed-statement sequence.
    pub seq: u64,
    /// The statement text as submitted.
    pub sql: String,
    /// End-to-end execution time (drain + fan-out + merge + finalize).
    pub elapsed: Duration,
    /// Rows in the final answer (after LIMIT).
    pub rows_returned: usize,
    /// Rows the WHERE conjunction matched across both sides.
    pub rows_matched: u64,
}

/// A bounded ring of the slowest statements: everything at or above
/// the threshold is kept, oldest entries evicted beyond the capacity.
#[derive(Debug)]
pub struct SlowQueryLog {
    threshold: Duration,
    capacity: usize,
    entries: VecDeque<SlowQueryEntry>,
    total: u64,
}

impl SlowQueryLog {
    /// An empty log keeping at most `capacity` entries at or above
    /// `threshold`.
    pub fn new(threshold: Duration, capacity: usize) -> SlowQueryLog {
        assert!(capacity > 0, "slow-query log capacity must be positive");
        SlowQueryLog {
            threshold,
            capacity,
            entries: VecDeque::with_capacity(capacity),
            total: 0,
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Records one execution; returns whether it crossed the threshold
    /// (and therefore entered the ring).
    pub fn observe(&mut self, entry: SlowQueryEntry) -> bool {
        if entry.elapsed < self.threshold {
            return false;
        }
        self.total += 1;
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
        true
    }

    /// Slow executions observed over the log's lifetime (including
    /// entries since evicted from the ring).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The retained window, oldest first.
    pub fn snapshot(&self) -> Vec<SlowQueryEntry> {
        self.entries.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_engine::ClauseProfile;

    fn profile(clauses: &[(&str, u64, u64)]) -> QueryProfile {
        QueryProfile {
            clauses: clauses
                .iter()
                .map(|&(text, evaluated, passed)| ClauseProfile {
                    text: text.to_owned(),
                    pushed: false,
                    rows_evaluated: evaluated,
                    rows_passed: passed,
                })
                .collect(),
            ..QueryProfile::default()
        }
    }

    #[test]
    fn selectivity_ewma_converges_to_ground_truth() {
        let mut w = WorkloadStats::new(0.3);
        // A fixed workload: the clause always passes 25 of 100 rows.
        for _ in 0..50 {
            w.observe(&profile(&[("stars = 5", 100, 25)]));
        }
        let c = w.clause("stars = 5").unwrap();
        assert_eq!(c.queries_seen, 50);
        assert!(
            (c.selectivity_ewma.unwrap() - 0.25).abs() < 1e-9,
            "constant observations converge exactly"
        );
        assert!((c.frequency_ewma - 1.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_tracks_presence_across_queries() {
        let mut w = WorkloadStats::new(0.5);
        // Alternate between two single-clause queries.
        for i in 0..40 {
            if i % 2 == 0 {
                w.observe(&profile(&[("a = 1", 10, 5)]));
            } else {
                w.observe(&profile(&[("b = 2", 10, 1)]));
            }
        }
        let a = w.clause("a = 1").unwrap();
        let b = w.clause("b = 2").unwrap();
        // Each appears in half the queries: the EWMA oscillates around
        // 0.5 (with alpha 0.5 it alternates between 1/3 and 2/3).
        assert!(a.frequency_ewma > 0.2 && a.frequency_ewma < 0.8);
        assert!(b.frequency_ewma > 0.2 && b.frequency_ewma < 0.8);
        assert_eq!(w.queries, 40);
        assert_eq!(a.queries_seen, 20);
    }

    #[test]
    fn pruned_executions_do_not_dilute_selectivity() {
        let mut w = WorkloadStats::default();
        w.observe(&profile(&[("a = 1", 100, 50)]));
        // Zone maps pruned everything: clause never ran.
        w.observe(&profile(&[("a = 1", 0, 0)]));
        let a = w.clause("a = 1").unwrap();
        assert_eq!(a.observations, 1);
        assert_eq!(a.queries_seen, 2);
        assert_eq!(a.selectivity_ewma, Some(0.5));
    }

    #[test]
    fn slow_log_ring_keeps_newest_and_counts_total() {
        let mut log = SlowQueryLog::new(Duration::from_millis(10), 2);
        let entry = |seq, ms| SlowQueryEntry {
            seq,
            sql: format!("SELECT {seq}"),
            elapsed: Duration::from_millis(ms),
            rows_returned: 1,
            rows_matched: 1,
        };
        assert!(!log.observe(entry(1, 5)), "below threshold: skipped");
        assert!(log.observe(entry(2, 10)), "at threshold: recorded");
        assert!(log.observe(entry(3, 20)));
        assert!(log.observe(entry(4, 30)));
        assert_eq!(log.total(), 3);
        let snap = log.snapshot();
        assert_eq!(
            snap.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![3, 4],
            "bounded ring evicts oldest"
        );
    }
}
