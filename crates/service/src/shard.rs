//! Per-shard state: an epochal partial-loading store.
//!
//! [`ciao::Server`] is one-shot — ingest, finalize once, then query.
//! A long-running shard instead seals **epochs**: ingest streams into
//! the active [`Loader`]; the first query (or compaction tick) after
//! an ingest burst seals that epoch, merging its columnar fragment,
//! parked rows, and [`LoadStats`] into the shard's cumulative state,
//! and the next ingest opens a fresh epoch. Queries therefore always
//! see every record ingested before them, and ingest never has to wait
//! for a "finalized" lifecycle.

use crate::compactor::{CompactionPolicy, CompactionStats};
use crate::telemetry::{names, ServiceTelemetry};
use ciao::{jit, LoadStats, Loader, PushdownPlan};
use ciao_client::ChunkFilterResult;
use ciao_columnar::{Schema, Table};
use ciao_engine::{Executor, PartialResult, QueryOutcome};
use ciao_json::RecordChunk;
use ciao_predicate::Query;
use ciao_sql::PhysicalPlan;
use std::sync::Arc;

/// A point-in-time view of one shard, reported by
/// [`crate::Service::metrics`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardSnapshot {
    /// Rows currently in columnar blocks (sealed epochs + the active
    /// epoch's loaded rows).
    pub rows: usize,
    /// Rows currently parked as raw JSON (sealed + active epoch).
    pub parked: usize,
    /// Cumulative loading counters across every epoch. Unlike
    /// `parked`, `load.parked_records` counts parking *events* and
    /// never decreases when compaction drains the store.
    pub load: LoadStats,
    /// Cumulative compaction counters.
    pub compaction: CompactionStats,
    /// Uncovered-query executions that scanned this shard's parked
    /// store since its last compaction (the compactor's heat signal).
    pub heat: usize,
    /// Ingest epochs sealed so far (each seal merges one active
    /// [`Loader`]'s fragment into the cumulative state).
    pub sealed_epochs: usize,
    /// Columnar blocks currently live in the sealed table (excluding
    /// the active epoch's unfinished blocks).
    pub sealed_blocks: usize,
}

impl ShardSnapshot {
    /// Fraction of this shard's live rows still parked as raw JSON.
    pub fn parked_ratio(&self) -> f64 {
        let total = self.rows + self.parked;
        if total == 0 {
            0.0
        } else {
            self.parked as f64 / total as f64
        }
    }
}

/// One shard: a plan-sharing, independently lockable loading state.
#[derive(Debug)]
pub struct Shard {
    plan: Arc<PushdownPlan>,
    schema: Arc<Schema>,
    block_size: usize,
    /// The active ingest epoch (`None` between a seal and the next
    /// ingest).
    loader: Option<Loader>,
    table: Table,
    parked: Vec<String>,
    stats: LoadStats,
    executor: Executor,
    compaction: CompactionStats,
    heat: usize,
    sealed_epochs: usize,
    /// `(shard index, handles)` once the owning service attaches its
    /// telemetry; standalone shards run unobserved.
    telemetry: Option<(usize, Arc<ServiceTelemetry>)>,
}

impl Shard {
    /// Creates an empty shard sharing the service-wide plan.
    pub fn new(plan: Arc<PushdownPlan>, schema: Arc<Schema>, block_size: usize) -> Shard {
        let executor = Executor::new(plan.predicates.iter().map(|p| (p.clause.clone(), p.id)));
        Shard {
            plan,
            schema,
            block_size,
            loader: None,
            table: Table::default(),
            parked: Vec::new(),
            stats: LoadStats::default(),
            executor,
            compaction: CompactionStats::default(),
            heat: 0,
            sealed_epochs: 0,
            telemetry: None,
        }
    }

    /// Attaches service telemetry so epoch seals are counted and
    /// traced under this shard's index.
    pub fn attach_telemetry(&mut self, shard_index: usize, telemetry: Arc<ServiceTelemetry>) {
        self.telemetry = Some((shard_index, telemetry));
    }

    /// Restores recovered durable state into a freshly built shard:
    /// the sealed table, the parked store, cumulative load stats, and
    /// the sealed-epoch count the snapshot was taken at. Replayed WAL
    /// chunks are then ingested on top through the normal path.
    ///
    /// Panics when the shard already holds data — restore is a
    /// start-of-life operation, not a merge.
    pub fn restore(
        &mut self,
        table: Table,
        parked: Vec<String>,
        stats: LoadStats,
        sealed_epochs: usize,
    ) {
        assert!(
            self.loader.is_none() && self.table.is_empty() && self.parked.is_empty(),
            "restore into a non-empty shard"
        );
        self.table = table;
        self.parked = parked;
        self.stats = stats;
        self.sealed_epochs = sealed_epochs;
    }

    /// The sealed columnar table (excludes the active epoch). Seal
    /// first when a checkpoint needs everything applied so far.
    pub fn sealed_table(&self) -> &Table {
        &self.table
    }

    /// The sealed parked store (excludes the active epoch).
    pub fn parked_rows(&self) -> &[String] {
        &self.parked
    }

    /// Cumulative load stats over sealed epochs.
    pub fn cumulative_stats(&self) -> LoadStats {
        self.stats
    }

    /// Epochs sealed so far.
    pub fn sealed_epoch_count(&self) -> usize {
        self.sealed_epochs
    }

    fn open_epoch(&mut self) -> &mut Loader {
        let plan = &self.plan;
        let schema = &self.schema;
        let block_size = self.block_size;
        self.loader.get_or_insert_with(|| {
            let policy = if plan.is_empty() {
                ciao::AdmissionPolicy::LoadAll
            } else {
                ciao::AdmissionPolicy::from_coverage(&plan.query_coverage)
            };
            Loader::new(Arc::clone(schema), &plan.ids(), policy, block_size)
        })
    }

    /// Ingests one chunk with its client filter result into the active
    /// epoch (opening one if needed).
    pub fn ingest(&mut self, chunk: &RecordChunk, filter: &ChunkFilterResult) {
        self.open_epoch().load_chunk(chunk, filter);
    }

    /// Seals the active epoch into the cumulative state. Idempotent;
    /// cheap when no epoch is open.
    pub fn seal_epoch(&mut self) {
        if let Some(loader) = self.loader.take() {
            let (fragment, parked, stats) = loader.finish();
            self.table.merge(fragment);
            self.parked.extend(parked);
            self.stats.merge(&stats);
            self.sealed_epochs += 1;
            if let Some((index, t)) = &self.telemetry {
                t.epochs_sealed.inc();
                t.events().push(
                    names::EVENT_EPOCH_SEAL,
                    Some(*index),
                    &[
                        ("loaded", stats.loaded_records as u64),
                        ("parked", stats.parked_records as u64),
                    ],
                );
            }
        }
    }

    /// Executes a `COUNT(*)` query over everything ingested so far
    /// (seals the active epoch first).
    pub fn execute(&mut self, query: &Query) -> QueryOutcome {
        self.seal_epoch();
        let out = self
            .executor
            .execute_count(&self.table, &self.parked, query);
        if out.metrics.scanned_parked && !self.parked.is_empty() {
            self.heat += 1;
        }
        out
    }

    /// Executes a SQL physical plan over everything ingested so far
    /// (seals the active epoch first), returning this shard's
    /// mergeable partial. Parked-store scans heat the shard for the
    /// compactor exactly like uncovered `COUNT(*)` queries do.
    pub fn execute_plan(&mut self, plan: &PhysicalPlan) -> PartialResult {
        self.seal_epoch();
        let out = self.executor.execute_plan(&self.table, &self.parked, plan);
        if out.metrics.scanned_parked && !self.parked.is_empty() {
            self.heat += 1;
        }
        out
    }

    /// One compaction pass: promote up to `policy.batch` parked rows
    /// (oldest first) into new columnar blocks. Returns this tick's
    /// delta (also folded into the cumulative counters).
    pub fn compact(&mut self, policy: &CompactionPolicy) -> CompactionStats {
        self.seal_epoch();
        let mut delta = CompactionStats::default();
        if !policy.eligible(self.parked.len(), self.heat) {
            delta.idle_ticks = 1;
            self.compaction.merge(&delta);
            return delta;
        }
        let take = policy.batch.min(self.parked.len());
        let batch: Vec<String> = self.parked.drain(..take).collect();
        let (fragment, survivors, stats) =
            jit::promote_parked(&self.plan, Arc::clone(&self.schema), batch, self.block_size);
        self.table.merge(fragment);
        // Survivors (still-unparseable rows) rotate to the back so the
        // next tick's window advances past them.
        self.parked.extend(survivors);
        if stats.promoted > 0 {
            delta.ticks = 1;
        } else {
            delta.idle_ticks = 1;
        }
        delta.promoted = stats.promoted;
        delta.unparseable = stats.still_parked;
        self.heat = 0;
        self.compaction.merge(&delta);
        delta
    }

    /// A point-in-time view, including the active (unsealed) epoch.
    pub fn snapshot(&self) -> ShardSnapshot {
        let epoch = self.loader.as_ref().map(Loader::stats).unwrap_or_default();
        let mut load = self.stats;
        load.merge(&epoch);
        ShardSnapshot {
            rows: self.table.row_count() + epoch.loaded_records,
            parked: self.parked.len() + epoch.parked_records,
            load,
            compaction: self.compaction,
            heat: self.heat,
            sealed_epochs: self.sealed_epochs,
            sealed_blocks: self.table.blocks().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_optimizer::CostModel;
    use ciao_predicate::parse_query;

    fn fixture() -> (Shard, Vec<RecordChunk>) {
        let raw: Vec<String> = (0..120)
            .map(|i| format!(r#"{{"stars":{},"name":"u{}"}}"#, i % 5 + 1, i))
            .collect();
        let sample: Vec<_> = raw
            .iter()
            .take(60)
            .map(|r| ciao_json::parse(r).unwrap())
            .collect();
        let queries = vec![parse_query("q0", "stars = 5").unwrap()];
        let plan = PushdownPlan::build(&queries, &sample, &CostModel::default_uncalibrated(), 10.0)
            .unwrap();
        let schema = Arc::new(Schema::infer(&sample).unwrap());
        let shard = Shard::new(Arc::new(plan), schema, 16);
        let chunks = RecordChunk::from_records(&raw).unwrap().split(40);
        (shard, chunks)
    }

    fn filters(shard: &Shard, chunks: &[RecordChunk]) -> Vec<ChunkFilterResult> {
        let pf = shard.plan.prefilter();
        chunks.iter().map(|c| pf.run_chunk(c)).collect()
    }

    #[test]
    fn ingest_query_ingest_query_interleaves() {
        let (mut shard, chunks) = fixture();
        let fs = filters(&shard, &chunks);
        let q = parse_query("q", "stars = 5").unwrap();

        shard.ingest(&chunks[0], &fs[0]);
        assert_eq!(shard.execute(&q).count, 8); // 40 records, 1/5 stars=5
                                                // A second epoch after a query — the one-shot Server panics here.
        shard.ingest(&chunks[1], &fs[1]);
        shard.ingest(&chunks[2], &fs[2]);
        assert_eq!(shard.execute(&q).count, 24);
        assert_eq!(shard.snapshot().load.total(), 120);
    }

    #[test]
    fn seal_is_idempotent_and_lazy() {
        let (mut shard, chunks) = fixture();
        let fs = filters(&shard, &chunks);
        shard.seal_epoch(); // no epoch open: no-op
        shard.ingest(&chunks[0], &fs[0]);
        shard.seal_epoch();
        let rows = shard.snapshot().rows;
        shard.seal_epoch();
        assert_eq!(shard.snapshot().rows, rows);
    }

    #[test]
    fn snapshot_sees_active_epoch() {
        let (mut shard, chunks) = fixture();
        let fs = filters(&shard, &chunks);
        shard.ingest(&chunks[0], &fs[0]);
        let snap = shard.snapshot();
        assert_eq!(snap.rows + snap.parked, 40);
        assert!(snap.parked_ratio() > 0.0);
    }

    #[test]
    fn compaction_drains_parked_in_batches() {
        let (mut shard, chunks) = fixture();
        let fs = filters(&shard, &chunks);
        for (c, f) in chunks.iter().zip(&fs) {
            shard.ingest(c, f);
        }
        let q5 = parse_query("q", "stars = 5").unwrap();
        let q2 = parse_query("q", "stars = 2").unwrap();
        let before5 = shard.execute(&q5).count;
        let before2 = shard.execute(&q2).count;
        let parked0 = shard.snapshot().parked;
        assert!(parked0 > 0);

        let policy = CompactionPolicy::default().with_batch(32);
        let mut ratios = vec![shard.snapshot().parked_ratio()];
        while shard.snapshot().parked > 0 {
            let delta = shard.compact(&policy);
            assert!(delta.promoted > 0);
            ratios.push(shard.snapshot().parked_ratio());
        }
        // Strictly decreasing parked ratio, identical answers.
        assert!(ratios.windows(2).all(|w| w[1] < w[0]), "{ratios:?}");
        assert_eq!(shard.execute(&q5).count, before5);
        assert_eq!(shard.execute(&q2).count, before2);
        assert_eq!(shard.snapshot().compaction.promoted, parked0);
        // Everything now columnar: uncovered queries parse nothing.
        assert_eq!(shard.execute(&q2).metrics.raw_scan.records_parsed, 0);
    }

    #[test]
    fn heat_accumulates_on_parked_scans_and_resets_on_compaction() {
        let (mut shard, chunks) = fixture();
        let fs = filters(&shard, &chunks);
        shard.ingest(&chunks[0], &fs[0]);
        let covered = parse_query("q", "stars = 5").unwrap();
        let uncovered = parse_query("q", "stars = 2").unwrap();
        shard.execute(&covered);
        assert_eq!(shard.snapshot().heat, 0, "covered queries add no heat");
        shard.execute(&uncovered);
        shard.execute(&uncovered);
        assert_eq!(shard.snapshot().heat, 2);

        // A heat-gated policy ignores a cold shard...
        let gated = CompactionPolicy::default().with_min_heat(3);
        assert_eq!(shard.compact(&gated).promoted, 0);
        shard.execute(&uncovered);
        // ...and fires once the threshold is reached, resetting heat.
        assert!(shard.compact(&gated).promoted > 0);
        assert_eq!(shard.snapshot().heat, 0);
    }

    #[test]
    fn sealed_epoch_and_block_counts_track_lifecycle() {
        let (mut shard, chunks) = fixture();
        let fs = filters(&shard, &chunks);
        assert_eq!(shard.snapshot().sealed_epochs, 0);
        assert_eq!(shard.snapshot().sealed_blocks, 0);

        let q = parse_query("q", "stars = 5").unwrap();
        shard.ingest(&chunks[0], &fs[0]);
        // Ingest alone seals nothing; the first query does.
        assert_eq!(shard.snapshot().sealed_epochs, 0);
        shard.execute(&q);
        let snap = shard.snapshot();
        assert_eq!(snap.sealed_epochs, 1);
        assert!(snap.sealed_blocks > 0, "sealed rows live in blocks");

        // A sealed-then-resealed idempotent seal adds no epoch.
        shard.seal_epoch();
        assert_eq!(shard.snapshot().sealed_epochs, 1);

        // Each ingest→query cycle seals exactly one more epoch.
        shard.ingest(&chunks[1], &fs[1]);
        shard.execute(&q);
        assert_eq!(shard.snapshot().sealed_epochs, 2);
    }

    #[test]
    fn attached_telemetry_traces_epoch_seals() {
        let (mut shard, chunks) = fixture();
        let fs = filters(&shard, &chunks);
        let t = crate::telemetry::ServiceTelemetry::new(4, 16);
        shard.attach_telemetry(3, Arc::clone(&t));
        shard.ingest(&chunks[0], &fs[0]);
        shard.seal_epoch();
        assert_eq!(
            t.snapshot()
                .counter(crate::telemetry::names::EPOCHS_SEALED_TOTAL),
            Some(1)
        );
        let events = t.events().snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, crate::telemetry::names::EVENT_EPOCH_SEAL);
        assert_eq!(events[0].shard, Some(3));
        let total: u64 = events[0].fields.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 40, "loaded + parked covers the whole chunk");
    }

    #[test]
    fn unparseable_rows_rotate_not_wedge() {
        let (mut shard, chunks) = fixture();
        let fs = filters(&shard, &chunks);
        shard.ingest(&chunks[0], &fs[0]);
        shard.seal_epoch();
        // Plant garbage at the *front* of the parked store.
        shard.parked.insert(0, "not json {".to_owned());
        let live = shard.parked.len() - 1;
        let policy = CompactionPolicy::default().with_batch(8);
        for _ in 0..20 {
            if shard.snapshot().parked <= 1 {
                break;
            }
            shard.compact(&policy);
        }
        let snap = shard.snapshot();
        assert_eq!(snap.parked, 1, "only the garbage row survives");
        assert_eq!(snap.compaction.promoted, live);
        assert!(snap.compaction.unparseable >= 1);
    }
}
