//! The bounded ingest queue: chunks in, backpressure out.
//!
//! A plain `Mutex<VecDeque>` with two condvars (`jobs` wakes workers,
//! `space`/`idle` wake producers and drainers). No lock-free cleverness:
//! ingest jobs are whole chunks (~1k records), so queue operations are
//! nanoseconds against milliseconds of parsing per job — contention on
//! this lock is never the bottleneck, and the simple structure is easy
//! to reason about under shutdown.

use ciao_client::ChunkFilterResult;
use ciao_json::RecordChunk;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One unit of ingest work, routed to a shard at enqueue time.
#[derive(Debug)]
pub struct IngestJob {
    /// Enqueue sequence number (0-based, service lifetime).
    pub seq: u64,
    /// Destination shard index.
    pub shard: usize,
    /// When the queue accepted the job — the start of the ingest-ack
    /// latency window (one `Instant::now()` per whole chunk, so it is
    /// stamped unconditionally rather than gated on telemetry).
    pub enqueued_at: Instant,
    /// The raw chunk.
    pub chunk: RecordChunk,
    /// The client's filter result for the chunk.
    pub filter: ChunkFilterResult,
}

/// What an enqueue attempt observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a QueueFull result means the chunk was NOT accepted"]
pub enum EnqueueResult {
    /// The chunk was accepted.
    Enqueued {
        /// Its sequence number.
        seq: u64,
        /// The shard it will be ingested into.
        shard: usize,
    },
    /// The bounded queue is at capacity — the caller must retry, shed,
    /// or switch to [`crate::Service::enqueue_wait`].
    QueueFull {
        /// The configured capacity the queue is pinned at.
        capacity: usize,
    },
}

impl EnqueueResult {
    /// True when the chunk was accepted.
    pub fn is_enqueued(&self) -> bool {
        matches!(self, EnqueueResult::Enqueued { .. })
    }
}

#[derive(Debug, Default)]
struct QueueState {
    jobs: VecDeque<IngestJob>,
    /// Jobs popped but not yet ingested (keeps `drain` honest: an
    /// empty deque with a job mid-ingest is not "drained").
    in_flight: usize,
    next_seq: u64,
    closed: bool,
}

/// The bounded MPMC ingest queue.
#[derive(Debug)]
pub struct IngestQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    /// Signalled when a job arrives or the queue closes.
    jobs: Condvar,
    /// Signalled when capacity frees up.
    space: Condvar,
    /// Signalled when the queue becomes empty with nothing in flight.
    idle: Condvar,
}

impl IngestQueue {
    /// Creates a queue holding at most `capacity` chunks.
    pub fn new(capacity: usize) -> IngestQueue {
        assert!(capacity > 0, "queue capacity must be positive");
        IngestQueue {
            capacity,
            state: Mutex::new(QueueState::default()),
            jobs: Condvar::new(),
            space: Condvar::new(),
            idle: Condvar::new(),
        }
    }

    /// A queue whose first accepted chunk gets sequence `first_seq` —
    /// how a recovered service resumes its lifetime seq line instead
    /// of re-issuing numbers the WAL already holds.
    pub fn with_first_seq(capacity: usize, first_seq: u64) -> IngestQueue {
        let queue = IngestQueue::new(capacity);
        queue.state.lock().unwrap().next_seq = first_seq;
        queue
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued (excluding in-flight).
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap().jobs.len()
    }

    /// Non-blocking enqueue: `QueueFull` when at capacity or closed.
    pub fn push(
        &self,
        shard: usize,
        chunk: RecordChunk,
        filter: ChunkFilterResult,
    ) -> EnqueueResult {
        match self.try_push(shard, chunk, filter) {
            Ok(seq) => EnqueueResult::Enqueued { seq, shard },
            Err(_) => EnqueueResult::QueueFull {
                capacity: self.capacity,
            },
        }
    }

    /// Non-blocking enqueue that hands the job back on failure, so a
    /// caller can retry the same chunk later without cloning it (the
    /// service's blocking enqueue loops over this, waiting for space
    /// *between* attempts rather than while holding its checkpoint
    /// gate).
    pub fn try_push(
        &self,
        shard: usize,
        chunk: RecordChunk,
        filter: ChunkFilterResult,
    ) -> Result<u64, (RecordChunk, ChunkFilterResult)> {
        let mut st = self.state.lock().unwrap();
        if st.closed || st.jobs.len() >= self.capacity {
            return Err((chunk, filter));
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.jobs.push_back(IngestJob {
            seq,
            shard,
            enqueued_at: Instant::now(),
            chunk,
            filter,
        });
        self.jobs.notify_one();
        Ok(seq)
    }

    /// Blocks until the queue has free capacity or is closed; returns
    /// `false` on close. Space is not reserved — a competing producer
    /// can take it first, so callers loop over [`IngestQueue::try_push`].
    pub fn wait_space(&self) -> bool {
        let mut st = self.state.lock().unwrap();
        while !st.closed && st.jobs.len() >= self.capacity {
            st = self.space.wait(st).unwrap();
        }
        !st.closed
    }

    /// Worker side: blocks for the next job; `None` once the queue is
    /// closed **and** empty (drain-then-stop shutdown semantics).
    pub fn pop_wait(&self) -> Option<IngestJob> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(job) = st.jobs.pop_front() {
                st.in_flight += 1;
                self.space.notify_one();
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.jobs.wait(st).unwrap();
        }
    }

    /// Non-blocking pop (inline-drain mode).
    pub fn try_pop(&self) -> Option<IngestJob> {
        let mut st = self.state.lock().unwrap();
        let job = st.jobs.pop_front();
        if job.is_some() {
            st.in_flight += 1;
            self.space.notify_one();
        }
        job
    }

    /// Marks one popped job as ingested.
    pub fn complete(&self) {
        let mut st = self.state.lock().unwrap();
        st.in_flight -= 1;
        if st.jobs.is_empty() && st.in_flight == 0 {
            self.idle.notify_all();
        }
    }

    /// Blocks until the queue is empty with nothing in flight.
    pub fn wait_idle(&self) {
        let mut st = self.state.lock().unwrap();
        while !(st.jobs.is_empty() && st.in_flight == 0) {
            st = self.idle.wait(st).unwrap();
        }
    }

    /// Closes the queue: pending jobs still drain, new pushes observe
    /// `QueueFull`, and workers exit once the backlog is gone.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        self.jobs.notify_all();
        self.space.notify_all();
    }

    /// Total chunks ever accepted.
    pub fn accepted(&self) -> u64 {
        self.state.lock().unwrap().next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_client::Prefilter;

    fn job_parts() -> (RecordChunk, ChunkFilterResult) {
        let chunk = RecordChunk::from_records(&[r#"{"a":1}"#]).unwrap();
        let filter = Prefilter::new([]).run_chunk(&chunk);
        (chunk, filter)
    }

    #[test]
    fn fills_to_capacity_then_rejects() {
        let q = IngestQueue::new(2);
        for i in 0..2 {
            let (c, f) = job_parts();
            assert_eq!(
                q.push(0, c, f),
                EnqueueResult::Enqueued { seq: i, shard: 0 }
            );
        }
        let (c, f) = job_parts();
        assert_eq!(q.push(0, c, f), EnqueueResult::QueueFull { capacity: 2 });
        assert_eq!(q.depth(), 2);
        assert_eq!(q.accepted(), 2);
    }

    #[test]
    fn pop_frees_space_fifo() {
        let q = IngestQueue::new(1);
        let (c, f) = job_parts();
        assert!(q.push(3, c, f).is_enqueued());
        let job = q.try_pop().unwrap();
        assert_eq!((job.seq, job.shard), (0, 3));
        let (c, f) = job_parts();
        assert!(q.push(1, c, f).is_enqueued());
        q.complete();
    }

    #[test]
    fn wait_idle_counts_in_flight() {
        let q = IngestQueue::new(4);
        let (c, f) = job_parts();
        assert!(q.push(0, c, f).is_enqueued());
        let _job = q.try_pop().unwrap();
        // Empty deque but one job in flight: not idle yet.
        assert_eq!(q.depth(), 0);
        q.complete();
        q.wait_idle(); // returns immediately now
    }

    #[test]
    fn close_drains_then_stops_workers() {
        let q = IngestQueue::new(4);
        let (c, f) = job_parts();
        assert!(q.push(0, c, f).is_enqueued());
        q.close();
        // Backlog still pops after close...
        assert!(q.pop_wait().is_some());
        q.complete();
        // ...then workers see the end.
        assert!(q.pop_wait().is_none());
        // And producers are refused: non-blocking pushes report full,
        // blocking waiters observe the close instead of hanging.
        let (c, f) = job_parts();
        assert!(!q.push(0, c, f).is_enqueued());
        assert!(!q.wait_space(), "wait_space reports the close");
    }

    #[test]
    fn try_push_returns_the_job_on_a_full_queue() {
        let q = IngestQueue::new(1);
        let (c, f) = job_parts();
        assert!(q.try_push(0, c, f).is_ok());
        let (c, f) = job_parts();
        let (c, f) = q.try_push(0, c, f).expect_err("queue is full");
        // The job came back intact; after space frees it goes in.
        let _job = q.try_pop().unwrap();
        q.complete();
        assert!(q.wait_space());
        assert_eq!(q.try_push(0, c, f).unwrap(), 1);
    }

    #[test]
    fn wait_space_blocks_until_space() {
        use std::sync::Arc;
        let q = Arc::new(IngestQueue::new(1));
        let (c, f) = job_parts();
        assert!(q.push(0, c, f).is_enqueued());
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            let (mut c, mut f) = job_parts();
            // The retry loop the service's blocking enqueue runs.
            loop {
                match q2.try_push(0, c, f) {
                    Ok(seq) => return EnqueueResult::Enqueued { seq, shard: 0 },
                    Err(back) => (c, f) = back,
                }
                if !q2.wait_space() {
                    return EnqueueResult::QueueFull { capacity: 1 };
                }
            }
        });
        // Free the slot; the blocked producer must complete.
        let _job = q.try_pop().unwrap();
        q.complete();
        assert!(producer.join().unwrap().is_enqueued());
    }
}
