//! Service tunables.

use crate::compactor::CompactionPolicy;
use ciao_storage::StorageConfig;
use std::time::Duration;

/// How an incoming chunk is routed to a shard.
///
/// Both policies decide the shard **at enqueue time**, so the
/// assignment is deterministic regardless of which worker thread later
/// drains the job — merged query results never depend on scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Routing {
    /// Chunk `i` (in enqueue order) goes to shard `i % shards`. Evens
    /// out load when chunks are similar in size — the default.
    #[default]
    RoundRobin,
    /// The chunk's payload bytes are hashed (FNV-1a) to pick the
    /// shard. Keeps a replayed stream on the same shards even when
    /// interleaved with other streams.
    Hash,
}

/// Tunables for a [`crate::Service`] deployment.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shards, each owning an independent partial-loading
    /// state behind its own lock.
    pub shards: usize,
    /// Ingest worker threads draining the queue. `0` means no
    /// background workers: jobs sit queued until [`crate::Service::drain`]
    /// processes them inline (deterministic mode for tests).
    pub workers: usize,
    /// Bounded ingest-queue capacity in chunks; an enqueue beyond this
    /// observes [`crate::EnqueueResult::QueueFull`] (backpressure).
    pub queue_capacity: usize,
    /// Rows per columnar block in every shard.
    pub block_size: usize,
    /// Chunk → shard routing policy.
    pub routing: Routing,
    /// Background compaction policy (parked-row promotion).
    pub compaction: CompactionPolicy,
    /// Whether the service registers telemetry (latency histograms,
    /// backpressure counters, trace events). On by default — recording
    /// is a few relaxed atomics per chunk; turn it off only for
    /// zero-instrumentation baselines.
    pub telemetry: bool,
    /// Trace-event ring capacity (oldest events evicted beyond it).
    pub event_capacity: usize,
    /// SQL statements at or above this end-to-end execution time enter
    /// the bounded slow-query log (requires telemetry; `Duration::ZERO`
    /// logs every statement).
    pub slow_query_threshold: Duration,
    /// Durability. `None` (the default) keeps the service purely
    /// in-memory; `Some` write-ahead-logs every acked chunk, persists
    /// epoch snapshots at [`crate::Service::checkpoint`], and makes
    /// [`crate::Service::start`] recover whatever the directory holds.
    pub storage: Option<StorageConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            workers: 4,
            queue_capacity: 64,
            block_size: 1024,
            routing: Routing::RoundRobin,
            compaction: CompactionPolicy::default(),
            telemetry: true,
            event_capacity: ciao_telemetry::registry::DEFAULT_EVENT_CAPACITY,
            slow_query_threshold: Duration::from_millis(100),
            storage: None,
        }
    }
}

impl ServiceConfig {
    /// Sets the shard count (workers follow unless set explicitly).
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        self.shards = shards;
        self
    }

    /// Sets the ingest worker count (`0` = inline-drain mode).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the bounded queue capacity (chunks).
    pub fn with_queue_capacity(mut self, chunks: usize) -> Self {
        assert!(chunks > 0, "queue capacity must be positive");
        self.queue_capacity = chunks;
        self
    }

    /// Sets the columnar block size.
    pub fn with_block_size(mut self, rows: usize) -> Self {
        assert!(rows > 0, "block size must be positive");
        self.block_size = rows;
        self
    }

    /// Sets the routing policy.
    pub fn with_routing(mut self, routing: Routing) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the compaction policy.
    pub fn with_compaction(mut self, policy: CompactionPolicy) -> Self {
        self.compaction = policy;
        self
    }

    /// Enables or disables telemetry registration.
    pub fn with_telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Sets the trace-event ring capacity.
    pub fn with_event_capacity(mut self, events: usize) -> Self {
        assert!(events > 0, "event capacity must be positive");
        self.event_capacity = events;
        self
    }

    /// Sets the slow-query log threshold (`Duration::ZERO` logs every
    /// SQL statement).
    pub fn with_slow_query_threshold(mut self, threshold: Duration) -> Self {
        self.slow_query_threshold = threshold;
        self
    }

    /// Enables durability rooted at `storage.dir` (WAL + snapshots).
    pub fn with_storage(mut self, storage: StorageConfig) -> Self {
        self.storage = Some(storage);
        self
    }
}

/// FNV-1a over the chunk payload — cheap, deterministic, and stable
/// across runs (no `RandomState`).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let cfg = ServiceConfig::default()
            .with_shards(8)
            .with_workers(2)
            .with_queue_capacity(16)
            .with_block_size(64)
            .with_routing(Routing::Hash)
            .with_telemetry(false)
            .with_event_capacity(32)
            .with_slow_query_threshold(Duration::from_millis(5));
        assert_eq!(cfg.shards, 8);
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.queue_capacity, 16);
        assert_eq!(cfg.block_size, 64);
        assert_eq!(cfg.routing, Routing::Hash);
        assert!(!cfg.telemetry);
        assert_eq!(cfg.event_capacity, 32);
        assert_eq!(cfg.slow_query_threshold, Duration::from_millis(5));
        assert!(ServiceConfig::default().telemetry, "on by default");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ServiceConfig::default().with_shards(0);
    }

    #[test]
    fn fnv_is_stable() {
        // Regression pin: routing must not silently change across
        // refactors, or replayed streams land on different shards.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"ciao"), fnv1a(b"ciao"));
        assert_ne!(fnv1a(b"ciao"), fnv1a(b"oaic"));
    }
}
