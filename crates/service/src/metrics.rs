//! Fleet-wide observability snapshot.

use crate::compactor::CompactionStats;
use crate::shard::ShardSnapshot;
use ciao::LoadStats;
use std::time::Duration;

/// A point-in-time view of the whole service, from
/// [`crate::Service::metrics`].
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// Chunks currently queued (excluding in-flight).
    pub queue_depth: usize,
    /// The bounded queue's capacity.
    pub queue_capacity: usize,
    /// Chunks ever accepted by the queue.
    pub accepted_chunks: u64,
    /// Enqueue attempts refused with `QueueFull` (backpressure events).
    pub rejected_chunks: u64,
    /// Chunks fully ingested by workers or inline drains.
    pub ingested_chunks: u64,
    /// Records inside those ingested chunks.
    pub ingested_records: u64,
    /// Queries answered (fan-out counts once, not per shard).
    pub queries: u64,
    /// SQL statements whose execution crossed the configured
    /// slow-query threshold (lifetime count, including entries the
    /// bounded log ring has since evicted). Zero with telemetry off.
    pub slow_queries: u64,
    /// Cumulative wall-clock time producers spent blocked inside
    /// [`crate::Service::enqueue_wait`] waiting for queue capacity —
    /// the backpressure cost the bounded queue passes upstream.
    pub blocked: Duration,
    /// Per-shard views, indexed by shard.
    pub shards: Vec<ShardSnapshot>,
}

impl ServiceMetrics {
    /// Cumulative loading counters merged across shards.
    pub fn load(&self) -> LoadStats {
        let mut total = LoadStats::default();
        for s in &self.shards {
            total.merge(&s.load);
        }
        total
    }

    /// Compaction counters merged across shards.
    pub fn compaction(&self) -> CompactionStats {
        let mut total = CompactionStats::default();
        for s in &self.shards {
            total.merge(&s.compaction);
        }
        total
    }

    /// Rows currently in columnar blocks, fleet-wide.
    pub fn rows(&self) -> usize {
        self.shards.iter().map(|s| s.rows).sum()
    }

    /// Rows currently parked as raw JSON, fleet-wide.
    pub fn parked(&self) -> usize {
        self.shards.iter().map(|s| s.parked).sum()
    }

    /// Ingest epochs sealed, fleet-wide.
    pub fn sealed_epochs(&self) -> usize {
        self.shards.iter().map(|s| s.sealed_epochs).sum()
    }

    /// Columnar blocks live in sealed tables, fleet-wide.
    pub fn sealed_blocks(&self) -> usize {
        self.shards.iter().map(|s| s.sealed_blocks).sum()
    }

    /// Fraction of live rows still parked — the number compaction
    /// ticks drive toward zero.
    pub fn parked_ratio(&self) -> f64 {
        let total = self.rows() + self.parked();
        if total == 0 {
            0.0
        } else {
            self.parked() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_across_shards() {
        let mut m = ServiceMetrics::default();
        assert_eq!(m.parked_ratio(), 0.0);
        m.shards = vec![
            ShardSnapshot {
                rows: 30,
                parked: 10,
                load: LoadStats {
                    loaded_records: 30,
                    parked_records: 10,
                    ..Default::default()
                },
                compaction: CompactionStats {
                    promoted: 5,
                    ..Default::default()
                },
                heat: 0,
                sealed_epochs: 2,
                sealed_blocks: 3,
            },
            ShardSnapshot {
                rows: 10,
                parked: 30,
                load: LoadStats {
                    loaded_records: 10,
                    parked_records: 30,
                    ..Default::default()
                },
                compaction: CompactionStats {
                    ticks: 2,
                    ..Default::default()
                },
                heat: 1,
                sealed_epochs: 1,
                sealed_blocks: 1,
            },
        ];
        assert_eq!(m.rows(), 40);
        assert_eq!(m.parked(), 40);
        assert!((m.parked_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(m.load().total(), 80);
        assert_eq!(m.compaction().promoted, 5);
        assert_eq!(m.compaction().ticks, 2);
        assert_eq!(m.sealed_epochs(), 3);
        assert_eq!(m.sealed_blocks(), 4);
    }
}
