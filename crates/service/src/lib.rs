//! # `ciao_service` — sharded concurrent ingest/query service
//!
//! The CIAO paper evaluates a single-threaded server loop: clients
//! prefilter in parallel, but ingest is exclusive, queries block
//! ingest, and rows parked by partial loading stay raw JSON until an
//! uncovered query happens to pay their parse cost. This crate turns
//! the one-shot [`ciao::Server`] into a long-running service:
//!
//! * **Sharding** — N [`Shard`]s, each an independently locked
//!   partial-loading state (columnar table + parked store) sharing one
//!   [`ciao::PushdownPlan`]. Ingest into one shard never blocks
//!   queries on another.
//! * **Bounded ingest with backpressure** — producers enqueue
//!   prefiltered chunks into a bounded queue and observe
//!   [`EnqueueResult::QueueFull`] when the service falls behind;
//!   worker threads drain jobs into shards. Chunk → shard routing is
//!   decided at enqueue time ([`Routing`]), so results never depend on
//!   worker scheduling.
//! * **Fan-out queries** — [`Service::query`] executes on every shard
//!   in parallel and merges the per-shard
//!   [`QueryOutcome`](ciao_engine::QueryOutcome)s (counts add, scan
//!   counters add, `elapsed` takes the slowest shard), answering
//!   exactly as one server holding all the data would.
//!   [`Service::query_sql`] runs full SQL `SELECT` statements
//!   (projections, aggregates, `GROUP BY`, `ORDER BY`, `LIMIT`) the
//!   same way: each shard executes the `ciao_sql` physical plan and
//!   the mergeable partials combine into one typed
//!   [`QueryResult`](ciao_engine::QueryResult).
//! * **Background compaction** — tick-driven promotion of parked raw
//!   rows into columnar blocks ([`Service::compact`]), generalizing
//!   the per-query JIT promotion in `ciao::jit` into an ingest-side
//!   subsystem with its own [`CompactionStats`] and a query-heat
//!   policy ([`CompactionPolicy`]).
//! * **Observability and lifecycle** — [`Service::metrics`] snapshots
//!   queue depth, per-shard row counts, parked ratio, and compaction
//!   counters; [`Service::telemetry_snapshot`] exports latency
//!   histograms (enqueue-wait, per-shard ingest-ack and
//!   compaction-tick, query), backpressure counters, and a bounded
//!   trace-event ring via `ciao_telemetry`; [`Service::shutdown`]
//!   drains the queue and joins every worker.
//! * **Query profiling** — `EXPLAIN` / `EXPLAIN ANALYZE` statements
//!   flow through [`Service::query_sql`]; every executed statement
//!   records a per-query span tree ([`Service::last_query_trace`],
//!   Chrome-trace exportable), folds its per-clause profile into a
//!   [`WorkloadStats`] collector ([`Service::workload_stats`]), and
//!   lands in a bounded slow-query log ([`Service::slow_queries`])
//!   when it crosses [`ServiceConfig::slow_query_threshold`].
//!
//! ## Quickstart
//!
//! ```
//! use ciao::PushdownPlan;
//! use ciao_columnar::Schema;
//! use ciao_json::RecordChunk;
//! use ciao_optimizer::CostModel;
//! use ciao_predicate::parse_query;
//! use ciao_service::{Service, ServiceConfig};
//! use std::sync::Arc;
//!
//! // Plan once (normally from a workload + sample)...
//! let raw: Vec<String> = (0..400)
//!     .map(|i| format!("{{\"stars\":{},\"id\":{}}}", i % 5 + 1, i))
//!     .collect();
//! let sample: Vec<_> = raw.iter().take(100).map(|r| ciao_json::parse(r).unwrap()).collect();
//! let queries = vec![parse_query("hot", "stars = 5").unwrap()];
//! let plan = PushdownPlan::build(&queries, &sample, &CostModel::default_uncalibrated(), 10.0)
//!     .unwrap();
//! let schema = Arc::new(Schema::infer(&sample).unwrap());
//!
//! // ...start a 2-shard service and stream chunks in.
//! let service = Service::start(plan, schema, ServiceConfig::default().with_shards(2));
//! for chunk in RecordChunk::from_records(&raw).unwrap().split(64) {
//!     assert!(service.enqueue_raw(chunk).is_enqueued());
//! }
//!
//! // Queries fan out and merge; compaction ticks drain the parked store.
//! assert_eq!(service.query(&queries[0]).count, 80);
//! while service.compact().promoted > 0 {}
//! let metrics = service.shutdown();
//! assert_eq!(metrics.load().total(), 400);
//! assert_eq!(metrics.parked(), 0);
//! ```

#![warn(missing_docs)]

pub mod compactor;
pub mod config;
pub mod metrics;
pub mod queue;
pub mod service;
pub mod shard;
pub mod telemetry;
pub mod workload;

pub use compactor::{CompactionPolicy, CompactionStats};
pub use config::{Routing, ServiceConfig};
pub use metrics::ServiceMetrics;
pub use queue::{EnqueueResult, IngestQueue};
pub use service::{DurabilityStatus, Service};
pub use shard::{Shard, ShardSnapshot};
pub use telemetry::ServiceTelemetry;
pub use workload::{ClauseStats, SlowQueryEntry, SlowQueryLog, WorkloadStats};

// Re-exported so storage-backed deployments configure durability
// without naming `ciao_storage` directly.
pub use ciao_storage::{CheckpointStats, RecoveryReport, StorageConfig, StorageError, SyncPolicy};
