//! Background parked-row compaction.
//!
//! Partial loading parks records whose pushed-predicate bits are all
//! zero; the per-query JIT path in `ciao::jit` only promotes them when
//! an uncovered query happens to pay the parse cost anyway. A
//! long-running service cannot wait for that: parked rows that queries
//! keep scanning should migrate to columnar blocks during idle time.
//!
//! The compactor is **tick-driven** — no wall clock, no timer thread.
//! Each tick re-evaluates a bounded batch of parked rows per shard
//! (oldest first) against the typed schema, regenerates their
//! predicate bits with the plan's own patterns (the same conservative
//! bits the client would have produced, so every skipping guarantee
//! still holds), and appends the parseable ones as new columnar
//! blocks. Rows that still fail to parse rotate to the back of the
//! parked store so one malformed record cannot wedge the window.
//!
//! Shards are prioritized by **heat**: the number of uncovered-query
//! executions that scanned the shard's parked store since its last
//! compaction. [`CompactionPolicy::min_heat`] optionally restricts
//! ticks to shards whose parked rows are actually being read.

/// When and how much a compaction tick promotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Skip shards holding fewer parked rows than this.
    pub min_parked: usize,
    /// Maximum parked rows re-evaluated per shard per tick (bounds the
    /// latency impact of a tick on a live shard's lock).
    pub batch: usize,
    /// Only compact shards whose parked store was scanned by at least
    /// this many queries since the last compaction. `0` (the default)
    /// compacts unconditionally — ticks make progress even on a
    /// query-idle service.
    pub min_heat: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            min_parked: 1,
            batch: 1024,
            min_heat: 0,
        }
    }
}

impl CompactionPolicy {
    /// Sets the minimum parked-store size for a shard to be eligible.
    pub fn with_min_parked(mut self, rows: usize) -> Self {
        self.min_parked = rows;
        self
    }

    /// Sets the per-shard per-tick promotion batch.
    pub fn with_batch(mut self, rows: usize) -> Self {
        assert!(rows > 0, "compaction batch must be positive");
        self.batch = rows;
        self
    }

    /// Sets the query-heat threshold.
    pub fn with_min_heat(mut self, scans: usize) -> Self {
        self.min_heat = scans;
        self
    }

    /// Whether a shard with this parked-store size and heat should be
    /// compacted this tick.
    pub fn eligible(&self, parked: usize, heat: usize) -> bool {
        parked >= self.min_parked.max(1) && heat >= self.min_heat
    }
}

/// Cumulative compaction counters (per shard, and merged fleet-wide in
/// [`crate::ServiceMetrics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Ticks that promoted at least one row on this shard.
    pub ticks: usize,
    /// Ticks that found the shard ineligible (cold, or nothing parked).
    pub idle_ticks: usize,
    /// Parked rows promoted into columnar blocks.
    pub promoted: usize,
    /// Rows re-evaluated that still failed to parse (rotated to the
    /// back of the parked store, counted once per observation).
    pub unparseable: usize,
}

impl CompactionStats {
    /// Merges another shard's counters into this one. Folding from
    /// [`CompactionStats::default`] is the identity.
    pub fn merge(&mut self, other: &CompactionStats) {
        self.ticks += other.ticks;
        self.idle_ticks += other.idle_ticks;
        self.promoted += other.promoted;
        self.unparseable += other.unparseable;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_always_eligible_when_parked() {
        let p = CompactionPolicy::default();
        assert!(p.eligible(1, 0));
        assert!(!p.eligible(0, 10));
    }

    #[test]
    fn heat_gate() {
        let p = CompactionPolicy::default().with_min_heat(2);
        assert!(!p.eligible(100, 1));
        assert!(p.eligible(100, 2));
    }

    #[test]
    fn min_parked_gate() {
        let p = CompactionPolicy::default().with_min_parked(50);
        assert!(!p.eligible(49, 0));
        assert!(p.eligible(50, 0));
        // min_parked = 0 still never compacts an empty store.
        let p = CompactionPolicy::default().with_min_parked(0);
        assert!(!p.eligible(0, 0));
    }

    #[test]
    fn stats_merge_adds() {
        let mut a = CompactionStats {
            ticks: 1,
            idle_ticks: 2,
            promoted: 30,
            unparseable: 1,
        };
        a.merge(&CompactionStats {
            ticks: 2,
            idle_ticks: 0,
            promoted: 12,
            unparseable: 0,
        });
        assert_eq!(a.ticks, 3);
        assert_eq!(a.idle_ticks, 2);
        assert_eq!(a.promoted, 42);
        assert_eq!(a.unparseable, 1);
    }
}
