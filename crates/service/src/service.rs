//! The service: shards + queue + workers under one handle.

use crate::compactor::CompactionStats;
use crate::config::{fnv1a, Routing, ServiceConfig};
use crate::metrics::ServiceMetrics;
use crate::queue::{EnqueueResult, IngestJob, IngestQueue};
use crate::shard::Shard;
use crate::telemetry::{names, ServiceTelemetry};
use crate::workload::{SlowQueryEntry, SlowQueryLog, WorkloadStats};
use ciao::PushdownPlan;
use ciao_client::{ChunkFilterResult, Prefilter};
use ciao_columnar::Schema;
use ciao_engine::{ColumnDesc, PartialResult, QueryOutcome, QueryResult};
use ciao_json::RecordChunk;
use ciao_predicate::Query;
use ciao_sql::{SqlError, SqlType, SqlValue, Statement};
use ciao_storage::{CheckpointStats, RecoveryReport, ShardSnapshot, StorageError, Store};
use ciao_telemetry::{SpanTree, TelemetrySnapshot};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Shared between the service handle and its worker threads.
#[derive(Debug)]
struct Inner {
    queue: IngestQueue,
    shards: Vec<Mutex<Shard>>,
    routing: Routing,
    rejected: AtomicU64,
    ingested_chunks: AtomicU64,
    ingested_records: AtomicU64,
    queries: AtomicU64,
    /// Nanoseconds producers spent blocked in `enqueue_wait` —
    /// tracked even with telemetry off (it is one add per blocking
    /// enqueue, and `ServiceMetrics::blocked` always reports it).
    blocked_nanos: AtomicU64,
    telemetry: Option<Arc<ServiceTelemetry>>,
    /// The durable store, `None` for a purely in-memory service. The
    /// mutex serializes WAL appends and checkpoints; ingest workers
    /// never touch it (logging happens on the producer's thread,
    /// before the ack).
    storage: Option<Mutex<Store>>,
    /// Producer/checkpoint exclusion. Producers hold it shared across
    /// `queue.push` + WAL append, so the two are atomic as seen by a
    /// checkpoint; [`Service::checkpoint`] holds it exclusively across
    /// ceiling-read + drain + shard seal. Without the gate a chunk
    /// enqueued mid-checkpoint could land both in a snapshot and above
    /// its ceiling, double-applying on recovery. Never held while
    /// blocking on queue capacity (see `enqueue_wait`'s retry loop),
    /// so a pending checkpoint cannot deadlock with a blocked
    /// producer.
    ingest_gate: RwLock<()>,
    /// Snapshot files written by checkpoints over this service's life.
    snapshots_written: AtomicU64,
    /// Per-clause frequency/selectivity EWMAs fed by every executed
    /// SQL statement's profile. Only populated while telemetry is on.
    workload: Mutex<WorkloadStats>,
    /// Bounded ring of statements at or above the slow-query
    /// threshold. Only populated while telemetry is on.
    slow_log: Mutex<SlowQueryLog>,
    /// The most recent SQL statement's span tree, `None` until the
    /// first statement or while telemetry is off.
    last_trace: Mutex<Option<SpanTree>>,
}

/// Entries the slow-query ring retains before evicting the oldest.
const SLOW_QUERY_LOG_CAPACITY: usize = 64;

impl Inner {
    fn route(&self, seq_hint: u64, chunk: &RecordChunk) -> usize {
        match self.routing {
            Routing::RoundRobin => (seq_hint % self.shards.len() as u64) as usize,
            Routing::Hash => {
                let mut h = fnv1a(chunk.record(0).as_bytes());
                // Mix the record count so single-record chunks of the
                // same payload still spread.
                h ^= chunk.len() as u64;
                (h % self.shards.len() as u64) as usize
            }
        }
    }

    fn ingest(&self, job: IngestJob) {
        let records = job.chunk.len() as u64;
        self.shards[job.shard]
            .lock()
            .ingest(&job.chunk, &job.filter);
        self.ingested_chunks.fetch_add(1, Ordering::Relaxed);
        self.ingested_records.fetch_add(records, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            t.ingest_ack[job.shard].record_duration(job.enqueued_at.elapsed());
        }
        self.queue.complete();
    }

    /// Write-ahead-logs one accepted chunk before its ack is returned
    /// to the producer. `payload` is `None` when storage is off (the
    /// serialization is skipped entirely then).
    ///
    /// Panics on a WAL write failure: returning `Enqueued` for a chunk
    /// the log could not take would turn "acked" into a lie, and the
    /// producer's thread is where that contract breaks.
    fn log_durable(&self, seq: u64, shard: usize, payload: Option<&str>) {
        let (Some(storage), Some(payload)) = (&self.storage, payload) else {
            return;
        };
        storage
            .lock()
            .append(seq, shard as u32, payload.as_bytes())
            .expect("write-ahead log append failed");
        if let Some(t) = &self.telemetry {
            t.wal_appends.inc();
        }
    }
}

/// Wraps rendered plan/annotation lines as a one-column result set
/// (`plan:str`, one row per line) so `EXPLAIN` output flows through
/// the same [`QueryResult`] machinery as any `SELECT`.
fn plan_text_result(lines: Vec<String>) -> QueryResult {
    QueryResult {
        columns: vec![ColumnDesc {
            name: "plan".to_owned(),
            ty: SqlType::Str,
        }],
        rows: lines.into_iter().map(|l| vec![SqlValue::Str(l)]).collect(),
        ..QueryResult::default()
    }
}

/// Durability counters for a storage-backed service, reported by
/// [`Service::durability`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStatus {
    /// Chunks appended to the WAL since start.
    pub wal_appends: u64,
    /// `fsync` calls the append path issued (tracks the
    /// [`ciao_storage::SyncPolicy`]).
    pub wal_syncs: u64,
    /// Live WAL segment files.
    pub wal_segments: usize,
    /// Chunks re-applied from the WAL tail when this service started.
    pub wal_replayed: u64,
    /// Snapshot files written by this service's checkpoints.
    pub snapshots_written: u64,
}

/// A long-running, sharded CIAO service.
///
/// Wraps N [`Shard`]s (each an independently locked partial-loading
/// state sharing one [`PushdownPlan`]) behind a bounded ingest queue.
/// Producers [`Service::enqueue`] prefiltered chunks and observe
/// [`EnqueueResult::QueueFull`] backpressure; worker threads drain the
/// queue into shards; [`Service::query`] fans out across shards and
/// merges per-shard [`QueryOutcome`]s into one answer — identical to a
/// single [`ciao::Server`] over the same records. Tick
/// [`Service::compact`] from any maintenance cadence to promote parked
/// raw rows into columnar blocks in the background.
#[derive(Debug)]
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    prefilter: Prefilter,
    config: ServiceConfig,
    /// The columnar schema every shard loads under — kept so
    /// [`Service::query_sql`] can analyze statements against it.
    schema: Arc<Schema>,
    /// What recovery worked around at start (`None` when storage is
    /// off). An empty-notes report means a clean start.
    recovery_report: Option<RecoveryReport>,
    /// Chunks re-applied from the WAL tail at start.
    wal_replayed: u64,
}

impl Service {
    /// Starts a service: builds the shards and spawns the configured
    /// worker threads.
    ///
    /// Panics when [`ServiceConfig::storage`] is set and recovery
    /// fails; use [`Service::try_start`] to handle storage errors.
    pub fn start(plan: PushdownPlan, schema: Arc<Schema>, config: ServiceConfig) -> Service {
        Self::try_start(plan, schema, config).expect("storage recovery failed")
    }

    /// Starts a service, recovering durable state first when
    /// [`ServiceConfig::storage`] is set: the manifest picks each
    /// shard's newest readable snapshot (falling back a generation on
    /// damage), the WAL tail is re-applied through the normal ingest
    /// path, and the sequence line resumes past everything recovered.
    /// The [`Service::recovery_report`] records every degradation the
    /// start tolerated.
    pub fn try_start(
        plan: PushdownPlan,
        schema: Arc<Schema>,
        config: ServiceConfig,
    ) -> Result<Service, StorageError> {
        let prefilter = plan.prefilter();
        let plan = Arc::new(plan);
        let telemetry = config
            .telemetry
            .then(|| ServiceTelemetry::new(config.shards, config.event_capacity));
        let mut shards: Vec<Shard> = (0..config.shards)
            .map(|i| {
                let mut shard =
                    Shard::new(Arc::clone(&plan), Arc::clone(&schema), config.block_size);
                if let Some(t) = &telemetry {
                    shard.attach_telemetry(i, Arc::clone(t));
                }
                shard
            })
            .collect();

        let mut storage = None;
        let mut recovery_report = None;
        let mut first_seq = 0;
        let mut wal_replayed = 0u64;
        if let Some(storage_config) = &config.storage {
            let (store, recovery) = Store::open(storage_config.clone(), config.shards as u32)?;
            for recovered in &recovery.shards {
                if let Some(snap) = &recovered.snapshot {
                    shards[recovered.shard as usize].restore(
                        snap.table(),
                        snap.parked.clone(),
                        snap.stats,
                        snap.sealed_epochs as usize,
                    );
                }
            }
            // Re-apply the WAL tail through the normal ingest path —
            // the prefilter is deterministic, so re-running it beats
            // persisting filter bitvectors in the log.
            for shard_index in 0..config.shards {
                for record in recovery.tail_for(shard_index as u32) {
                    let text = String::from_utf8_lossy(&record.chunk);
                    let chunk = RecordChunk::from_ndjson(&text);
                    let filter = prefilter.run_chunk(&chunk);
                    shards[shard_index].ingest(&chunk, &filter);
                    wal_replayed += 1;
                }
            }
            if let Some(t) = &telemetry {
                t.wal_replayed.add(wal_replayed);
            }
            first_seq = recovery.next_seq;
            recovery_report = Some(recovery.report);
            storage = Some(Mutex::new(store));
        }

        let inner = Arc::new(Inner {
            queue: IngestQueue::with_first_seq(config.queue_capacity, first_seq),
            shards: shards.into_iter().map(Mutex::new).collect(),
            routing: config.routing,
            rejected: AtomicU64::new(0),
            ingested_chunks: AtomicU64::new(0),
            ingested_records: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            blocked_nanos: AtomicU64::new(0),
            telemetry,
            storage,
            ingest_gate: RwLock::new(()),
            snapshots_written: AtomicU64::new(0),
            workload: Mutex::new(WorkloadStats::default()),
            slow_log: Mutex::new(SlowQueryLog::new(
                config.slow_query_threshold,
                SLOW_QUERY_LOG_CAPACITY,
            )),
            last_trace: Mutex::new(None),
        });
        let workers = (0..config.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || {
                    while let Some(job) = inner.queue.pop_wait() {
                        inner.ingest(job);
                    }
                })
            })
            .collect();
        Ok(Service {
            inner,
            workers,
            prefilter,
            config,
            schema,
            recovery_report,
            wal_replayed,
        })
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The plan's client-side prefilter, for producers that filter
    /// their own chunks before [`Service::enqueue`].
    pub fn prefilter(&self) -> Prefilter {
        self.prefilter.clone()
    }

    /// A chunk and its filter result must agree on the record count;
    /// panicking here (the producer's thread, where the framing bug
    /// lives) beats wedging an ingest worker on the loader's own
    /// assert and hanging every future [`Service::drain`].
    fn check_framing(chunk: &RecordChunk, filter: &ChunkFilterResult) {
        assert_eq!(
            chunk.len(),
            filter.records,
            "chunk has {} records but filter result covers {}",
            chunk.len(),
            filter.records
        );
    }

    /// Non-blocking enqueue of a prefiltered chunk. Routes to a shard
    /// deterministically, then either queues the job or reports
    /// [`EnqueueResult::QueueFull`] backpressure. Empty chunks are
    /// accepted and dropped (seq still advances). Never waits for
    /// queue capacity, but may block momentarily while a concurrent
    /// [`Service::checkpoint`] commits.
    ///
    /// Panics when `filter` does not cover exactly `chunk`'s records.
    pub fn enqueue(&self, chunk: RecordChunk, filter: ChunkFilterResult) -> EnqueueResult {
        Self::check_framing(&chunk, &filter);
        if chunk.is_empty() {
            return EnqueueResult::Enqueued {
                seq: self.inner.queue.accepted(),
                shard: 0,
            };
        }
        // Serialize before the queue consumes the chunk — only when a
        // WAL will actually take the bytes.
        let payload = self.inner.storage.is_some().then(|| chunk.to_ndjson());
        let shard = self.inner.route(self.inner.queue.accepted(), &chunk);
        // Under the shared gate, push + WAL append are one atomic step
        // as far as a concurrent checkpoint is concerned (it briefly
        // blocks here while a checkpoint commits).
        let gate = self.inner.ingest_gate.read().expect("ingest gate");
        let result = self.inner.queue.push(shard, chunk, filter);
        match result {
            EnqueueResult::Enqueued { seq, shard } => {
                self.inner.log_durable(seq, shard, payload.as_deref());
                drop(gate);
            }
            EnqueueResult::QueueFull { .. } => {
                drop(gate);
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = &self.inner.telemetry {
                    t.queue_full.inc();
                    t.events().push(
                        names::EVENT_QUEUE_FULL,
                        Some(shard),
                        &[("capacity", self.inner.queue.capacity() as u64)],
                    );
                }
            }
        }
        result
    }

    /// Blocking enqueue: waits for queue capacity instead of reporting
    /// `QueueFull` (which it returns only if the service shuts down
    /// while waiting).
    ///
    /// Panics when `filter` does not cover exactly `chunk`'s records.
    pub fn enqueue_wait(&self, chunk: RecordChunk, filter: ChunkFilterResult) -> EnqueueResult {
        Self::check_framing(&chunk, &filter);
        if chunk.is_empty() {
            return EnqueueResult::Enqueued {
                seq: self.inner.queue.accepted(),
                shard: 0,
            };
        }
        let payload = self.inner.storage.is_some().then(|| chunk.to_ndjson());
        let shard = self.inner.route(self.inner.queue.accepted(), &chunk);
        let started = Instant::now();
        // Attempt under the shared gate; wait for capacity *outside*
        // it. Holding the gate while blocked would deadlock a pending
        // checkpoint in inline-drain mode (the checkpoint is the only
        // thing that would free capacity).
        let (mut chunk, mut filter) = (chunk, filter);
        let result = loop {
            let gate = self.inner.ingest_gate.read().expect("ingest gate");
            match self.inner.queue.try_push(shard, chunk, filter) {
                Ok(seq) => {
                    self.inner.log_durable(seq, shard, payload.as_deref());
                    drop(gate);
                    break EnqueueResult::Enqueued { seq, shard };
                }
                Err(back) => (chunk, filter) = back,
            }
            drop(gate);
            if !self.inner.queue.wait_space() {
                break EnqueueResult::QueueFull {
                    capacity: self.inner.queue.capacity(),
                };
            }
        };
        let blocked = started.elapsed();
        self.inner.blocked_nanos.fetch_add(
            u64::try_from(blocked.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        if let Some(t) = &self.inner.telemetry {
            t.enqueue_wait.record_duration(blocked);
        }
        result
    }

    /// Convenience: prefilter a raw chunk with the plan's own patterns
    /// and enqueue it (the "thin client" path; real edge clients run
    /// the prefilter themselves and call [`Service::enqueue`]).
    pub fn enqueue_raw(&self, chunk: RecordChunk) -> EnqueueResult {
        let filter = self.prefilter.run_chunk(&chunk);
        self.enqueue(chunk, filter)
    }

    /// Blocks until every queued chunk has been ingested. With
    /// `workers == 0` the calling thread drains the queue itself —
    /// the deterministic mode tests use.
    pub fn drain(&self) {
        if self.workers.is_empty() {
            while let Some(job) = self.inner.queue.try_pop() {
                self.inner.ingest(job);
            }
        }
        self.inner.queue.wait_idle();
    }

    /// Executes a `COUNT(*)` query: drains the queue (a query answers
    /// over everything accepted before it), fans out across shards,
    /// and merges the per-shard outcomes. Counts add; `elapsed` is the
    /// slowest shard (the fan-out runs shards in parallel).
    pub fn query(&self, query: &Query) -> QueryOutcome {
        let started = Instant::now();
        self.drain();
        self.inner.queries.fetch_add(1, Ordering::Relaxed);
        let mut outcomes: Vec<QueryOutcome> = Vec::with_capacity(self.inner.shards.len());
        if self.inner.shards.len() == 1 {
            outcomes.push(self.inner.shards[0].lock().execute(query));
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .inner
                    .shards
                    .iter()
                    .map(|shard| scope.spawn(move || shard.lock().execute(query)))
                    .collect();
                outcomes.extend(handles.into_iter().map(|h| h.join().expect("shard query")));
            });
        }
        // Merge in shard order so the metrics breakdown is
        // deterministic (counts are order-independent anyway).
        let mut merged = QueryOutcome::default();
        for outcome in &outcomes {
            merged.merge(outcome);
        }
        if let Some(t) = &self.inner.telemetry {
            t.query.record_duration(started.elapsed());
            t.events().push(
                names::EVENT_PLAN_EVAL,
                None,
                &[
                    ("covered", u64::from(merged.metrics.used_skipping)),
                    ("count", merged.count as u64),
                    ("parsed", merged.metrics.raw_scan.records_parsed as u64),
                ],
            );
        }
        merged
    }

    /// Executes one SQL statement end to end: lex + parse, analyze
    /// against the service's schema, plan, then fan the physical plan
    /// out across every shard and merge the partials into one
    /// [`QueryResult`] — bit-identical to running the same statement
    /// on a single shard holding all the records. Covered `WHERE`
    /// clauses ride the same pushed-bitvector skip masks and zone maps
    /// as [`Service::query`], so aggregates over sealed blocks skip
    /// work exactly like counts do.
    ///
    /// `EXPLAIN <select>` returns the physical plan as a one-column
    /// (`plan:str`) result without executing anything; `EXPLAIN
    /// ANALYZE <select>` executes the statement and appends the live
    /// per-stage / per-clause profile annotations
    /// ([`QueryResult::analyze_lines`]) under the tree, carrying the
    /// real [`QueryResult::metrics`] and [`QueryResult::profile`].
    ///
    /// While telemetry is on, every executed statement also records a
    /// span tree ([`Service::last_query_trace`]), folds its profile
    /// into the workload collector ([`Service::workload_stats`]), and
    /// lands in the slow-query log when it crosses the configured
    /// threshold ([`Service::slow_queries`]).
    ///
    /// Errors (with the offending source span) on any lex, parse, or
    /// analysis failure; [`SqlError::render`] turns one into a
    /// caret-annotated excerpt of `sql`.
    pub fn query_sql(&self, sql: &str) -> Result<QueryResult, SqlError> {
        let mut trace = self
            .inner
            .telemetry
            .as_ref()
            .map(|_| SpanTree::new("query_sql"));

        let parse_started = Instant::now();
        let parse_span = trace.as_mut().map(|t| t.begin("parse"));
        let statement = ciao_sql::parse(sql)?;
        let parsed_in = parse_started.elapsed();
        if let (Some(t), Some(span)) = (trace.as_mut(), parse_span) {
            t.end(span);
        }

        let plan_started = Instant::now();
        let plan_span = trace.as_mut().map(|t| t.begin("plan"));
        let plan = ciao_sql::plan(&statement, &self.schema)?;
        let planned_in = plan_started.elapsed();
        if let (Some(t), Some(span)) = (trace.as_mut(), plan_span) {
            t.end(span);
        }

        // Plain EXPLAIN never executes: render the plan tree, record
        // the frontend stage latencies, and leave every
        // execution-side series (queries counter, sql_exec histogram,
        // workload stats) untouched.
        if let Statement::Explain { analyze: false, .. } = &statement {
            if let Some(t) = &self.inner.telemetry {
                t.sql_parse.record_duration(parsed_in);
                t.sql_plan.record_duration(planned_in);
            }
            self.store_trace(trace);
            return Ok(plan_text_result(ciao_sql::render_plan(&plan)));
        }

        let exec_started = Instant::now();
        let exec_span = trace.as_mut().map(|t| t.begin("execute"));
        self.drain();
        let seq = self.inner.queries.fetch_add(1, Ordering::Relaxed) + 1;
        // Shard threads time themselves against the tree's origin so
        // their spans land on the right offsets after the join.
        let origin = trace.as_ref().map(|t| t.origin());
        let time_shard = |shard: &Mutex<Shard>| {
            let start_ns = origin.map_or(0, |o| o.elapsed().as_nanos() as u64);
            let started = Instant::now();
            let partial = shard.lock().execute_plan(&plan);
            (partial, start_ns, started.elapsed().as_nanos() as u64)
        };
        let mut timed: Vec<(PartialResult, u64, u64)> = Vec::with_capacity(self.inner.shards.len());
        if self.inner.shards.len() == 1 {
            timed.push(time_shard(&self.inner.shards[0]));
        } else {
            let time_shard = &time_shard;
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .inner
                    .shards
                    .iter()
                    .map(|shard| scope.spawn(move || time_shard(shard)))
                    .collect();
                timed.extend(handles.into_iter().map(|h| h.join().expect("shard query")));
            });
        }
        if let Some(t) = &self.inner.telemetry {
            for (i, (partial, _, _)) in timed.iter().enumerate() {
                let p = &partial.profile;
                let permille = (p.blocks_pruned_zone * 1000)
                    .checked_div(p.blocks_total)
                    .unwrap_or(0);
                t.prune_rate[i].set(permille as i64);
            }
        }
        if let Some(tree) = trace.as_mut() {
            for (i, (partial, start_ns, dur_ns)) in timed.iter().enumerate() {
                let span = tree.add_complete(
                    exec_span,
                    &format!("shard{i}"),
                    (i + 1) as u64,
                    *start_ns,
                    *dur_ns,
                );
                tree.attr(span, "blocks_pruned", partial.profile.blocks_pruned_zone);
                tree.attr(span, "rows_scanned", partial.profile.rows_scanned);
                tree.attr(span, "parked_parsed", partial.profile.parked_rows_parsed);
            }
        }
        // Merge in shard order: group states and row batches combine
        // associatively, and finalize() re-sorts, so the answer is
        // independent of which shard finished first.
        let mut merged = PartialResult::empty(&plan);
        for (partial, _, _) in timed {
            merged.merge(partial);
        }
        let result = ciao_engine::finalize(&plan, merged);
        let executed_in = exec_started.elapsed();
        if let (Some(t), Some(span)) = (trace.as_mut(), exec_span) {
            t.end(span);
        }

        if let Some(t) = &self.inner.telemetry {
            t.sql_parse.record_duration(parsed_in);
            t.sql_plan.record_duration(planned_in);
            t.sql_exec.record_duration(executed_in);
            t.events().push(
                names::EVENT_SQL_QUERY,
                None,
                &[
                    ("rows", result.rows.len() as u64),
                    ("covered", u64::from(result.metrics.used_skipping)),
                    ("pruned", result.metrics.table_scan.blocks_pruned as u64),
                ],
            );
            self.inner.workload.lock().observe(&result.profile);
            let slow = self.inner.slow_log.lock().observe(SlowQueryEntry {
                seq,
                sql: sql.to_owned(),
                elapsed: executed_in,
                rows_returned: result.rows.len(),
                rows_matched: result.profile.total_matched(),
            });
            if slow {
                t.slow_queries.inc();
            }
        }
        if let Some(tree) = trace.as_mut() {
            let root = tree.root();
            tree.attr(root, "sql", sql);
            tree.attr(root, "rows", result.rows.len());
            tree.attr(root, "matched", result.profile.total_matched());
        }
        self.store_trace(trace);

        match &statement {
            // EXPLAIN ANALYZE: the plan tree annotated with the live
            // profile, carrying the real metrics/profile so callers
            // can reconcile the rendered numbers against them.
            Statement::Explain { .. } => {
                let mut lines = ciao_sql::render_plan(&plan);
                lines.extend(result.analyze_lines());
                let mut annotated = plan_text_result(lines);
                annotated.metrics = result.metrics;
                annotated.profile = result.profile;
                Ok(annotated)
            }
            Statement::Select(_) => Ok(result),
        }
    }

    /// Finishes a statement's span tree (when one was recorded) and
    /// retains it as the most-recent trace.
    fn store_trace(&self, trace: Option<SpanTree>) {
        let Some(mut tree) = trace else { return };
        tree.finish();
        *self.inner.last_trace.lock() = Some(tree);
    }

    /// One background-maintenance tick: runs the configured compaction
    /// policy over every shard and returns the tick's fleet-wide delta.
    /// Call it from any cadence — a dedicated thread, an idle hook, or
    /// a test loop; ticks are cheap no-ops when nothing is eligible.
    pub fn compact(&self) -> CompactionStats {
        let mut delta = CompactionStats::default();
        for (i, shard) in self.inner.shards.iter().enumerate() {
            let started = Instant::now();
            let tick = shard.lock().compact(&self.config.compaction);
            if let Some(t) = &self.inner.telemetry {
                t.compaction_tick[i].record_duration(started.elapsed());
                // Idle ticks are frequent and carry no information, so
                // only real work enters the bounded trace ring.
                if tick.promoted > 0 || tick.unparseable > 0 {
                    t.events().push(
                        names::EVENT_COMPACTION_TICK,
                        Some(i),
                        &[
                            ("promoted", tick.promoted as u64),
                            ("unparseable", tick.unparseable as u64),
                        ],
                    );
                }
            }
            delta.merge(&tick);
        }
        delta
    }

    /// Commits a checkpoint: drains the queue, seals every shard's
    /// active epoch, writes one snapshot per shard plus the manifest,
    /// prunes old snapshot generations, and truncates WAL segments no
    /// retained generation still needs. Returns `None` when the
    /// service runs without storage.
    ///
    /// The snapshots' WAL ceiling is the accepted-seq high-water mark,
    /// read and drained under the exclusive ingest gate: producers are
    /// held off for the ceiling-read → drain → seal window, so every
    /// record a snapshot claims to cover has provably been applied and
    /// no concurrently-enqueued chunk can land both in a snapshot and
    /// above its ceiling (which would double-apply on recovery).
    /// Producers block briefly on [`Service::enqueue`] /
    /// [`Service::enqueue_wait`] while a checkpoint commits — the
    /// quiescence the recovery protocol needs is enforced here, not
    /// assumed.
    ///
    /// Panics on a storage write failure, like the WAL append path.
    pub fn checkpoint(&self) -> Option<CheckpointStats> {
        let storage = self.inner.storage.as_ref()?;
        let _gate = self.inner.ingest_gate.write().expect("ingest gate");
        let ceiling = self.inner.queue.accepted();
        self.drain();
        let mut snapshots = Vec::with_capacity(self.inner.shards.len());
        for (i, shard) in self.inner.shards.iter().enumerate() {
            let mut shard = shard.lock();
            shard.seal_epoch();
            let table = shard.sealed_table();
            snapshots.push(ShardSnapshot {
                shard: i as u32,
                sealed_epochs: shard.sealed_epoch_count() as u64,
                ceiling,
                stats: shard.cumulative_stats(),
                schema: table.schema().map(|s| Arc::new(s.clone())),
                blocks: table.blocks().to_vec(),
                parked: shard.parked_rows().to_vec(),
            });
        }
        let stats = storage
            .lock()
            .checkpoint(&snapshots)
            .expect("checkpoint commit failed");
        self.inner
            .snapshots_written
            .fetch_add(stats.snapshots_written as u64, Ordering::Relaxed);
        if let Some(t) = &self.inner.telemetry {
            t.snapshots_written.add(stats.snapshots_written as u64);
            t.events().push(
                names::EVENT_CHECKPOINT,
                None,
                &[
                    ("snapshots", stats.snapshots_written as u64),
                    ("floor", stats.floor),
                    ("segments_deleted", stats.segments_deleted as u64),
                ],
            );
        }
        Some(stats)
    }

    /// Durability counters, `None` for an in-memory service.
    pub fn durability(&self) -> Option<DurabilityStatus> {
        let storage = self.inner.storage.as_ref()?;
        let store = storage.lock();
        Some(DurabilityStatus {
            wal_appends: store.wal_appends(),
            wal_syncs: store.wal_syncs(),
            wal_segments: store.wal_segments(),
            wal_replayed: self.wal_replayed,
            snapshots_written: self.inner.snapshots_written.load(Ordering::Relaxed),
        })
    }

    /// What recovery worked around when this service started; `None`
    /// without storage, empty notes for a clean start.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery_report.as_ref()
    }

    /// The service's telemetry bundle, `None` when started with
    /// [`ServiceConfig::with_telemetry`]`(false)`.
    pub fn telemetry(&self) -> Option<&ServiceTelemetry> {
        self.inner.telemetry.as_deref()
    }

    /// A point-in-time snapshot of every telemetry series and the
    /// trace-event ring (queue depth gauge refreshed first). `None`
    /// when telemetry is off.
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        let t = self.inner.telemetry.as_ref()?;
        t.registry()
            .gauge(names::QUEUE_DEPTH)
            .set(self.inner.queue.depth() as i64);
        Some(t.snapshot())
    }

    /// Per-clause workload statistics (frequency/selectivity EWMAs)
    /// aggregated from every executed SQL statement's profile — the
    /// observed-workload input a future re-optimization pass compares
    /// against the pushdown plan's assumed workload. Empty when
    /// telemetry is off.
    pub fn workload_stats(&self) -> WorkloadStats {
        self.inner.workload.lock().clone()
    }

    /// The slow-query log's retained window, oldest first. Empty when
    /// telemetry is off or nothing crossed
    /// [`ServiceConfig::slow_query_threshold`].
    pub fn slow_queries(&self) -> Vec<SlowQueryEntry> {
        self.inner.slow_log.lock().snapshot()
    }

    /// The span tree recorded for the most recent SQL statement
    /// (parse/plan/execute stages, per-shard child spans on their own
    /// tracks). `None` before any statement or with telemetry off.
    /// Export with [`SpanTree::to_chrome_trace`].
    pub fn last_query_trace(&self) -> Option<SpanTree> {
        self.inner.last_trace.lock().clone()
    }

    /// A point-in-time observability snapshot.
    pub fn metrics(&self) -> ServiceMetrics {
        ServiceMetrics {
            queue_depth: self.inner.queue.depth(),
            queue_capacity: self.inner.queue.capacity(),
            accepted_chunks: self.inner.queue.accepted(),
            rejected_chunks: self.inner.rejected.load(Ordering::Relaxed),
            ingested_chunks: self.inner.ingested_chunks.load(Ordering::Relaxed),
            ingested_records: self.inner.ingested_records.load(Ordering::Relaxed),
            queries: self.inner.queries.load(Ordering::Relaxed),
            slow_queries: self.inner.slow_log.lock().total(),
            blocked: Duration::from_nanos(self.inner.blocked_nanos.load(Ordering::Relaxed)),
            shards: self
                .inner
                .shards
                .iter()
                .map(|s| s.lock().snapshot())
                .collect(),
        }
    }

    /// Graceful shutdown: drain the queue, commit a final checkpoint
    /// (when storage is on, so a clean restart replays no WAL at all),
    /// close the queue, join every worker, and return the final
    /// metrics snapshot.
    pub fn shutdown(mut self) -> ServiceMetrics {
        self.drain();
        self.checkpoint();
        self.inner.queue.close();
        for worker in self.workers.drain(..) {
            worker.join().expect("ingest worker panicked");
        }
        self.metrics()
    }
}

impl Drop for Service {
    /// Dropping without [`Service::shutdown`] still joins workers
    /// (pending queued chunks are ingested first — close() lets the
    /// backlog drain before workers exit).
    fn drop(&mut self) {
        self.inner.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Best-effort flush of an EveryN/Never WAL tail — a clean exit
        // should not lose acked chunks a crash would have kept only by
        // luck of the page cache.
        if let Some(storage) = &self.inner.storage {
            let _ = storage.lock().sync();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_optimizer::CostModel;
    use ciao_predicate::parse_query;

    fn plan_and_schema(budget: f64) -> (PushdownPlan, Arc<Schema>, RecordChunk) {
        let raw: Vec<String> = (0..400)
            .map(|i| format!(r#"{{"stars":{},"name":"u{}"}}"#, i % 5 + 1, i))
            .collect();
        let sample: Vec<_> = raw
            .iter()
            .take(100)
            .map(|r| ciao_json::parse(r).unwrap())
            .collect();
        let queries = vec![parse_query("q0", "stars = 5").unwrap()];
        let plan = PushdownPlan::build(
            &queries,
            &sample,
            &CostModel::default_uncalibrated(),
            budget,
        )
        .unwrap();
        let schema = Arc::new(Schema::infer(&sample).unwrap());
        let all = RecordChunk::from_records(&raw).unwrap();
        (plan, schema, all)
    }

    #[test]
    fn ingest_query_roundtrip_with_workers() {
        let (plan, schema, all) = plan_and_schema(10.0);
        let service = Service::start(
            plan,
            schema,
            ServiceConfig::default().with_shards(3).with_workers(3),
        );
        for chunk in all.split(64) {
            assert!(service.enqueue_raw(chunk).is_enqueued());
        }
        let out = service.query(&parse_query("q", "stars = 5").unwrap());
        assert_eq!(out.count, 80);
        assert!(out.metrics.used_skipping);
        let m = service.shutdown();
        assert_eq!(m.ingested_records, 400);
        assert_eq!(m.queue_depth, 0);
        assert_eq!(m.queries, 1);
        assert_eq!(m.load().total(), 400);
    }

    #[test]
    fn inline_drain_mode_and_backpressure() {
        let (plan, schema, all) = plan_and_schema(10.0);
        let service = Service::start(
            plan,
            schema,
            ServiceConfig::default()
                .with_shards(2)
                .with_workers(0)
                .with_queue_capacity(2),
        );
        let chunks = all.split(100);
        assert_eq!(chunks.len(), 4);
        assert!(service.enqueue_raw(chunks[0].clone()).is_enqueued());
        assert!(service.enqueue_raw(chunks[1].clone()).is_enqueued());
        assert_eq!(
            service.enqueue_raw(chunks[2].clone()),
            EnqueueResult::QueueFull { capacity: 2 }
        );
        assert_eq!(service.metrics().rejected_chunks, 1);
        service.drain();
        assert!(service.enqueue_raw(chunks[2].clone()).is_enqueued());
        assert!(service.enqueue_raw(chunks[3].clone()).is_enqueued());
        let out = service.query(&parse_query("q", "stars = 2").unwrap());
        assert_eq!(out.count, 80);
        let m = service.shutdown();
        assert_eq!(m.rejected_chunks, 1);
        assert_eq!(m.ingested_chunks, 4);
    }

    #[test]
    fn round_robin_routing_spreads_chunks() {
        let (plan, schema, all) = plan_and_schema(10.0);
        let service = Service::start(
            plan,
            schema,
            ServiceConfig::default().with_shards(4).with_workers(0),
        );
        for chunk in all.split(50) {
            let _ = service.enqueue_raw(chunk);
        }
        service.drain();
        let m = service.metrics();
        for s in &m.shards {
            assert_eq!(s.load.total(), 100, "8 chunks over 4 shards, 2 each");
        }
        drop(service);
    }

    #[test]
    fn hash_routing_is_deterministic() {
        let (plan, schema, all) = plan_and_schema(10.0);
        let route = |svc: &Service| -> Vec<usize> {
            all.split(32)
                .into_iter()
                .map(|c| svc.inner.route(0, &c))
                .collect()
        };
        let cfg = ServiceConfig::default()
            .with_shards(4)
            .with_workers(0)
            .with_routing(Routing::Hash);
        let a = Service::start(plan.clone(), Arc::clone(&schema), cfg.clone());
        let b = Service::start(plan, schema, cfg);
        assert_eq!(route(&a), route(&b));
        assert!(route(&a).iter().any(|&s| s != route(&a)[0]), "spreads");
    }

    #[test]
    fn compaction_tick_reduces_parked() {
        let (plan, schema, all) = plan_and_schema(10.0);
        let service = Service::start(
            plan,
            schema,
            ServiceConfig::default().with_shards(2).with_workers(2),
        );
        let pf = service.prefilter();
        for chunk in all.split(64) {
            let filter = pf.run_chunk(&chunk);
            assert!(service.enqueue_wait(chunk, filter).is_enqueued());
        }
        service.drain();
        let before = service.metrics();
        assert!(before.parked() > 0);
        let delta = service.compact();
        assert!(delta.promoted > 0);
        let after = service.metrics();
        assert!(after.parked_ratio() < before.parked_ratio());
        service.shutdown();
    }

    #[test]
    fn telemetry_observes_the_full_hot_path() {
        let (plan, schema, all) = plan_and_schema(10.0);
        let service = Service::start(
            plan,
            schema,
            ServiceConfig::default().with_shards(2).with_workers(0),
        );
        let chunks = all.split(64);
        let n_chunks = chunks.len() as u64;
        for chunk in chunks {
            assert!(service.enqueue_raw(chunk).is_enqueued());
        }
        service.query(&parse_query("q", "stars = 5").unwrap());
        service.query(&parse_query("q", "stars = 2").unwrap());
        service.compact();

        let t = service.telemetry().expect("telemetry on by default");
        assert_eq!(t.ingest_ack_merged().count(), n_chunks);
        assert!(t.ingest_ack_merged().max() > 0, "ack latency was measured");
        assert_eq!(t.query.count(), 2);
        assert_eq!(t.compaction_tick_merged().count(), 2, "one tick per shard");

        let snap = service.telemetry_snapshot().unwrap();
        assert_eq!(
            snap.counter(names::EPOCHS_SEALED_TOTAL),
            Some(service.metrics().sealed_epochs() as u64)
        );
        assert_eq!(snap.gauge(names::QUEUE_DEPTH), Some(0));
        let kinds: Vec<&str> = snap.events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&names::EVENT_EPOCH_SEAL));
        assert!(kinds.contains(&names::EVENT_PLAN_EVAL));
        assert!(kinds.contains(&names::EVENT_COMPACTION_TICK));
        // The exposition formats render without panicking and carry
        // the service's series.
        assert!(snap.prometheus_text().contains(names::QUERY_NS));
        assert!(snap.to_json().contains(names::QUERY_NS));
        service.shutdown();
    }

    #[test]
    fn telemetry_can_be_disabled() {
        let (plan, schema, all) = plan_and_schema(10.0);
        let service = Service::start(
            plan,
            schema,
            ServiceConfig::default()
                .with_workers(0)
                .with_telemetry(false),
        );
        for chunk in all.split(100) {
            assert!(service.enqueue_raw(chunk).is_enqueued());
        }
        assert!(service.telemetry().is_none());
        assert!(service.telemetry_snapshot().is_none());
        let out = service.query(&parse_query("q", "stars = 5").unwrap());
        assert_eq!(out.count, 80, "answers are identical without telemetry");
    }

    #[test]
    fn queue_full_raises_counter_and_trace_event() {
        let (plan, schema, all) = plan_and_schema(10.0);
        let service = Service::start(
            plan,
            schema,
            ServiceConfig::default()
                .with_workers(0)
                .with_queue_capacity(1),
        );
        let chunks = all.split(200);
        assert!(service.enqueue_raw(chunks[0].clone()).is_enqueued());
        assert!(!service.enqueue_raw(chunks[1].clone()).is_enqueued());
        let snap = service.telemetry_snapshot().unwrap();
        assert_eq!(snap.counter(names::QUEUE_FULL_TOTAL), Some(1));
        let event = snap
            .events
            .iter()
            .find(|e| e.kind == names::EVENT_QUEUE_FULL)
            .expect("backpressure leaves a trace event");
        assert_eq!(event.fields, vec![("capacity", 1)]);
        service.drain();
        service.shutdown();
    }

    #[test]
    fn enqueue_wait_blocked_time_is_accounted() {
        let (plan, schema, all) = plan_and_schema(10.0);
        let service = Arc::new(Service::start(
            plan,
            schema,
            ServiceConfig::default()
                .with_shards(1)
                .with_workers(0)
                .with_queue_capacity(1),
        ));
        let chunks = all.split(200);
        assert!(service.enqueue_raw(chunks[0].clone()).is_enqueued());
        assert_eq!(service.metrics().blocked, std::time::Duration::ZERO);

        // A producer blocks on the full queue until the main thread
        // drains it ~30ms later; that wait must surface as blocked time.
        let svc = Arc::clone(&service);
        let chunk = chunks[1].clone();
        let producer = std::thread::spawn(move || {
            let filter = svc.prefilter().run_chunk(&chunk);
            svc.enqueue_wait(chunk, filter)
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        service.drain();
        assert!(producer.join().unwrap().is_enqueued());

        let blocked = service.metrics().blocked;
        assert!(
            blocked >= std::time::Duration::from_millis(20),
            "blocked for ~30ms but recorded {blocked:?}"
        );
        let t = service.telemetry().unwrap();
        assert_eq!(t.enqueue_wait.count(), 1);
        assert!(t.enqueue_wait.max() >= 20_000_000);
    }

    #[test]
    #[should_panic(expected = "filter result covers")]
    fn desynced_filter_rejected_at_enqueue() {
        let (plan, schema, all) = plan_and_schema(10.0);
        let service = Service::start(plan, schema, ServiceConfig::default().with_workers(0));
        let chunks = all.split(100);
        // Filter computed over the wrong chunk: must panic in the
        // producer, never inside a worker.
        let filter = service.prefilter().run_chunk(&chunks[0]);
        let _ = service.enqueue(all, filter);
    }

    #[test]
    fn durable_service_restarts_from_checkpoint_and_wal() {
        let (plan, schema, all) = plan_and_schema(10.0);
        let dir = ciao_storage::ScratchDir::new("svc");
        let storage = || ciao_storage::StorageConfig::new(dir.path());
        let cfg = || {
            ServiceConfig::default()
                .with_shards(2)
                .with_workers(0)
                .with_storage(storage())
        };
        let q = parse_query("q", "stars = 5").unwrap();
        let chunks = all.split(50); // 8 chunks

        // Life 1: ingest 4 chunks, checkpoint, ingest 2 more (WAL
        // tail), then drop WITHOUT shutdown — the tail must survive.
        {
            let service = Service::start(plan.clone(), Arc::clone(&schema), cfg());
            assert!(service.recovery_report().unwrap().clean());
            for chunk in &chunks[..4] {
                assert!(service.enqueue_raw(chunk.clone()).is_enqueued());
            }
            let stats = service.checkpoint().unwrap();
            assert_eq!(stats.snapshots_written, 2);
            for chunk in &chunks[4..6] {
                assert!(service.enqueue_raw(chunk.clone()).is_enqueued());
            }
            service.drain();
            let d = service.durability().unwrap();
            assert_eq!(d.wal_appends, 6);
            assert_eq!(d.snapshots_written, 2);
            drop(service);
        }

        // Life 2: recovery = snapshot + 2-chunk WAL replay; answers
        // and load totals match a crash-free service over 6 chunks.
        {
            let service = Service::start(plan.clone(), Arc::clone(&schema), cfg());
            let d = service.durability().unwrap();
            assert_eq!(d.wal_replayed, 2);
            assert!(service.recovery_report().unwrap().clean());
            assert_eq!(service.query(&q).count, 60, "6 × 50 records, 1/5 match");
            assert_eq!(service.metrics().load().total(), 300);
            // Seq line resumed: new chunks extend, not overwrite.
            for chunk in &chunks[6..] {
                assert!(service.enqueue_raw(chunk.clone()).is_enqueued());
            }
            assert_eq!(service.query(&q).count, 80);
            service.shutdown(); // final checkpoint
        }

        // Life 3: clean shutdown left no WAL tail to replay.
        {
            let service = Service::start(plan, schema, cfg());
            assert_eq!(service.durability().unwrap().wal_replayed, 0);
            assert_eq!(service.query(&q).count, 80);
            service.shutdown();
        }
    }

    #[test]
    fn concurrent_checkpoints_never_double_apply_or_lose_chunks() {
        // Producers race checkpoints on purpose: the ingest gate must
        // make every chunk land either fully inside a snapshot or
        // fully above its ceiling. A double-applied chunk shows up as
        // an inflated count after restart; a lost one as a deflated
        // count.
        let (plan, schema, all) = plan_and_schema(10.0);
        let dir = ciao_storage::ScratchDir::new("svc-race");
        let storage = || ciao_storage::StorageConfig::new(dir.path());
        let q = parse_query("q", "stars = 5").unwrap();
        let chunks = all.split(10); // 40 chunks × 10 records
        {
            let service = Service::start(
                plan.clone(),
                Arc::clone(&schema),
                ServiceConfig::default()
                    .with_shards(2)
                    .with_workers(2)
                    .with_queue_capacity(4)
                    .with_storage(storage()),
            );
            let pf = service.prefilter();
            std::thread::scope(|scope| {
                for producer in chunks.chunks(10) {
                    let (service, pf) = (&service, &pf);
                    scope.spawn(move || {
                        for chunk in producer {
                            let filter = pf.run_chunk(chunk);
                            assert!(service.enqueue_wait(chunk.clone(), filter).is_enqueued());
                        }
                    });
                }
                // Checkpoint continuously while producers run.
                scope.spawn(|| {
                    for _ in 0..8 {
                        service.checkpoint();
                        std::thread::yield_now();
                    }
                });
            });
            assert_eq!(service.query(&q).count, 80);
            drop(service); // unclean exit: recovery must reconstruct
        }
        let service = Service::start(
            plan,
            schema,
            ServiceConfig::default()
                .with_shards(2)
                .with_workers(0)
                .with_storage(storage()),
        );
        assert_eq!(service.metrics().accepted_chunks, 40);
        assert_eq!(service.query(&q).count, 80, "exactly-once across restart");
        assert_eq!(service.metrics().load().total(), 400);
        service.shutdown();
    }

    #[test]
    fn shard_count_mismatch_surfaces_via_try_start() {
        let (plan, schema, _) = plan_and_schema(10.0);
        let dir = ciao_storage::ScratchDir::new("svc");
        let storage = || ciao_storage::StorageConfig::new(dir.path());
        let cfg = |shards| {
            ServiceConfig::default()
                .with_shards(shards)
                .with_workers(0)
                .with_storage(storage())
        };
        Service::start(plan.clone(), Arc::clone(&schema), cfg(2)).shutdown();
        let err = Service::try_start(plan, schema, cfg(3)).unwrap_err();
        assert!(matches!(err, StorageError::ShardCountMismatch { .. }));
    }

    #[test]
    fn in_memory_service_reports_no_durability() {
        let (plan, schema, _) = plan_and_schema(10.0);
        let service = Service::start(plan, schema, ServiceConfig::default().with_workers(0));
        assert!(service.durability().is_none());
        assert!(service.recovery_report().is_none());
        assert!(service.checkpoint().is_none());
    }

    #[test]
    fn sql_query_matches_count_query_and_records_telemetry() {
        let (plan, schema, all) = plan_and_schema(10.0);
        let service = Service::start(
            plan,
            schema,
            ServiceConfig::default().with_shards(3).with_workers(0),
        );
        for chunk in all.split(64) {
            assert!(service.enqueue_raw(chunk).is_enqueued());
        }
        let count = service
            .query_sql("SELECT COUNT(*) FROM reviews WHERE stars = 5")
            .unwrap();
        assert_eq!(count.rows, vec![vec![ciao_sql::SqlValue::Int(80)]]);
        assert!(count.metrics.used_skipping, "stars = 5 is pushed");

        // Grouped aggregate over all shards: every stars bucket holds
        // 80 records, keys come back in order.
        let grouped = service
            .query_sql("SELECT stars, COUNT(*) AS n FROM reviews GROUP BY stars ORDER BY stars")
            .unwrap();
        assert_eq!(grouped.columns.len(), 2);
        assert_eq!(grouped.columns[1].name, "n");
        assert_eq!(grouped.rows.len(), 5);
        for (i, row) in grouped.rows.iter().enumerate() {
            assert_eq!(
                row,
                &vec![
                    ciao_sql::SqlValue::Int(i as i64 + 1),
                    ciao_sql::SqlValue::Int(80)
                ]
            );
        }

        // Per-stage latency histograms and the trace event are live.
        let snap = service.telemetry_snapshot().unwrap();
        for name in [names::SQL_PARSE_NS, names::SQL_PLAN_NS, names::SQL_EXEC_NS] {
            let (_, h) = snap
                .histograms
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing histogram {name}"));
            assert_eq!(h.count, 2, "{name} records once per statement");
        }
        assert!(snap.events.iter().any(|e| e.kind == names::EVENT_SQL_QUERY));
        assert_eq!(service.metrics().queries, 2);
        service.shutdown();
    }

    #[test]
    fn explain_renders_without_executing_and_analyze_executes() {
        let (plan, schema, all) = plan_and_schema(10.0);
        let service = Service::start(
            plan,
            schema,
            ServiceConfig::default().with_shards(3).with_workers(0),
        );
        for chunk in all.split(64) {
            assert!(service.enqueue_raw(chunk).is_enqueued());
        }
        service.drain();

        let lines = |r: &QueryResult| -> Vec<String> {
            assert_eq!(r.columns.len(), 1);
            assert_eq!(r.columns[0].name, "plan");
            r.rows
                .iter()
                .map(|row| match &row[0] {
                    SqlValue::Str(s) => s.clone(),
                    other => panic!("plan rows are strings, got {other:?}"),
                })
                .collect()
        };

        // Plain EXPLAIN: a plan tree, nothing executed.
        let explained = service
            .query_sql("EXPLAIN SELECT COUNT(*) FROM reviews WHERE stars = 5")
            .unwrap();
        let tree = lines(&explained);
        assert!(tree[0].starts_with("HashAggregate"), "{tree:?}");
        assert!(tree.iter().any(|l| l.contains("Filter: stars = 5")));
        assert!(!tree.iter().any(|l| l.contains("-- analyze --")));
        assert_eq!(service.metrics().queries, 0, "EXPLAIN does not execute");
        let t = service.telemetry().unwrap();
        assert_eq!(t.sql_parse.count(), 1);
        assert_eq!(t.sql_exec.count(), 0);

        // EXPLAIN ANALYZE: same tree plus live annotations, and the
        // carried metrics/profile are the real execution's.
        let analyzed = service
            .query_sql("EXPLAIN ANALYZE SELECT COUNT(*) FROM reviews WHERE stars = 5")
            .unwrap();
        let annotated = lines(&analyzed);
        assert_eq!(&annotated[..tree.len()], &tree[..], "tree prefix matches");
        assert!(annotated.contains(&"-- analyze --".to_owned()));
        assert!(annotated.contains(&"rows matched: 80".to_owned()));
        assert!(analyzed.profile.reconciles_with(&analyzed.metrics));
        assert_eq!(analyzed.profile.total_matched(), 80);
        assert_eq!(service.metrics().queries, 1, "ANALYZE executes once");
        assert_eq!(t.sql_exec.count(), 1);
        service.shutdown();
    }

    #[test]
    fn profiler_feeds_workload_stats_slow_log_and_trace() {
        let (plan, schema, all) = plan_and_schema(10.0);
        let service = Service::start(
            plan,
            schema,
            ServiceConfig::default()
                .with_shards(2)
                .with_workers(0)
                .with_slow_query_threshold(Duration::ZERO),
        );
        for chunk in all.split(64) {
            assert!(service.enqueue_raw(chunk).is_enqueued());
        }
        service
            .query_sql("SELECT COUNT(*) FROM reviews WHERE stars = 5")
            .unwrap();
        service
            .query_sql("SELECT COUNT(*) FROM reviews WHERE stars = 5")
            .unwrap();
        service
            .query_sql("SELECT COUNT(*) FROM reviews WHERE stars = 2")
            .unwrap();

        let w = service.workload_stats();
        assert_eq!(w.queries, 3);
        // The pushed clause: its skip mask removes non-matching rows
        // before clause evaluation, so observed selectivity is
        // conditionally 1 — the profiler reports what was evaluated,
        // not the raw data distribution.
        let c5 = w.clause("stars = 5").expect("clause tracked");
        assert_eq!(c5.queries_seen, 2);
        assert!(c5.pushed);
        assert_eq!(c5.selectivity_ewma, Some(1.0));
        // Seeded at 1.0, present again (stays 1.0), then absent once:
        // one default-alpha (0.2) step toward 0.
        assert!((c5.frequency_ewma - 0.8).abs() < 1e-9);
        // The unpushed clause falls back to scanning: zone maps prune
        // the loaded blocks (all stars = 5), so it is evaluated on the
        // 320 parked rows, of which 80 match — observed selectivity is
        // the ground truth over what actually ran.
        let c2 = w.clause("stars = 2").expect("clause tracked");
        assert!(!c2.pushed);
        let sel = c2.selectivity_ewma.unwrap();
        assert!(
            (sel - 0.25).abs() < 1e-9,
            "80 of 320 parked match, got {sel}"
        );

        // A zero threshold logs every executed statement.
        let slow = service.slow_queries();
        assert_eq!(slow.len(), 3);
        assert_eq!(slow[0].seq, 1);
        assert_eq!(slow[2].rows_matched, 80);
        assert_eq!(service.metrics().slow_queries, 3);
        let snap = service.telemetry_snapshot().unwrap();
        assert_eq!(snap.counter(names::SLOW_QUERIES_TOTAL), Some(3));
        // Per-shard prune gauges were refreshed by the last scan.
        assert!(snap
            .gauges
            .iter()
            .any(|(name, _)| name.starts_with(names::SHARD_PRUNE_PERMILLE)));

        // The last statement left a full span tree.
        let trace = service.last_query_trace().expect("trace recorded");
        let spans: Vec<&str> = trace.spans().iter().map(|s| s.name()).collect();
        assert_eq!(&spans[..4], &["query_sql", "parse", "plan", "execute"]);
        assert!(spans.contains(&"shard0") && spans.contains(&"shard1"));
        assert!(trace.spans()[0].dur_ns() > 0, "finish() closed the root");
        assert!(trace.to_chrome_trace().contains("\"traceEvents\""));
        service.shutdown();
    }

    #[test]
    fn profiler_surfaces_are_inert_with_telemetry_off() {
        let (plan, schema, all) = plan_and_schema(10.0);
        let service = Service::start(
            plan,
            schema,
            ServiceConfig::default()
                .with_workers(0)
                .with_telemetry(false)
                .with_slow_query_threshold(Duration::ZERO),
        );
        for chunk in all.split(100) {
            assert!(service.enqueue_raw(chunk).is_enqueued());
        }
        let result = service
            .query_sql("SELECT COUNT(*) FROM reviews WHERE stars = 5")
            .unwrap();
        assert_eq!(result.rows, vec![vec![SqlValue::Int(80)]]);
        assert!(service.last_query_trace().is_none());
        assert_eq!(service.workload_stats().queries, 0);
        assert!(service.slow_queries().is_empty());
        assert_eq!(service.metrics().slow_queries, 0);
        // EXPLAIN still renders — the profiler gates recording, not
        // the statement forms.
        let explained = service
            .query_sql("EXPLAIN SELECT COUNT(*) FROM reviews")
            .unwrap();
        assert!(!explained.rows.is_empty());
    }

    #[test]
    fn sql_errors_surface_with_spans_not_panics() {
        let (plan, schema, _) = plan_and_schema(10.0);
        let service = Service::start(plan, schema, ServiceConfig::default().with_workers(0));
        let err = service.query_sql("SELECT nope FROM reviews").unwrap_err();
        assert!(err.to_string().contains("unknown column `nope`"));
        let err = service.query_sql("SELECT").unwrap_err();
        assert!(err.render("SELECT").contains('^'));
    }

    #[test]
    fn empty_chunk_is_accepted_and_dropped() {
        let (plan, schema, _) = plan_and_schema(10.0);
        let service = Service::start(plan, schema, ServiceConfig::default().with_workers(0));
        let empty = RecordChunk::from_ndjson("");
        assert!(service.enqueue_raw(empty).is_enqueued());
        service.drain();
        assert_eq!(service.metrics().ingested_chunks, 0);
    }
}
