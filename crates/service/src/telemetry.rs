//! Service-level telemetry: the metric names the service publishes
//! and a pre-resolved bundle of handles for the hot paths.
//!
//! The [`ciao_telemetry::Telemetry`] registry hands out handles by
//! name through a mutex; looking a name up per ingest job would put
//! that mutex on the hot path. [`ServiceTelemetry`] resolves every
//! handle once at service start, so recording is a couple of relaxed
//! atomic adds — cheap enough to leave on in production, and gated
//! behind [`crate::ServiceConfig::telemetry`] for benchmarks that
//! want a zero-instrumentation baseline.

use ciao_telemetry::{Counter, EventRing, Gauge, Histogram, Telemetry, TelemetrySnapshot};
use std::sync::Arc;

/// Metric and event names published by a [`crate::Service`].
///
/// Histograms record nanoseconds. Per-shard histograms append
/// `_shard<i>`; merged views are exposed by
/// [`ServiceTelemetry::ingest_ack_merged`] and
/// [`ServiceTelemetry::compaction_tick_merged`].
pub mod names {
    /// Time producers spent blocked in [`crate::Service::enqueue_wait`].
    pub const ENQUEUE_WAIT_NS: &str = "ciao_service_enqueue_wait_ns";
    /// Enqueue → ingested latency per chunk (prefix; one histogram per
    /// shard, suffixed `_shard<i>`).
    pub const INGEST_ACK_NS: &str = "ciao_service_ingest_ack_ns";
    /// Duration of one compaction tick (prefix; one histogram per
    /// shard, suffixed `_shard<i>`).
    pub const COMPACTION_TICK_NS: &str = "ciao_service_compaction_tick_ns";
    /// End-to-end [`crate::Service::query`] latency (drain + fan-out +
    /// merge).
    pub const QUERY_NS: &str = "ciao_service_query_ns";
    /// SQL text → AST time inside [`crate::Service::query_sql`].
    pub const SQL_PARSE_NS: &str = "ciao_service_sql_parse_ns";
    /// AST → physical-plan time (analysis + planning) inside
    /// [`crate::Service::query_sql`].
    pub const SQL_PLAN_NS: &str = "ciao_service_sql_plan_ns";
    /// Plan execution time (drain + fan-out + merge + finalize) inside
    /// [`crate::Service::query_sql`].
    pub const SQL_EXEC_NS: &str = "ciao_service_sql_exec_ns";
    /// Enqueue attempts refused with `QueueFull`.
    pub const QUEUE_FULL_TOTAL: &str = "ciao_service_queue_full_total";
    /// Epochs sealed across all shards.
    pub const EPOCHS_SEALED_TOTAL: &str = "ciao_service_epochs_sealed_total";
    /// Queue depth at the last snapshot.
    pub const QUEUE_DEPTH: &str = "ciao_service_queue_depth";
    /// Chunks appended to the write-ahead log (durable ingest acks).
    pub const WAL_APPENDS_TOTAL: &str = "ciao_service_wal_appends_total";
    /// Chunks re-applied from the WAL tail during recovery.
    pub const WAL_REPLAYED_TOTAL: &str = "ciao_service_wal_replayed_total";
    /// Per-shard snapshot files written by checkpoints.
    pub const SNAPSHOTS_WRITTEN_TOTAL: &str = "ciao_service_snapshots_written_total";
    /// Zone-map block prune rate of the last SQL scan, in permille
    /// (prefix; one gauge per shard, suffixed `_shard<i>`).
    pub const SHARD_PRUNE_PERMILLE: &str = "ciao_service_shard_prune_permille";
    /// SQL statements slower than the configured slow-query threshold.
    pub const SLOW_QUERIES_TOTAL: &str = "ciao_service_slow_queries_total";

    /// Trace-event kind: a shard sealed an ingest epoch.
    pub const EVENT_EPOCH_SEAL: &str = "epoch_seal";
    /// Trace-event kind: a compaction tick did real work.
    pub const EVENT_COMPACTION_TICK: &str = "compaction_tick";
    /// Trace-event kind: an enqueue was refused (backpressure).
    pub const EVENT_QUEUE_FULL: &str = "queue_full";
    /// Trace-event kind: a query plan was evaluated.
    pub const EVENT_PLAN_EVAL: &str = "plan_eval";
    /// Trace-event kind: a SQL statement was executed end to end.
    pub const EVENT_SQL_QUERY: &str = "sql_query";
    /// Trace-event kind: a checkpoint committed (snapshots + manifest).
    pub const EVENT_CHECKPOINT: &str = "checkpoint";
}

/// Pre-resolved telemetry handles for one [`crate::Service`].
///
/// Built at [`crate::Service::start`] when
/// [`crate::ServiceConfig::telemetry`] is on; shared (via `Arc`) by
/// the service handle, its worker threads, and each shard.
#[derive(Debug)]
pub struct ServiceTelemetry {
    registry: Arc<Telemetry>,
    /// Producer blocked time in [`crate::Service::enqueue_wait`].
    pub enqueue_wait: Histogram,
    /// End-to-end query latency.
    pub query: Histogram,
    /// SQL lex+parse stage latency.
    pub sql_parse: Histogram,
    /// SQL analyze+plan stage latency.
    pub sql_plan: Histogram,
    /// SQL plan execution latency (fan-out + merge + finalize).
    pub sql_exec: Histogram,
    /// Per-shard enqueue → ingested latency.
    pub ingest_ack: Vec<Histogram>,
    /// Per-shard compaction-tick duration.
    pub compaction_tick: Vec<Histogram>,
    /// Backpressure events.
    pub queue_full: Counter,
    /// Epoch seals across all shards.
    pub epochs_sealed: Counter,
    /// Durable (write-ahead-logged) ingest acks.
    pub wal_appends: Counter,
    /// Chunks re-applied from the WAL tail at recovery.
    pub wal_replayed: Counter,
    /// Snapshot files written by checkpoints.
    pub snapshots_written: Counter,
    /// Per-shard zone-map prune rate of the last SQL scan (permille).
    pub prune_rate: Vec<Gauge>,
    /// SQL statements that crossed the slow-query threshold.
    pub slow_queries: Counter,
}

impl ServiceTelemetry {
    /// Builds a registry with one histogram per shard for the sharded
    /// series and resolves every handle.
    pub fn new(shards: usize, event_capacity: usize) -> Arc<ServiceTelemetry> {
        let registry = Arc::new(Telemetry::with_event_capacity(event_capacity));
        let per_shard = |prefix: &str| {
            (0..shards)
                .map(|i| registry.histogram(&format!("{prefix}_shard{i}")))
                .collect()
        };
        // HELP text rides the Prometheus exposition; register it once
        // here so scrapes are self-describing.
        registry.set_help(names::QUERY_NS, "End-to-end query latency (nanoseconds)");
        registry.set_help(
            names::QUEUE_FULL_TOTAL,
            "Enqueue attempts refused with QueueFull (backpressure)",
        );
        registry.set_help(
            names::SLOW_QUERIES_TOTAL,
            "SQL statements slower than the configured slow-query threshold",
        );
        let prune_rate = (0..shards)
            .map(|i| {
                let name = format!("{}_shard{i}", names::SHARD_PRUNE_PERMILLE);
                registry.set_help(
                    &name,
                    "Zone-map block prune rate of the shard's last SQL scan, in permille",
                );
                registry.gauge(&name)
            })
            .collect();
        Arc::new(ServiceTelemetry {
            enqueue_wait: registry.histogram(names::ENQUEUE_WAIT_NS),
            query: registry.histogram(names::QUERY_NS),
            sql_parse: registry.histogram(names::SQL_PARSE_NS),
            sql_plan: registry.histogram(names::SQL_PLAN_NS),
            sql_exec: registry.histogram(names::SQL_EXEC_NS),
            ingest_ack: per_shard(names::INGEST_ACK_NS),
            compaction_tick: per_shard(names::COMPACTION_TICK_NS),
            queue_full: registry.counter(names::QUEUE_FULL_TOTAL),
            epochs_sealed: registry.counter(names::EPOCHS_SEALED_TOTAL),
            wal_appends: registry.counter(names::WAL_APPENDS_TOTAL),
            wal_replayed: registry.counter(names::WAL_REPLAYED_TOTAL),
            snapshots_written: registry.counter(names::SNAPSHOTS_WRITTEN_TOTAL),
            prune_rate,
            slow_queries: registry.counter(names::SLOW_QUERIES_TOTAL),
            registry,
        })
    }

    /// The underlying registry (for exporting or registering extra
    /// series next to the service's own).
    pub fn registry(&self) -> &Arc<Telemetry> {
        &self.registry
    }

    /// The trace-event ring.
    pub fn events(&self) -> &EventRing {
        self.registry.events()
    }

    /// Ingest-ack latency merged across shards (a detached copy; safe
    /// to quantile while ingest keeps recording).
    pub fn ingest_ack_merged(&self) -> Histogram {
        Self::merged(&self.ingest_ack)
    }

    /// Compaction-tick duration merged across shards (detached copy).
    pub fn compaction_tick_merged(&self) -> Histogram {
        Self::merged(&self.compaction_tick)
    }

    fn merged(per_shard: &[Histogram]) -> Histogram {
        let total = Histogram::new();
        for h in per_shard {
            total.merge(h);
        }
        total
    }

    /// A point-in-time snapshot of every series and the event ring.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_shard_series_and_merge() {
        let t = ServiceTelemetry::new(3, 16);
        t.ingest_ack[0].record(100);
        t.ingest_ack[2].record(5_000);
        let merged = t.ingest_ack_merged();
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.max(), 5_000);
        // The merged view is detached: later records don't leak in.
        t.ingest_ack[1].record(9);
        assert_eq!(merged.count(), 2);
    }

    #[test]
    fn help_text_reaches_the_exposition() {
        let t = ServiceTelemetry::new(2, 16);
        t.prune_rate[1].set(750);
        let text = t.snapshot().prometheus_text();
        assert!(text.contains("# HELP ciao_service_query_ns"));
        assert!(text.contains("# HELP ciao_service_shard_prune_permille_shard1"));
        assert!(text.contains("ciao_service_shard_prune_permille_shard1 750"));
    }

    #[test]
    fn snapshot_carries_named_series() {
        let t = ServiceTelemetry::new(2, 16);
        t.query
            .record_duration(std::time::Duration::from_micros(40));
        t.queue_full.inc();
        let snap = t.snapshot();
        assert!(snap
            .histograms
            .iter()
            .any(|(name, h)| name == names::QUERY_NS && h.count == 1));
        assert!(snap
            .counters
            .iter()
            .any(|(name, v)| name == names::QUEUE_FULL_TOTAL && *v == 1));
    }
}
