//! The end-to-end pipeline: the exact sequence the paper measures.
//!
//! ```text
//! raw NDJSON ──chunk──▶ client prefilter ──bits──▶ partial load ──▶ queries
//!      ▲                                                              │
//!      └── planning: sample → selectivities → submodular selection ◀──┘
//! ```
//!
//! [`Pipeline::run`] performs all four phases and reports the timing
//! breakdown of Figs. 3–5 plus per-query detail.

use crate::config::CiaoConfig;
use crate::loader::LoadStats;
use crate::plan::{PlanError, PushdownPlan};
use crate::report::TimingBreakdown;
use crate::server::Server;
use ciao_columnar::{Schema, SchemaError};
use ciao_engine::QueryMetrics;
use ciao_json::{JsonValue, RecordChunk};
use ciao_predicate::Query;
use std::sync::Arc;
use std::time::Instant;

/// Pipeline failures.
#[derive(Debug)]
pub enum PipelineError {
    /// No parseable records in the input.
    NoData,
    /// Planning failed.
    Plan(PlanError),
    /// Schema inference failed.
    Schema(SchemaError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::NoData => write!(f, "input contains no parseable records"),
            PipelineError::Plan(e) => write!(f, "planning failed: {e}"),
            PipelineError::Schema(e) => write!(f, "schema inference failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<PlanError> for PipelineError {
    fn from(e: PlanError) -> Self {
        PipelineError::Plan(e)
    }
}

impl From<SchemaError> for PipelineError {
    fn from(e: SchemaError) -> Self {
        PipelineError::Schema(e)
    }
}

/// Per-query execution record.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// Query name.
    pub name: String,
    /// The COUNT(*) result.
    pub count: usize,
    /// Full engine metrics.
    pub metrics: QueryMetrics,
}

/// Everything one pipeline run produces.
#[derive(Debug)]
pub struct PipelineReport {
    /// The plan that was pushed to clients.
    pub plan: PushdownPlan,
    /// Stage timings (the stacked bars of Figs. 3–5).
    pub timings: TimingBreakdown,
    /// Loading statistics (loading ratio etc.).
    pub load: LoadStats,
    /// Per-query results in workload order.
    pub query_results: Vec<QueryReport>,
    /// Number of chunks shipped by the client.
    pub chunks: usize,
    /// Total records processed.
    pub records: usize,
}

impl PipelineReport {
    /// Fraction of queries that used data skipping and actually
    /// skipped at least one row (the Fig. 6 numerator's cheap proxy;
    /// the bench harness computes the timed version).
    pub fn queries_with_skipping(&self) -> usize {
        self.query_results
            .iter()
            .filter(|q| q.metrics.used_skipping && q.metrics.table_scan.rows_skipped > 0)
            .count()
    }

    /// Sum of all query counts (workload-level sanity metric).
    pub fn total_hits(&self) -> usize {
        self.query_results.iter().map(|q| q.count).sum()
    }
}

/// The end-to-end driver.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: CiaoConfig,
}

impl Pipeline {
    /// Creates a pipeline with a configuration.
    pub fn new(config: CiaoConfig) -> Pipeline {
        Pipeline { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CiaoConfig {
        &self.config
    }

    /// Runs planning, client prefiltering, partial loading, and the
    /// query workload over raw NDJSON text.
    pub fn run(&self, ndjson: &str, queries: &[Query]) -> Result<PipelineReport, PipelineError> {
        let all = RecordChunk::from_ndjson(ndjson);
        self.run_chunked(&all, queries)
    }

    /// Like [`Pipeline::run`] but over an existing record chunk.
    pub fn run_chunked(
        &self,
        all: &RecordChunk,
        queries: &[Query],
    ) -> Result<PipelineReport, PipelineError> {
        // --- Phase 0: planning (sample → schema + selectivities + plan).
        let sample: Vec<JsonValue> = all
            .iter()
            .take(self.config.sample_size)
            .filter_map(|r| ciao_json::parse(r).ok())
            .collect();
        if sample.is_empty() {
            return Err(PipelineError::NoData);
        }
        // Lenient inference: a single producer emitting a conflicting
        // type must not block ingestion (conflicting values load as
        // NULL and are counted as coercion failures).
        let schema = Arc::new(Schema::infer_lenient(&sample)?);
        let plan = PushdownPlan::build(
            queries,
            &sample,
            &self.config.cost_model,
            self.config.budget_micros,
        )?;

        // --- Phase 1: client-side prefiltering, chunk by chunk.
        let chunks = all.split(self.config.chunk_size);
        let prefilter_start = Instant::now();
        let filters = if self.config.client_workers > 1 {
            let parallel =
                ciao_client::ParallelPrefilter::new(plan.prefilter(), self.config.client_workers);
            let mut stats = ciao_client::ClientStats::default();
            parallel.run_chunks(&chunks, &mut stats)
        } else {
            let prefilter = plan.prefilter();
            chunks.iter().map(|c| prefilter.run_chunk(c)).collect()
        };
        let prefiltering = prefilter_start.elapsed();

        // --- Phase 2: server-side partial loading.
        let mut server = Server::new(plan, schema, self.config.block_size);
        let load_start = Instant::now();
        for (chunk, filter) in chunks.iter().zip(&filters) {
            server.ingest(chunk, filter);
        }
        server.finalize();
        let loading = load_start.elapsed();

        // --- Phase 3: query workload.
        let query_start = Instant::now();
        let query_results: Vec<QueryReport> = queries
            .iter()
            .map(|q| {
                let out = server.execute(q);
                QueryReport {
                    name: q.name.clone(),
                    count: out.count,
                    metrics: out.metrics,
                }
            })
            .collect();
        let query = query_start.elapsed();

        Ok(PipelineReport {
            plan: server.plan().clone(),
            timings: TimingBreakdown {
                prefiltering,
                loading,
                query,
            },
            load: server.load_stats(),
            query_results,
            chunks: chunks.len(),
            records: all.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_predicate::parse_query;

    fn ndjson(n: usize) -> String {
        (0..n)
            .map(|i| {
                format!(
                    "{{\"stars\":{},\"name\":\"u{}\",\"text\":\"{}\"}}\n",
                    i % 5 + 1,
                    i % 20,
                    if i % 10 == 0 {
                        "delicious stuff"
                    } else {
                        "plain stuff"
                    }
                )
            })
            .collect()
    }

    fn workload() -> Vec<Query> {
        vec![
            parse_query("q0", "stars = 5").unwrap(),
            parse_query("q1", r#"text LIKE "%delicious%""#).unwrap(),
            parse_query("q2", r#"stars = 5 AND name = "u4""#).unwrap(),
        ]
    }

    #[test]
    fn full_run_produces_correct_counts() {
        let data = ndjson(500);
        let report = Pipeline::new(CiaoConfig::default().with_budget_micros(10.0))
            .run(&data, &workload())
            .unwrap();
        assert_eq!(report.records, 500);
        assert_eq!(report.query_results[0].count, 100); // stars = 5
        assert_eq!(report.query_results[1].count, 50); // delicious
        assert_eq!(report.query_results[2].count, 25); // u4 ∧ stars=5: i%20==4 ∧ i%5==4
        assert!(!report.plan.is_empty());
    }

    #[test]
    fn ciao_matches_baseline_counts() {
        // The load-bearing equivalence: with and without pushdown, every
        // query must return identical counts.
        let data = ndjson(400);
        let queries = workload();
        let ciao = Pipeline::new(CiaoConfig::default().with_budget_micros(10.0))
            .run(&data, &queries)
            .unwrap();
        let baseline = Pipeline::new(CiaoConfig::default().with_budget_micros(0.0))
            .run(&data, &queries)
            .unwrap();
        for (a, b) in ciao.query_results.iter().zip(&baseline.query_results) {
            assert_eq!(a.count, b.count, "count mismatch on {}", a.name);
        }
        // Baseline loads everything; CIAO loads a strict subset here.
        assert_eq!(baseline.load.loaded_records, 400);
        assert!(ciao.load.loaded_records < 400);
    }

    #[test]
    fn budget_zero_is_no_op_plan() {
        let data = ndjson(100);
        let report = Pipeline::new(CiaoConfig::default().with_budget_micros(0.0))
            .run(&data, &workload())
            .unwrap();
        assert!(report.plan.is_empty());
        assert_eq!(report.load.loading_ratio(), 1.0);
        assert_eq!(report.queries_with_skipping(), 0);
    }

    #[test]
    fn chunking_respected() {
        let data = ndjson(100);
        let report = Pipeline::new(
            CiaoConfig::default()
                .with_budget_micros(10.0)
                .with_chunk_size(16),
        )
        .run(&data, &workload())
        .unwrap();
        assert_eq!(report.chunks, 7); // ceil(100/16)
    }

    #[test]
    fn empty_input_rejected() {
        let err = Pipeline::new(CiaoConfig::default())
            .run("", &workload())
            .unwrap_err();
        assert!(matches!(err, PipelineError::NoData));
    }

    #[test]
    fn garbage_only_input_rejected() {
        let err = Pipeline::new(CiaoConfig::default())
            .run("not json\nstill not json\n", &workload())
            .unwrap_err();
        assert!(matches!(err, PipelineError::NoData));
    }

    #[test]
    fn parallel_clients_produce_identical_reports() {
        let data = ndjson(600);
        let queries = workload();
        let serial = Pipeline::new(CiaoConfig::default().with_budget_micros(10.0))
            .run(&data, &queries)
            .unwrap();
        let parallel = Pipeline::new(
            CiaoConfig::default()
                .with_budget_micros(10.0)
                .with_client_workers(4)
                .with_chunk_size(64),
        )
        .run(&data, &queries)
        .unwrap();
        assert_eq!(serial.load.loaded_records, parallel.load.loaded_records);
        for (a, b) in serial.query_results.iter().zip(&parallel.query_results) {
            assert_eq!(a.count, b.count);
        }
    }

    #[test]
    fn skipping_reported() {
        let data = ndjson(500);
        let report = Pipeline::new(CiaoConfig::default().with_budget_micros(10.0))
            .run(&data, &workload())
            .unwrap();
        assert!(report.queries_with_skipping() > 0);
        assert!(report.total_hits() > 0);
    }
}
