//! The CIAO server: ingest + query entry point.

use crate::loader::{AdmissionPolicy, LoadStats, Loader};
use crate::plan::PushdownPlan;
use ciao_client::ChunkFilterResult;
use ciao_columnar::{Schema, Table};
use ciao_engine::{Executor, QueryOutcome};
use ciao_json::RecordChunk;
use ciao_predicate::Query;
use std::sync::Arc;

/// A running CIAO server instance.
///
/// Lifecycle: construct with a plan and schema → [`Server::ingest`]
/// chunks (with their client filter results) → [`Server::finalize`] →
/// [`Server::execute`] queries. Executing before finalizing answers
/// over the data ingested so far (the table seals lazily).
#[derive(Debug)]
pub struct Server {
    plan: PushdownPlan,
    schema: Arc<Schema>,
    block_size: usize,
    loader: Option<Loader>,
    table: Table,
    parked: Vec<String>,
    stats: LoadStats,
    executor: Executor,
    promotions: crate::jit::PromotionStats,
}

impl Server {
    /// Creates a server for a plan and a (pre-inferred) schema.
    pub fn new(plan: PushdownPlan, schema: Arc<Schema>, block_size: usize) -> Server {
        let executor = Executor::new(plan.predicates.iter().map(|p| (p.clause.clone(), p.id)));
        let policy = if plan.is_empty() {
            AdmissionPolicy::LoadAll
        } else {
            AdmissionPolicy::from_coverage(&plan.query_coverage)
        };
        let loader = Loader::new(Arc::clone(&schema), &plan.ids(), policy, block_size);
        Server {
            plan,
            schema,
            block_size,
            loader: Some(loader),
            table: Table::default(),
            parked: Vec::new(),
            stats: LoadStats::default(),
            executor,
            promotions: crate::jit::PromotionStats::default(),
        }
    }

    /// The active plan.
    pub fn plan(&self) -> &PushdownPlan {
        &self.plan
    }

    /// Ingests one raw chunk and its bitvectors (partial loading).
    ///
    /// Panics when called after [`Server::finalize`].
    pub fn ingest(&mut self, chunk: &RecordChunk, filter: &ChunkFilterResult) {
        self.loader
            .as_mut()
            .expect("server already finalized")
            .load_chunk(chunk, filter);
    }

    /// Seals the columnar table. Idempotent.
    pub fn finalize(&mut self) {
        if let Some(loader) = self.loader.take() {
            let (table, parked, stats) = loader.finish();
            self.table = table;
            self.parked = parked;
            self.stats = stats;
        }
    }

    /// Executes a `COUNT(*)` query (finalizes first if needed — but
    /// only through `&mut`; use [`Server::execute`] after an explicit
    /// finalize for shared access).
    pub fn execute_mut(&mut self, query: &Query) -> QueryOutcome {
        self.finalize();
        self.execute(query)
    }

    /// Executes a `COUNT(*)` query against the finalized state.
    pub fn execute(&self, query: &Query) -> QueryOutcome {
        assert!(
            self.loader.is_none(),
            "finalize() the server before shared-access execution"
        );
        self.executor
            .execute_count(&self.table, &self.parked, query)
    }

    /// Load statistics (valid after finalize).
    pub fn load_stats(&self) -> LoadStats {
        match &self.loader {
            Some(loader) => loader.stats(),
            None => self.stats,
        }
    }

    /// The columnar table (valid after finalize).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The parked raw records (valid after finalize).
    pub fn parked(&self) -> &[String] {
        &self.parked
    }

    /// Executes with **just-in-time promotion**: when an uncovered
    /// query is about to pay the parse cost of the parked store, the
    /// parsed records are promoted into the columnar table first (with
    /// regenerated predicate bits), so later uncovered queries scan
    /// columns instead of re-parsing text. Answers are identical to
    /// [`Server::execute`].
    pub fn execute_jit(&mut self, query: &Query) -> QueryOutcome {
        self.finalize();
        let pushed = self.executor.pushed_ids_for(query);
        if crate::jit::should_promote(&pushed, self.parked.len()) {
            let parked = std::mem::take(&mut self.parked);
            let (fragment, survivors, stats) = crate::jit::promote_parked(
                &self.plan,
                Arc::clone(&self.schema),
                parked,
                self.block_size,
            );
            self.table.merge(fragment);
            self.parked = survivors;
            self.promotions.promoted += stats.promoted;
            self.promotions.still_parked = stats.still_parked;
        }
        self.execute(query)
    }

    /// Cumulative promotion counters.
    pub fn promotions(&self) -> crate::jit::PromotionStats {
        self.promotions
    }

    /// Executes `SELECT * WHERE query`, returning the matching records
    /// (same routing and skipping as [`Server::execute`]).
    pub fn select(&self, query: &Query) -> Vec<ciao_json::JsonValue> {
        assert!(
            self.loader.is_none(),
            "finalize() the server before shared-access execution"
        );
        self.executor
            .execute_select(&self.table, &self.parked, query)
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PushdownPlan;
    use ciao_optimizer::CostModel;
    use ciao_predicate::parse_query;

    fn records(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!(r#"{{"stars":{},"name":"u{}"}}"#, i % 5 + 1, i))
            .collect()
    }

    fn setup(budget: f64) -> (Server, RecordChunk) {
        let raw = records(100);
        let chunk = RecordChunk::from_records(&raw).unwrap();
        let sample: Vec<_> = raw
            .iter()
            .take(50)
            .map(|r| ciao_json::parse(r).unwrap())
            .collect();
        let queries = vec![parse_query("q0", "stars = 5").unwrap()];
        let plan = PushdownPlan::build(
            &queries,
            &sample,
            &CostModel::default_uncalibrated(),
            budget,
        )
        .unwrap();
        let schema = Arc::new(Schema::infer(&sample).unwrap());
        let server = Server::new(plan, schema, 16);
        (server, chunk)
    }

    #[test]
    fn end_to_end_with_pushdown() {
        let (mut server, chunk) = setup(10.0);
        assert!(!server.plan().is_empty());
        let pf = server.plan().prefilter();
        let filter = pf.run_chunk(&chunk);
        server.ingest(&chunk, &filter);
        server.finalize();

        assert_eq!(server.load_stats().loaded_records, 20);
        assert_eq!(server.load_stats().parked_records, 80);

        let q = parse_query("q", "stars = 5").unwrap();
        let out = server.execute(&q);
        assert_eq!(out.count, 20);
        assert!(out.metrics.used_skipping);
        assert!(!out.metrics.scanned_parked);
    }

    #[test]
    fn baseline_zero_budget_loads_all() {
        let (mut server, chunk) = setup(0.0);
        assert!(server.plan().is_empty());
        let pf = server.plan().prefilter();
        let filter = pf.run_chunk(&chunk);
        server.ingest(&chunk, &filter);
        server.finalize();
        assert_eq!(server.load_stats().loaded_records, 100);

        let q = parse_query("q", "stars = 5").unwrap();
        let out = server.execute(&q);
        assert_eq!(out.count, 20);
        assert!(!out.metrics.used_skipping);
    }

    #[test]
    fn uncovered_query_still_correct() {
        let (mut server, chunk) = setup(10.0);
        let pf = server.plan().prefilter();
        let filter = pf.run_chunk(&chunk);
        server.ingest(&chunk, &filter);
        let out = server.execute_mut(&parse_query("q", "stars = 2").unwrap());
        assert_eq!(out.count, 20);
        assert!(out.metrics.scanned_parked);
    }

    #[test]
    #[should_panic(expected = "already finalized")]
    fn ingest_after_finalize_rejected() {
        let (mut server, chunk) = setup(10.0);
        let filter = server.plan().prefilter().run_chunk(&chunk);
        server.finalize();
        server.ingest(&chunk, &filter);
    }

    #[test]
    #[should_panic(expected = "finalize()")]
    fn execute_before_finalize_rejected() {
        let (server, _) = setup(10.0);
        server.execute(&parse_query("q", "stars = 5").unwrap());
    }

    #[test]
    fn select_returns_matching_records() {
        let (mut server, chunk) = setup(10.0);
        let filter = server.plan().prefilter().run_chunk(&chunk);
        server.ingest(&chunk, &filter);
        server.finalize();

        // Covered query: records come from the columnar side.
        let rows = server.select(&parse_query("q", "stars = 5").unwrap());
        assert_eq!(rows.len(), 20);
        for r in &rows {
            assert_eq!(r.get("stars").unwrap().as_i64(), Some(5));
        }
        // Uncovered query: records come from the parked raw side.
        let rows = server.select(&parse_query("q", "stars = 2").unwrap());
        assert_eq!(rows.len(), 20);
        for r in &rows {
            assert_eq!(r.get("stars").unwrap().as_i64(), Some(2));
        }
    }

    #[test]
    fn jit_promotion_preserves_answers_and_drains_parked() {
        let (mut server, chunk) = setup(10.0);
        let pf = server.plan().prefilter();
        let filter = pf.run_chunk(&chunk);
        server.ingest(&chunk, &filter);
        server.finalize();
        assert_eq!(server.parked().len(), 80);

        // Uncovered query: triggers promotion and still answers right.
        let q2 = parse_query("q", "stars = 2").unwrap();
        let out = server.execute_jit(&q2);
        assert_eq!(out.count, 20);
        assert_eq!(server.promotions().promoted, 80);
        assert!(server.parked().is_empty());
        assert_eq!(server.table().row_count(), 100);

        // Subsequent uncovered query scans zero raw records.
        let q3 = parse_query("q", "stars = 3").unwrap();
        let out = server.execute_jit(&q3);
        assert_eq!(out.count, 20);
        assert_eq!(out.metrics.raw_scan.records_parsed, 0);

        // Covered query still correct after the merge, with skipping.
        let q5 = parse_query("q", "stars = 5").unwrap();
        let out = server.execute_jit(&q5);
        assert_eq!(out.count, 20);
        assert!(out.metrics.used_skipping);
    }

    #[test]
    fn jit_noop_for_covered_queries() {
        let (mut server, chunk) = setup(10.0);
        let filter = server.plan().prefilter().run_chunk(&chunk);
        server.ingest(&chunk, &filter);
        let q5 = parse_query("q", "stars = 5").unwrap();
        let out = server.execute_jit(&q5);
        assert_eq!(out.count, 20);
        assert_eq!(server.promotions().promoted, 0);
        assert_eq!(server.parked().len(), 80);
    }

    #[test]
    fn finalize_idempotent() {
        let (mut server, chunk) = setup(10.0);
        let filter = server.plan().prefilter().run_chunk(&chunk);
        server.ingest(&chunk, &filter);
        server.finalize();
        let rows = server.table().row_count();
        server.finalize();
        assert_eq!(server.table().row_count(), rows);
    }
}
