//! # CIAO — client-assisted data loading
//!
//! A from-scratch Rust reproduction of *CIAO: An Optimization Framework
//! for Client-Assisted Data Loading* (ICDE 2021, arXiv:2102.11793).
//!
//! CIAO offloads cheap predicate pre-filtering to the **clients** that
//! produce data (edge sensors, log shippers): given a workload of
//! prospective queries and a per-record compute budget, it selects a
//! near-optimal set of predicates (a submodular maximization under a
//! knapsack, §V), compiles them to substring patterns the clients can
//! evaluate **without parsing** (§IV), and uses the resulting
//! bitvectors twice on the server (§VI):
//!
//! 1. **Partial loading** — records whose bits are all 0 are parked as
//!    raw JSON instead of being parsed into the columnar store;
//! 2. **Data skipping** — per-block bitvectors are ANDed into skip
//!    masks at query time.
//!
//! ## Quickstart
//!
//! ```
//! use ciao::{CiaoConfig, Pipeline};
//! use ciao_predicate::parse_query;
//!
//! // Some raw NDJSON records (normally produced by edge clients).
//! let ndjson: String = (0..500)
//!     .map(|i| format!("{{\"level\":\"{}\",\"code\":{}}}\n",
//!                      if i % 10 == 0 { "Error" } else { "Info" }, i % 7))
//!     .collect();
//!
//! // A prospective workload.
//! let queries = vec![
//!     parse_query("q0", r#"level = "Error""#).unwrap(),
//!     parse_query("q1", r#"level = "Error" AND code = 3"#).unwrap(),
//! ];
//!
//! // Run the whole system: plan → client prefilter → partial load → queries.
//! let report = Pipeline::new(CiaoConfig::default().with_budget_micros(1.0))
//!     .run(&ndjson, &queries)
//!     .unwrap();
//!
//! assert_eq!(report.query_results[0].count, 50);
//! assert!(report.load.loaded_records <= 500);
//! ```

#![warn(missing_docs)]

pub mod adaptive;
pub mod config;
pub mod jit;
pub mod loader;
pub mod pipeline;
pub mod plan;
pub mod report;
pub mod server;

pub use adaptive::{drift_report, replan_with_observations, DriftEntry};
pub use config::CiaoConfig;
pub use jit::PromotionStats;
pub use loader::{AdmissionPolicy, LoadStats, Loader};
pub use pipeline::{Pipeline, PipelineError, PipelineReport, QueryReport};
pub use plan::{PlanError, PushdownPlan, PushedPredicate};
pub use report::TimingBreakdown;
pub use server::Server;
