//! System-wide configuration.

use ciao_optimizer::CostModel;

/// Tunables for a CIAO deployment.
#[derive(Debug, Clone)]
pub struct CiaoConfig {
    /// Client-side computation budget `B`, in microseconds of modeled
    /// predicate-evaluation cost per record (paper §V-A). Zero disables
    /// pushdown entirely — the no-optimization baseline.
    pub budget_micros: f64,
    /// Records per client chunk (paper §III uses ~1k).
    pub chunk_size: usize,
    /// Rows per columnar block.
    pub block_size: usize,
    /// Records sampled for schema inference and selectivity estimation.
    pub sample_size: usize,
    /// Client-side prefilter worker threads (1 = serial; results are
    /// bit-identical either way).
    pub client_workers: usize,
    /// The calibrated cost model used by predicate selection.
    pub cost_model: CostModel,
}

impl Default for CiaoConfig {
    fn default() -> Self {
        CiaoConfig {
            budget_micros: 1.0,
            chunk_size: 1024,
            block_size: 1024,
            sample_size: 1000,
            client_workers: 1,
            cost_model: CostModel::default_uncalibrated(),
        }
    }
}

impl CiaoConfig {
    /// Sets the per-record budget (µs).
    pub fn with_budget_micros(mut self, budget: f64) -> Self {
        assert!(
            budget >= 0.0 && budget.is_finite(),
            "budget must be non-negative"
        );
        self.budget_micros = budget;
        self
    }

    /// Sets the client chunk size.
    pub fn with_chunk_size(mut self, records: usize) -> Self {
        assert!(records > 0, "chunk size must be positive");
        self.chunk_size = records;
        self
    }

    /// Sets the columnar block size.
    pub fn with_block_size(mut self, rows: usize) -> Self {
        assert!(rows > 0, "block size must be positive");
        self.block_size = rows;
        self
    }

    /// Sets the planning sample size.
    pub fn with_sample_size(mut self, records: usize) -> Self {
        assert!(records > 0, "sample size must be positive");
        self.sample_size = records;
        self
    }

    /// Sets the client prefilter worker count.
    pub fn with_client_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one client worker");
        self.client_workers = workers;
        self
    }

    /// Installs a calibrated cost model.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let cfg = CiaoConfig::default()
            .with_budget_micros(5.0)
            .with_chunk_size(256)
            .with_block_size(512)
            .with_sample_size(100);
        assert_eq!(cfg.budget_micros, 5.0);
        assert_eq!(cfg.chunk_size, 256);
        assert_eq!(cfg.block_size, 512);
        assert_eq!(cfg.sample_size, 100);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_budget_rejected() {
        CiaoConfig::default().with_budget_micros(-1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chunk_rejected() {
        CiaoConfig::default().with_chunk_size(0);
    }
}
