//! Timing breakdowns for experiment reporting.

use std::time::Duration;

/// The three stacked components of the paper's end-to-end figures
/// (Figs. 3–5): client prefiltering, server data loading, query
/// processing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingBreakdown {
    /// Time clients spent evaluating pushed predicates.
    pub prefiltering: Duration,
    /// Time the server spent on partial loading (parse + columnar
    /// conversion + bitvector repacking).
    pub loading: Duration,
    /// Time executing the query workload.
    pub query: Duration,
}

impl TimingBreakdown {
    /// End-to-end total.
    pub fn total(&self) -> Duration {
        self.prefiltering + self.loading + self.query
    }

    /// Seconds triple `(prefiltering, loading, query)` for plotting.
    pub fn as_secs(&self) -> (f64, f64, f64) {
        (
            self.prefiltering.as_secs_f64(),
            self.loading.as_secs_f64(),
            self.query.as_secs_f64(),
        )
    }
}

impl std::fmt::Display for TimingBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "prefilter {:.3}s + load {:.3}s + query {:.3}s = {:.3}s",
            self.prefiltering.as_secs_f64(),
            self.loading.as_secs_f64(),
            self.query.as_secs_f64(),
            self.total().as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let t = TimingBreakdown {
            prefiltering: Duration::from_millis(100),
            loading: Duration::from_millis(200),
            query: Duration::from_millis(300),
        };
        assert_eq!(t.total(), Duration::from_millis(600));
        let (p, l, q) = t.as_secs();
        assert!((p - 0.1).abs() < 1e-9);
        assert!((l - 0.2).abs() < 1e-9);
        assert!((q - 0.3).abs() < 1e-9);
        assert!(t.to_string().contains("0.600s"));
    }
}
