//! The pushdown plan: what ships to the clients.
//!
//! Planning glues the pieces of paper §V together: estimate clause
//! selectivities on a sample, cost each pushable clause with the
//! calibrated model, run the combined greedy under the budget, and
//! assign each chosen clause a predicate id plus compiled pattern
//! strings — the "predicate hashmap" of §VI.

use ciao_client::Prefilter;
use ciao_json::JsonValue;
use ciao_optimizer::{solve, CostModel, InstanceBuilder};
use ciao_predicate::{compile_clause, Clause, ClausePattern, Query, SelectivityEstimator};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Planning failures.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The workload is empty.
    NoQueries,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoQueries => write!(f, "cannot plan for an empty workload"),
        }
    }
}

impl std::error::Error for PlanError {}

/// One predicate chosen for pushdown.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PushedPredicate {
    /// Server-assigned id (indexes bitvectors end to end).
    pub id: u32,
    /// The clause.
    pub clause: Clause,
    /// Compiled pattern strings (paper Table I).
    pub pattern: ClausePattern,
    /// Estimated selectivity used during planning.
    pub selectivity: f64,
    /// Modeled per-record cost (µs).
    pub cost: f64,
}

/// The complete plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PushdownPlan {
    /// The selected predicates, ids dense from 0.
    pub predicates: Vec<PushedPredicate>,
    /// Budget the plan was solved under (µs/record).
    pub budget: f64,
    /// Objective value `f(S)` achieved.
    pub objective: f64,
    /// Total modeled cost of the selection (µs/record).
    pub total_cost: f64,
    /// Which greedy variant won ("benefit" or "ratio").
    pub winner: String,
    /// Mean record length observed in the planning sample (bytes).
    pub mean_record_len: f64,
    /// Per workload query (in workload order): the ids of its clauses
    /// that were pushed down. An empty entry marks an **uncovered**
    /// query, which disables partial loading entirely — a record the
    /// uncovered query may need cannot be recognized from bits alone,
    /// so nothing may be parked (paper §VII-E-2/3 behaviour).
    pub query_coverage: Vec<Vec<u32>>,
}

impl PushdownPlan {
    /// Builds a plan from a workload and a sample of parsed records.
    ///
    /// `budget = 0` produces an empty plan (the paper's baseline).
    pub fn build(
        queries: &[Query],
        sample: &[JsonValue],
        cost_model: &CostModel,
        budget: f64,
    ) -> Result<PushdownPlan, PlanError> {
        if queries.is_empty() {
            return Err(PlanError::NoQueries);
        }
        let mean_record_len = if sample.is_empty() {
            256.0 // harmless default when no sample exists
        } else {
            let total: usize = sample.iter().map(|r| ciao_json::to_string(r).len()).sum();
            total as f64 / sample.len() as f64
        };

        // Selectivity estimation over all distinct pushable clauses.
        let estimator = SelectivityEstimator::new(sample);
        let all_clauses: Vec<&Clause> = queries.iter().flat_map(Query::pushable_clauses).collect();
        let selectivities = estimator.estimate_all(all_clauses);

        // Candidate costs via the calibrated model.
        let builder = InstanceBuilder::new(&selectivities, budget);
        let instance = builder.build(queries, |clause| {
            let pattern = compile_clause(clause).expect("pushable clause compiles");
            cost_model.clause_cost(&pattern, mean_record_len, selectivities.get(clause))
        });

        let solved = solve(&instance);
        let best = solved.best();
        let mut selected = best.selected.clone();
        selected.sort_unstable(); // dense, stable id assignment

        let predicates: Vec<PushedPredicate> = selected
            .iter()
            .enumerate()
            .map(|(id, &idx)| {
                let cand = &instance.candidates[idx];
                PushedPredicate {
                    id: id as u32,
                    clause: cand.clause.clone(),
                    pattern: compile_clause(&cand.clause).expect("pushable"),
                    selectivity: cand.selectivity,
                    cost: cand.cost,
                }
            })
            .collect();

        let query_coverage = coverage_of(queries, &predicates);

        Ok(PushdownPlan {
            predicates,
            budget,
            objective: best.objective,
            total_cost: best.cost,
            winner: solved.winner.to_owned(),
            mean_record_len,
            query_coverage,
        })
    }

    /// Builds a plan from an explicitly chosen clause set, bypassing
    /// the optimizer. Used by the micro-benchmarks that control the
    /// pushdown ("we push down 2 predicates for each workload",
    /// §VII-E) and useful for manual operation.
    pub fn manual(
        clauses: &[Clause],
        queries: &[Query],
        sample: &[JsonValue],
        cost_model: &CostModel,
    ) -> PushdownPlan {
        let mean_record_len = if sample.is_empty() {
            256.0
        } else {
            let total: usize = sample.iter().map(|r| ciao_json::to_string(r).len()).sum();
            total as f64 / sample.len() as f64
        };
        let estimator = SelectivityEstimator::new(sample);
        let selectivities = estimator.estimate_all(clauses.iter());
        let predicates: Vec<PushedPredicate> = clauses
            .iter()
            .enumerate()
            .map(|(id, clause)| {
                let pattern = compile_clause(clause)
                    .unwrap_or_else(|| panic!("clause {clause} is not pushable"));
                let selectivity = selectivities.get(clause);
                let cost = cost_model.clause_cost(&pattern, mean_record_len, selectivity);
                PushedPredicate {
                    id: id as u32,
                    clause: clause.clone(),
                    pattern,
                    selectivity,
                    cost,
                }
            })
            .collect();
        let total_cost = predicates.iter().map(|p| p.cost).sum();
        let query_coverage = coverage_of(queries, &predicates);
        PushdownPlan {
            budget: total_cost,
            objective: 0.0,
            total_cost,
            winner: "manual".to_owned(),
            mean_record_len,
            query_coverage,
            predicates,
        }
    }

    /// True when every workload query has at least one pushed clause —
    /// the precondition for parking any record at all.
    pub fn is_fully_covering(&self) -> bool {
        !self.query_coverage.is_empty() && self.query_coverage.iter().all(|ids| !ids.is_empty())
    }

    /// Number of pushed predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// True when nothing was pushed (zero budget or no candidates).
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// The ids, dense from 0.
    pub fn ids(&self) -> Vec<u32> {
        self.predicates.iter().map(|p| p.id).collect()
    }

    /// Clause → id lookup (the server's predicate hashmap).
    pub fn clause_to_id(&self) -> HashMap<Clause, u32> {
        self.predicates
            .iter()
            .map(|p| (p.clause.clone(), p.id))
            .collect()
    }

    /// Builds the client-side prefilter for this plan.
    pub fn prefilter(&self) -> Prefilter {
        Prefilter::new(self.predicates.iter().map(|p| (p.id, p.pattern.clone())))
    }
}

/// Computes per-query pushed-clause id sets.
fn coverage_of(queries: &[Query], predicates: &[PushedPredicate]) -> Vec<Vec<u32>> {
    let by_clause: HashMap<&Clause, u32> = predicates.iter().map(|p| (&p.clause, p.id)).collect();
    queries
        .iter()
        .map(|q| {
            let mut ids: Vec<u32> = q
                .clauses
                .iter()
                .filter_map(|c| by_clause.get(c).copied())
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_predicate::parse_query;

    fn sample() -> Vec<JsonValue> {
        (0..200)
            .map(|i| {
                ciao_json::parse(&format!(
                    r#"{{"stars":{},"name":"u{}","age":{}}}"#,
                    i % 5 + 1,
                    i % 10,
                    i % 50
                ))
                .unwrap()
            })
            .collect()
    }

    fn workload() -> Vec<Query> {
        vec![
            parse_query("q0", "stars = 5").unwrap(),
            parse_query("q1", r#"stars = 5 AND name = "u3""#).unwrap(),
            parse_query("q2", "age < 10").unwrap(), // not pushable
        ]
    }

    #[test]
    fn plan_selects_within_budget() {
        let plan = PushdownPlan::build(
            &workload(),
            &sample(),
            &CostModel::default_uncalibrated(),
            5.0,
        )
        .unwrap();
        assert!(!plan.is_empty());
        assert!(plan.total_cost <= 5.0 + 1e-9);
        assert!(plan.objective > 0.0);
        // Ids dense from zero.
        assert_eq!(plan.ids(), (0..plan.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn zero_budget_plans_nothing() {
        let plan = PushdownPlan::build(
            &workload(),
            &sample(),
            &CostModel::default_uncalibrated(),
            0.0,
        )
        .unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.objective, 0.0);
    }

    #[test]
    fn unpushable_clauses_never_planned() {
        let plan = PushdownPlan::build(
            &workload(),
            &sample(),
            &CostModel::default_uncalibrated(),
            1_000.0,
        )
        .unwrap();
        for p in &plan.predicates {
            assert!(p.clause.is_pushable());
        }
    }

    #[test]
    fn empty_workload_rejected() {
        let err = PushdownPlan::build(&[], &sample(), &CostModel::default_uncalibrated(), 1.0)
            .unwrap_err();
        assert_eq!(err, PlanError::NoQueries);
    }

    #[test]
    fn empty_sample_still_plans() {
        // With no sample, every clause gets the smoothing prior 0.5 —
        // planning proceeds on that guess rather than failing.
        let plan =
            PushdownPlan::build(&workload(), &[], &CostModel::default_uncalibrated(), 5.0).unwrap();
        assert_eq!(plan.mean_record_len, 256.0);
        for p in &plan.predicates {
            assert_eq!(p.selectivity, 0.5);
        }
    }

    #[test]
    fn clause_lookup_and_prefilter() {
        let plan = PushdownPlan::build(
            &workload(),
            &sample(),
            &CostModel::default_uncalibrated(),
            5.0,
        )
        .unwrap();
        let map = plan.clause_to_id();
        assert_eq!(map.len(), plan.len());
        let pf = plan.prefilter();
        assert_eq!(pf.predicate_count(), plan.len());
    }

    #[test]
    fn serde_roundtrip() {
        let plan = PushdownPlan::build(
            &workload(),
            &sample(),
            &CostModel::default_uncalibrated(),
            5.0,
        )
        .unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: PushdownPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), plan.len());
        assert_eq!(back.predicates[0].clause, plan.predicates[0].clause);
    }
}
