//! Adaptive replanning from observed client statistics.
//!
//! The optimizer plans against selectivities estimated on a historical
//! sample (§VII-C). Real streams drift: a predicate planned at 2%
//! selectivity that starts matching 40% of records wastes its budget
//! *and* its partial-loading power. Clients already count raw matches
//! per predicate ([`ciao_client::ClientStats`]); this module compares
//! those observations against the plan, reports drift, and rebuilds
//! the plan with the observed values substituted.
//!
//! The observed raw-match rate is an upper bound on the true typed
//! selectivity (false positives, never negatives), which makes it a
//! *conservative* replanning input: it can only make the optimizer
//! less optimistic about a predicate's filtering power.

use crate::plan::{PlanError, PushdownPlan};
use ciao_client::ClientStats;
use ciao_json::JsonValue;
use ciao_optimizer::{solve, CostModel, InstanceBuilder};
use ciao_predicate::{compile_clause, Query, SelectivityEstimator, SelectivityMap};

/// One predicate's planned-vs-observed comparison.
#[derive(Debug, Clone)]
pub struct DriftEntry {
    /// Predicate id in the current plan.
    pub id: u32,
    /// Selectivity the plan was built with.
    pub planned: f64,
    /// Raw-match rate the client actually observed.
    pub observed: f64,
}

impl DriftEntry {
    /// Absolute selectivity drift.
    pub fn drift(&self) -> f64 {
        (self.observed - self.planned).abs()
    }
}

/// Compares a plan's selectivity estimates with client observations.
/// Predicates with no observations yet are omitted.
pub fn drift_report(plan: &PushdownPlan, stats: &ClientStats) -> Vec<DriftEntry> {
    if stats.records_processed == 0 {
        return Vec::new();
    }
    plan.predicates
        .iter()
        .map(|p| DriftEntry {
            id: p.id,
            planned: p.selectivity,
            observed: stats.observed_selectivity(p.id),
        })
        .collect()
}

/// True when any pushed predicate drifted by more than `threshold`
/// (absolute selectivity).
pub fn should_replan(report: &[DriftEntry], threshold: f64) -> bool {
    report.iter().any(|e| e.drift() > threshold)
}

/// Rebuilds the plan, overriding the sample-estimated selectivity of
/// every currently pushed predicate with its observed raw-match rate.
/// Unpushed candidates keep their sample estimates (there are no
/// observations for them).
pub fn replan_with_observations(
    queries: &[Query],
    sample: &[JsonValue],
    current: &PushdownPlan,
    stats: &ClientStats,
    cost_model: &CostModel,
    budget: f64,
) -> Result<PushdownPlan, PlanError> {
    if queries.is_empty() {
        return Err(PlanError::NoQueries);
    }
    // Start from fresh sample estimates…
    let estimator = SelectivityEstimator::new(sample);
    let all_clauses: Vec<_> = queries.iter().flat_map(Query::pushable_clauses).collect();
    let mut selectivities: SelectivityMap = estimator.estimate_all(all_clauses);
    // …then overwrite with live observations where we have them.
    if stats.records_processed > 0 {
        for p in &current.predicates {
            selectivities.insert(
                p.clause.clone(),
                stats.observed_selectivity(p.id).clamp(0.0, 1.0),
            );
        }
    }

    let mean_record_len = current.mean_record_len;
    let builder = InstanceBuilder::new(&selectivities, budget);
    let instance = builder.build(queries, |clause| {
        let pattern = compile_clause(clause).expect("pushable clause compiles");
        cost_model.clause_cost(&pattern, mean_record_len, selectivities.get(clause))
    });
    let solved = solve(&instance);
    let best = solved.best();
    let mut selected = best.selected.clone();
    selected.sort_unstable();

    let predicates: Vec<_> = selected
        .iter()
        .enumerate()
        .map(|(id, &idx)| {
            let cand = &instance.candidates[idx];
            crate::plan::PushedPredicate {
                id: id as u32,
                clause: cand.clause.clone(),
                pattern: compile_clause(&cand.clause).expect("pushable"),
                selectivity: cand.selectivity,
                cost: cand.cost,
            }
        })
        .collect();
    let query_coverage = {
        // Recompute coverage for the new predicate set.
        let by_clause: std::collections::HashMap<_, _> =
            predicates.iter().map(|p| (&p.clause, p.id)).collect();
        queries
            .iter()
            .map(|q| {
                let mut ids: Vec<u32> = q
                    .clauses
                    .iter()
                    .filter_map(|c| by_clause.get(c).copied())
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            })
            .collect()
    };
    Ok(PushdownPlan {
        predicates,
        budget,
        objective: best.objective,
        total_cost: best.cost,
        winner: solved.winner.to_owned(),
        mean_record_len,
        query_coverage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_predicate::parse_query;
    use std::time::Duration;

    fn sample() -> Vec<JsonValue> {
        (0..200)
            .map(|i| {
                ciao_json::parse(&format!(
                    r#"{{"a":{},"b":{}}}"#,
                    i % 100, // a = X is ~1% selective in the sample
                    i % 4    // b = X is ~25% selective
                ))
                .unwrap()
            })
            .collect()
    }

    fn workload() -> Vec<Query> {
        vec![
            parse_query("qa", "a = 7").unwrap(),
            parse_query("qb", "b = 1").unwrap(),
        ]
    }

    fn plan(budget: f64) -> PushdownPlan {
        PushdownPlan::build(
            &workload(),
            &sample(),
            &CostModel::default_uncalibrated(),
            budget,
        )
        .unwrap()
    }

    /// Synthesizes client stats where predicate `id` matched `frac` of
    /// records.
    fn observed(plan: &PushdownPlan, fracs: &[(u32, f64)]) -> ClientStats {
        let mut stats = ClientStats::default();
        stats.record_chunk(10_000, plan.len(), Duration::from_millis(1));
        for &(id, frac) in fracs {
            stats.record_matches(id, (10_000.0 * frac) as usize);
        }
        stats
    }

    #[test]
    fn drift_detected() {
        let p = plan(10.0);
        assert_eq!(p.len(), 2, "both predicates fit the budget");
        // Predicate 0 drifted massively; 1 is on target.
        let planned0 = p.predicates[0].selectivity;
        let stats = observed(&p, &[(0, 0.9), (1, p.predicates[1].selectivity)]);
        let report = drift_report(&p, &stats);
        assert_eq!(report.len(), 2);
        let e0 = report.iter().find(|e| e.id == 0).unwrap();
        assert!((e0.planned - planned0).abs() < 1e-12);
        assert!((e0.observed - 0.9).abs() < 1e-12);
        assert!(should_replan(&report, 0.3));
        assert!(!should_replan(&report, 0.95));
    }

    #[test]
    fn no_observations_no_drift() {
        let p = plan(10.0);
        let stats = ClientStats::default();
        assert!(drift_report(&p, &stats).is_empty());
        assert!(!should_replan(&[], 0.1));
    }

    #[test]
    fn replanning_drops_a_useless_predicate() {
        // Tight budget: only one predicate fits. The sample says `a = 7`
        // is far more selective (1% vs 25%), so it gets pushed.
        let tight = {
            let full = plan(1_000.0);
            // Find a budget that admits exactly one predicate.
            let min_cost = full
                .predicates
                .iter()
                .map(|p| p.cost)
                .fold(f64::INFINITY, f64::min);
            plan(min_cost + 1e-6)
        };
        assert_eq!(tight.len(), 1);
        let pushed_clause = tight.predicates[0].clause.clone();
        assert_eq!(pushed_clause.to_string(), "a = 7");

        // Live traffic: `a = 7` actually matches 95% of records.
        let stats = observed(&tight, &[(0, 0.95)]);
        let report = drift_report(&tight, &stats);
        assert!(should_replan(&report, 0.3));

        let new_plan = replan_with_observations(
            &workload(),
            &sample(),
            &tight,
            &stats,
            &CostModel::default_uncalibrated(),
            tight.budget,
        )
        .unwrap();
        assert_eq!(new_plan.len(), 1);
        assert_eq!(
            new_plan.predicates[0].clause.to_string(),
            "b = 1",
            "replanning should switch to the genuinely selective predicate"
        );
    }

    #[test]
    fn replan_without_observations_equals_fresh_plan() {
        let p = plan(10.0);
        let fresh = replan_with_observations(
            &workload(),
            &sample(),
            &p,
            &ClientStats::default(),
            &CostModel::default_uncalibrated(),
            10.0,
        )
        .unwrap();
        assert_eq!(fresh.len(), p.len());
        for (a, b) in fresh.predicates.iter().zip(&p.predicates) {
            assert_eq!(a.clause, b.clause);
        }
    }
}
