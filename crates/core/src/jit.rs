//! Just-in-time promotion of parked records.
//!
//! The paper parks records "to be loaded when needed (e.g. just-in-time
//! loading)" (§I) and cites Invisible Loading as the lineage. This
//! module implements that promotion: when an **uncovered** query forces
//! a scan of the parked raw store, the parse work is already being
//! paid — so instead of discarding the parsed DOMs, the server can
//! migrate them into the columnar table. The next uncovered query then
//! scans columns instead of re-parsing text.
//!
//! Promoted records need predicate bits for the block metadata; the
//! server regenerates them by re-running the plan's raw patterns over
//! the parked text — the same conservative bits the client would have
//! produced, so every skipping guarantee still holds.

use crate::plan::PushdownPlan;
use ciao_client::Prefilter;
use ciao_columnar::{Schema, Table, TableBuilder};
use ciao_json::{parse, RecordChunk};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Outcome of one promotion pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PromotionStats {
    /// Parked records parsed and appended to the columnar side.
    pub promoted: usize,
    /// Records that still fail to parse (stay parked).
    pub still_parked: usize,
}

/// Promotes every parseable parked record into a new table fragment.
///
/// Returns the fragment (same schema/block size discipline as the main
/// table) and the surviving parked records. The caller appends the
/// fragment's blocks to its table.
pub fn promote_parked(
    plan: &PushdownPlan,
    schema: Arc<Schema>,
    parked: Vec<String>,
    block_size: usize,
) -> (Table, Vec<String>, PromotionStats) {
    let ids = plan.ids();
    let mut builder = TableBuilder::with_block_size(schema, &ids, block_size);
    let mut survivors = Vec::new();
    let mut stats = PromotionStats::default();

    // Regenerate conservative bits with the plan's own patterns.
    let prefilter: Prefilter = plan.prefilter();
    let chunk = match RecordChunk::from_records(&parked) {
        Ok(c) => c,
        Err(_) => {
            // Parked records came from NDJSON lines, so this cannot
            // happen; defend anyway by keeping everything parked.
            return (builder.finish(), parked, stats);
        }
    };
    let filter = prefilter.run_chunk(&chunk);

    for (i, record) in chunk.iter().enumerate() {
        match parse(record) {
            Ok(value) => {
                let bits: BTreeMap<u32, bool> = ids
                    .iter()
                    .map(|&id| (id, filter.bitvec_for(id).is_some_and(|bv| bv.bit(i))))
                    .collect();
                builder.push_record(&value, &bits);
                stats.promoted += 1;
            }
            Err(_) => {
                survivors.push(record.to_owned());
                stats.still_parked += 1;
            }
        }
    }
    (builder.finish(), survivors, stats)
}

/// Policy decision: promote when an **uncovered query** (none of its
/// clauses were pushed) is about to scan a non-empty parked store —
/// the parse cost is being paid either way, so bank it. Covered
/// queries never read the parked side and never trigger promotion.
pub fn should_promote(query_pushed_ids: &[u32], parked_len: usize) -> bool {
    parked_len > 0 && query_pushed_ids.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_optimizer::CostModel;
    use ciao_predicate::parse_query;

    fn setup() -> (PushdownPlan, Arc<Schema>, Vec<String>) {
        let sample: Vec<_> = (0..50)
            .map(|i| {
                ciao_json::parse(&format!(r#"{{"stars":{},"name":"u{}"}}"#, i % 5 + 1, i)).unwrap()
            })
            .collect();
        let queries = vec![parse_query("q", "stars = 5").unwrap()];
        let plan = PushdownPlan::build(&queries, &sample, &CostModel::default_uncalibrated(), 10.0)
            .unwrap();
        let schema = Arc::new(Schema::infer(&sample).unwrap());
        let parked: Vec<String> = (0..30)
            .map(|i| format!(r#"{{"stars":{},"name":"p{}"}}"#, i % 5 + 1, i))
            .collect();
        (plan, schema, parked)
    }

    #[test]
    fn promotes_parseable_records_with_bits() {
        let (plan, schema, parked) = setup();
        let (fragment, survivors, stats) = promote_parked(&plan, schema, parked, 8);
        assert_eq!(stats.promoted, 30);
        assert_eq!(stats.still_parked, 0);
        assert!(survivors.is_empty());
        assert_eq!(fragment.row_count(), 30);
        // Bits present in every block for the plan's predicate.
        let id = plan.ids()[0];
        let total_ones: usize = fragment
            .blocks()
            .iter()
            .map(|b| b.metadata().bitvec(id).unwrap().count_ones())
            .sum();
        assert_eq!(total_ones, 6, "stars=5 records carry a set bit");
    }

    #[test]
    fn unparseable_records_stay_parked() {
        let (plan, schema, mut parked) = setup();
        parked.push("not json at all".to_owned());
        let (fragment, survivors, stats) = promote_parked(&plan, schema, parked, 8);
        assert_eq!(stats.promoted, 30);
        assert_eq!(stats.still_parked, 1);
        assert_eq!(survivors.len(), 1);
        assert_eq!(fragment.row_count(), 30);
    }

    #[test]
    fn promotion_policy() {
        // Uncovered query + parked records → promote.
        assert!(should_promote(&[], 100));
        // Covered query never reads parked.
        assert!(!should_promote(&[1], 100));
        // Nothing to promote.
        assert!(!should_promote(&[], 0));
    }
}
