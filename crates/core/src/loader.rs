//! Partial data loading (paper §VI-A).
//!
//! For each incoming chunk the loader computes an **admission mask**
//! from the chunk's predicate bitvectors and the workload's coverage:
//! a record is admitted when *some* query might need it, i.e. when the
//! AND of that query's pushed-clause bits is 1 for the record
//! (conjunction semantics). A record failing every query's pushed
//! conjunction is parked verbatim as raw JSON.
//!
//! Two degenerate cases load everything, matching the paper's observed
//! behaviour on low-overlap workloads (§VII-D/E): a workload with any
//! **uncovered** query (no pushed clause), and an empty plan.

use ciao_bitvec::BitVec;
use ciao_client::ChunkFilterResult;
use ciao_columnar::{Schema, Table, TableBuilder};
use ciao_json::{parse, RecordChunk};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How the loader decides which records to admit into the columnar
/// store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Load every parseable record (baseline, or any uncovered query).
    LoadAll,
    /// Per-query coverage: admit a record iff for some query, all of
    /// that query's pushed-clause bits are set.
    PerQueryCoverage {
        /// For each workload query, the ids of its pushed clauses
        /// (each inner list non-empty).
        coverage: Vec<Vec<u32>>,
    },
    /// The paper §VI-A prose rule, kept for ablation: admit a record
    /// iff it is valid for **at least one** pushed predicate (pure OR,
    /// ignoring which query each predicate belongs to). Always sound
    /// (a parked record has every pushed bit 0, so no covered query
    /// can match it), and admits a superset of what
    /// [`AdmissionPolicy::PerQueryCoverage`] admits. Its weakness is
    /// the other side: it keeps parking even when the workload has
    /// uncovered queries, making every such query re-parse the parked
    /// store — the trade-off the coverage policy exists to avoid.
    AnyPredicate,
}

impl AdmissionPolicy {
    /// Builds the policy from per-query pushed-id sets: any empty set
    /// (uncovered query) collapses to [`AdmissionPolicy::LoadAll`].
    pub fn from_coverage(coverage: &[Vec<u32>]) -> AdmissionPolicy {
        if coverage.is_empty() || coverage.iter().any(Vec::is_empty) {
            AdmissionPolicy::LoadAll
        } else {
            AdmissionPolicy::PerQueryCoverage {
                coverage: coverage.to_vec(),
            }
        }
    }

    /// Computes the admission mask for one chunk; `None` = admit all.
    pub fn admission_mask(&self, filter: &ChunkFilterResult) -> Option<BitVec> {
        match self {
            AdmissionPolicy::LoadAll => None,
            AdmissionPolicy::AnyPredicate => filter.admission_mask(),
            AdmissionPolicy::PerQueryCoverage { coverage } => {
                let mut admitted = BitVec::zeros(filter.records);
                for ids in coverage {
                    // A missing bitvector means the client never
                    // evaluated this predicate — be conservative
                    // and treat every record as possibly needed.
                    let bvs: Vec<&BitVec> = ids
                        .iter()
                        .map(|id| filter.bitvec_for(*id))
                        .collect::<Option<_>>()?;
                    if let Some(mask) = BitVec::and_all(&bvs) {
                        admitted.or_assign(&mask);
                    }
                }
                Some(admitted)
            }
        }
    }
}

/// Loader counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Records parsed and loaded into the columnar table.
    pub loaded_records: usize,
    /// Records parked as raw JSON.
    pub parked_records: usize,
    /// Admitted records that failed to parse (parked instead — a
    /// malformed record must not be dropped, §IV's contract is about
    /// filtering, not validation).
    pub parse_errors: usize,
    /// Values that failed type coercion into the schema (stored NULL).
    pub coercion_failures: usize,
}

impl LoadStats {
    /// Merges another loader's counters into this one — used when one
    /// server seals successive loading epochs, and when a sharded
    /// service reports fleet-wide loading statistics. Folding from
    /// [`LoadStats::default`] is the identity.
    pub fn merge(&mut self, other: &LoadStats) {
        self.loaded_records += other.loaded_records;
        self.parked_records += other.parked_records;
        self.parse_errors += other.parse_errors;
        self.coercion_failures += other.coercion_failures;
    }

    /// Total records seen.
    pub fn total(&self) -> usize {
        self.loaded_records + self.parked_records
    }

    /// Fraction of records loaded into the columnar format — the
    /// paper's *loading ratio* (Fig 7/9/11).
    pub fn loading_ratio(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.loaded_records as f64 / self.total() as f64
        }
    }
}

/// Streams (chunk, bitvectors) pairs into a columnar table plus a
/// parked raw store.
#[derive(Debug)]
pub struct Loader {
    builder: TableBuilder,
    predicate_ids: Vec<u32>,
    policy: AdmissionPolicy,
    parked: Vec<String>,
    stats: LoadStats,
}

impl Loader {
    /// Creates a loader for a schema, the pushed predicate ids, and an
    /// admission policy.
    pub fn new(
        schema: Arc<Schema>,
        predicate_ids: &[u32],
        policy: AdmissionPolicy,
        block_size: usize,
    ) -> Loader {
        Loader {
            builder: TableBuilder::with_block_size(schema, predicate_ids, block_size),
            predicate_ids: predicate_ids.to_vec(),
            policy,
            parked: Vec::new(),
            stats: LoadStats::default(),
        }
    }

    /// Ingests one chunk with its client-produced filter result.
    ///
    /// Panics if the filter result's record count does not match the
    /// chunk (a framing bug upstream must not be silently absorbed).
    pub fn load_chunk(&mut self, chunk: &RecordChunk, filter: &ChunkFilterResult) {
        assert_eq!(
            chunk.len(),
            filter.records,
            "chunk has {} records but filter result covers {}",
            chunk.len(),
            filter.records
        );
        let admission = self.policy.admission_mask(filter);
        for (i, record) in chunk.iter().enumerate() {
            // `None` mask → everything is admitted (baseline / an
            // uncovered query in the workload).
            let admitted = admission.as_ref().is_none_or(|mask| mask.bit(i));
            if !admitted {
                self.parked.push(record.to_owned());
                self.stats.parked_records += 1;
                continue;
            }
            match parse(record) {
                Ok(value) => {
                    let bits: BTreeMap<u32, bool> = self
                        .predicate_ids
                        .iter()
                        .map(|&id| {
                            let bit = filter.bitvec_for(id).is_some_and(|bv| bv.bit(i));
                            (id, bit)
                        })
                        .collect();
                    self.builder.push_record(&value, &bits);
                    self.stats.loaded_records += 1;
                }
                Err(_) => {
                    // Malformed but admitted: park it rather than lose it.
                    self.parked.push(record.to_owned());
                    self.stats.parked_records += 1;
                    self.stats.parse_errors += 1;
                }
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> LoadStats {
        let mut s = self.stats;
        s.coercion_failures = self.builder.coercion_failures();
        s
    }

    /// Finalizes into (table, parked raw records, stats).
    pub fn finish(self) -> (Table, Vec<String>, LoadStats) {
        let mut stats = self.stats;
        stats.coercion_failures = self.builder.coercion_failures();
        (self.builder.finish(), self.parked, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_client::Prefilter;
    use ciao_predicate::{compile_clause, parse_clause};

    fn chunk() -> RecordChunk {
        RecordChunk::from_records(&[
            r#"{"stars":5,"name":"a"}"#,
            r#"{"stars":3,"name":"b"}"#,
            r#"{"stars":5,"name":"c"}"#,
            r#"not valid json {"#,
            r#"{"stars":1,"name":"e"}"#,
        ])
        .unwrap()
    }

    fn schema() -> Arc<Schema> {
        let sample = vec![ciao_json::parse(r#"{"stars":1,"name":"x"}"#).unwrap()];
        Arc::new(Schema::infer(&sample).unwrap())
    }

    fn prefilter() -> Prefilter {
        let pattern = compile_clause(&parse_clause("stars = 5").unwrap()).unwrap();
        Prefilter::new([(0, pattern)])
    }

    fn covered_policy() -> AdmissionPolicy {
        AdmissionPolicy::from_coverage(&[vec![0]])
    }

    #[test]
    fn partial_loading_splits_records() {
        let c = chunk();
        let filter = prefilter().run_chunk(&c);
        let mut loader = Loader::new(schema(), &[0], covered_policy(), 4);
        loader.load_chunk(&c, &filter);
        let (table, parked, stats) = loader.finish();
        // stars=5 records loaded; stars=3/1 and the malformed line parked.
        assert_eq!(stats.loaded_records, 2);
        assert_eq!(stats.parked_records, 3);
        assert_eq!(table.row_count(), 2);
        assert_eq!(parked.len(), 3);
        assert!((stats.loading_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn bitvectors_repacked_per_block() {
        let c = chunk();
        let filter = prefilter().run_chunk(&c);
        let mut loader = Loader::new(schema(), &[0], covered_policy(), 1);
        loader.load_chunk(&c, &filter);
        let (table, _, _) = loader.finish();
        // Each loaded record landed in its own block with bit 1 (it was
        // admitted *because* predicate 0 matched).
        assert_eq!(table.blocks().len(), 2);
        for block in table.blocks() {
            assert_eq!(block.metadata().bitvec(0).unwrap().count_ones(), 1);
        }
    }

    #[test]
    fn malformed_admitted_record_is_parked_not_dropped() {
        // A pattern matching the malformed line: "not valid json {" —
        // search for "valid".
        let pattern = compile_clause(&parse_clause(r#"name LIKE "%valid%""#).unwrap()).unwrap();
        let pf = Prefilter::new([(0, pattern)]);
        let c = chunk();
        let filter = pf.run_chunk(&c);
        let mut loader = Loader::new(schema(), &[0], covered_policy(), 4);
        loader.load_chunk(&c, &filter);
        let (_, parked, stats) = loader.finish();
        assert_eq!(stats.parse_errors, 1);
        assert!(parked.iter().any(|r| r.contains("not valid")));
        assert_eq!(stats.total(), 5);
    }

    #[test]
    fn no_predicates_loads_everything_parseable() {
        let c = chunk();
        let filter = Prefilter::new([]).run_chunk(&c);
        let mut loader = Loader::new(schema(), &[], AdmissionPolicy::LoadAll, 4);
        loader.load_chunk(&c, &filter);
        let (table, parked, stats) = loader.finish();
        assert_eq!(table.row_count(), 4);
        assert_eq!(parked.len(), 1); // only the malformed line
        assert_eq!(stats.parse_errors, 1);
        assert!((stats.loading_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "filter result covers")]
    fn desynced_filter_rejected() {
        let c = chunk();
        let other = RecordChunk::from_records(&[r#"{"stars":5}"#]).unwrap();
        let filter = prefilter().run_chunk(&other);
        let mut loader = Loader::new(schema(), &[0], covered_policy(), 4);
        loader.load_chunk(&c, &filter);
    }

    #[test]
    fn multiple_chunks_accumulate() {
        let c = chunk();
        let pf = prefilter();
        let mut loader = Loader::new(schema(), &[0], covered_policy(), 100);
        for _ in 0..3 {
            let filter = pf.run_chunk(&c);
            loader.load_chunk(&c, &filter);
        }
        let (table, parked, stats) = loader.finish();
        assert_eq!(stats.total(), 15);
        assert_eq!(table.row_count(), 6);
        assert_eq!(parked.len(), 9);
    }

    #[test]
    fn empty_stats() {
        assert_eq!(LoadStats::default().loading_ratio(), 0.0);
    }

    #[test]
    fn stats_merge_adds_counters() {
        let mut a = LoadStats {
            loaded_records: 3,
            parked_records: 1,
            parse_errors: 1,
            coercion_failures: 0,
        };
        let b = LoadStats {
            loaded_records: 2,
            parked_records: 4,
            parse_errors: 0,
            coercion_failures: 2,
        };
        a.merge(&b);
        assert_eq!(a.loaded_records, 5);
        assert_eq!(a.parked_records, 5);
        assert_eq!(a.parse_errors, 1);
        assert_eq!(a.coercion_failures, 2);
        assert_eq!(a.total(), 10);
    }

    #[test]
    fn uncovered_query_forces_load_all() {
        // Coverage with an empty entry (an uncovered query) collapses
        // to LoadAll — the paper's low-overlap behaviour.
        assert_eq!(
            AdmissionPolicy::from_coverage(&[vec![0], vec![]]),
            AdmissionPolicy::LoadAll
        );
        assert_eq!(
            AdmissionPolicy::from_coverage(&[]),
            AdmissionPolicy::LoadAll
        );
    }

    #[test]
    fn per_query_conjunction_semantics() {
        // Two predicates; one query needs BOTH (conjunction). Records
        // matching only one must be parked.
        let c = RecordChunk::from_records(&[
            r#"{"stars":5,"name":"hit"}"#, // both
            r#"{"stars":5,"name":"x"}"#,   // stars only
            r#"{"stars":1,"name":"hit"}"#, // name only
            r#"{"stars":1,"name":"x"}"#,   // neither
        ])
        .unwrap();
        let p0 = compile_clause(&parse_clause("stars = 5").unwrap()).unwrap();
        let p1 = compile_clause(&parse_clause(r#"name = "hit""#).unwrap()).unwrap();
        let pf = Prefilter::new([(0, p0), (1, p1)]);
        let filter = pf.run_chunk(&c);

        let policy = AdmissionPolicy::from_coverage(&[vec![0, 1]]);
        let mask = policy.admission_mask(&filter).unwrap();
        assert_eq!(mask.ones_positions(), vec![0]);

        // Two single-clause queries instead: union semantics.
        let policy = AdmissionPolicy::from_coverage(&[vec![0], vec![1]]);
        let mask = policy.admission_mask(&filter).unwrap();
        assert_eq!(mask.ones_positions(), vec![0, 1, 2]);
    }

    #[test]
    fn any_predicate_policy_is_a_superset_of_coverage() {
        let c = RecordChunk::from_records(&[
            r#"{"stars":5,"name":"hit"}"#,
            r#"{"stars":5,"name":"x"}"#,
            r#"{"stars":1,"name":"hit"}"#,
            r#"{"stars":1,"name":"x"}"#,
        ])
        .unwrap();
        let p0 = compile_clause(&parse_clause("stars = 5").unwrap()).unwrap();
        let p1 = compile_clause(&parse_clause(r#"name = "hit""#).unwrap()).unwrap();
        let filter = Prefilter::new([(0, p0), (1, p1)]).run_chunk(&c);

        let any = AdmissionPolicy::AnyPredicate
            .admission_mask(&filter)
            .unwrap();
        assert_eq!(any.ones_positions(), vec![0, 1, 2]);

        let coverage = AdmissionPolicy::from_coverage(&[vec![0, 1]])
            .admission_mask(&filter)
            .unwrap();
        assert!(coverage.is_subset_of(&any), "coverage admits a subset");
    }

    #[test]
    fn missing_bitvector_is_conservative() {
        let c = chunk();
        let filter = prefilter().run_chunk(&c); // only id 0 present
        let policy = AdmissionPolicy::from_coverage(&[vec![0, 7]]);
        assert!(policy.admission_mask(&filter).is_none(), "must admit all");
    }
}
