//! Property tests for the write-ahead log.
//!
//! Two families of invariants:
//!
//! 1. **Frame codec** — `encode` → `decode_payload` is the identity
//!    for arbitrary (seq, shard, chunk) records, and the frame header
//!    always describes its payload exactly.
//! 2. **Prefix property** — whatever a crash leaves of a segment
//!    (any truncation point, any single flipped byte), replay yields a
//!    *prefix* of the appended records: never an invented record,
//!    never a record out of order, and a reported corruption whenever
//!    bytes were dropped.
//! 3. **Repair** — after `repair_dir` runs on any damage, the next
//!    replay is clean: the damage never poisons a second recovery.

use ciao_columnar::io::crc32;
use ciao_storage::{repair_dir, replay_dir, ScratchDir, StorageConfig, SyncPolicy, Wal, WalRecord};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = WalRecord> {
    (
        any::<u64>(),
        0u32..64,
        prop::collection::vec(any::<u8>(), 0..200),
    )
        .prop_map(|(seq, shard, chunk)| WalRecord { seq, shard, chunk })
}

fn arb_records() -> impl Strategy<Value = Vec<WalRecord>> {
    prop::collection::vec(arb_record(), 1..24)
}

/// Append `records` into a fresh single-segment WAL and return the
/// segment's raw bytes alongside the scratch dir.
fn write_segment(records: &[WalRecord], sync: SyncPolicy) -> (ScratchDir, std::path::PathBuf) {
    let scratch = ScratchDir::new("walprop");
    let config = StorageConfig::new(scratch.path()).with_sync(sync);
    let mut wal = Wal::open(scratch.path(), &config, Vec::new());
    for r in records {
        wal.append(r).unwrap();
    }
    wal.sync().unwrap();
    let segment = std::fs::read_dir(scratch.path())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "log"))
        .expect("one segment");
    (scratch, segment)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn frame_roundtrips(record in arb_record()) {
        let frame = record.encode();
        // Header: little-endian payload length, then the payload CRC.
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
        prop_assert_eq!(frame.len(), 8 + len);
        prop_assert_eq!(crc, crc32(&frame[8..]));
        let back = WalRecord::decode_payload(&frame[8..]).expect("self-framed payload");
        prop_assert_eq!(back, record);
    }

    #[test]
    fn appended_records_replay_identically(
        records in arb_records(),
        every_n in 1u64..8,
        segment_bytes in 64usize..4096,
    ) {
        // Small segments force rotation mid-stream; the replay must be
        // oblivious to where the segment boundaries landed.
        let scratch = ScratchDir::new("walprop");
        let config = StorageConfig::new(scratch.path())
            .with_sync(SyncPolicy::EveryN(every_n))
            .with_segment_bytes(segment_bytes);
        let mut wal = Wal::open(scratch.path(), &config, Vec::new());
        for r in &records {
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();

        let replay = replay_dir(scratch.path()).unwrap();
        prop_assert!(replay.corruption.is_none());
        prop_assert_eq!(replay.dropped_bytes, 0);
        prop_assert_eq!(replay.records, records);
    }

    #[test]
    fn any_truncation_point_leaves_a_reported_prefix(
        records in arb_records(),
        cut_fraction in 0.0f64..1.0,
    ) {
        let (_scratch, segment) = write_segment(&records, SyncPolicy::Never);
        let len = std::fs::metadata(&segment).unwrap().len();
        let cut = (len as f64 * cut_fraction) as u64;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&segment)
            .unwrap()
            .set_len(cut)
            .unwrap();

        let replay = replay_dir(segment.parent().unwrap()).unwrap();
        // Whatever survived is an exact prefix of what was appended...
        prop_assert!(replay.records.len() <= records.len());
        prop_assert_eq!(&replay.records[..], &records[..replay.records.len()]);
        // ...and the bookkeeping adds up: every byte is either part of
        // a replayed frame or reported dropped, and a cut that landed
        // mid-frame is called out as corruption.
        let replayed_bytes: u64 = replay
            .records
            .iter()
            .map(|r| r.encode().len() as u64)
            .sum();
        prop_assert_eq!(replayed_bytes + replay.dropped_bytes, cut);
        prop_assert_eq!(replay.corruption.is_some(), replay.dropped_bytes > 0);
    }

    #[test]
    fn repair_makes_any_truncation_single_shot(
        records in arb_records(),
        cut_fraction in 0.0f64..1.0,
        extra in arb_records(),
    ) {
        let (scratch, segment) = write_segment(&records, SyncPolicy::Never);
        let len = std::fs::metadata(&segment).unwrap().len();
        let cut = (len as f64 * cut_fraction) as u64;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&segment)
            .unwrap()
            .set_len(cut)
            .unwrap();

        // First recovery: replay whatever prefix survived, repair the
        // damage in place, and resume a new writer life past it.
        let dir = scratch.path();
        let mut replay = replay_dir(dir).unwrap();
        let prefix = replay.records.clone();
        if replay.corruption.is_some() {
            repair_dir(dir, &mut replay).unwrap();
        }
        let config = StorageConfig::new(dir).with_sync(SyncPolicy::Never);
        let mut wal = Wal::open(dir, &config, replay.segments.clone());
        for r in &extra {
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        // Second recovery: the old tear is gone, nothing was dropped,
        // and the appended records follow the surviving prefix exactly.
        let second = replay_dir(dir).unwrap();
        prop_assert!(second.corruption.is_none(), "repair left damage: {:?}", second.corruption);
        prop_assert_eq!(second.dropped_bytes, 0);
        let mut expected = prefix;
        expected.extend(extra.iter().cloned());
        prop_assert_eq!(second.records, expected);
    }

    #[test]
    fn any_single_byte_flip_leaves_a_prefix(
        records in arb_records(),
        offset_fraction in 0.0f64..1.0,
    ) {
        let (_scratch, segment) = write_segment(&records, SyncPolicy::Always);
        let mut bytes = std::fs::read(&segment).unwrap();
        let offset = ((bytes.len() - 1) as f64 * offset_fraction) as usize;
        bytes[offset] ^= 0xFF;
        std::fs::write(&segment, &bytes).unwrap();

        let replay = replay_dir(segment.parent().unwrap()).unwrap();
        // The flip lands in exactly one frame; every frame before it
        // replays, nothing after it is trusted, and the damage is
        // reported. (A flipped byte can never *invent* a record: the
        // payload is CRC-guarded and the length field only moves the
        // frame boundary, which breaks the CRC instead.)
        prop_assert!(replay.records.len() < records.len());
        prop_assert_eq!(&replay.records[..], &records[..replay.records.len()]);
        prop_assert!(replay.corruption.is_some());
        prop_assert!(replay.dropped_bytes > 0);
    }
}
