//! The durable store: one WAL plus checkpoints, behind a single handle.
//!
//! [`Store::open`] recovers whatever the directory holds and returns
//! the [`Recovery`] for the service to rebuild shards from; the store
//! itself then owns the append path and the checkpoint protocol:
//!
//! * [`Store::append`] logs one acked ingest chunk (fsync per the
//!   configured [`SyncPolicy`](crate::SyncPolicy));
//! * [`Store::checkpoint`] — called with the queue drained, so every
//!   logged record below each shard's ceiling has been applied —
//!   rotates the WAL, writes one snapshot per shard, commits the
//!   manifest, prunes old snapshot generations, and truncates WAL
//!   segments no retained generation still needs.
//!
//! The truncation floor is the *minimum over shards of the oldest
//! retained generation's ceiling*: even after falling back a full
//! generation on every shard, the surviving WAL still covers the gap.

use crate::config::StorageConfig;
use crate::manifest::{self, Manifest, ManifestEntry};
use crate::recovery::{recover, Recovery};
use crate::snapshot::{list_snapshots, write_snapshot, ShardSnapshot};
use crate::wal::{Wal, WalRecord};
use crate::StorageError;
use std::path::Path;

/// What one checkpoint did (for telemetry and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Snapshot files written (one per shard).
    pub snapshots_written: usize,
    /// Old snapshot generations deleted by retention.
    pub generations_pruned: usize,
    /// WAL segment files deleted below the truncation floor.
    pub segments_deleted: usize,
    /// The truncation floor used (min retained ceiling over shards).
    pub floor: u64,
}

/// A recovered, writable durability handle for one service.
#[derive(Debug)]
pub struct Store {
    config: StorageConfig,
    shard_count: u32,
    wal: Wal,
}

impl Store {
    /// Recovers `config.dir` (creating it when new) and opens the
    /// append path. The returned [`Recovery`] carries the shard state
    /// and WAL tail the caller must apply before ingesting.
    pub fn open(
        config: StorageConfig,
        shard_count: u32,
    ) -> Result<(Store, Recovery), StorageError> {
        let recovery = recover(&config, shard_count)?;
        let wal = Wal::open(&config.dir, &config, recovery.segments.clone());
        Ok((
            Store {
                config,
                shard_count,
                wal,
            },
            recovery,
        ))
    }

    /// The storage directory.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Logs one acked chunk. When this returns under
    /// [`SyncPolicy::Always`](crate::SyncPolicy::Always), the chunk is
    /// on stable storage.
    pub fn append(&mut self, seq: u64, shard: u32, chunk: &[u8]) -> std::io::Result<()> {
        self.wal.append(&WalRecord {
            seq,
            shard,
            chunk: chunk.to_vec(),
        })
    }

    /// Forces an fsync of the active WAL segment.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.wal.sync()
    }

    /// Records appended over this handle's lifetime.
    pub fn wal_appends(&self) -> u64 {
        self.wal.appends
    }

    /// `fsync` calls issued by the append path.
    pub fn wal_syncs(&self) -> u64 {
        self.wal.syncs
    }

    /// Live WAL segment files (closed + active).
    pub fn wal_segments(&self) -> usize {
        self.wal.segment_count()
    }

    /// Commits a checkpoint: one snapshot per shard (callers pass
    /// exactly `shard_count` of them, queue drained), then the
    /// manifest, then retention pruning and WAL truncation.
    pub fn checkpoint(
        &mut self,
        snapshots: &[ShardSnapshot],
    ) -> Result<CheckpointStats, StorageError> {
        assert_eq!(
            snapshots.len(),
            self.shard_count as usize,
            "checkpoint requires one snapshot per shard"
        );
        let dir = self.config.dir.clone();
        let mut stats = CheckpointStats::default();

        // Seal the running WAL segment first: everything the snapshots
        // cover is now in closed segments, eligible for truncation.
        self.wal.rotate()?;

        let mut entries = Vec::with_capacity(snapshots.len());
        for snap in snapshots {
            let name = write_snapshot(&dir, snap)?;
            stats.snapshots_written += 1;
            entries.push(ManifestEntry {
                shard: snap.shard,
                epochs: snap.sealed_epochs,
                ceiling: snap.ceiling,
                file: name
                    .path
                    .file_name()
                    .expect("snapshot file name")
                    .to_string_lossy()
                    .into_owned(),
            });
        }
        manifest::store(
            &dir,
            &Manifest {
                shard_count: self.shard_count,
                entries,
            },
        )?;

        // Retention: keep the newest `retain_snapshots` generations
        // per shard; the floor is the min ceiling still retained.
        let retain = self.config.retain_snapshots;
        let all = list_snapshots(&dir)?;
        let mut floor = u64::MAX;
        for shard in 0..self.shard_count {
            let of_shard: Vec<_> = all.iter().filter(|s| s.shard == shard).collect();
            let cut = of_shard.len().saturating_sub(retain);
            for stale in &of_shard[..cut] {
                std::fs::remove_file(&stale.path)?;
                stats.generations_pruned += 1;
            }
            // Oldest retained generation bounds what replay may need.
            floor = floor.min(of_shard.get(cut).map_or(0, |s| s.ceiling));
        }
        if floor == u64::MAX {
            floor = 0; // no shards — nothing proves any record applied
        }
        stats.floor = floor;
        stats.segments_deleted = self.wal.truncate_below(floor)?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SyncPolicy;
    use crate::scratch::ScratchDir;
    use ciao::LoadStats;

    fn snap(shard: u32, epochs: u64, ceiling: u64) -> ShardSnapshot {
        ShardSnapshot {
            shard,
            sealed_epochs: epochs,
            ceiling,
            stats: LoadStats::default(),
            schema: None,
            blocks: Vec::new(),
            parked: Vec::new(),
        }
    }

    #[test]
    fn append_checkpoint_reopen_cycle() {
        let d = ScratchDir::new("store");
        let cfg = StorageConfig::new(d.path());
        let (mut store, r) = Store::open(cfg.clone(), 2).unwrap();
        assert_eq!(r.next_seq, 0);
        for seq in 0..6 {
            store
                .append(seq, (seq % 2) as u32, format!("c{seq}\n").as_bytes())
                .unwrap();
        }
        // Both shards applied everything logged so far.
        let stats = store.checkpoint(&[snap(0, 1, 6), snap(1, 1, 6)]).unwrap();
        assert_eq!(stats.snapshots_written, 2);
        // Post-checkpoint appends form the tail.
        for seq in 6..9 {
            store
                .append(seq, (seq % 2) as u32, format!("c{seq}\n").as_bytes())
                .unwrap();
        }
        drop(store);

        let (_store, r) = Store::open(cfg, 2).unwrap();
        assert!(r.report.clean(), "notes: {:?}", r.report.notes);
        assert_eq!(r.next_seq, 9);
        assert_eq!(r.tail_for(0).map(|x| x.seq).collect::<Vec<_>>(), vec![6, 8]);
        assert_eq!(r.tail_for(1).map(|x| x.seq).collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn retention_prunes_and_floor_respects_oldest_retained() {
        let d = ScratchDir::new("store");
        // Tiny segments so every record closes one; retain 2.
        let cfg = StorageConfig::new(d.path())
            .with_segment_bytes(1)
            .with_retain_snapshots(2);
        let (mut store, _) = Store::open(cfg, 1).unwrap();
        let mut pruned = 0;
        let mut last = CheckpointStats::default();
        for gen in 1..=4u64 {
            let upto = gen * 3;
            for seq in (gen - 1) * 3..upto {
                store.append(seq, 0, b"x").unwrap();
            }
            last = store.checkpoint(&[snap(0, gen, upto)]).unwrap();
            pruned += last.generations_pruned;
        }
        // 4 generations written, 2 retained.
        assert_eq!(pruned, 2);
        assert_eq!(list_snapshots(store.dir()).unwrap().len(), 2);
        // Oldest retained is generation 3 (ceiling 9): the floor must
        // not outrun it even though generation 4 reached 12.
        assert_eq!(last.floor, 9);
        // Fallback drill: delete the newest snapshot; generation 3
        // plus the surviving WAL tail must still cover seqs 9..12.
        let newest = list_snapshots(store.dir())
            .unwrap()
            .into_iter()
            .max_by_key(|s| s.epochs)
            .unwrap();
        std::fs::remove_file(&newest.path).unwrap();
        drop(store);
        let (_s, r) =
            Store::open(StorageConfig::new(d.path()).with_retain_snapshots(2), 1).unwrap();
        assert_eq!(r.shards[0].ceiling, 9);
        assert_eq!(
            r.tail_for(0).map(|x| x.seq).collect::<Vec<_>>(),
            vec![9, 10, 11],
            "WAL retained the fallback generation's tail"
        );
    }

    #[test]
    fn sync_counters_reflect_policy() {
        let d = ScratchDir::new("store");
        let cfg = StorageConfig::new(d.path()).with_sync(SyncPolicy::EveryN(3));
        let (mut store, _) = Store::open(cfg, 1).unwrap();
        for seq in 0..7 {
            store.append(seq, 0, b"x").unwrap();
        }
        assert_eq!(store.wal_appends(), 7);
        assert_eq!(store.wal_syncs(), 2);
        store.sync().unwrap();
        assert_eq!(store.wal_syncs(), 3);
    }
}
