//! # `ciao_storage` — durability for the CIAO service
//!
//! The paper's pipeline is an in-memory system: clients prefilter,
//! the server partially loads, queries run against RAM. This crate
//! adds the missing durability story so an ingest **ack means
//! something** across crashes:
//!
//! * [`wal`] — a segmented write-ahead chunk log. The unit of logging
//!   is the unit of acking (a raw NDJSON chunk plus its routing);
//!   frames are length-prefixed and CRC-checksummed, and the fsync
//!   cadence is the [`SyncPolicy`].
//! * [`snapshot`] — per-shard epoch-boundary images (sealed columnar
//!   blocks, parked records, stats, and the WAL ceiling they cover),
//!   written atomically via temp-file + rename.
//! * [`manifest`] — a CRC-tailed text file naming the newest snapshot
//!   per shard; the commit point of a checkpoint.
//! * [`recovery`] — restart logic: manifest → snapshots (falling back
//!   a generation per shard when files are missing or corrupt) → WAL
//!   tail replay, with every degradation surfaced in a
//!   [`RecoveryReport`] instead of a panic. WAL damage is *repaired*
//!   in place ([`repair_dir`]: truncate the torn segment, quarantine
//!   untrusted later ones) so a second unclean shutdown cannot re-drop
//!   records acked after the first recovery.
//! * [`store`] — the single handle a service owns: append on the hot
//!   path, [`Store::checkpoint`] at epoch boundaries (snapshots +
//!   manifest + retention pruning + WAL truncation).
//! * [`scratch`] — unique self-cleaning temp directories, shared by
//!   this crate's tests, the workspace test tree, and the durability
//!   benchmark.
//!
//! Invariant the whole design leans on: checkpoints run with the
//! ingest queue drained, so per shard the applied records form a
//! prefix of the logged ones — a single `ceiling` per shard fully
//! describes what the snapshot covers, and replay is simply "apply
//! logged records with `seq >= ceiling`".

#![warn(missing_docs)]

pub mod config;
pub mod manifest;
pub mod recovery;
pub mod scratch;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use config::{StorageConfig, SyncPolicy};
pub use recovery::{recover, RecoveredShard, Recovery, RecoveryReport};
pub use scratch::ScratchDir;
pub use snapshot::{list_snapshots, read_snapshot, write_snapshot, ShardSnapshot, SnapshotName};
pub use store::{CheckpointStats, Store};
pub use wal::{repair_dir, replay_dir, SegmentMeta, Wal, WalDamage, WalRecord, WalReplay};

/// Fsyncs a directory so renames, creations, and deletions inside it
/// survive power loss. Every durable-file path in this crate (WAL
/// segment creation, snapshot and manifest rename, WAL repair) must
/// persist the *directory entry*, not just the file data — a missing
/// dirent loses the whole file no matter how hard its blocks were
/// synced.
pub(crate) fn sync_dir(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// Errors surfaced by the durability layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// On-disk data failed validation (checksum, framing, format).
    Corrupt(String),
    /// The manifest was written under a different shard count;
    /// restarting with a new count would scramble routing.
    ShardCountMismatch {
        /// Shard count recorded in the manifest.
        manifest: u32,
        /// Shard count the service was started with.
        requested: u32,
    },
}

impl StorageError {
    pub(crate) fn corrupt(message: impl Into<String>) -> StorageError {
        StorageError::Corrupt(message.into())
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage i/o error: {e}"),
            StorageError::Corrupt(m) => write!(f, "storage corruption: {m}"),
            StorageError::ShardCountMismatch {
                manifest,
                requested,
            } => write!(
                f,
                "shard count mismatch: manifest was written for {manifest} shard(s), \
                 service requested {requested}"
            ),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> StorageError {
        StorageError::Io(e)
    }
}
