//! Per-shard epoch snapshots.
//!
//! A snapshot captures everything a shard has *applied*: the sealed
//! columnar table, the parked raw records, cumulative load stats, and
//! the WAL position (`ceiling`) all of it covers. Restoring the
//! snapshot and replaying WAL records with `seq >= ceiling` rebuilds
//! the shard exactly.
//!
//! On-disk layout: the magic `CIAOSNAP`, a version word, then CRC'd
//! pages framed by [`ciao_columnar::PageWriter`]:
//!
//! ```text
//! META    [shard u32][sealed_epochs u64][ceiling u64][4 × stat u64]
//! SCHEMA  columnar schema section            (omitted when no rows)
//! BLOCK   one columnar block section         (repeated)
//! PARKED  parked raw records, NDJSON
//! END     empty
//! ```
//!
//! The `END` page matters: the page layer alone cannot distinguish a
//! file truncated at an exact page boundary from a complete shorter
//! file, so a reader treats a missing `END` as corruption.
//!
//! Files are written to a temp name and renamed into place, so a
//! snapshot either exists whole or not at all; crash mid-write leaves
//! only a `.tmp` that recovery ignores.

use crate::StorageError;
use bytes::{BufMut, BytesMut};
use ciao::LoadStats;
use ciao_columnar::{
    read_block, read_schema, write_block, write_schema, Block, PageReader, PageWriter, Schema,
    Table,
};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"CIAOSNAP";
const VERSION: u32 = 1;

const PAGE_META: u8 = 1;
const PAGE_SCHEMA: u8 = 2;
const PAGE_BLOCK: u8 = 3;
const PAGE_PARKED: u8 = 4;
const PAGE_END: u8 = 5;

/// The durable image of one shard at an epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Shard index within the service.
    pub shard: u32,
    /// Epochs sealed into the table so far.
    pub sealed_epochs: u64,
    /// WAL watermark: every logged record with `seq < ceiling` is
    /// already applied here; replay resumes at `seq >= ceiling`.
    pub ceiling: u64,
    /// Cumulative load statistics at the boundary.
    pub stats: LoadStats,
    /// Schema of the sealed table (`None` when it has no rows).
    pub schema: Option<Arc<Schema>>,
    /// Sealed columnar blocks.
    pub blocks: Vec<Block>,
    /// Parked raw records awaiting just-in-time promotion.
    pub parked: Vec<String>,
}

impl ShardSnapshot {
    /// Rebuilds the sealed table.
    pub fn table(&self) -> Table {
        match &self.schema {
            Some(schema) => Table::from_blocks(Arc::clone(schema), self.blocks.clone()),
            None => Table::default(),
        }
    }

    /// Serializes the snapshot to its file image.
    pub fn encode(&self) -> Vec<u8> {
        let mut writer = PageWriter::new();

        let mut meta = BytesMut::with_capacity(52);
        meta.put_u32_le(self.shard);
        meta.put_u64_le(self.sealed_epochs);
        meta.put_u64_le(self.ceiling);
        for stat in [
            self.stats.loaded_records,
            self.stats.parked_records,
            self.stats.parse_errors,
            self.stats.coercion_failures,
        ] {
            meta.put_u64_le(stat as u64);
        }
        writer.page(PAGE_META, &meta);

        if let Some(schema) = &self.schema {
            let mut buf = BytesMut::new();
            write_schema(schema, &mut buf);
            writer.page(PAGE_SCHEMA, &buf);
            for block in &self.blocks {
                let mut buf = BytesMut::new();
                write_block(schema, block, &mut buf);
                writer.page(PAGE_BLOCK, &buf);
            }
        }

        let mut parked = Vec::new();
        for line in &self.parked {
            parked.extend_from_slice(line.as_bytes());
            parked.push(b'\n');
        }
        writer.page(PAGE_PARKED, &parked);
        writer.page(PAGE_END, &[]);

        let pages = writer.finish();
        let mut out = Vec::with_capacity(MAGIC.len() + 4 + pages.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&pages);
        out
    }

    /// Parses a snapshot file image, verifying magic, version, page
    /// checksums, and the terminal `END` page.
    pub fn decode(bytes: &[u8]) -> Result<ShardSnapshot, StorageError> {
        if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
            return Err(StorageError::corrupt("snapshot: bad magic"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(StorageError::corrupt(format!(
                "snapshot: unsupported version {version}"
            )));
        }

        let mut reader = PageReader::new(&bytes[12..]);
        let mut snapshot: Option<ShardSnapshot> = None;
        let mut ended = false;
        while let Some((kind, payload)) = reader
            .next_page()
            .map_err(|e| StorageError::corrupt(format!("snapshot page: {e}")))?
        {
            if ended {
                return Err(StorageError::corrupt("snapshot: pages after END"));
            }
            match kind {
                PAGE_META => {
                    if payload.len() != 52 {
                        return Err(StorageError::corrupt("snapshot: bad META size"));
                    }
                    let u64_at =
                        |off: usize| u64::from_le_bytes(payload[off..off + 8].try_into().unwrap());
                    snapshot = Some(ShardSnapshot {
                        shard: u32::from_le_bytes(payload[..4].try_into().unwrap()),
                        sealed_epochs: u64_at(4),
                        ceiling: u64_at(12),
                        stats: LoadStats {
                            loaded_records: u64_at(20) as usize,
                            parked_records: u64_at(28) as usize,
                            parse_errors: u64_at(36) as usize,
                            coercion_failures: u64_at(44) as usize,
                        },
                        schema: None,
                        blocks: Vec::new(),
                        parked: Vec::new(),
                    });
                }
                PAGE_SCHEMA => {
                    let snap = snapshot
                        .as_mut()
                        .ok_or_else(|| StorageError::corrupt("snapshot: SCHEMA before META"))?;
                    let mut buf = payload;
                    snap.schema = Some(
                        read_schema(&mut buf)
                            .map_err(|e| StorageError::corrupt(format!("snapshot schema: {e}")))?,
                    );
                }
                PAGE_BLOCK => {
                    let snap = snapshot
                        .as_mut()
                        .ok_or_else(|| StorageError::corrupt("snapshot: BLOCK before META"))?;
                    let schema = snap
                        .schema
                        .clone()
                        .ok_or_else(|| StorageError::corrupt("snapshot: BLOCK before SCHEMA"))?;
                    let mut buf = payload;
                    snap.blocks.push(
                        read_block(&schema, &mut buf)
                            .map_err(|e| StorageError::corrupt(format!("snapshot block: {e}")))?,
                    );
                }
                PAGE_PARKED => {
                    let snap = snapshot
                        .as_mut()
                        .ok_or_else(|| StorageError::corrupt("snapshot: PARKED before META"))?;
                    let text = std::str::from_utf8(payload)
                        .map_err(|_| StorageError::corrupt("snapshot: parked not UTF-8"))?;
                    snap.parked = text.lines().map(str::to_string).collect();
                }
                PAGE_END => ended = true,
                other => {
                    return Err(StorageError::corrupt(format!(
                        "snapshot: unknown page kind {other}"
                    )));
                }
            }
        }
        if !ended {
            return Err(StorageError::corrupt(
                "snapshot: missing END page (truncated file)",
            ));
        }
        snapshot.ok_or_else(|| StorageError::corrupt("snapshot: missing META page"))
    }
}

/// A parsed snapshot filename: `snap-s<shard>-e<epochs>-q<ceiling>.snap`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotName {
    /// Shard index.
    pub shard: u32,
    /// Sealed-epoch count at the boundary (orders generations).
    pub epochs: u64,
    /// WAL ceiling recorded in the name (readable without opening).
    pub ceiling: u64,
    /// Absolute path.
    pub path: PathBuf,
}

impl SnapshotName {
    fn file_name(shard: u32, epochs: u64, ceiling: u64) -> String {
        format!("snap-s{shard:04}-e{epochs:010}-q{ceiling:020}.snap")
    }

    fn parse(dir: &Path, name: &str) -> Option<SnapshotName> {
        let rest = name.strip_prefix("snap-s")?.strip_suffix(".snap")?;
        let (shard, rest) = rest.split_once("-e")?;
        let (epochs, ceiling) = rest.split_once("-q")?;
        Some(SnapshotName {
            shard: shard.parse().ok()?,
            epochs: epochs.parse().ok()?,
            ceiling: ceiling.parse().ok()?,
            path: dir.join(name),
        })
    }
}

/// Lists snapshot files in `dir`, sorted by (shard, epochs) so the
/// last entry per shard is its newest generation.
pub fn list_snapshots(dir: &Path) -> std::io::Result<Vec<SnapshotName>> {
    let mut found: Vec<SnapshotName> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .filter_map(|e| SnapshotName::parse(dir, &e.file_name().to_string_lossy()))
        .collect();
    found.sort_by_key(|s| (s.shard, s.epochs, s.ceiling));
    Ok(found)
}

/// Writes the snapshot atomically (temp file + fsync + rename) and
/// returns its parsed name.
pub fn write_snapshot(dir: &Path, snapshot: &ShardSnapshot) -> std::io::Result<SnapshotName> {
    let name = SnapshotName::file_name(snapshot.shard, snapshot.sealed_epochs, snapshot.ceiling);
    let final_path = dir.join(&name);
    let tmp_path = dir.join(format!("{name}.tmp"));
    let mut file = std::fs::File::create(&tmp_path)?;
    file.write_all(&snapshot.encode())?;
    file.sync_data()?;
    drop(file);
    std::fs::rename(&tmp_path, &final_path)?;
    // Persist the rename itself — and fail loudly if that is not
    // possible, since an unsynced dirent means the snapshot may not
    // exist after power loss even though the data blocks do.
    crate::sync_dir(dir)?;
    Ok(SnapshotName::parse(dir, &name).expect("self-generated name parses"))
}

/// Reads and decodes one snapshot file.
pub fn read_snapshot(path: &Path) -> Result<ShardSnapshot, StorageError> {
    let bytes = std::fs::read(path)?;
    ShardSnapshot::decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;
    use ciao_columnar::{DataType, Field, TableBuilder};
    use std::collections::BTreeMap;

    fn sample(shard: u32, epochs: u64, ceiling: u64, rows: usize) -> ShardSnapshot {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("level", DataType::Str),
                Field::new("code", DataType::Int),
            ])
            .unwrap(),
        );
        let mut tb = TableBuilder::with_block_size(Arc::clone(&schema), &[0], 3);
        for i in 0..rows {
            let rec = ciao_json::parse(&format!(r#"{{"level":"l{}","code":{i}}}"#, i % 2)).unwrap();
            tb.push_record(&rec, &BTreeMap::from([(0, i % 2 == 0)]));
        }
        let table = tb.finish();
        ShardSnapshot {
            shard,
            sealed_epochs: epochs,
            ceiling,
            stats: LoadStats {
                loaded_records: rows,
                parked_records: 2,
                parse_errors: 1,
                coercion_failures: 0,
            },
            schema: table.schema().map(|s| Arc::new(s.clone())),
            blocks: table.blocks().to_vec(),
            parked: vec![r#"{"raw":1}"#.to_string(), r#"{"raw":2}"#.to_string()],
        }
    }

    #[test]
    fn roundtrip_with_rows() {
        let snap = sample(3, 7, 42, 8);
        let back = ShardSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.table().row_count(), 8);
    }

    #[test]
    fn roundtrip_empty_shard() {
        let snap = ShardSnapshot {
            shard: 0,
            sealed_epochs: 0,
            ceiling: 0,
            stats: LoadStats::default(),
            schema: None,
            blocks: Vec::new(),
            parked: Vec::new(),
        };
        let back = ShardSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(back, snap);
        assert!(back.table().is_empty());
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = sample(0, 1, 5, 6).encode();
        // Every strict prefix must fail: mid-page cuts break the page
        // reader, exact page-boundary cuts lose the END marker.
        for cut in 0..bytes.len() {
            assert!(
                ShardSnapshot::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = sample(0, 1, 5, 6).encode();
        for &at in &[13, bytes.len() / 2, bytes.len() - 1] {
            let mut broken = bytes.clone();
            broken[at] ^= 0x20;
            assert!(
                ShardSnapshot::decode(&broken).is_err(),
                "flip at {at} went unnoticed"
            );
        }
    }

    #[test]
    fn atomic_write_and_listing() {
        let d = ScratchDir::new("snap");
        write_snapshot(d.path(), &sample(0, 1, 10, 4)).unwrap();
        write_snapshot(d.path(), &sample(0, 2, 20, 4)).unwrap();
        write_snapshot(d.path(), &sample(1, 1, 15, 4)).unwrap();
        let listed = list_snapshots(d.path()).unwrap();
        assert_eq!(listed.len(), 3);
        assert_eq!(
            listed
                .iter()
                .map(|s| (s.shard, s.epochs, s.ceiling))
                .collect::<Vec<_>>(),
            vec![(0, 1, 10), (0, 2, 20), (1, 1, 15)],
        );
        let back = read_snapshot(&listed[1].path).unwrap();
        assert_eq!(back.sealed_epochs, 2);
        assert_eq!(back.ceiling, 20);
    }

    #[test]
    fn tmp_files_are_not_listed() {
        let d = ScratchDir::new("snap");
        std::fs::write(d.path().join("snap-s0000-e1-q1.snap.tmp"), b"junk").unwrap();
        assert!(list_snapshots(d.path()).unwrap().is_empty());
    }
}
