//! Durability tunables.

use std::path::{Path, PathBuf};

/// When the write-ahead log is fsync'd relative to the ingest ack.
///
/// The ack a producer observes from the service is only as strong as
/// this policy: [`SyncPolicy::Always`] makes every ack durable,
/// [`SyncPolicy::EveryN`] bounds the loss window to the last `N - 1`
/// acked chunks, [`SyncPolicy::Never`] leaves flushing entirely to the
/// OS (a crash may lose anything the kernel had not written back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every append, before the ack. The only policy
    /// under which "acked" implies "survives `SIGKILL` + power loss".
    Always,
    /// `fsync` once every `N` appends (and on rotation, checkpoint,
    /// and clean shutdown). Amortizes the sync cost; a crash can lose
    /// up to the last `N - 1` acked chunks.
    EveryN(u64),
    /// Never `fsync` on the append path. Fastest; a crash loses
    /// whatever the OS page cache still held.
    Never,
}

impl SyncPolicy {
    /// Whether the `appends_since_sync`-th unsynced append must flush.
    pub(crate) fn due(&self, appends_since_sync: u64) -> bool {
        match self {
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => appends_since_sync >= (*n).max(1),
            SyncPolicy::Never => false,
        }
    }
}

/// Configuration for a durable store rooted at one directory.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Directory holding WAL segments, snapshots, and the manifest.
    /// Created (recursively) on open.
    pub dir: PathBuf,
    /// WAL fsync policy (see [`SyncPolicy`]).
    pub sync: SyncPolicy,
    /// Size threshold at which the active WAL segment is rotated.
    /// Only closed segments can be truncated away by checkpoints.
    pub segment_bytes: usize,
    /// Snapshot generations retained per shard (minimum 1). Keeping 2
    /// (the default) means a corrupt or deleted newest snapshot can
    /// fall back one generation — WAL truncation honors the oldest
    /// retained generation, so the fallback always has its tail.
    pub retain_snapshots: usize,
}

impl StorageConfig {
    /// A config rooted at `dir` with defaults: [`SyncPolicy::Always`],
    /// 4 MiB segments, 2 retained snapshot generations.
    pub fn new(dir: impl AsRef<Path>) -> StorageConfig {
        StorageConfig {
            dir: dir.as_ref().to_path_buf(),
            sync: SyncPolicy::Always,
            segment_bytes: 4 << 20,
            retain_snapshots: 2,
        }
    }

    /// Sets the fsync policy.
    pub fn with_sync(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }

    /// Sets the WAL segment rotation threshold.
    pub fn with_segment_bytes(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "segment size must be positive");
        self.segment_bytes = bytes;
        self
    }

    /// Sets the retained snapshot generations per shard (min 1).
    pub fn with_retain_snapshots(mut self, generations: usize) -> Self {
        assert!(generations > 0, "must retain at least one generation");
        self.retain_snapshots = generations;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_policy_due() {
        assert!(SyncPolicy::Always.due(1));
        assert!(!SyncPolicy::Never.due(1_000_000));
        assert!(!SyncPolicy::EveryN(8).due(7));
        assert!(SyncPolicy::EveryN(8).due(8));
        // EveryN(0) behaves like EveryN(1), not like Never.
        assert!(SyncPolicy::EveryN(0).due(1));
    }

    #[test]
    fn builder_chain() {
        let cfg = StorageConfig::new("/tmp/x")
            .with_sync(SyncPolicy::EveryN(4))
            .with_segment_bytes(1024)
            .with_retain_snapshots(3);
        assert_eq!(cfg.sync, SyncPolicy::EveryN(4));
        assert_eq!(cfg.segment_bytes, 1024);
        assert_eq!(cfg.retain_snapshots, 3);
    }
}
