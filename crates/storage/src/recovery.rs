//! Restart-time recovery.
//!
//! [`recover`] turns a storage directory back into per-shard state:
//!
//! 1. load the manifest (a broken one degrades to a directory scan —
//!    reported, never fatal);
//! 2. per shard, open the newest readable snapshot, falling back one
//!    generation at a time when a file is missing or corrupt, and to
//!    an empty shard (full WAL replay) when none survives;
//! 3. replay every intact WAL record; torn or checksum-broken tails
//!    are dropped, reported, and repaired on disk
//!    ([`repair_dir`](crate::wal::repair_dir)) so the hole cannot
//!    swallow segments a later service life appends.
//!
//! The only *hard* error besides I/O is a shard-count mismatch: a
//! checkpoint taken under `N` shards encodes routing decisions that a
//! different shard count would silently scramble.

use crate::config::StorageConfig;
use crate::manifest::{self, Manifest};
use crate::snapshot::{list_snapshots, read_snapshot, ShardSnapshot, SnapshotName};
use crate::wal::{repair_dir, replay_dir, SegmentMeta, WalRecord};
use crate::StorageError;

/// One shard's recovered starting point.
#[derive(Debug)]
pub struct RecoveredShard {
    /// Shard index.
    pub shard: u32,
    /// The snapshot to restore from (`None` → start empty).
    pub snapshot: Option<ShardSnapshot>,
    /// Replay WAL records for this shard with `seq >= ceiling`.
    pub ceiling: u64,
}

/// What recovery had to work around, for logs and tests.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Whether the manifest was present and valid.
    pub manifest_ok: bool,
    /// Shards that could not use the newest generation and fell back.
    pub snapshot_fallbacks: usize,
    /// Bytes dropped at/after the first corrupt or torn WAL frame.
    pub wal_dropped_bytes: u64,
    /// Description of the WAL corruption hit, if any.
    pub wal_corruption: Option<String>,
    /// Human-readable notes, one per degradation.
    pub notes: Vec<String>,
}

impl RecoveryReport {
    /// True when recovery used exactly what the last checkpoint wrote,
    /// with no fallback or dropped bytes.
    pub fn clean(&self) -> bool {
        self.notes.is_empty()
    }

    fn note(&mut self, text: String) {
        self.notes.push(text);
    }
}

/// Everything [`recover`] reconstructs.
#[derive(Debug)]
pub struct Recovery {
    /// Starting state for each shard (length = requested shard count).
    pub shards: Vec<RecoveredShard>,
    /// Intact WAL records in log order; each applies to the shard it
    /// names, and only when `seq >=` that shard's ceiling.
    pub tail: Vec<WalRecord>,
    /// Existing WAL segments (handed to the writer as closed history).
    pub segments: Vec<SegmentMeta>,
    /// First sequence number never observed durable — the ingest queue
    /// resumes here.
    pub next_seq: u64,
    /// What recovery had to work around.
    pub report: RecoveryReport,
}

impl Recovery {
    /// WAL records for `shard` at or above its ceiling, in log order.
    pub fn tail_for(&self, shard: u32) -> impl Iterator<Item = &WalRecord> {
        let ceiling = self.shards[shard as usize].ceiling;
        self.tail
            .iter()
            .filter(move |r| r.shard == shard && r.seq >= ceiling)
    }
}

/// Recovers shard state from `config.dir`, creating it when absent.
pub fn recover(config: &StorageConfig, shard_count: u32) -> Result<Recovery, StorageError> {
    let dir = &config.dir;
    std::fs::create_dir_all(dir)?;
    let mut report = RecoveryReport::default();

    let manifest: Manifest = match manifest::load(dir) {
        Ok(Some(m)) => {
            if m.shard_count != shard_count {
                return Err(StorageError::ShardCountMismatch {
                    manifest: m.shard_count,
                    requested: shard_count,
                });
            }
            report.manifest_ok = true;
            m
        }
        Ok(None) => {
            report.manifest_ok = true; // a fresh directory is clean
            Manifest {
                shard_count,
                entries: Vec::new(),
            }
        }
        Err(e) => {
            report.note(format!(
                "manifest unreadable ({e}); falling back to snapshot directory scan"
            ));
            Manifest {
                shard_count,
                entries: Vec::new(),
            }
        }
    };

    let scanned = list_snapshots(dir)?;
    let mut shards = Vec::with_capacity(shard_count as usize);
    for shard in 0..shard_count {
        shards.push(recover_shard(shard, &manifest, &scanned, &mut report));
    }

    let mut replay = replay_dir(dir)?;
    if let Some(damage) = &replay.corruption {
        report.wal_corruption = Some(damage.reason.clone());
        report.wal_dropped_bytes = replay.dropped_bytes;
        report.note(format!(
            "wal: dropped {} byte(s) after corruption: {}",
            replay.dropped_bytes, damage.reason
        ));
        // Repair before the writer reopens: truncate the hole away and
        // quarantine untrusted segments, so the *next* replay reads
        // straight through to whatever this service life appends. An
        // unrepaired hole would make a second crash drop post-recovery
        // segments wholesale — acked, fsync'd records included.
        for note in repair_dir(dir, &mut replay)? {
            report.note(note);
        }
    }

    let next_seq = replay
        .records
        .iter()
        .map(|r| r.seq + 1)
        .chain(shards.iter().map(|s| s.ceiling))
        .max()
        .unwrap_or(0);

    Ok(Recovery {
        shards,
        tail: replay.records,
        segments: replay.segments,
        next_seq,
        report,
    })
}

/// Picks the newest readable snapshot for one shard: the manifest's
/// choice first, then older scanned generations, then empty.
fn recover_shard(
    shard: u32,
    manifest: &Manifest,
    scanned: &[SnapshotName],
    report: &mut RecoveryReport,
) -> RecoveredShard {
    let preferred = manifest
        .entries
        .iter()
        .find(|e| e.shard == shard)
        .map(|e| e.file.clone());
    let is_preferred = |s: &SnapshotName| {
        preferred
            .as_deref()
            .is_some_and(|f| s.path.file_name().is_some_and(|n| *n == *f))
    };
    // Scanned names for this shard, newest generation first; the
    // manifest's pick leads when present.
    let mut candidates: Vec<&SnapshotName> = scanned.iter().filter(|s| s.shard == shard).collect();
    candidates.sort_by_key(|s| std::cmp::Reverse((s.epochs, s.ceiling)));
    candidates.sort_by_key(|s| !is_preferred(s));

    let total = candidates.len();
    for (i, candidate) in candidates.into_iter().enumerate() {
        match read_snapshot(&candidate.path) {
            Ok(snapshot) => {
                // A fallback is any outcome other than "used exactly
                // what the checkpoint committed": the manifest's pick
                // was skipped (corrupt) or is gone entirely, or — with
                // no manifest entry — a newer scan hit was unreadable.
                let fell_back = match &preferred {
                    Some(_) => !is_preferred(candidate),
                    None => i > 0,
                };
                if fell_back {
                    report.snapshot_fallbacks += 1;
                    report.note(format!(
                        "shard {shard}: fell back to {}",
                        candidate.path.display()
                    ));
                }
                let ceiling = snapshot.ceiling;
                return RecoveredShard {
                    shard,
                    snapshot: Some(snapshot),
                    ceiling,
                };
            }
            Err(e) => report.note(format!(
                "shard {shard}: snapshot {} unreadable ({e})",
                candidate.path.display()
            )),
        }
    }
    if total > 0 || preferred.is_some() {
        report.snapshot_fallbacks += 1;
        report.note(format!(
            "shard {shard}: no readable snapshot ({total} scanned, manifest entry {}); \
             rebuilding from WAL",
            if preferred.is_some() {
                "present"
            } else {
                "absent"
            }
        ));
    }
    RecoveredShard {
        shard,
        snapshot: None,
        ceiling: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::ManifestEntry;
    use crate::scratch::ScratchDir;
    use crate::snapshot::write_snapshot;
    use crate::wal::Wal;
    use ciao::LoadStats;

    fn empty_snap(shard: u32, epochs: u64, ceiling: u64) -> ShardSnapshot {
        ShardSnapshot {
            shard,
            sealed_epochs: epochs,
            ceiling,
            stats: LoadStats::default(),
            schema: None,
            blocks: Vec::new(),
            parked: Vec::new(),
        }
    }

    fn rec(seq: u64, shard: u32) -> WalRecord {
        WalRecord {
            seq,
            shard,
            chunk: format!("{{\"seq\":{seq}}}\n").into_bytes(),
        }
    }

    fn checkpoint(dir: &std::path::Path, shard_count: u32, snaps: &[ShardSnapshot]) {
        let mut entries = Vec::new();
        for s in snaps {
            let name = write_snapshot(dir, s).unwrap();
            entries.push(ManifestEntry {
                shard: s.shard,
                epochs: s.sealed_epochs,
                ceiling: s.ceiling,
                file: name
                    .path
                    .file_name()
                    .unwrap()
                    .to_string_lossy()
                    .into_owned(),
            });
        }
        manifest::store(
            dir,
            &Manifest {
                shard_count,
                entries,
            },
        )
        .unwrap();
    }

    #[test]
    fn fresh_directory_recovers_empty_and_clean() {
        let d = ScratchDir::new("rec");
        let cfg = StorageConfig::new(d.path());
        let r = recover(&cfg, 2).unwrap();
        assert!(r.report.clean());
        assert_eq!(r.shards.len(), 2);
        assert!(r.shards.iter().all(|s| s.snapshot.is_none()));
        assert_eq!(r.next_seq, 0);
        assert!(r.tail.is_empty());
    }

    #[test]
    fn snapshot_plus_tail_partition() {
        let d = ScratchDir::new("rec");
        let cfg = StorageConfig::new(d.path());
        // Checkpoint: shard 0 applied seqs 0..4 (ceiling 4), shard 1
        // applied 0..6 (ceiling 6). WAL holds 0..10.
        checkpoint(d.path(), 2, &[empty_snap(0, 1, 4), empty_snap(1, 1, 6)]);
        let mut wal = Wal::open(d.path(), &cfg, Vec::new());
        for seq in 0..10 {
            wal.append(&rec(seq, (seq % 2) as u32)).unwrap();
        }
        drop(wal);

        let r = recover(&cfg, 2).unwrap();
        assert!(r.report.clean(), "notes: {:?}", r.report.notes);
        assert_eq!(r.next_seq, 10);
        let s0: Vec<u64> = r.tail_for(0).map(|x| x.seq).collect();
        let s1: Vec<u64> = r.tail_for(1).map(|x| x.seq).collect();
        assert_eq!(s0, vec![4, 6, 8], "even seqs at or above ceiling 4");
        assert_eq!(s1, vec![7, 9], "odd seqs at or above ceiling 6");
    }

    #[test]
    fn shard_count_mismatch_is_a_hard_error() {
        let d = ScratchDir::new("rec");
        let cfg = StorageConfig::new(d.path());
        checkpoint(d.path(), 2, &[empty_snap(0, 1, 4)]);
        let err = recover(&cfg, 4).unwrap_err();
        assert!(matches!(
            err,
            StorageError::ShardCountMismatch {
                manifest: 2,
                requested: 4
            }
        ));
    }

    #[test]
    fn corrupt_manifest_degrades_to_scan() {
        let d = ScratchDir::new("rec");
        let cfg = StorageConfig::new(d.path());
        checkpoint(d.path(), 1, &[empty_snap(0, 2, 9)]);
        // Damage the manifest body.
        let path = d.path().join(crate::manifest::MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();

        let r = recover(&cfg, 1).unwrap();
        assert!(!r.report.manifest_ok);
        assert!(!r.report.clean());
        // The snapshot itself is still found by the scan.
        assert_eq!(r.shards[0].ceiling, 9);
        assert!(r.shards[0].snapshot.is_some());
    }

    #[test]
    fn deleted_newest_snapshot_falls_back_a_generation() {
        let d = ScratchDir::new("rec");
        let cfg = StorageConfig::new(d.path());
        // Two generations for shard 0; manifest names the newer.
        write_snapshot(d.path(), &empty_snap(0, 1, 3)).unwrap();
        checkpoint(d.path(), 1, &[empty_snap(0, 2, 7)]);
        // Delete the newest.
        let newest = list_snapshots(d.path())
            .unwrap()
            .into_iter()
            .max_by_key(|s| s.epochs)
            .unwrap();
        std::fs::remove_file(&newest.path).unwrap();

        let r = recover(&cfg, 1).unwrap();
        assert_eq!(r.report.snapshot_fallbacks, 1);
        assert_eq!(r.shards[0].ceiling, 3, "older generation's ceiling rules");
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_a_generation() {
        let d = ScratchDir::new("rec");
        let cfg = StorageConfig::new(d.path());
        write_snapshot(d.path(), &empty_snap(0, 1, 3)).unwrap();
        checkpoint(d.path(), 1, &[empty_snap(0, 2, 7)]);
        let newest = list_snapshots(d.path())
            .unwrap()
            .into_iter()
            .max_by_key(|s| s.epochs)
            .unwrap();
        let mut bytes = std::fs::read(&newest.path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest.path, &bytes).unwrap();

        let r = recover(&cfg, 1).unwrap();
        assert_eq!(r.report.snapshot_fallbacks, 1);
        assert_eq!(r.shards[0].ceiling, 3);
        assert!(r.report.notes.iter().any(|n| n.contains("unreadable")));
    }

    #[test]
    fn all_snapshots_gone_rebuilds_from_wal() {
        let d = ScratchDir::new("rec");
        let cfg = StorageConfig::new(d.path());
        checkpoint(d.path(), 1, &[empty_snap(0, 1, 5)]);
        for s in list_snapshots(d.path()).unwrap() {
            std::fs::remove_file(&s.path).unwrap();
        }
        let mut wal = Wal::open(d.path(), &cfg, Vec::new());
        for seq in 0..8 {
            wal.append(&rec(seq, 0)).unwrap();
        }
        drop(wal);

        let r = recover(&cfg, 1).unwrap();
        assert!(r.shards[0].snapshot.is_none());
        assert_eq!(r.shards[0].ceiling, 0);
        assert_eq!(r.tail_for(0).count(), 8, "full WAL replay");
        assert!(!r.report.clean());
    }

    #[test]
    fn second_recovery_keeps_records_acked_after_the_first() {
        let d = ScratchDir::new("rec");
        let cfg = StorageConfig::new(d.path());
        // Life 1 crashes mid-append: seqs 0..5 logged, the last frame
        // torn.
        let mut wal = Wal::open(d.path(), &cfg, Vec::new());
        for seq in 0..5 {
            wal.append(&rec(seq, 0)).unwrap();
        }
        drop(wal);
        let seg = replay_dir(d.path()).unwrap().segments[0].path.clone();
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 2]).unwrap();

        // Recovery 1 repairs; life 2 acks three more records and also
        // dies unclean.
        let r = recover(&cfg, 1).unwrap();
        assert_eq!(r.next_seq, 4);
        assert!(r.report.wal_corruption.is_some());
        let mut wal = Wal::open(d.path(), &cfg, r.segments);
        for seq in 4..7 {
            wal.append(&rec(seq, 0)).unwrap();
        }
        drop(wal);

        // Recovery 2 must see everything either life made durable —
        // without the repair it would stop at the life-1 hole and drop
        // life 2's segment wholesale.
        let r = recover(&cfg, 1).unwrap();
        assert!(r.report.wal_corruption.is_none(), "hole was repaired");
        assert_eq!(r.next_seq, 7);
        assert_eq!(
            r.tail_for(0).map(|x| x.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5, 6]
        );
    }

    #[test]
    fn wal_corruption_is_reported_not_fatal() {
        let d = ScratchDir::new("rec");
        let cfg = StorageConfig::new(d.path());
        let mut wal = Wal::open(d.path(), &cfg, Vec::new());
        for seq in 0..5 {
            wal.append(&rec(seq, 0)).unwrap();
        }
        drop(wal);
        // Tear the tail.
        let seg = replay_dir(d.path()).unwrap().segments[0].path.clone();
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 2]).unwrap();

        let r = recover(&cfg, 1).unwrap();
        assert_eq!(r.tail.len(), 4);
        assert_eq!(r.next_seq, 4, "the torn record was never durable");
        assert!(r.report.wal_corruption.is_some());
        assert!(r.report.wal_dropped_bytes > 0);
    }
}
