//! The segmented write-ahead chunk log.
//!
//! Ingest durability is chunk-granular: the unit a producer acks is a
//! whole [`RecordChunk`](ciao_json::RecordChunk), so that is the unit
//! the log records — raw NDJSON payload plus the routing the service
//! chose (`seq`, `shard`). Nothing derived (filter bitvectors, parsed
//! values) is logged; replay re-derives it with the same deterministic
//! prefilter, which keeps the log small and version-proof.
//!
//! On-disk frame, little-endian:
//!
//! ```text
//! [payload len u32][crc32(payload) u32][payload]
//! payload = [seq u64][shard u32][chunk NDJSON bytes…]
//! ```
//!
//! Segments are append-only files `wal-<id>.log`; the id only ever
//! grows, and a reopened log always starts a *fresh* segment — after a
//! crash the previous tail may be torn, and appending past a torn
//! frame would bury valid records behind garbage. Closed segments
//! whose highest seq falls below the checkpoint floor are deleted by
//! [`Wal::truncate_below`].

use crate::config::{StorageConfig, SyncPolicy};
use ciao_columnar::crc32;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Frame header: payload length + checksum.
const FRAME_HEADER: usize = 8;
/// Payload header: seq + shard.
const PAYLOAD_HEADER: usize = 12;
/// Sanity bound on a single record — a length prefix beyond this is
/// treated as a torn/corrupt tail, not an allocation request.
pub const MAX_RECORD_BYTES: usize = 256 << 20;

/// One logged ingest chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Service-lifetime enqueue sequence number.
    pub seq: u64,
    /// Shard the chunk was routed to at enqueue time.
    pub shard: u32,
    /// Raw NDJSON chunk payload.
    pub chunk: Vec<u8>,
}

impl WalRecord {
    /// Encodes the full frame (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let payload_len = PAYLOAD_HEADER + self.chunk.len();
        let mut out = Vec::with_capacity(FRAME_HEADER + payload_len);
        out.extend_from_slice(&(payload_len as u32).to_le_bytes());
        out.extend_from_slice(&[0; 4]); // crc placeholder
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.shard.to_le_bytes());
        out.extend_from_slice(&self.chunk);
        let crc = crc32(&out[FRAME_HEADER..]);
        out[4..8].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a checksummed payload (the bytes after the frame
    /// header). `None` when the payload is too short to carry its own
    /// header.
    pub fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
        if payload.len() < PAYLOAD_HEADER {
            return None;
        }
        Some(WalRecord {
            seq: u64::from_le_bytes(payload[..8].try_into().unwrap()),
            shard: u32::from_le_bytes(payload[8..12].try_into().unwrap()),
            chunk: payload[PAYLOAD_HEADER..].to_vec(),
        })
    }
}

/// What one on-disk segment holds (derived by scanning at open).
#[derive(Debug, Clone)]
pub struct SegmentMeta {
    /// Monotone segment id (the number in `wal-<id>.log`).
    pub id: u64,
    /// Absolute path.
    pub path: PathBuf,
    /// Highest record seq inside, `None` for an empty segment.
    pub max_seq: Option<u64>,
}

/// Everything a WAL directory scan recovers.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Every intact record, in (segment, offset) order.
    pub records: Vec<WalRecord>,
    /// Per-segment metadata (for the writer to resume around).
    pub segments: Vec<SegmentMeta>,
    /// Bytes abandoned at and after the first corrupt/torn frame.
    pub dropped_bytes: u64,
    /// Description of the first corruption hit, if any.
    pub corruption: Option<String>,
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("wal-{id:020}.log"))
}

fn parse_segment_id(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Scans `dir` for WAL segments and replays every intact record.
///
/// Replay is conservative: the first torn or checksum-broken frame
/// ends it — everything after (including later segments) is reported
/// as dropped rather than trusted, because a log with a hole in the
/// middle no longer proves anything about what follows.
pub fn replay_dir(dir: &Path) -> std::io::Result<WalReplay> {
    let mut ids: Vec<u64> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .filter_map(|e| parse_segment_id(&e.file_name().to_string_lossy()))
        .collect();
    ids.sort_unstable();

    let mut replay = WalReplay::default();
    for (i, &id) in ids.iter().enumerate() {
        let path = segment_path(dir, id);
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        let mut meta = SegmentMeta {
            id,
            path: path.clone(),
            max_seq: None,
        };

        let mut offset = 0usize;
        let corruption: Option<String> = loop {
            if offset == bytes.len() {
                break None;
            }
            let rest = &bytes[offset..];
            if rest.len() < FRAME_HEADER {
                break Some(format!(
                    "{}: torn frame header at offset {offset}",
                    path.display()
                ));
            }
            let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
            let expected = u32::from_le_bytes(rest[4..8].try_into().unwrap());
            if len > MAX_RECORD_BYTES {
                break Some(format!(
                    "{}: implausible record length {len} at offset {offset}",
                    path.display()
                ));
            }
            if rest.len() < FRAME_HEADER + len {
                break Some(format!(
                    "{}: torn record payload at offset {offset}",
                    path.display()
                ));
            }
            let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
            let actual = crc32(payload);
            if actual != expected {
                break Some(format!(
                    "{}: checksum mismatch at offset {offset} \
                     (header {expected:#010x}, payload {actual:#010x})",
                    path.display()
                ));
            }
            let Some(record) = WalRecord::decode_payload(payload) else {
                break Some(format!(
                    "{}: record at offset {offset} too short for its header",
                    path.display()
                ));
            };
            meta.max_seq = Some(meta.max_seq.map_or(record.seq, |m| m.max(record.seq)));
            replay.records.push(record);
            offset += FRAME_HEADER + len;
        };

        replay.segments.push(meta);
        if let Some(reason) = corruption {
            replay.dropped_bytes += (bytes.len() - offset) as u64;
            // Later segments cannot be trusted past a hole: count them
            // dropped wholesale.
            for &later in &ids[i + 1..] {
                let p = segment_path(dir, later);
                replay.dropped_bytes += std::fs::metadata(&p).map(|m| m.len()).unwrap_or(0);
                replay.segments.push(SegmentMeta {
                    id: later,
                    path: p,
                    max_seq: None,
                });
            }
            replay.corruption = Some(reason);
            break;
        }
    }
    Ok(replay)
}

/// The append side of the log.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    sync: SyncPolicy,
    segment_bytes: usize,
    /// Closed segments, oldest first.
    closed: Vec<SegmentMeta>,
    active: Option<ActiveSegment>,
    next_id: u64,
    appends_since_sync: u64,
    /// Records appended over this writer's lifetime.
    pub appends: u64,
    /// `fsync` calls issued by the append path.
    pub syncs: u64,
}

#[derive(Debug)]
struct ActiveSegment {
    meta: SegmentMeta,
    file: File,
    bytes: usize,
}

impl Wal {
    /// Opens the writer over a directory whose segments were already
    /// scanned by [`replay_dir`]. Existing segments are all treated as
    /// closed; the first append starts a fresh one.
    pub fn open(dir: &Path, config: &StorageConfig, existing: Vec<SegmentMeta>) -> Wal {
        let next_id = existing.iter().map(|s| s.id + 1).max().unwrap_or(0);
        Wal {
            dir: dir.to_path_buf(),
            sync: config.sync,
            segment_bytes: config.segment_bytes,
            closed: existing,
            active: None,
            next_id,
            appends_since_sync: 0,
            appends: 0,
            syncs: 0,
        }
    }

    /// Appends one record, rotating and syncing per policy. When this
    /// returns under [`SyncPolicy::Always`], the record is on stable
    /// storage.
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<()> {
        let frame = record.encode();
        if self
            .active
            .as_ref()
            .is_some_and(|a| a.bytes + frame.len() > self.segment_bytes && a.bytes > 0)
        {
            self.rotate()?;
        }
        if self.active.is_none() {
            let meta = SegmentMeta {
                id: self.next_id,
                path: segment_path(&self.dir, self.next_id),
                max_seq: None,
            };
            self.next_id += 1;
            let file = OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(&meta.path)?;
            self.active = Some(ActiveSegment {
                meta,
                file,
                bytes: 0,
            });
        }
        let active = self.active.as_mut().expect("just opened");
        active.file.write_all(&frame)?;
        active.bytes += frame.len();
        active.meta.max_seq = Some(
            active
                .meta
                .max_seq
                .map_or(record.seq, |m| m.max(record.seq)),
        );
        self.appends += 1;
        self.appends_since_sync += 1;
        if self.sync.due(self.appends_since_sync) {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces an fsync of the active segment (no-op when already
    /// clean).
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.appends_since_sync == 0 {
            return Ok(());
        }
        if let Some(active) = &mut self.active {
            active.file.sync_data()?;
            self.syncs += 1;
        }
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Closes the active segment (after syncing it) so it becomes
    /// eligible for truncation. The next append opens a new segment.
    pub fn rotate(&mut self) -> std::io::Result<()> {
        self.sync()?;
        if let Some(active) = self.active.take() {
            self.closed.push(active.meta);
        }
        Ok(())
    }

    /// Deletes closed segments every record of which has
    /// `seq < floor`. Returns how many files were removed.
    pub fn truncate_below(&mut self, floor: u64) -> std::io::Result<usize> {
        let mut deleted = 0;
        let mut kept = Vec::with_capacity(self.closed.len());
        for seg in self.closed.drain(..) {
            let disposable = seg.max_seq.is_none_or(|max| max < floor);
            if disposable {
                std::fs::remove_file(&seg.path)?;
                deleted += 1;
            } else {
                kept.push(seg);
            }
        }
        self.closed = kept;
        Ok(deleted)
    }

    /// Closed + active segment count (for observability and tests).
    pub fn segment_count(&self) -> usize {
        self.closed.len() + usize::from(self.active.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;

    fn rec(seq: u64, shard: u32, text: &str) -> WalRecord {
        WalRecord {
            seq,
            shard,
            chunk: text.as_bytes().to_vec(),
        }
    }

    fn open_wal(dir: &Path, cfg: &StorageConfig) -> Wal {
        let replay = replay_dir(dir).unwrap();
        Wal::open(dir, cfg, replay.segments)
    }

    #[test]
    fn append_replay_roundtrip() {
        let d = ScratchDir::new("wal");
        let cfg = StorageConfig::new(d.path());
        let mut wal = open_wal(d.path(), &cfg);
        let records: Vec<WalRecord> = (0..20)
            .map(|i| rec(i, (i % 3) as u32, &format!("{{\"i\":{i}}}")))
            .collect();
        for r in &records {
            wal.append(r).unwrap();
        }
        drop(wal);
        let replay = replay_dir(d.path()).unwrap();
        assert_eq!(replay.records, records);
        assert!(replay.corruption.is_none());
        assert_eq!(replay.dropped_bytes, 0);
    }

    #[test]
    fn reopen_starts_fresh_segment_and_preserves_history() {
        let d = ScratchDir::new("wal");
        let cfg = StorageConfig::new(d.path());
        let mut wal = open_wal(d.path(), &cfg);
        wal.append(&rec(0, 0, "a")).unwrap();
        drop(wal);
        let mut wal = open_wal(d.path(), &cfg);
        wal.append(&rec(1, 0, "b")).unwrap();
        drop(wal);
        let replay = replay_dir(d.path()).unwrap();
        assert_eq!(replay.segments.len(), 2, "one segment per writer life");
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1].chunk, b"b");
    }

    #[test]
    fn rotation_by_size_and_truncation_by_floor() {
        let d = ScratchDir::new("wal");
        // Tiny segments: every record rotates.
        let cfg = StorageConfig::new(d.path()).with_segment_bytes(8);
        let mut wal = open_wal(d.path(), &cfg);
        for i in 0..10 {
            wal.append(&rec(i, 0, "xxxxxxxxxxxxxxxx")).unwrap();
        }
        assert!(wal.segment_count() >= 10);
        wal.rotate().unwrap();
        // Floor 7: segments holding seqs 0..=6 go; 7, 8, 9 stay.
        let deleted = wal.truncate_below(7).unwrap();
        assert_eq!(deleted, 7);
        let replay = replay_dir(d.path()).unwrap();
        let seqs: Vec<u64> = replay.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
    }

    #[test]
    fn torn_tail_is_dropped_and_reported() {
        let d = ScratchDir::new("wal");
        let cfg = StorageConfig::new(d.path());
        let mut wal = open_wal(d.path(), &cfg);
        for i in 0..5 {
            wal.append(&rec(i, 0, "payload-payload")).unwrap();
        }
        drop(wal);
        // Tear 3 bytes off the single segment's tail.
        let seg = segment_path(d.path(), 0);
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();

        let replay = replay_dir(d.path()).unwrap();
        assert_eq!(replay.records.len(), 4, "only the torn record is lost");
        assert!(replay.corruption.as_deref().unwrap().contains("torn"));
        assert!(replay.dropped_bytes > 0);
    }

    #[test]
    fn checksum_flip_stops_replay_at_the_flip() {
        let d = ScratchDir::new("wal");
        let cfg = StorageConfig::new(d.path());
        let mut wal = open_wal(d.path(), &cfg);
        for i in 0..5 {
            wal.append(&rec(i, 0, "payload-payload")).unwrap();
        }
        drop(wal);
        let seg = segment_path(d.path(), 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        // Flip a payload byte in the middle record (frame 2 of 5).
        let frame = bytes.len() / 5;
        bytes[2 * frame + FRAME_HEADER + PAYLOAD_HEADER + 1] ^= 0x40;
        std::fs::write(&seg, &bytes).unwrap();

        let replay = replay_dir(d.path()).unwrap();
        assert_eq!(replay.records.len(), 2, "replay stops before the flip");
        assert!(replay
            .corruption
            .as_deref()
            .unwrap()
            .contains("checksum mismatch"));
        assert_eq!(replay.dropped_bytes, 3 * frame as u64);
    }

    #[test]
    fn corruption_poisons_later_segments_too() {
        let d = ScratchDir::new("wal");
        let cfg = StorageConfig::new(d.path()).with_segment_bytes(8);
        let mut wal = open_wal(d.path(), &cfg);
        for i in 0..4 {
            wal.append(&rec(i, 0, "sixteen-byte-rec")).unwrap();
        }
        drop(wal);
        // Corrupt segment 1 of 4: segments 2 and 3 must not be
        // trusted either — a hole breaks the prefix property.
        let seg = segment_path(d.path(), 1);
        let mut bytes = std::fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&seg, &bytes).unwrap();

        let replay = replay_dir(d.path()).unwrap();
        let seqs: Vec<u64> = replay.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0], "only the pre-hole prefix survives");
        assert!(replay.corruption.is_some());
    }

    #[test]
    fn implausible_length_is_corruption_not_allocation() {
        let d = ScratchDir::new("wal");
        let seg = segment_path(d.path(), 0);
        let mut bytes = (u32::MAX - 7).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 12]);
        std::fs::write(&seg, &bytes).unwrap();
        let replay = replay_dir(d.path()).unwrap();
        assert!(replay.records.is_empty());
        assert!(replay
            .corruption
            .as_deref()
            .unwrap()
            .contains("implausible record length"));
    }

    #[test]
    fn sync_policy_counts_syncs() {
        let d = ScratchDir::new("wal");
        let cfg = StorageConfig::new(d.path()).with_sync(SyncPolicy::EveryN(4));
        let mut wal = open_wal(d.path(), &cfg);
        for i in 0..10 {
            wal.append(&rec(i, 0, "x")).unwrap();
        }
        assert_eq!(wal.syncs, 2, "10 appends / every-4 = 2 due syncs");
        wal.sync().unwrap();
        assert_eq!(wal.syncs, 3, "explicit sync flushes the remainder");
        wal.sync().unwrap();
        assert_eq!(wal.syncs, 3, "clean log does not re-sync");
    }
}
