//! The segmented write-ahead chunk log.
//!
//! Ingest durability is chunk-granular: the unit a producer acks is a
//! whole [`RecordChunk`](ciao_json::RecordChunk), so that is the unit
//! the log records — raw NDJSON payload plus the routing the service
//! chose (`seq`, `shard`). Nothing derived (filter bitvectors, parsed
//! values) is logged; replay re-derives it with the same deterministic
//! prefilter, which keeps the log small and version-proof.
//!
//! On-disk frame, little-endian:
//!
//! ```text
//! [payload len u32][crc32(payload) u32][payload]
//! payload = [seq u64][shard u32][chunk NDJSON bytes…]
//! ```
//!
//! Segments are append-only files `wal-<id>.log`; the id only ever
//! grows, and a reopened log always starts a *fresh* segment — after a
//! crash the previous tail may be torn, and appending past a torn
//! frame would bury valid records behind garbage. Closed segments
//! whose highest seq falls below the checkpoint floor are deleted by
//! [`Wal::truncate_below`].
//!
//! Damage found by a replay must be **repaired** before the writer
//! reopens ([`repair_dir`]): the corrupt segment is truncated to its
//! intact prefix and any later (untrusted) segments are quarantined as
//! `*.corrupt`. Without the repair, the next replay would stop at the
//! same old hole and drop every segment written *after* the first
//! recovery — losing records that were acked and fsync'd in the
//! meantime. Two unclean shutdowns in a row are the normal WAL torture
//! case, so recovery always repairs.

use crate::config::{StorageConfig, SyncPolicy};
use crate::sync_dir;
use ciao_columnar::crc32;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Frame header: payload length + checksum.
const FRAME_HEADER: usize = 8;
/// Payload header: seq + shard.
const PAYLOAD_HEADER: usize = 12;
/// Sanity bound on a single record — a length prefix beyond this is
/// treated as a torn/corrupt tail, not an allocation request.
pub const MAX_RECORD_BYTES: usize = 256 << 20;

/// One logged ingest chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Service-lifetime enqueue sequence number.
    pub seq: u64,
    /// Shard the chunk was routed to at enqueue time.
    pub shard: u32,
    /// Raw NDJSON chunk payload.
    pub chunk: Vec<u8>,
}

impl WalRecord {
    /// Encodes the full frame (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let payload_len = PAYLOAD_HEADER + self.chunk.len();
        let mut out = Vec::with_capacity(FRAME_HEADER + payload_len);
        out.extend_from_slice(&(payload_len as u32).to_le_bytes());
        out.extend_from_slice(&[0; 4]); // crc placeholder
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.shard.to_le_bytes());
        out.extend_from_slice(&self.chunk);
        let crc = crc32(&out[FRAME_HEADER..]);
        out[4..8].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a checksummed payload (the bytes after the frame
    /// header). `None` when the payload is too short to carry its own
    /// header.
    pub fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
        if payload.len() < PAYLOAD_HEADER {
            return None;
        }
        Some(WalRecord {
            seq: u64::from_le_bytes(payload[..8].try_into().unwrap()),
            shard: u32::from_le_bytes(payload[8..12].try_into().unwrap()),
            chunk: payload[PAYLOAD_HEADER..].to_vec(),
        })
    }
}

/// What one on-disk segment holds (derived by scanning at open).
#[derive(Debug, Clone)]
pub struct SegmentMeta {
    /// Monotone segment id (the number in `wal-<id>.log`).
    pub id: u64,
    /// Absolute path.
    pub path: PathBuf,
    /// Highest record seq inside, `None` for an empty segment.
    pub max_seq: Option<u64>,
}

/// The damage a replay found — everything [`repair_dir`] needs to make
/// the hole single-shot instead of permanent.
#[derive(Debug, Clone)]
pub struct WalDamage {
    /// Human-readable description of the first corrupt/torn frame.
    pub reason: String,
    /// Id of the segment holding that frame.
    pub segment_id: u64,
    /// Length of the segment's intact prefix (every replayed byte).
    pub valid_bytes: u64,
    /// Ids of later segments replay refused to trust (a hole breaks
    /// the prefix property for everything behind it).
    pub poisoned: Vec<u64>,
}

/// Everything a WAL directory scan recovers.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Every intact record, in (segment, offset) order.
    pub records: Vec<WalRecord>,
    /// Per-segment metadata (for the writer to resume around).
    pub segments: Vec<SegmentMeta>,
    /// Bytes abandoned at and after the first corrupt/torn frame.
    pub dropped_bytes: u64,
    /// The first corruption hit, if any.
    pub corruption: Option<WalDamage>,
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("wal-{id:020}.log"))
}

fn parse_segment_id(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Scans `dir` for WAL segments and replays every intact record.
///
/// Replay is conservative: the first torn or checksum-broken frame
/// ends it — everything after (including later segments) is reported
/// as dropped rather than trusted, because a log with a hole in the
/// middle no longer proves anything about what follows.
pub fn replay_dir(dir: &Path) -> std::io::Result<WalReplay> {
    let mut ids: Vec<u64> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .filter_map(|e| parse_segment_id(&e.file_name().to_string_lossy()))
        .collect();
    ids.sort_unstable();

    let mut replay = WalReplay::default();
    for (i, &id) in ids.iter().enumerate() {
        let path = segment_path(dir, id);
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        let mut meta = SegmentMeta {
            id,
            path: path.clone(),
            max_seq: None,
        };

        let mut offset = 0usize;
        let corruption: Option<String> = loop {
            if offset == bytes.len() {
                break None;
            }
            let rest = &bytes[offset..];
            if rest.len() < FRAME_HEADER {
                break Some(format!(
                    "{}: torn frame header at offset {offset}",
                    path.display()
                ));
            }
            let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
            let expected = u32::from_le_bytes(rest[4..8].try_into().unwrap());
            if len > MAX_RECORD_BYTES {
                break Some(format!(
                    "{}: implausible record length {len} at offset {offset}",
                    path.display()
                ));
            }
            if rest.len() < FRAME_HEADER + len {
                break Some(format!(
                    "{}: torn record payload at offset {offset}",
                    path.display()
                ));
            }
            let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
            let actual = crc32(payload);
            if actual != expected {
                break Some(format!(
                    "{}: checksum mismatch at offset {offset} \
                     (header {expected:#010x}, payload {actual:#010x})",
                    path.display()
                ));
            }
            let Some(record) = WalRecord::decode_payload(payload) else {
                break Some(format!(
                    "{}: record at offset {offset} too short for its header",
                    path.display()
                ));
            };
            meta.max_seq = Some(meta.max_seq.map_or(record.seq, |m| m.max(record.seq)));
            replay.records.push(record);
            offset += FRAME_HEADER + len;
        };

        replay.segments.push(meta);
        if let Some(reason) = corruption {
            replay.dropped_bytes += (bytes.len() - offset) as u64;
            // Later segments cannot be trusted past a hole: count them
            // dropped wholesale.
            for &later in &ids[i + 1..] {
                let p = segment_path(dir, later);
                replay.dropped_bytes += std::fs::metadata(&p).map(|m| m.len()).unwrap_or(0);
                replay.segments.push(SegmentMeta {
                    id: later,
                    path: p,
                    max_seq: None,
                });
            }
            replay.corruption = Some(WalDamage {
                reason,
                segment_id: id,
                valid_bytes: offset as u64,
                poisoned: ids[i + 1..].to_vec(),
            });
            break;
        }
    }
    Ok(replay)
}

/// Repairs the damage a replay found so the *next* replay no longer
/// stops at the same hole: the corrupt segment is truncated to its
/// intact prefix and every poisoned later segment is renamed to
/// `wal-<id>.log.corrupt` (quarantined — invisible to replay, kept on
/// disk for inspection until the next checkpoint truncation cleans it
/// up). The directory is fsync'd so the repair itself is durable.
///
/// Mutates `replay.segments` to match the disk: quarantined metas keep
/// their id (the writer's `next_id` stays monotone) but point at the
/// `.corrupt` path with no `max_seq`, so [`Wal::truncate_below`]
/// deletes them at the first checkpoint.
///
/// Returns one human-readable note per file touched; no-op (empty
/// notes) when the replay was clean.
pub fn repair_dir(dir: &Path, replay: &mut WalReplay) -> std::io::Result<Vec<String>> {
    let Some(damage) = replay.corruption.clone() else {
        return Ok(Vec::new());
    };
    let mut notes = Vec::new();
    let torn = segment_path(dir, damage.segment_id);
    let file = OpenOptions::new().write(true).open(&torn)?;
    file.set_len(damage.valid_bytes)?;
    file.sync_data()?;
    notes.push(format!(
        "wal: truncated {} to its {} intact byte(s)",
        torn.display(),
        damage.valid_bytes
    ));
    for &id in &damage.poisoned {
        let from = segment_path(dir, id);
        let to = dir.join(format!("wal-{id:020}.log.corrupt"));
        std::fs::rename(&from, &to)?;
        if let Some(meta) = replay.segments.iter_mut().find(|m| m.id == id) {
            meta.path = to.clone();
        }
        notes.push(format!(
            "wal: quarantined untrusted segment as {}",
            to.display()
        ));
    }
    sync_dir(dir)?;
    Ok(notes)
}

/// The append side of the log.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    sync: SyncPolicy,
    segment_bytes: usize,
    /// Closed segments, oldest first.
    closed: Vec<SegmentMeta>,
    active: Option<ActiveSegment>,
    next_id: u64,
    appends_since_sync: u64,
    /// Records appended over this writer's lifetime.
    pub appends: u64,
    /// `fsync` calls issued by the append path.
    pub syncs: u64,
}

#[derive(Debug)]
struct ActiveSegment {
    meta: SegmentMeta,
    file: File,
    bytes: usize,
}

impl Wal {
    /// Opens the writer over a directory whose segments were already
    /// scanned by [`replay_dir`]. Existing segments are all treated as
    /// closed; the first append starts a fresh one.
    pub fn open(dir: &Path, config: &StorageConfig, existing: Vec<SegmentMeta>) -> Wal {
        let next_id = existing.iter().map(|s| s.id + 1).max().unwrap_or(0);
        Wal {
            dir: dir.to_path_buf(),
            sync: config.sync,
            segment_bytes: config.segment_bytes,
            closed: existing,
            active: None,
            next_id,
            appends_since_sync: 0,
            appends: 0,
            syncs: 0,
        }
    }

    /// Appends one record, rotating and syncing per policy. When this
    /// returns under [`SyncPolicy::Always`], the record is on stable
    /// storage.
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<()> {
        let frame = record.encode();
        if self
            .active
            .as_ref()
            .is_some_and(|a| a.bytes + frame.len() > self.segment_bytes && a.bytes > 0)
        {
            self.rotate()?;
        }
        if self.active.is_none() {
            let meta = SegmentMeta {
                id: self.next_id,
                path: segment_path(&self.dir, self.next_id),
                max_seq: None,
            };
            self.next_id += 1;
            let file = OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(&meta.path)?;
            // Make the directory entry itself durable: without this a
            // power loss can erase the whole freshly created segment —
            // records acked under `SyncPolicy::Always` included — even
            // though the file's data blocks were fsync'd.
            sync_dir(&self.dir)?;
            self.active = Some(ActiveSegment {
                meta,
                file,
                bytes: 0,
            });
        }
        let active = self.active.as_mut().expect("just opened");
        active.file.write_all(&frame)?;
        active.bytes += frame.len();
        active.meta.max_seq = Some(
            active
                .meta
                .max_seq
                .map_or(record.seq, |m| m.max(record.seq)),
        );
        self.appends += 1;
        self.appends_since_sync += 1;
        if self.sync.due(self.appends_since_sync) {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces an fsync of the active segment (no-op when already
    /// clean).
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.appends_since_sync == 0 {
            return Ok(());
        }
        if let Some(active) = &mut self.active {
            active.file.sync_data()?;
            self.syncs += 1;
        }
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Closes the active segment (after syncing it) so it becomes
    /// eligible for truncation. The next append opens a new segment.
    pub fn rotate(&mut self) -> std::io::Result<()> {
        self.sync()?;
        if let Some(active) = self.active.take() {
            self.closed.push(active.meta);
        }
        Ok(())
    }

    /// Deletes closed segments every record of which has
    /// `seq < floor`. Returns how many files were removed.
    ///
    /// On a removal error the failing segment and everything after it
    /// stay in the closed list, so a later truncation retries them
    /// instead of leaking the files on disk forever.
    pub fn truncate_below(&mut self, floor: u64) -> std::io::Result<usize> {
        let mut deleted = 0;
        let mut kept = Vec::with_capacity(self.closed.len());
        let mut error = None;
        for seg in self.closed.drain(..) {
            let disposable = seg.max_seq.is_none_or(|max| max < floor);
            if disposable && error.is_none() {
                match std::fs::remove_file(&seg.path) {
                    Ok(()) => deleted += 1,
                    Err(e) => {
                        error = Some(e);
                        kept.push(seg);
                    }
                }
            } else {
                kept.push(seg);
            }
        }
        self.closed = kept;
        match error {
            Some(e) => Err(e),
            None => Ok(deleted),
        }
    }

    /// Closed + active segment count (for observability and tests).
    pub fn segment_count(&self) -> usize {
        self.closed.len() + usize::from(self.active.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;

    fn rec(seq: u64, shard: u32, text: &str) -> WalRecord {
        WalRecord {
            seq,
            shard,
            chunk: text.as_bytes().to_vec(),
        }
    }

    fn open_wal(dir: &Path, cfg: &StorageConfig) -> Wal {
        let replay = replay_dir(dir).unwrap();
        Wal::open(dir, cfg, replay.segments)
    }

    #[test]
    fn append_replay_roundtrip() {
        let d = ScratchDir::new("wal");
        let cfg = StorageConfig::new(d.path());
        let mut wal = open_wal(d.path(), &cfg);
        let records: Vec<WalRecord> = (0..20)
            .map(|i| rec(i, (i % 3) as u32, &format!("{{\"i\":{i}}}")))
            .collect();
        for r in &records {
            wal.append(r).unwrap();
        }
        drop(wal);
        let replay = replay_dir(d.path()).unwrap();
        assert_eq!(replay.records, records);
        assert!(replay.corruption.is_none());
        assert_eq!(replay.dropped_bytes, 0);
    }

    #[test]
    fn reopen_starts_fresh_segment_and_preserves_history() {
        let d = ScratchDir::new("wal");
        let cfg = StorageConfig::new(d.path());
        let mut wal = open_wal(d.path(), &cfg);
        wal.append(&rec(0, 0, "a")).unwrap();
        drop(wal);
        let mut wal = open_wal(d.path(), &cfg);
        wal.append(&rec(1, 0, "b")).unwrap();
        drop(wal);
        let replay = replay_dir(d.path()).unwrap();
        assert_eq!(replay.segments.len(), 2, "one segment per writer life");
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1].chunk, b"b");
    }

    #[test]
    fn rotation_by_size_and_truncation_by_floor() {
        let d = ScratchDir::new("wal");
        // Tiny segments: every record rotates.
        let cfg = StorageConfig::new(d.path()).with_segment_bytes(8);
        let mut wal = open_wal(d.path(), &cfg);
        for i in 0..10 {
            wal.append(&rec(i, 0, "xxxxxxxxxxxxxxxx")).unwrap();
        }
        assert!(wal.segment_count() >= 10);
        wal.rotate().unwrap();
        // Floor 7: segments holding seqs 0..=6 go; 7, 8, 9 stay.
        let deleted = wal.truncate_below(7).unwrap();
        assert_eq!(deleted, 7);
        let replay = replay_dir(d.path()).unwrap();
        let seqs: Vec<u64> = replay.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
    }

    #[test]
    fn torn_tail_is_dropped_and_reported() {
        let d = ScratchDir::new("wal");
        let cfg = StorageConfig::new(d.path());
        let mut wal = open_wal(d.path(), &cfg);
        for i in 0..5 {
            wal.append(&rec(i, 0, "payload-payload")).unwrap();
        }
        drop(wal);
        // Tear 3 bytes off the single segment's tail.
        let seg = segment_path(d.path(), 0);
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();

        let replay = replay_dir(d.path()).unwrap();
        assert_eq!(replay.records.len(), 4, "only the torn record is lost");
        let damage = replay.corruption.as_ref().unwrap();
        assert!(damage.reason.contains("torn"));
        assert_eq!(damage.segment_id, 0);
        assert!(damage.poisoned.is_empty());
        assert!(replay.dropped_bytes > 0);
    }

    #[test]
    fn checksum_flip_stops_replay_at_the_flip() {
        let d = ScratchDir::new("wal");
        let cfg = StorageConfig::new(d.path());
        let mut wal = open_wal(d.path(), &cfg);
        for i in 0..5 {
            wal.append(&rec(i, 0, "payload-payload")).unwrap();
        }
        drop(wal);
        let seg = segment_path(d.path(), 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        // Flip a payload byte in the middle record (frame 2 of 5).
        let frame = bytes.len() / 5;
        bytes[2 * frame + FRAME_HEADER + PAYLOAD_HEADER + 1] ^= 0x40;
        std::fs::write(&seg, &bytes).unwrap();

        let replay = replay_dir(d.path()).unwrap();
        assert_eq!(replay.records.len(), 2, "replay stops before the flip");
        let damage = replay.corruption.as_ref().unwrap();
        assert!(damage.reason.contains("checksum mismatch"));
        assert_eq!(damage.valid_bytes, 2 * frame as u64);
        assert_eq!(replay.dropped_bytes, 3 * frame as u64);
    }

    #[test]
    fn corruption_poisons_later_segments_too() {
        let d = ScratchDir::new("wal");
        let cfg = StorageConfig::new(d.path()).with_segment_bytes(8);
        let mut wal = open_wal(d.path(), &cfg);
        for i in 0..4 {
            wal.append(&rec(i, 0, "sixteen-byte-rec")).unwrap();
        }
        drop(wal);
        // Corrupt segment 1 of 4: segments 2 and 3 must not be
        // trusted either — a hole breaks the prefix property.
        let seg = segment_path(d.path(), 1);
        let mut bytes = std::fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&seg, &bytes).unwrap();

        let replay = replay_dir(d.path()).unwrap();
        let seqs: Vec<u64> = replay.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0], "only the pre-hole prefix survives");
        let damage = replay.corruption.as_ref().unwrap();
        assert_eq!(damage.segment_id, 1);
        assert_eq!(damage.poisoned, vec![2, 3]);
    }

    #[test]
    fn repair_makes_a_torn_tail_single_shot() {
        let d = ScratchDir::new("wal");
        let cfg = StorageConfig::new(d.path());
        let mut wal = open_wal(d.path(), &cfg);
        for i in 0..5 {
            wal.append(&rec(i, 0, "payload-payload")).unwrap();
        }
        drop(wal);
        // Crash 1 tears the tail.
        let seg = segment_path(d.path(), 0);
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();

        // Recovery 1: replay, repair, append new (acked) records.
        let mut replay = replay_dir(d.path()).unwrap();
        assert_eq!(replay.records.len(), 4);
        let notes = repair_dir(d.path(), &mut replay).unwrap();
        assert_eq!(notes.len(), 1, "one truncation, nothing quarantined");
        let mut wal = Wal::open(d.path(), &cfg, replay.segments);
        for i in 4..8 {
            wal.append(&rec(i, 0, "post-crash")).unwrap();
        }
        drop(wal);

        // Crash 2 (unclean again): the old hole must not swallow the
        // post-repair segment.
        let replay = replay_dir(d.path()).unwrap();
        assert!(replay.corruption.is_none(), "the hole was repaired");
        let seqs: Vec<u64> = replay.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn repair_quarantines_poisoned_segments_until_truncation() {
        let d = ScratchDir::new("wal");
        let cfg = StorageConfig::new(d.path()).with_segment_bytes(8);
        let mut wal = open_wal(d.path(), &cfg);
        for i in 0..4 {
            wal.append(&rec(i, 0, "sixteen-byte-rec")).unwrap();
        }
        drop(wal);
        // A hole in segment 1 poisons segments 2 and 3.
        let seg = segment_path(d.path(), 1);
        let mut bytes = std::fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&seg, &bytes).unwrap();

        let mut replay = replay_dir(d.path()).unwrap();
        let notes = repair_dir(d.path(), &mut replay).unwrap();
        assert_eq!(notes.len(), 3, "one truncation + two quarantines");
        let quarantined: Vec<PathBuf> = std::fs::read_dir(d.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.to_string_lossy().ends_with(".corrupt"))
            .collect();
        assert_eq!(quarantined.len(), 2, "poisoned files kept for inspection");

        // The repaired log replays its surviving prefix and keeps
        // accepting appends past the (former) hole.
        let mut wal = Wal::open(d.path(), &cfg, replay.segments);
        assert!(wal.next_id >= 4, "quarantined ids are not reused");
        wal.append(&rec(1, 0, "sixteen-byte-rec")).unwrap();
        wal.rotate().unwrap();
        let replay = replay_dir(d.path()).unwrap();
        assert!(replay.corruption.is_none());
        assert_eq!(
            replay.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1]
        );
        // A checkpoint truncation past everything cleans the
        // quarantine files up (their metas have no max_seq).
        wal.truncate_below(u64::MAX).unwrap();
        for q in &quarantined {
            assert!(!q.exists(), "{} should be gone", q.display());
        }
    }

    #[test]
    fn truncate_error_keeps_undeleted_segments_tracked() {
        let d = ScratchDir::new("wal");
        let cfg = StorageConfig::new(d.path()).with_segment_bytes(8);
        let mut wal = open_wal(d.path(), &cfg);
        for i in 0..3 {
            wal.append(&rec(i, 0, "sixteen-byte-rec")).unwrap();
        }
        wal.rotate().unwrap();
        assert_eq!(wal.segment_count(), 3);
        // Sabotage segment 1: replace the file with a non-empty
        // directory so remove_file fails mid-truncation.
        let seg1 = segment_path(d.path(), 1);
        std::fs::remove_file(&seg1).unwrap();
        std::fs::create_dir(&seg1).unwrap();
        std::fs::write(seg1.join("x"), b"x").unwrap();

        let err = wal.truncate_below(u64::MAX);
        assert!(err.is_err(), "removal of a directory must fail");
        // Segment 0 was deleted; 1 (failed) and 2 (never reached) must
        // still be tracked so a retry can delete them.
        assert_eq!(wal.segment_count(), 2);
        std::fs::remove_dir_all(&seg1).unwrap();
        std::fs::write(&seg1, b"").unwrap();
        assert_eq!(wal.truncate_below(u64::MAX).unwrap(), 2);
        assert_eq!(wal.segment_count(), 0);
    }

    #[test]
    fn implausible_length_is_corruption_not_allocation() {
        let d = ScratchDir::new("wal");
        let seg = segment_path(d.path(), 0);
        let mut bytes = (u32::MAX - 7).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 12]);
        std::fs::write(&seg, &bytes).unwrap();
        let replay = replay_dir(d.path()).unwrap();
        assert!(replay.records.is_empty());
        assert!(replay
            .corruption
            .as_ref()
            .unwrap()
            .reason
            .contains("implausible record length"));
    }

    #[test]
    fn sync_policy_counts_syncs() {
        let d = ScratchDir::new("wal");
        let cfg = StorageConfig::new(d.path()).with_sync(SyncPolicy::EveryN(4));
        let mut wal = open_wal(d.path(), &cfg);
        for i in 0..10 {
            wal.append(&rec(i, 0, "x")).unwrap();
        }
        assert_eq!(wal.syncs, 2, "10 appends / every-4 = 2 due syncs");
        wal.sync().unwrap();
        assert_eq!(wal.syncs, 3, "explicit sync flushes the remainder");
        wal.sync().unwrap();
        assert_eq!(wal.syncs, 3, "clean log does not re-sync");
    }
}
