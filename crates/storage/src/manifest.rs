//! The checkpoint manifest.
//!
//! A small, human-readable text file (`MANIFEST`) naming the newest
//! snapshot per shard and the shard count it was written for. The last
//! line is a CRC of everything above it, so a torn or hand-damaged
//! manifest is *detected* rather than trusted — recovery then falls
//! back to scanning the snapshot directory directly.
//!
//! ```text
//! ciao-manifest v1
//! shards 2
//! shard 0 epochs 3 ceiling 120 file snap-s0000-…​.snap
//! shard 1 epochs 3 ceiling 117 file snap-s0001-…​.snap
//! crc 89ab01cd
//! ```
//!
//! Written with the same temp-file + rename + directory-fsync dance as
//! snapshots: the manifest on disk is always a complete generation.

use crate::StorageError;
use ciao_columnar::crc32;
use std::io::Write;
use std::path::Path;

/// Manifest file name inside the storage directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// One shard's newest checkpoint, as recorded by the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Shard index.
    pub shard: u32,
    /// Sealed epochs at the checkpoint.
    pub epochs: u64,
    /// WAL replay resumes at this seq for the shard.
    pub ceiling: u64,
    /// Snapshot file name (relative to the storage dir).
    pub file: String,
}

/// The durable checkpoint record for a whole service.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Shard count the checkpoint was taken under. Recovery refuses a
    /// mismatched count — resharding is not a restart-time operation.
    pub shard_count: u32,
    /// Newest snapshot per shard that had one (sorted by shard).
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    fn render(&self) -> String {
        let mut text = String::from("ciao-manifest v1\n");
        text.push_str(&format!("shards {}\n", self.shard_count));
        for e in &self.entries {
            text.push_str(&format!(
                "shard {} epochs {} ceiling {} file {}\n",
                e.shard, e.epochs, e.ceiling, e.file
            ));
        }
        text.push_str(&format!("crc {:08x}\n", crc32(text.as_bytes())));
        text
    }

    fn parse(text: &str) -> Result<Manifest, StorageError> {
        let body_end = text
            .rfind("crc ")
            .ok_or_else(|| StorageError::corrupt("manifest: missing crc line"))?;
        let (body, crc_line) = text.split_at(body_end);
        let stated = crc_line
            .trim()
            .strip_prefix("crc ")
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| StorageError::corrupt("manifest: malformed crc line"))?;
        let actual = crc32(body.as_bytes());
        if stated != actual {
            return Err(StorageError::corrupt(format!(
                "manifest: crc mismatch (stated {stated:08x}, actual {actual:08x})"
            )));
        }

        let mut lines = body.lines();
        if lines.next() != Some("ciao-manifest v1") {
            return Err(StorageError::corrupt("manifest: bad header"));
        }
        let shard_count = lines
            .next()
            .and_then(|l| l.strip_prefix("shards "))
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| StorageError::corrupt("manifest: bad shards line"))?;
        let mut entries = Vec::new();
        for line in lines {
            let mut words = line.split_whitespace();
            let parsed = (|| {
                let mut expect =
                    |tag: &str| -> Option<&str> { (words.next()? == tag).then(|| words.next())? };
                Some(ManifestEntry {
                    shard: expect("shard")?.parse().ok()?,
                    epochs: expect("epochs")?.parse().ok()?,
                    ceiling: expect("ceiling")?.parse().ok()?,
                    file: expect("file")?.to_string(),
                })
            })();
            entries.push(parsed.ok_or_else(|| {
                StorageError::corrupt(format!("manifest: bad entry line {line:?}"))
            })?);
        }
        Ok(Manifest {
            shard_count,
            entries,
        })
    }
}

/// Atomically replaces the manifest on disk.
pub fn store(dir: &Path, manifest: &Manifest) -> std::io::Result<()> {
    let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(manifest.render().as_bytes())?;
    file.sync_data()?;
    drop(file);
    std::fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
    // The manifest is the checkpoint's commit point: the rename must
    // be durable before the WAL below the new floor may be truncated.
    crate::sync_dir(dir)?;
    Ok(())
}

/// Loads the manifest. `Ok(None)` when none was ever written; `Err`
/// when one exists but fails validation (callers degrade to a
/// directory scan and report it).
pub fn load(dir: &Path) -> Result<Option<Manifest>, StorageError> {
    let path = dir.join(MANIFEST_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    Manifest::parse(&text).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;

    fn sample() -> Manifest {
        Manifest {
            shard_count: 2,
            entries: vec![
                ManifestEntry {
                    shard: 0,
                    epochs: 3,
                    ceiling: 120,
                    file: "snap-s0000-e0000000003-q00000000000000000120.snap".into(),
                },
                ManifestEntry {
                    shard: 1,
                    epochs: 3,
                    ceiling: 117,
                    file: "snap-s0001-e0000000003-q00000000000000000117.snap".into(),
                },
            ],
        }
    }

    #[test]
    fn store_load_roundtrip() {
        let d = ScratchDir::new("manifest");
        store(d.path(), &sample()).unwrap();
        assert_eq!(load(d.path()).unwrap(), Some(sample()));
    }

    #[test]
    fn missing_is_none() {
        let d = ScratchDir::new("manifest");
        assert_eq!(load(d.path()).unwrap(), None);
    }

    #[test]
    fn store_replaces_previous_generation() {
        let d = ScratchDir::new("manifest");
        store(d.path(), &Manifest::default()).unwrap();
        store(d.path(), &sample()).unwrap();
        assert_eq!(load(d.path()).unwrap(), Some(sample()));
    }

    #[test]
    fn any_byte_flip_is_rejected() {
        let d = ScratchDir::new("manifest");
        store(d.path(), &sample()).unwrap();
        let path = d.path().join(MANIFEST_FILE);
        let clean = std::fs::read(&path).unwrap();
        // Every byte except the trailing newline after the crc digits,
        // which carries no information.
        for at in 0..clean.len() - 1 {
            let mut broken = clean.clone();
            broken[at] ^= 0x01;
            std::fs::write(&path, &broken).unwrap();
            assert!(
                load(d.path()).is_err(),
                "flip at byte {at} passed validation"
            );
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let d = ScratchDir::new("manifest");
        store(d.path(), &sample()).unwrap();
        let path = d.path().join(MANIFEST_FILE);
        let clean = std::fs::read(&path).unwrap();
        std::fs::write(&path, &clean[..clean.len() / 2]).unwrap();
        assert!(load(d.path()).is_err());
    }
}
