//! Unique, self-cleaning scratch directories.
//!
//! Every storage test (and the durability benchmark) needs a private
//! directory: a fixed path collides the moment two test binaries — or
//! two parallel tests in one binary — run at once. [`ScratchDir`]
//! derives a unique path from the process id, a process-local counter,
//! and the wall clock, creates it eagerly, and removes it on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp dir, deleted
/// (recursively) when dropped.
#[derive(Debug)]
pub struct ScratchDir {
    path: PathBuf,
    /// Keep the tree after drop (e.g. to export a CI artifact).
    keep: bool,
}

impl ScratchDir {
    /// Creates `"$TMPDIR/ciao-<prefix>-<pid>-<n>-<nanos>"`.
    pub fn new(prefix: &str) -> ScratchDir {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.subsec_nanos());
        let path = std::env::temp_dir().join(format!(
            "ciao-{prefix}-{}-{}-{nanos}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&path).expect("create scratch dir");
        ScratchDir { path, keep: false }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Disables cleanup so the tree outlives the handle.
    pub fn keep(&mut self) {
        self.keep = true;
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        if !self.keep {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_created_and_cleaned() {
        let a = ScratchDir::new("t");
        let b = ScratchDir::new("t");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        std::fs::write(kept.join("f"), b"x").unwrap();
        drop(a);
        assert!(!kept.exists(), "dropped scratch dir is removed");
        assert!(b.path().is_dir(), "sibling untouched");
    }

    #[test]
    fn keep_survives_drop() {
        let mut d = ScratchDir::new("keep");
        d.keep();
        let path = d.path().to_path_buf();
        drop(d);
        assert!(path.is_dir());
        std::fs::remove_dir_all(path).unwrap();
    }
}
