//! The load-bearing invariant of the whole system (paper §IV-B):
//!
//! > if we cannot find the pattern strings in a JSON object, this JSON
//! > object is not valid to the corresponding predicate.
//!
//! Equivalently: `typed_eval(p, record) == true` ⟹
//! `raw_match(compile(p), serialize(record)) == true`, for every
//! supported predicate and every record. False positives are fine;
//! false negatives are forbidden. We drive this with proptest over
//! randomly generated flat records and predicates derived from them.

use ciao_client::raw_eval::CompiledClause;
use ciao_json::{to_string, JsonValue};
use ciao_predicate::{compile_clause, eval_clause, Clause, SimplePredicate};
use proptest::prelude::*;

/// Flat records shaped like CIAO's datasets: string/int/bool/null
/// fields with machine-ish keys and values.
fn arb_record() -> impl Strategy<Value = JsonValue> {
    let key = "[a-z][a-z_]{0,8}";
    let scalar = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::from),
        (-1000i64..1000).prop_map(JsonValue::from),
        // Includes quotes, backslashes, newlines, and unicode so the
        // escaped-pattern compilation is genuinely exercised.
        "[a-zA-Z0-9 ,:\\.\\-\"\\\\\n\té😀]{0,24}".prop_map(JsonValue::from),
        // Nested object to exercise the multi-occurrence key search.
        prop::collection::vec(("[a-z]{1,4}", (-99i64..99).prop_map(JsonValue::from)), 0..3)
            .prop_map(JsonValue::Object),
    ];
    prop::collection::vec((key, scalar), 1..8).prop_map(JsonValue::Object)
}

/// A pushable predicate derived from the record (so that hits are
/// common) or random (so that misses are common too).
fn arb_predicate(record: JsonValue) -> impl Strategy<Value = (JsonValue, SimplePredicate)> {
    let keys: Vec<String> = record
        .as_object()
        .unwrap()
        .iter()
        .map(|(k, _)| k.clone())
        .collect();
    let key_strategy = prop::sample::select(keys);
    (
        Just(record),
        key_strategy,
        0..5u8,
        "[a-zA-Z0-9 ]{0,6}",
        -1000i64..1000,
        any::<bool>(),
    )
        .prop_map(|(record, key, kind, s, i, b)| {
            // Half the time, steal the record's actual value so the
            // predicate really matches (exercising the implication's
            // antecedent, not just vacuous truth).
            let actual = record.get(&key).cloned();
            let pred = match kind {
                0 => {
                    let value = match &actual {
                        Some(JsonValue::String(v)) => v.clone(),
                        _ => s.clone(),
                    };
                    SimplePredicate::StrEq { key, value }
                }
                1 => {
                    let needle = match &actual {
                        Some(JsonValue::String(v)) if !v.is_empty() => {
                            let half = v.len() / 2;
                            let mut end = half.max(1).min(v.len());
                            while !v.is_char_boundary(end) {
                                end += 1;
                            }
                            v[..end].to_owned()
                        }
                        _ => s.clone(),
                    };
                    SimplePredicate::StrContains { key, needle }
                }
                2 => SimplePredicate::NotNull { key },
                3 => {
                    let value = match &actual {
                        Some(v) => v.as_i64().unwrap_or(i),
                        None => i,
                    };
                    SimplePredicate::IntEq { key, value }
                }
                _ => {
                    let value = match &actual {
                        Some(v) => v.as_bool().unwrap_or(b),
                        None => b,
                    };
                    SimplePredicate::BoolEq { key, value }
                }
            };
            (record, pred)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn raw_match_never_false_negative(
        (record, pred) in arb_record().prop_flat_map(arb_predicate)
    ) {
        prop_assume!(pred.is_pushable());
        let clause = Clause::single(pred.clone());
        let typed = eval_clause(&clause, &record);
        if typed {
            let pattern = compile_clause(&clause).expect("pushable clause compiles");
            let raw = CompiledClause::new(&pattern);
            let text = to_string(&record);
            prop_assert!(
                raw.is_match(text.as_bytes()),
                "FALSE NEGATIVE: predicate {pred} matched typed record {text} but raw match failed"
            );
        }
    }

    #[test]
    fn disjunction_never_false_negative(
        (record, p1) in arb_record().prop_flat_map(arb_predicate),
        other_value in "[a-z]{1,6}",
    ) {
        prop_assume!(p1.is_pushable());
        let p2 = SimplePredicate::StrEq { key: "zzz_none".into(), value: other_value };
        let clause = Clause::new(vec![p1, p2]);
        if eval_clause(&clause, &record) {
            let pattern = compile_clause(&clause).unwrap();
            let text = to_string(&record);
            prop_assert!(CompiledClause::new(&pattern).is_match(text.as_bytes()));
        }
    }
}

/// Deterministic regression corpus for the same invariant.
#[test]
fn corpus_no_false_negatives() {
    let cases: Vec<(&str, SimplePredicate)> = vec![
        (
            r#"{"name":"Bob"}"#,
            SimplePredicate::StrEq {
                key: "name".into(),
                value: "Bob".into(),
            },
        ),
        (
            r#"{"person":{"age":99},"age":10}"#,
            SimplePredicate::IntEq {
                key: "age".into(),
                value: 10,
            },
        ),
        (
            r#"{"a":1,"flag":true}"#,
            SimplePredicate::BoolEq {
                key: "flag".into(),
                value: true,
            },
        ),
        (
            r#"{"text":"pretty delicious pie"}"#,
            SimplePredicate::StrContains {
                key: "text".into(),
                needle: "delicious".into(),
            },
        ),
        (
            r#"{"email":"a@b.c"}"#,
            SimplePredicate::NotNull {
                key: "email".into(),
            },
        ),
        // Value is the final member: the key-value window runs to EOR.
        (
            r#"{"x":"y","stars":5}"#,
            SimplePredicate::IntEq {
                key: "stars".into(),
                value: 5,
            },
        ),
    ];
    for (text, pred) in cases {
        let record = ciao_json::parse(text).unwrap();
        let clause = Clause::single(pred.clone());
        assert!(
            eval_clause(&clause, &record),
            "case should match typed: {pred} on {text}"
        );
        let pattern = compile_clause(&clause).unwrap();
        assert!(
            CompiledClause::new(&pattern).is_match(text.as_bytes()),
            "false negative for {pred} on {text}"
        );
    }
}
