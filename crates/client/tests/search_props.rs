//! Differential property tests for the SWAR substring kernel: on every
//! input, `Finder::find_from` (SWAR anchor scan + Horspool verify),
//! `Finder::find_from_scalar` (pure Horspool), and a naive
//! `windows()` reference must return the *same* offset — not just
//! agree on match/no-match. The SWAR mask is allowed false-positive
//! candidate lanes, never false negatives, and verification must erase
//! the difference entirely.

use ciao_client::Finder;
use proptest::prelude::*;

/// The naive reference: first window equal to the needle at or after
/// `start`. For the empty needle every position matches, including the
/// one-past-the-end position — the convention `str::find` uses and
/// `Finder` documents.
fn naive_find_from(needle: &[u8], haystack: &[u8], start: usize) -> Option<usize> {
    if needle.is_empty() {
        return (start <= haystack.len()).then_some(start);
    }
    if start > haystack.len() || haystack.len() - start < needle.len() {
        return None;
    }
    haystack[start..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + start)
}

/// Low-entropy byte strings so matches and near-matches are common;
/// `\\` and quotes keep the escaped-JSON shapes in play.
fn arb_bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![
            prop::sample::select(b"ab\"\\,:{}\x00\xff".to_vec()),
            any::<u8>(),
        ],
        0..=max,
    )
}

fn check_all_offsets(needle: &[u8], haystack: &[u8]) -> Result<(), TestCaseError> {
    let finder = Finder::new(needle);
    for start in 0..=haystack.len() + 1 {
        let expected = naive_find_from(needle, haystack, start);
        prop_assert_eq!(
            finder.find_from(haystack, start),
            expected,
            "SWAR path diverged: needle {:?} haystack {:?} start {}",
            needle,
            haystack,
            start
        );
        prop_assert_eq!(
            finder.find_from_scalar(haystack, start),
            expected,
            "scalar path diverged: needle {:?} haystack {:?} start {}",
            needle,
            haystack,
            start
        );
    }
    Ok(())
}

proptest! {
    /// Random needle, random haystack: all three implementations agree
    /// at every start offset.
    #[test]
    fn swar_scalar_and_naive_agree(
        needle in arb_bytes(12),
        haystack in arb_bytes(200),
    ) {
        check_all_offsets(&needle, &haystack)?;
    }

    /// Needle planted into the haystack so true matches are guaranteed,
    /// including flush against the end.
    #[test]
    fn planted_needles_are_found(
        needle in arb_bytes(10),
        mut haystack in arb_bytes(120),
        plant_at_end in any::<bool>(),
        seed in 0usize..100,
    ) {
        if plant_at_end {
            haystack.extend_from_slice(&needle);
        } else {
            let at = seed % (haystack.len() + 1);
            for (i, &b) in needle.iter().enumerate() {
                if at + i < haystack.len() {
                    haystack[at + i] = b;
                }
            }
        }
        check_all_offsets(&needle, &haystack)?;
    }

    /// The degenerate shapes the dispatch special-cases: empty needle
    /// (matches everywhere, even on the empty haystack) and a needle
    /// longer than the haystack (never matches).
    #[test]
    fn degenerate_needles(haystack in arb_bytes(40)) {
        check_all_offsets(b"", &haystack)?;
        let mut long = haystack.clone();
        long.extend_from_slice(b"x");
        check_all_offsets(&long, &haystack)?;
    }

    /// Haystack lengths straddling the SWAR word boundary and the
    /// SWAR_MIN_HAYSTACK dispatch threshold (the off-by-one territory:
    /// the SWAR loop bound must leave the last full window reachable).
    #[test]
    fn word_boundary_lengths(
        needle in arb_bytes(9),
        fill in any::<u8>(),
        len in prop::sample::select(vec![0usize, 1, 7, 8, 9, 15, 16, 17, 23, 24, 25, 63, 64, 65]),
    ) {
        let mut haystack = vec![fill; len];
        if !needle.is_empty() && len >= needle.len() {
            let at = len - needle.len();
            haystack[at..].copy_from_slice(&needle);
        }
        check_all_offsets(&needle, &haystack)?;
    }
}
