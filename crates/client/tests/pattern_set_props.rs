//! Differential property tests for the batched multi-pattern engine:
//! [`PatternSet::eval`] over a random clause mix must be bit-identical
//! to evaluating each clause's [`CompiledClause`] independently — the
//! one-pass bucket scan, the SWAR anchor masks, the early exit, and
//! the empty-needle/empty-key special cases may change *cost*, never
//! *answers*.

use ciao_client::raw_eval::CompiledClause;
use ciao_client::PatternSet;
use ciao_predicate::{ClausePattern, Pattern};
use proptest::prelude::*;

/// Needles/keys drawn from a tiny alphabet so anchors collide across
/// atoms and buckets hold several entries; empties included (the
/// always-match and scalar-fallback paths).
fn arb_token() -> impl Strategy<Value = String> {
    prop_oneof![
        "[ab\"]{1,6}".prop_map(String::from),
        "[ab\"]{1,6}".prop_map(String::from),
        "[ab\"]{1,6}".prop_map(String::from),
        Just(String::new()),
    ]
}

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        arb_token().prop_map(|needle| Pattern::Find { needle }),
        (arb_token(), arb_token()).prop_map(|(key, value)| Pattern::KeyThenValue { key, value }),
    ]
}

/// A clause is a disjunction of 1–3 patterns (IN-lists compile to
/// several disjuncts).
fn arb_clause() -> impl Strategy<Value = ClausePattern> {
    prop::collection::vec(arb_pattern(), 1..=3).prop_map(|patterns| ClausePattern { patterns })
}

/// Records over the same alphabet, with JSON structure bytes mixed in
/// so `KeyThenValue`'s `,`-bounded window rule gets exercised.
fn arb_record() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(b"ab\",:{}x".to_vec()), 0..=60)
}

fn reference(clauses: &[ClausePattern], record: &[u8]) -> Vec<bool> {
    clauses
        .iter()
        .map(|c| CompiledClause::new(c).is_match(record))
        .collect()
}

proptest! {
    /// Random clause set, random record: one-pass and per-needle agree
    /// on every predicate bit.
    #[test]
    fn one_pass_is_bit_identical_to_per_needle(
        clauses in prop::collection::vec(arb_clause(), 0..=12),
        record in arb_record(),
    ) {
        let set = PatternSet::new(&clauses);
        prop_assert_eq!(set.predicate_count(), clauses.len());
        prop_assert_eq!(
            set.eval(&record),
            reference(&clauses, &record),
            "clauses {:?} record {:?}",
            clauses,
            std::str::from_utf8(&record)
        );
    }

    /// More than [`MAX_SWAR_ANCHORS`] distinct anchor bytes forces the
    /// per-byte table scan; a wide alphabet makes that likely, so both
    /// scan strategies get differential coverage.
    #[test]
    fn wide_alphabet_exercises_the_table_scan(
        needles in prop::collection::vec("[a-z0-9]{1,4}", 9..=20),
        record in prop::collection::vec(prop::sample::select(b"abcdefghijklmnop0123456789,\"".to_vec()), 0..=80),
    ) {
        let clauses: Vec<ClausePattern> = needles
            .into_iter()
            .map(|needle| ClausePattern { patterns: vec![Pattern::Find { needle }] })
            .collect();
        let set = PatternSet::new(&clauses);
        prop_assert_eq!(set.eval(&record), reference(&clauses, &record));
    }

    /// Reused output buffer: a dirty, wrongly-sized buffer must come
    /// back exactly as a fresh one would.
    #[test]
    fn eval_into_resets_the_buffer(
        clauses in prop::collection::vec(arb_clause(), 0..=6),
        record in arb_record(),
        garbage in prop::collection::vec(any::<bool>(), 0..=20),
    ) {
        let set = PatternSet::new(&clauses);
        let mut buf = garbage;
        set.eval_into(&record, &mut buf);
        prop_assert_eq!(buf, set.eval(&record));
    }
}
