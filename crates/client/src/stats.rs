//! Client-side counters.

use ciao_telemetry::Histogram;
use std::collections::HashMap;
use std::time::Duration;

/// Counters accumulated while prefiltering chunks.
#[derive(Debug, Default)]
pub struct ClientStats {
    /// Raw records seen.
    pub records_processed: usize,
    /// Total predicate evaluations (records × pushed predicates).
    pub predicate_evals: usize,
    /// Wall-clock time spent matching.
    pub matching_time: Duration,
    /// Chunks processed.
    pub chunks: usize,
    /// Chunks where the budget enforcement degraded evaluation.
    pub degraded_chunks: usize,
    /// Distribution of per-chunk prefilter evaluation time
    /// (nanoseconds) — the latency a producer pays before it can
    /// enqueue, not just the mean `matching_time` hides tails in.
    pub chunk_eval_ns: Histogram,
    matches: HashMap<u32, usize>,
}

impl Clone for ClientStats {
    /// Value-semantics clone: the histogram is deep-copied, so a clone
    /// is a frozen report, not an alias of a still-recording one.
    fn clone(&self) -> ClientStats {
        ClientStats {
            records_processed: self.records_processed,
            predicate_evals: self.predicate_evals,
            matching_time: self.matching_time,
            chunks: self.chunks,
            degraded_chunks: self.degraded_chunks,
            chunk_eval_ns: self.chunk_eval_ns.detached_copy(),
            matches: self.matches.clone(),
        }
    }
}

impl ClientStats {
    /// Accumulates one processed chunk.
    pub fn record_chunk(&mut self, records: usize, predicates: usize, elapsed: Duration) {
        self.records_processed += records;
        self.predicate_evals += records * predicates;
        self.matching_time += elapsed;
        self.chunks += 1;
        self.chunk_eval_ns.record_duration(elapsed);
    }

    /// Accumulates match counts for one predicate.
    pub fn record_matches(&mut self, predicate_id: u32, count: usize) {
        *self.matches.entry(predicate_id).or_insert(0) += count;
    }

    /// Total raw matches recorded for a predicate id.
    pub fn matches_for(&self, predicate_id: u32) -> usize {
        self.matches.get(&predicate_id).copied().unwrap_or(0)
    }

    /// Observed (raw) selectivity of a predicate: matches / records.
    pub fn observed_selectivity(&self, predicate_id: u32) -> f64 {
        if self.records_processed == 0 {
            0.0
        } else {
            self.matches_for(predicate_id) as f64 / self.records_processed as f64
        }
    }

    /// Mean matching cost per record in microseconds.
    pub fn micros_per_record(&self) -> f64 {
        if self.records_processed == 0 {
            0.0
        } else {
            self.matching_time.as_secs_f64() * 1e6 / self.records_processed as f64
        }
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &ClientStats) {
        self.records_processed += other.records_processed;
        self.predicate_evals += other.predicate_evals;
        self.matching_time += other.matching_time;
        self.chunks += other.chunks;
        self.degraded_chunks += other.degraded_chunks;
        self.chunk_eval_ns.merge(&other.chunk_eval_ns);
        for (&id, &count) in &other.matches {
            *self.matches.entry(id).or_insert(0) += count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation() {
        let mut s = ClientStats::default();
        s.record_chunk(100, 3, Duration::from_micros(250));
        s.record_chunk(50, 3, Duration::from_micros(100));
        s.record_matches(1, 30);
        s.record_matches(1, 10);
        s.record_matches(2, 5);

        assert_eq!(s.records_processed, 150);
        assert_eq!(s.predicate_evals, 450);
        assert_eq!(s.chunks, 2);
        assert_eq!(s.matches_for(1), 40);
        assert_eq!(s.matches_for(2), 5);
        assert_eq!(s.matches_for(99), 0);
        assert!((s.observed_selectivity(1) - 40.0 / 150.0).abs() < 1e-12);
        assert!((s.micros_per_record() - 350.0 / 150.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = ClientStats::default();
        assert_eq!(s.micros_per_record(), 0.0);
        assert_eq!(s.observed_selectivity(0), 0.0);
    }

    #[test]
    fn merge() {
        let mut a = ClientStats::default();
        a.record_chunk(10, 1, Duration::from_micros(10));
        a.record_matches(1, 4);
        let mut b = ClientStats::default();
        b.record_chunk(20, 1, Duration::from_micros(20));
        b.record_matches(1, 6);
        b.record_matches(2, 2);
        b.degraded_chunks = 1;
        a.merge(&b);
        assert_eq!(a.records_processed, 30);
        assert_eq!(a.matches_for(1), 10);
        assert_eq!(a.matches_for(2), 2);
        assert_eq!(a.degraded_chunks, 1);
        assert_eq!(a.chunk_eval_ns.count(), 2);
        assert_eq!(a.chunk_eval_ns.max(), 20_000);
    }

    #[test]
    fn chunk_eval_histogram_tracks_latency_and_clone_detaches() {
        let mut s = ClientStats::default();
        s.record_chunk(100, 2, Duration::from_micros(250));
        s.record_chunk(100, 2, Duration::from_micros(750));
        assert_eq!(s.chunk_eval_ns.count(), 2);
        assert_eq!(s.chunk_eval_ns.max(), 750_000);
        assert!(s.chunk_eval_ns.p50() >= 250_000);

        let frozen = s.clone();
        s.record_chunk(100, 2, Duration::from_micros(10));
        assert_eq!(frozen.chunk_eval_ns.count(), 2, "clone must not alias");
        assert_eq!(s.chunk_eval_ns.count(), 3);
    }
}
