//! CIAO's client side.
//!
//! A data client (edge sensor, log shipper) receives a handful of
//! compiled pattern strings from the server and, for every raw JSON
//! record it produces, answers one question per pattern: *could this
//! record satisfy the predicate?* — using nothing but substring search
//! (paper §IV). The answers ship as one bitvector per predicate
//! alongside the raw chunk.
//!
//! Correctness contract (property-tested against typed evaluation):
//! raw matching may report **false positives** but never **false
//! negatives**. Everything downstream (partial loading, data skipping)
//! relies on that asymmetry.
//!
//! Modules:
//!
//! * [`swar`] — SIMD-within-a-register byte-scan primitives
//!   (broadcast-compare masks, `u64`-at-a-time `memchr`).
//! * [`search`] — reusable substring searchers: a SWAR first/last-byte
//!   anchor scan feeding a Horspool verify, the client's only text
//!   primitive.
//! * [`raw_eval`] — pattern/clause matching over raw records.
//! * [`pattern_set`] — all predicates of a pushdown plan compiled into
//!   one anchor-bucketed matcher, evaluated in a single pass per record.
//! * [`prefilter`] — per-chunk evaluation producing bitvectors.
//! * [`budget`] — runtime budget enforcement with conservative
//!   degradation (over budget ⇒ remaining bits forced to 1).
//! * [`parallel`] — multi-core chunk prefiltering, bit-identical to
//!   the serial path.
//! * [`hardware`] — simulated hardware profiles for the cost-model
//!   calibration experiments (paper Table IV).
//! * [`stats`] — client-side counters.

#![warn(missing_docs)]

pub mod budget;
pub mod hardware;
pub mod parallel;
pub mod pattern_set;
pub mod prefilter;
pub mod raw_eval;
pub mod search;
pub mod stats;
pub mod swar;

pub use budget::{Budget, BudgetedPrefilter};
pub use hardware::HardwareProfile;
pub use parallel::ParallelPrefilter;
pub use pattern_set::PatternSet;
pub use prefilter::{ChunkFilterResult, CompiledPredicate, Prefilter};
pub use raw_eval::{match_clause, match_pattern, CompiledClause};
pub use search::Finder;
pub use stats::ClientStats;
