//! CIAO's client side.
//!
//! A data client (edge sensor, log shipper) receives a handful of
//! compiled pattern strings from the server and, for every raw JSON
//! record it produces, answers one question per pattern: *could this
//! record satisfy the predicate?* — using nothing but substring search
//! (paper §IV). The answers ship as one bitvector per predicate
//! alongside the raw chunk.
//!
//! Correctness contract (property-tested against typed evaluation):
//! raw matching may report **false positives** but never **false
//! negatives**. Everything downstream (partial loading, data skipping)
//! relies on that asymmetry.
//!
//! Modules:
//!
//! * [`search`] — reusable substring searchers (Horspool with a
//!   first-byte fast path), the client's only text primitive.
//! * [`raw_eval`] — pattern/clause matching over raw records.
//! * [`prefilter`] — per-chunk evaluation producing bitvectors.
//! * [`budget`] — runtime budget enforcement with conservative
//!   degradation (over budget ⇒ remaining bits forced to 1).
//! * [`parallel`] — multi-core chunk prefiltering, bit-identical to
//!   the serial path.
//! * [`hardware`] — simulated hardware profiles for the cost-model
//!   calibration experiments (paper Table IV).
//! * [`stats`] — client-side counters.

#![warn(missing_docs)]

pub mod budget;
pub mod hardware;
pub mod parallel;
pub mod prefilter;
pub mod raw_eval;
pub mod search;
pub mod stats;

pub use budget::{Budget, BudgetedPrefilter};
pub use hardware::HardwareProfile;
pub use parallel::ParallelPrefilter;
pub use prefilter::{ChunkFilterResult, CompiledPredicate, Prefilter};
pub use raw_eval::{match_clause, match_pattern, CompiledClause};
pub use search::Finder;
pub use stats::ClientStats;
