//! Batched multi-pattern evaluation: all of a plan's predicates in one
//! pass per record.
//!
//! The per-needle prefilter walks every record once *per predicate* —
//! with `P` pushed predicates that is `P` full traversals of every raw
//! chunk. A [`PatternSet`] is compiled once per pushdown plan and
//! inverts the loop (the Teddy-lite shape multi-pattern engines use):
//!
//! 1. Every disjunct of every clause becomes an **atom** anchored on
//!    its statistically rarest byte (quoted JSON patterns mostly start
//!    with `"`, which would pile every atom into one bucket — anchoring
//!    on the rarest byte spreads them out).
//! 2. Atoms are bucketed by anchor byte (CSR layout) behind a 256-entry
//!    membership table.
//! 3. One scan per record: non-anchor bytes cost one table test; an
//!    anchor byte verifies only its bucket's unmatched atoms at that
//!    position. The scan stops as soon as every predicate matched.
//!
//! Semantics are **bit-identical** to evaluating
//! [`CompiledClause::is_match`](crate::raw_eval::CompiledClause) per
//! predicate (differentially property-tested): a `Find` atom matches
//! when its needle occurs anywhere, a `KeyThenValue` atom checks every
//! key occurrence's window up to the next `,`. False positives stay
//! allowed, false negatives stay forbidden.

use crate::raw_eval::CompiledPattern;
use crate::search::Finder;
use crate::swar;
use ciao_predicate::{ClausePattern, Pattern};

/// Approximate descending byte frequency for JSON-serialized machine
/// logs: structural bytes and common ASCII letters/digits score high,
/// everything else low. Only the *relative order* matters — the anchor
/// chooser picks the minimum-rank byte of each needle.
static BYTE_RANK: [u8; 256] = {
    let mut rank = [0u8; 256];
    // Structural JSON bytes appear in every record.
    rank[b'"' as usize] = 255;
    rank[b',' as usize] = 250;
    rank[b':' as usize] = 250;
    rank[b'{' as usize] = 240;
    rank[b'}' as usize] = 240;
    rank[b'[' as usize] = 200;
    rank[b']' as usize] = 200;
    rank[b' ' as usize] = 230;
    rank[b'.' as usize] = 150;
    rank[b'-' as usize] = 140;
    rank[b'_' as usize] = 140;
    // English letter frequency, coarsely binned.
    let common = b"etaoinshrdlu";
    let mid = b"cmfwypvbg";
    let mut i = 0;
    while i < common.len() {
        rank[common[i] as usize] = 220 - i as u8;
        rank[common[i].to_ascii_uppercase() as usize] = 160 - i as u8;
        i += 1;
    }
    i = 0;
    while i < mid.len() {
        rank[mid[i] as usize] = 190 - i as u8;
        rank[mid[i].to_ascii_uppercase() as usize] = 130 - i as u8;
        i += 1;
    }
    // Digits are common in logs (ids, counters, timestamps).
    let mut d = b'0';
    while d <= b'9' {
        rank[d as usize] = 170;
        d += 1;
    }
    rank
};

/// Distinct anchor bytes above which the record scan falls back from
/// the SWAR masked loop to the per-byte table loop: each extra anchor
/// costs one `eq_mask` (4 ALU ops) per 8-byte chunk, so past this point
/// the fused masks stop beating one table lookup per byte.
const MAX_SWAR_ANCHORS: usize = 8;

/// One anchored disjunct.
#[derive(Debug, Clone)]
struct Atom {
    /// Index into the predicate (clause) list, not the server id.
    pred: u32,
    /// Anchor offset within `prefix`.
    offset: u32,
    /// The needle that must start at `position - offset`: a `Find`
    /// needle, or a `KeyThenValue` key.
    prefix: Box<[u8]>,
    /// `Some` for `KeyThenValue`: the value searched in the window
    /// between the key end and the next `,`.
    value: Option<Finder>,
}

/// A set of clause patterns compiled for one-pass evaluation.
#[derive(Debug, Clone)]
pub struct PatternSet {
    pred_count: usize,
    atoms: Vec<Atom>,
    /// CSR bucket offsets: atoms anchored on byte `b` are
    /// `bucket_atoms[bucket_start[b]..bucket_start[b + 1]]`. Boxed
    /// fixed-size arrays so `u8` indexing needs no bounds check in the
    /// per-byte scan.
    bucket_start: Box<[u32; 257]>,
    bucket_atoms: Vec<u32>,
    /// 256-entry anchor membership table (`true` ⇔ non-empty bucket).
    is_anchor: Box<[bool; 256]>,
    /// Broadcast words of every distinct anchor byte, when there are
    /// at most [`MAX_SWAR_ANCHORS`]: the record scan then tests eight
    /// positions per iteration by OR-ing one [`swar::eq_mask`] per
    /// anchor byte over a single load. Empty ⇒ per-byte table scan.
    anchor_pats: Vec<u64>,
    /// Predicate indices that match every record (an empty `Find`
    /// needle — the empty string occurs in anything).
    always: Vec<u32>,
    /// `(predicate index, pattern)` pairs the scan cannot anchor (an
    /// empty `KeyThenValue` key); evaluated per record the scalar way.
    fallback: Vec<(u32, CompiledPattern)>,
}

impl Default for PatternSet {
    fn default() -> PatternSet {
        PatternSet {
            pred_count: 0,
            atoms: Vec::new(),
            bucket_start: Box::new([0; 257]),
            bucket_atoms: Vec::new(),
            is_anchor: Box::new([false; 256]),
            anchor_pats: Vec::new(),
            always: Vec::new(),
            fallback: Vec::new(),
        }
    }
}

impl PatternSet {
    /// Compiles the clause patterns of a plan, in pushdown order.
    pub fn new<'a>(clauses: impl IntoIterator<Item = &'a ClausePattern>) -> PatternSet {
        let mut set = PatternSet::default();
        let mut anchored: Vec<(u8, u32)> = Vec::new(); // (anchor byte, atom idx)
        for (p, clause) in clauses.into_iter().enumerate() {
            let p = p as u32;
            set.pred_count += 1;
            for pattern in &clause.patterns {
                let (prefix, value) = match pattern {
                    Pattern::Find { needle } => (needle.as_bytes(), None),
                    Pattern::KeyThenValue { key, value } => {
                        (key.as_bytes(), Some(Finder::new(value)))
                    }
                };
                if prefix.is_empty() {
                    match value {
                        // find("") matches every record.
                        None => set.always.push(p),
                        // An empty key anchors nowhere; keep exact
                        // semantics via the scalar matcher.
                        Some(_) => set.fallback.push((p, CompiledPattern::new(pattern))),
                    }
                    continue;
                }
                let offset = prefix
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &b)| BYTE_RANK[b as usize])
                    .map_or(0, |(i, _)| i);
                anchored.push((prefix[offset], set.atoms.len() as u32));
                set.atoms.push(Atom {
                    pred: p,
                    offset: offset as u32,
                    prefix: prefix.into(),
                    value,
                });
            }
        }
        set.always.sort_unstable();
        set.always.dedup();

        // CSR buckets: counting sort over the anchor byte.
        let mut counts = [0u32; 256];
        for &(b, _) in &anchored {
            counts[b as usize] += 1;
        }
        let mut start = [0u32; 257];
        for b in 0..256 {
            start[b + 1] = start[b] + counts[b];
            set.is_anchor[b] = counts[b] != 0;
        }
        let mut bucket_atoms = vec![0u32; anchored.len()];
        let mut cursor = start;
        for &(b, atom) in &anchored {
            bucket_atoms[cursor[b as usize] as usize] = atom;
            cursor[b as usize] += 1;
        }
        set.bucket_start = Box::new(start);
        set.bucket_atoms = bucket_atoms;
        let distinct = (0..256).filter(|&b| set.is_anchor[b]).count();
        if (1..=MAX_SWAR_ANCHORS).contains(&distinct) {
            set.anchor_pats = (0..256u32)
                .filter(|&b| set.is_anchor[b as usize])
                .map(|b| swar::broadcast(b as u8))
                .collect();
        }
        set
    }

    /// Number of compiled predicates (clauses).
    pub fn predicate_count(&self) -> usize {
        self.pred_count
    }

    /// Evaluates every predicate against one record in a single pass.
    ///
    /// `matched` is cleared and resized to the predicate count; entry
    /// `p` is `true` ⇔ predicate `p` (in compile order) matches. The
    /// buffer is caller-owned so chunk loops allocate once.
    pub fn eval_into(&self, record: &[u8], matched: &mut Vec<bool>) {
        matched.clear();
        matched.resize(self.pred_count, false);
        let mut remaining = self.pred_count;

        for &p in &self.always {
            if !matched[p as usize] {
                matched[p as usize] = true;
                remaining -= 1;
            }
        }
        for (p, pattern) in &self.fallback {
            if !matched[*p as usize] && pattern.is_match(record) {
                matched[*p as usize] = true;
                remaining -= 1;
            }
        }
        if remaining == 0 || self.atoms.is_empty() {
            return;
        }

        let mut i = 0;
        if !self.anchor_pats.is_empty() {
            // SWAR scan: one load covers eight positions; each anchor
            // byte contributes one eq_mask. A zero combined mask (the
            // common case — anchors are chosen rare) skips the whole
            // chunk for ~4 ALU ops per anchor byte.
            while i + 8 <= record.len() {
                let chunk = swar::load_le(record, i);
                let mut m = 0u64;
                for &pat in &self.anchor_pats {
                    m |= swar::eq_mask(chunk, pat);
                }
                while m != 0 {
                    let at = i + swar::first_lane(m);
                    m = swar::clear_first_lane(m);
                    let b = record[at];
                    // eq_mask lanes above a true match can be false
                    // positives; the membership table re-verifies.
                    if self.is_anchor[b as usize]
                        && self.check_bucket(record, at, b, matched, &mut remaining)
                    {
                        return;
                    }
                }
                i += 8;
            }
        }
        for at in i..record.len() {
            let b = record[at];
            if self.is_anchor[b as usize]
                && self.check_bucket(record, at, b, matched, &mut remaining)
            {
                return;
            }
        }
    }

    /// Verifies every unmatched atom of byte `b`'s bucket against the
    /// anchor position `at`. Returns `true` when every predicate has
    /// now matched (the scan can stop).
    #[inline]
    fn check_bucket(
        &self,
        record: &[u8],
        at: usize,
        b: u8,
        matched: &mut [bool],
        remaining: &mut usize,
    ) -> bool {
        let s = self.bucket_start[b as usize] as usize;
        let e = self.bucket_start[b as usize + 1] as usize;
        for &ai in &self.bucket_atoms[s..e] {
            let atom = &self.atoms[ai as usize];
            if matched[atom.pred as usize] {
                continue;
            }
            if self.verify(atom, record, at) {
                matched[atom.pred as usize] = true;
                *remaining -= 1;
                if *remaining == 0 {
                    return true;
                }
            }
        }
        false
    }

    /// Convenience wrapper allocating a fresh buffer.
    pub fn eval(&self, record: &[u8]) -> Vec<bool> {
        let mut out = Vec::new();
        self.eval_into(record, &mut out);
        out
    }

    /// Checks one atom whose anchor byte sits at `record[at]`.
    #[inline]
    fn verify(&self, atom: &Atom, record: &[u8], at: usize) -> bool {
        let offset = atom.offset as usize;
        if at < offset {
            return false;
        }
        let start = at - offset;
        let Some(window) = record.get(start..start + atom.prefix.len()) else {
            return false;
        };
        if window != &atom.prefix[..] {
            return false;
        }
        match &atom.value {
            None => true,
            Some(value) => {
                // Key found: search the value between the key end and
                // the next `,` — exactly CompiledPattern's window rule.
                let wstart = start + atom.prefix.len();
                let wend = swar::memchr_from(b',', record, wstart).unwrap_or(record.len());
                value.find(&record[wstart..wend]).is_some()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw_eval::CompiledClause;
    use ciao_predicate::{compile_clause, parse_clause};

    fn pattern(text: &str) -> ClausePattern {
        compile_clause(&parse_clause(text).unwrap()).unwrap()
    }

    fn reference(clauses: &[ClausePattern], record: &str) -> Vec<bool> {
        clauses
            .iter()
            .map(|c| CompiledClause::new(c).is_match(record.as_bytes()))
            .collect()
    }

    #[test]
    fn one_pass_agrees_with_per_needle_loop() {
        let clauses = vec![
            pattern(r#"name = "Bob""#),
            pattern("stars = 5"),
            pattern(r#"text LIKE "%delicious%""#),
            pattern("email != NULL"),
            pattern(r#"name IN ("Alice","Carol")"#),
            pattern("isActive = true"),
        ];
        let set = PatternSet::new(&clauses);
        assert_eq!(set.predicate_count(), 6);
        let records = [
            r#"{"name":"Bob","stars":5,"text":"so delicious!"}"#,
            r#"{"name":"Alice","stars":3,"email":"a@b.c"}"#,
            r#"{"name":"Carol","isActive":true}"#,
            r#"{"stars":50,"text":"awful"}"#,
            r#"{}"#,
            "",
        ];
        for rec in records {
            assert_eq!(
                set.eval(rec.as_bytes()),
                reference(&clauses, rec),
                "record {rec:?}"
            );
        }
    }

    #[test]
    fn key_value_checks_every_key_occurrence() {
        // The nested "age" window lacks "10"; the top-level pair has
        // it. A first-occurrence-only scan would false-negative.
        let clauses = vec![pattern("age = 10")];
        let set = PatternSet::new(&clauses);
        assert_eq!(set.eval(br#"{"person":{"age":99},"age":10}"#), vec![true]);
        assert_eq!(set.eval(br#"{"person":{"age":99},"age":11}"#), vec![false]);
    }

    #[test]
    fn anchor_offset_near_record_edges() {
        // Anchor chosen inside the needle: candidate windows straddling
        // the record start/end must be rejected, not wrap or panic.
        let clauses = vec![pattern(r#"name = "Bob""#)]; // needle is "Bob" with quotes
        let set = PatternSet::new(&clauses);
        assert_eq!(set.eval(b"Bob"), vec![false]); // unquoted, partial
        assert_eq!(set.eval(br#""Bob""#), vec![true]);
        assert_eq!(set.eval(br#"Bob""#), vec![false]);
        assert_eq!(set.eval(br#""Bob"#), vec![false]);
    }

    #[test]
    fn empty_pattern_set() {
        let set = PatternSet::new(&[]);
        assert_eq!(set.predicate_count(), 0);
        assert_eq!(set.eval(b"anything"), Vec::<bool>::new());
    }

    #[test]
    fn empty_find_needle_always_matches() {
        let clauses = vec![ClausePattern {
            patterns: vec![Pattern::Find {
                needle: String::new(),
            }],
        }];
        let set = PatternSet::new(&clauses);
        assert_eq!(set.eval(b""), vec![true]);
        assert_eq!(set.eval(b"x"), vec![true]);
    }

    #[test]
    fn empty_key_falls_back_to_scalar_semantics() {
        let clause = ClausePattern {
            patterns: vec![Pattern::KeyThenValue {
                key: String::new(),
                value: "42".into(),
            }],
        };
        let set = PatternSet::new(std::iter::once(&clause));
        let reference = CompiledPattern::new(&clause.patterns[0]);
        for rec in [&b"{\"a\":42}"[..], b"{\"a\":41},42", b"", b"42"] {
            assert_eq!(
                set.eval(rec),
                vec![reference.is_match(rec)],
                "record {rec:?}"
            );
        }
    }

    #[test]
    fn early_exit_still_fills_every_predicate() {
        // All predicates match in the first few bytes — the early
        // return must leave a fully-sized, correct buffer.
        let clauses = vec![pattern(r#"name LIKE "%a%""#), pattern(r#"name LIKE "%b%""#)];
        let set = PatternSet::new(&clauses);
        let mut buf = vec![false; 99];
        set.eval_into(b"ab tail that never needs scanning", &mut buf);
        assert_eq!(buf, vec![true, true]);
    }
}
