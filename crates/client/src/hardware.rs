//! Simulated client hardware profiles (substitute for paper Table IV).
//!
//! The paper calibrates its cost model on three physical platforms: a
//! local bare-metal server (R² ≈ 0.90), an Alibaba Cloud VM behind an
//! opaque hypervisor (R² ≈ 0.67), and a large bare-metal cluster node
//! (R² ≈ 0.98). We do not have those machines, so each profile here
//! generates *measured* predicate-evaluation times from a ground-truth
//! linear model — the same functional form as §V-D —
//!
//! ```text
//! T = sel·(k1·len(p) + k2·len(t)) + (1−sel)·(k3·len(p) + k4·len(t)) + c
//! ```
//!
//! perturbed by multiplicative Gaussian noise plus occasional stall
//! outliers (hypervisor preemption / VM migration). The substitution
//! preserves exactly what Table IV demonstrates: OLS recovers the
//! coefficients well when noise is small, and R² collapses as
//! virtualization noise grows.

use rand::Rng;

/// A simulated client machine.
#[derive(Debug, Clone)]
pub struct HardwareProfile {
    /// Display name (matches Table IV's platform column).
    pub name: String,
    /// Ground-truth cost-model coefficients `[k1, k2, k3, k4]` in
    /// µs/byte and the startup constant `c` in µs.
    pub k: [f64; 4],
    /// Startup cost per substring search, µs.
    pub c: f64,
    /// Standard deviation of multiplicative noise (fraction of the
    /// true cost).
    pub noise_frac: f64,
    /// Probability that a measurement hits a stall.
    pub stall_prob: f64,
    /// Stall magnitude as a multiple of the true cost.
    pub stall_scale: f64,
}

impl HardwareProfile {
    /// The paper's 2-core i7 "Local Server": bare metal, modest noise.
    pub fn local_server() -> HardwareProfile {
        HardwareProfile {
            name: "Local Server".into(),
            k: [0.004, 0.0011, 0.002, 0.0009],
            c: 0.05,
            noise_frac: 0.14,
            stall_prob: 0.01,
            stall_scale: 2.0,
        }
    }

    /// "Alibaba Cloud" ECS: virtualized, heavy noise and stalls. The
    /// noise parameters are tuned well apart from the bare-metal
    /// profiles so the paper's R² ordering (≈0.67 here vs ≈0.90 local)
    /// is a property of the simulation, not of one lucky RNG stream.
    pub fn alibaba_cloud() -> HardwareProfile {
        HardwareProfile {
            name: "Alibaba Cloud".into(),
            k: [0.005, 0.0014, 0.0025, 0.0011],
            c: 0.08,
            noise_frac: 0.32,
            stall_prob: 0.05,
            stall_scale: 4.0,
        }
    }

    /// "PKU Weiming" cluster node: fast bare metal, very low noise.
    pub fn pku_weiming() -> HardwareProfile {
        HardwareProfile {
            name: "PKU Weiming".into(),
            k: [0.003, 0.0008, 0.0015, 0.0006],
            c: 0.03,
            noise_frac: 0.055,
            stall_prob: 0.002,
            stall_scale: 1.5,
        }
    }

    /// All three Table IV platforms.
    pub fn table4_platforms() -> Vec<HardwareProfile> {
        vec![
            Self::local_server(),
            Self::alibaba_cloud(),
            Self::pku_weiming(),
        ]
    }

    /// The noiseless expected cost of evaluating a pattern of
    /// `pattern_len` bytes on records of mean length `record_len`,
    /// where the pattern is found with probability `sel` (µs).
    pub fn true_cost(&self, pattern_len: f64, record_len: f64, sel: f64) -> f64 {
        let [k1, k2, k3, k4] = self.k;
        sel * (k1 * pattern_len + k2 * record_len)
            + (1.0 - sel) * (k3 * pattern_len + k4 * record_len)
            + self.c
    }

    /// One noisy measurement of the average per-record cost for a
    /// predicate, as the calibration harness would observe it.
    pub fn measure(&self, pattern_len: f64, record_len: f64, sel: f64, rng: &mut impl Rng) -> f64 {
        let base = self.true_cost(pattern_len, record_len, sel);
        // Box–Muller Gaussian from two uniforms; avoids needing
        // rand_distr while keeping measurements reproducible per seed.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let mut t = base * (1.0 + self.noise_frac * gauss);
        if rng.gen_bool(self.stall_prob) {
            t += base * self.stall_scale * rng.gen_range(0.5..1.5);
        }
        t.max(base * 0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn true_cost_matches_formula() {
        let hw = HardwareProfile::local_server();
        let sel = 0.25;
        let (lp, lt) = (10.0, 200.0);
        let expected = sel * (0.004 * lp + 0.0011 * lt) + 0.75 * (0.002 * lp + 0.0009 * lt) + 0.05;
        assert!((hw.true_cost(lp, lt, sel) - expected).abs() < 1e-12);
    }

    #[test]
    fn measurements_are_positive_and_centered() {
        let hw = HardwareProfile::local_server();
        let mut rng = StdRng::seed_from_u64(42);
        let truth = hw.true_cost(12.0, 300.0, 0.1);
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| hw.measure(12.0, 300.0, 0.1, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!(mean > 0.0);
        // Mean should land near the truth (stalls push it up slightly).
        assert!(
            (mean - truth).abs() / truth < 0.15,
            "mean {mean} too far from truth {truth}"
        );
    }

    #[test]
    fn cloud_is_noisier_than_bare_metal() {
        let mut rng = StdRng::seed_from_u64(7);
        let spread = |hw: &HardwareProfile, rng: &mut StdRng| {
            let truth = hw.true_cost(10.0, 250.0, 0.2);
            let xs: Vec<f64> = (0..1000)
                .map(|_| hw.measure(10.0, 250.0, 0.2, rng))
                .collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
            var.sqrt() / truth
        };
        let local = spread(&HardwareProfile::local_server(), &mut rng);
        let cloud = spread(&HardwareProfile::alibaba_cloud(), &mut rng);
        let pku = spread(&HardwareProfile::pku_weiming(), &mut rng);
        assert!(
            cloud > local,
            "cloud {cloud} should be noisier than local {local}"
        );
        assert!(
            local > pku,
            "local {local} should be noisier than pku {pku}"
        );
    }

    #[test]
    fn found_case_costs_more_when_k_says_so() {
        // With these coefficient choices, a higher selectivity (more
        // finds) raises the expected cost.
        let hw = HardwareProfile::local_server();
        assert!(hw.true_cost(10.0, 300.0, 0.9) > hw.true_cost(10.0, 300.0, 0.1));
    }

    #[test]
    fn platforms_enumerated() {
        let ps = HardwareProfile::table4_platforms();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].name, "Local Server");
        assert_eq!(ps[1].name, "Alibaba Cloud");
        assert_eq!(ps[2].name, "PKU Weiming");
    }
}
