//! Substring search primitives.
//!
//! The client evaluates every predicate with substring search (the
//! paper uses C++ `string::find`). Patterns here are compiled once per
//! pushdown plan and reused across millions of records, so [`Finder`]
//! precomputes everything it can per needle:
//!
//! * a **SWAR anchor scan** — the first and last needle bytes are
//!   broadcast across `u64` words and compared against eight window
//!   positions at a time ([`crate::swar`]); only positions where both
//!   anchors line up are verified with a full byte compare. This is the
//!   `memmem` shape used by memchr-style libraries, in portable safe
//!   Rust.
//! * a **Boyer–Moore–Horspool** bad-character table, used for the
//!   sub-word tail of every haystack and as the scalar reference
//!   implementation ([`Finder::find_from_scalar`]) that the SWAR path
//!   is differentially tested against.

use crate::swar;

/// Haystacks shorter than this skip SWAR setup and go straight to the
/// scalar loop (the broadcast/load machinery costs more than it saves
/// on tiny records).
const SWAR_MIN_HAYSTACK: usize = 24;

/// A reusable compiled searcher for one needle.
#[derive(Debug, Clone)]
pub struct Finder {
    needle: Vec<u8>,
    /// Horspool shift table: for each byte value, how far the window
    /// may jump when the last byte mismatches. Boxed so a `Finder` (and
    /// everything holding one, like compiled plans) stays small to move.
    shift: Box<[usize; 256]>,
    /// First needle byte broadcast across a word (SWAR anchor #1).
    first_bc: u64,
    /// Last needle byte broadcast across a word (SWAR anchor #2).
    last_bc: u64,
}

impl Finder {
    /// Compiles a searcher. Empty needles are legal and match at
    /// position 0 of any haystack.
    pub fn new(needle: impl AsRef<[u8]>) -> Finder {
        let needle = needle.as_ref().to_vec();
        let n = needle.len();
        let mut shift = Box::new([n.max(1); 256]);
        if n > 0 {
            for (i, &b) in needle[..n - 1].iter().enumerate() {
                shift[b as usize] = n - 1 - i;
            }
        }
        let first_bc = swar::broadcast(needle.first().copied().unwrap_or(0));
        let last_bc = swar::broadcast(needle.last().copied().unwrap_or(0));
        Finder {
            needle,
            shift,
            first_bc,
            last_bc,
        }
    }

    /// The needle bytes.
    #[inline]
    pub fn needle(&self) -> &[u8] {
        &self.needle
    }

    /// Needle length in bytes — the `len(p)` term of the cost model.
    #[inline]
    pub fn len(&self) -> usize {
        self.needle.len()
    }

    /// True for the empty needle.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.needle.is_empty()
    }

    /// Finds the first occurrence in `haystack`.
    #[inline]
    pub fn find(&self, haystack: &[u8]) -> Option<usize> {
        self.find_from(haystack, 0)
    }

    /// Finds the first occurrence at or after byte offset `start`.
    ///
    /// Dispatch: SWAR anchor scan for word-sized haystacks, Horspool
    /// for the rest. Both share the degenerate-case handling here, so
    /// they agree byte-for-byte (property-tested in
    /// `tests/search_props.rs`).
    pub fn find_from(&self, haystack: &[u8], start: usize) -> Option<usize> {
        let n = self.needle.len();
        if n == 0 {
            return (start <= haystack.len()).then_some(start);
        }
        if start >= haystack.len() || haystack.len() - start < n {
            return None;
        }
        if haystack.len() - start < SWAR_MIN_HAYSTACK {
            return self.horspool(haystack, start);
        }
        if n == 1 {
            return swar::memchr_from(self.needle[0], haystack, start);
        }
        self.find_swar(haystack, start)
    }

    /// The scalar reference implementation (pure Horspool, no SWAR).
    ///
    /// Kept public so differential tests and the hot-path benchmarks
    /// can pit the SWAR path against the exact code it replaced.
    pub fn find_from_scalar(&self, haystack: &[u8], start: usize) -> Option<usize> {
        let n = self.needle.len();
        if n == 0 {
            return (start <= haystack.len()).then_some(start);
        }
        if start >= haystack.len() || haystack.len() - start < n {
            return None;
        }
        if n == 1 {
            let b = self.needle[0];
            return haystack[start..]
                .iter()
                .position(|&x| x == b)
                .map(|p| p + start);
        }
        self.horspool(haystack, start)
    }

    /// SWAR scan: compare eight window positions per iteration against
    /// the first and last needle bytes; verify full equality only where
    /// both anchors hit. Falls back to Horspool for the final windows a
    /// word no longer covers.
    ///
    /// Caller guarantees `n >= 2` and at least one window at `start`.
    fn find_swar(&self, haystack: &[u8], start: usize) -> Option<usize> {
        let n = self.needle.len();
        let mut i = start;
        // Window positions i..i+8 need loads at [i, i+8) and
        // [i+n-1, i+n+7), so the last full iteration starts at
        // haystack.len() - n - 7.
        while i + n + 7 <= haystack.len() {
            let first = swar::load_le(haystack, i);
            let last = swar::load_le(haystack, i + n - 1);
            let mut m = swar::eq_mask(first, self.first_bc) & swar::eq_mask(last, self.last_bc);
            while m != 0 {
                let at = i + swar::first_lane(m);
                // Anchors (and mask false positives) verified by the
                // full compare; lanes are visited lowest-first so the
                // first hit is the leftmost match.
                if haystack[at..at + n] == self.needle[..] {
                    return Some(at);
                }
                m = swar::clear_first_lane(m);
            }
            i += 8;
        }
        self.horspool(haystack, i)
    }

    /// Horspool with the precomputed bad-character table. Caller
    /// guarantees `n >= 1`; handles `start` beyond the last window.
    fn horspool(&self, haystack: &[u8], start: usize) -> Option<usize> {
        let n = self.needle.len();
        let last = n - 1;
        let last_byte = self.needle[last];
        let mut i = start;
        while i + n <= haystack.len() {
            let tail = haystack[i + last];
            if tail == last_byte && haystack[i..i + n] == self.needle[..] {
                return Some(i);
            }
            i += self.shift[tail as usize];
        }
        None
    }

    /// True when the needle occurs anywhere in `haystack`.
    #[inline]
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        self.find(haystack).is_some()
    }

    /// Counts non-overlapping occurrences.
    pub fn count(&self, haystack: &[u8]) -> usize {
        if self.needle.is_empty() {
            return haystack.len() + 1;
        }
        let mut count = 0;
        let mut pos = 0;
        while let Some(at) = self.find_from(haystack, pos) {
            count += 1;
            pos = at + self.needle.len();
        }
        count
    }
}

/// One-shot convenience search (compiles a throwaway table; prefer a
/// cached [`Finder`] in hot paths).
pub fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    Finder::new(needle).find(haystack)
}

/// `memmem`-equivalent one-shot search, mirroring the libc/memchr-crate
/// signature so call sites read the same as the ecosystem idiom.
#[inline]
pub fn memmem(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    find(haystack, needle)
}

/// `memchr`-equivalent one-shot byte search (SWAR, no compilation).
#[inline]
pub fn memchr(byte: u8, haystack: &[u8]) -> Option<usize> {
    swar::memchr(byte, haystack)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_finds() {
        let f = Finder::new("delicious");
        assert_eq!(f.find(b"absolutely delicious food"), Some(11));
        assert_eq!(f.find(b"nothing here"), None);
        assert_eq!(f.find(b"delicious"), Some(0));
        assert_eq!(f.find(b"deliciou"), None);
    }

    #[test]
    fn single_byte_needle() {
        let f = Finder::new(",");
        assert_eq!(f.find(b"a,b,c"), Some(1));
        assert_eq!(f.find_from(b"a,b,c", 2), Some(3));
        assert_eq!(f.find_from(b"a,b,c", 4), None);
        // Long enough to take the SWAR memchr path.
        let hay = b"abcdefghijklmnopqrstuvwxyz0123456789,tail";
        assert_eq!(f.find(hay), Some(36));
        assert_eq!(f.find_from(hay, 37), None);
    }

    #[test]
    fn empty_needle_matches_at_start() {
        let f = Finder::new("");
        assert!(f.is_empty());
        assert_eq!(f.find(b"anything"), Some(0));
        assert_eq!(f.find_from(b"abc", 2), Some(2));
        assert_eq!(f.find_from(b"abc", 3), Some(3));
        assert_eq!(f.find_from(b"abc", 4), None);
        assert_eq!(f.find(b""), Some(0));
    }

    #[test]
    fn find_from_boundaries() {
        let f = Finder::new("ab");
        assert_eq!(f.find_from(b"abab", 0), Some(0));
        assert_eq!(f.find_from(b"abab", 1), Some(2));
        assert_eq!(f.find_from(b"abab", 3), None);
        assert_eq!(f.find_from(b"abab", 100), None);
    }

    #[test]
    fn needle_at_exact_end_of_haystack() {
        // Regression: the match's last byte is the haystack's last byte
        // — the SWAR last-anchor load must not walk off the end, and the
        // Horspool tail must still consider the final window.
        for pad in 0..40 {
            let mut hay = vec![b'x'; pad];
            hay.extend_from_slice(b"needle");
            let f = Finder::new("needle");
            assert_eq!(f.find(&hay), Some(pad), "pad {pad}");
            assert_eq!(f.find_from(&hay, pad), Some(pad), "pad {pad} from pad");
        }
        // Two-byte needle at the very end, across both dispatch paths.
        for pad in [0, 1, 7, 8, 22, 23, 24, 31, 63, 64] {
            let mut hay = vec![b'.'; pad];
            hay.extend_from_slice(b"zq");
            let f = Finder::new("zq");
            assert_eq!(f.find(&hay), Some(pad), "pad {pad}");
        }
    }

    #[test]
    fn start_past_last_possible_match() {
        // Regression: `start` inside the haystack but past the last
        // window that could fit the needle must return None, not panic
        // or scan out of bounds — on both paths.
        let mut hay = vec![b'a'; 40];
        hay.extend_from_slice(b"needle");
        let f = Finder::new("needle");
        let last = hay.len() - 6;
        assert_eq!(f.find_from(&hay, last), Some(last));
        for s in last + 1..=hay.len() + 2 {
            assert_eq!(f.find_from(&hay, s), None, "start {s}");
            assert_eq!(f.find_from_scalar(&hay, s), None, "scalar start {s}");
        }
    }

    #[test]
    fn overlapping_patterns() {
        let f = Finder::new("aaa");
        assert_eq!(f.find(b"aaaaa"), Some(0));
        assert_eq!(f.find_from(b"aaaaa", 1), Some(1));
        assert_eq!(f.count(b"aaaaaa"), 2); // non-overlapping
    }

    #[test]
    fn repeated_suffix_needle() {
        // Exercises the Horspool shift on needles whose last byte
        // repeats inside the needle.
        let f = Finder::new("abab");
        assert_eq!(f.find(b"aabab_abab"), Some(1));
        assert_eq!(f.find(b"ababab"), Some(0));
        assert_eq!(f.find(b"abacabab"), Some(4));
    }

    #[test]
    fn needle_longer_than_haystack() {
        let f = Finder::new("longneedle");
        assert_eq!(f.find(b"short"), None);
        assert_eq!(f.find(b""), None);
    }

    #[test]
    fn binary_safety() {
        let f = Finder::new([0u8, 255, 0]);
        let hay = [1u8, 0, 255, 0, 2];
        assert_eq!(f.find(&hay), Some(1));
        // Zero-byte needle anchors through the SWAR path too.
        let mut long = vec![1u8; 40];
        long.extend_from_slice(&[0, 255, 0]);
        assert_eq!(f.find(&long), Some(40));
    }

    #[test]
    fn matches_std_behaviour_on_corpus() {
        let hays = [
            "",
            "a",
            "abc",
            "the quick brown fox",
            "aaaaaaaaab",
            r#"{"name":"Bob","age":22}"#,
            "ababababab",
            "xyzxyzxyz",
            "the quick brown fox jumps over the lazy dog, twice over",
        ];
        let needles = ["", "a", "ab", "Bob", "\"age\"", "xyz", "b\"", "zz", "fox"];
        for h in &hays {
            for n in &needles {
                let f = Finder::new(n);
                let std = h.find(n);
                assert_eq!(f.find(h.as_bytes()), std, "swar: needle {n:?} in {h:?}");
                assert_eq!(
                    f.find_from_scalar(h.as_bytes(), 0),
                    std,
                    "scalar: needle {n:?} in {h:?}"
                );
            }
        }
    }

    #[test]
    fn swar_and_scalar_agree_across_offsets() {
        // A haystack long enough that matches land in every lane of the
        // 8-wide SWAR batch, for several needle lengths around word
        // boundaries.
        let hay: Vec<u8> = (0..200u32)
            .flat_map(|i| [b'a' + (i % 17) as u8, b'_'])
            .collect();
        for n_len in [2usize, 3, 7, 8, 9, 15, 16, 17] {
            for at in 0..hay.len().saturating_sub(n_len) {
                let needle = &hay[at..at + n_len];
                let f = Finder::new(needle);
                for start in [0, 1, at.saturating_sub(3), at, at + 1] {
                    assert_eq!(
                        f.find_from(&hay, start),
                        f.find_from_scalar(&hay, start),
                        "len {n_len} at {at} start {start}"
                    );
                }
            }
        }
    }

    #[test]
    fn one_shot_helpers() {
        assert_eq!(find(b"hello world", b"world"), Some(6));
        assert_eq!(memmem(b"hello world", b"world"), Some(6));
        assert_eq!(memchr(b'w', b"hello world"), Some(6));
        assert_eq!(memchr(b'z', b"hello world"), None);
    }
}
