//! Substring search primitives.
//!
//! The client evaluates every predicate with substring search (the
//! paper uses C++ `string::find`). Patterns here are compiled once per
//! pushdown plan and reused across millions of records, so [`Finder`]
//! precomputes a Boyer–Moore–Horspool bad-character table per needle
//! and adds a cheap first-byte skip for short needles.

/// A reusable compiled searcher for one needle.
#[derive(Debug, Clone)]
pub struct Finder {
    needle: Vec<u8>,
    /// Horspool shift table: for each byte value, how far the window
    /// may jump when the last byte mismatches. Boxed so a `Finder` (and
    /// everything holding one, like compiled plans) stays small to move.
    shift: Box<[usize; 256]>,
}

impl Finder {
    /// Compiles a searcher. Empty needles are legal and match at
    /// position 0 of any haystack.
    pub fn new(needle: impl AsRef<[u8]>) -> Finder {
        let needle = needle.as_ref().to_vec();
        let n = needle.len();
        let mut shift = Box::new([n.max(1); 256]);
        if n > 0 {
            for (i, &b) in needle[..n - 1].iter().enumerate() {
                shift[b as usize] = n - 1 - i;
            }
        }
        Finder { needle, shift }
    }

    /// The needle bytes.
    #[inline]
    pub fn needle(&self) -> &[u8] {
        &self.needle
    }

    /// Needle length in bytes — the `len(p)` term of the cost model.
    #[inline]
    pub fn len(&self) -> usize {
        self.needle.len()
    }

    /// True for the empty needle.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.needle.is_empty()
    }

    /// Finds the first occurrence in `haystack`.
    #[inline]
    pub fn find(&self, haystack: &[u8]) -> Option<usize> {
        self.find_from(haystack, 0)
    }

    /// Finds the first occurrence at or after byte offset `start`.
    pub fn find_from(&self, haystack: &[u8], start: usize) -> Option<usize> {
        let n = self.needle.len();
        if n == 0 {
            return (start <= haystack.len()).then_some(start);
        }
        if start >= haystack.len() || haystack.len() - start < n {
            return None;
        }
        if n == 1 {
            let b = self.needle[0];
            return haystack[start..]
                .iter()
                .position(|&x| x == b)
                .map(|p| p + start);
        }
        let last = n - 1;
        let last_byte = self.needle[last];
        let mut i = start;
        while i + n <= haystack.len() {
            let tail = haystack[i + last];
            if tail == last_byte && haystack[i..i + n] == self.needle[..] {
                return Some(i);
            }
            i += self.shift[tail as usize];
        }
        None
    }

    /// True when the needle occurs anywhere in `haystack`.
    #[inline]
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        self.find(haystack).is_some()
    }

    /// Counts non-overlapping occurrences.
    pub fn count(&self, haystack: &[u8]) -> usize {
        if self.needle.is_empty() {
            return haystack.len() + 1;
        }
        let mut count = 0;
        let mut pos = 0;
        while let Some(at) = self.find_from(haystack, pos) {
            count += 1;
            pos = at + self.needle.len();
        }
        count
    }
}

/// One-shot convenience search (compiles a throwaway table; prefer a
/// cached [`Finder`] in hot paths).
pub fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    Finder::new(needle).find(haystack)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_finds() {
        let f = Finder::new("delicious");
        assert_eq!(f.find(b"absolutely delicious food"), Some(11));
        assert_eq!(f.find(b"nothing here"), None);
        assert_eq!(f.find(b"delicious"), Some(0));
        assert_eq!(f.find(b"deliciou"), None);
    }

    #[test]
    fn single_byte_needle() {
        let f = Finder::new(",");
        assert_eq!(f.find(b"a,b,c"), Some(1));
        assert_eq!(f.find_from(b"a,b,c", 2), Some(3));
        assert_eq!(f.find_from(b"a,b,c", 4), None);
    }

    #[test]
    fn empty_needle_matches_at_start() {
        let f = Finder::new("");
        assert!(f.is_empty());
        assert_eq!(f.find(b"anything"), Some(0));
        assert_eq!(f.find_from(b"abc", 2), Some(2));
        assert_eq!(f.find_from(b"abc", 3), Some(3));
        assert_eq!(f.find_from(b"abc", 4), None);
        assert_eq!(f.find(b""), Some(0));
    }

    #[test]
    fn find_from_boundaries() {
        let f = Finder::new("ab");
        assert_eq!(f.find_from(b"abab", 0), Some(0));
        assert_eq!(f.find_from(b"abab", 1), Some(2));
        assert_eq!(f.find_from(b"abab", 3), None);
        assert_eq!(f.find_from(b"abab", 100), None);
    }

    #[test]
    fn overlapping_patterns() {
        let f = Finder::new("aaa");
        assert_eq!(f.find(b"aaaaa"), Some(0));
        assert_eq!(f.find_from(b"aaaaa", 1), Some(1));
        assert_eq!(f.count(b"aaaaaa"), 2); // non-overlapping
    }

    #[test]
    fn repeated_suffix_needle() {
        // Exercises the Horspool shift on needles whose last byte
        // repeats inside the needle.
        let f = Finder::new("abab");
        assert_eq!(f.find(b"aabab_abab"), Some(1));
        assert_eq!(f.find(b"ababab"), Some(0));
        assert_eq!(f.find(b"abacabab"), Some(4));
    }

    #[test]
    fn needle_longer_than_haystack() {
        let f = Finder::new("longneedle");
        assert_eq!(f.find(b"short"), None);
        assert_eq!(f.find(b""), None);
    }

    #[test]
    fn binary_safety() {
        let f = Finder::new([0u8, 255, 0]);
        let hay = [1u8, 0, 255, 0, 2];
        assert_eq!(f.find(&hay), Some(1));
    }

    #[test]
    fn matches_std_behaviour_on_corpus() {
        let hays = [
            "",
            "a",
            "abc",
            "the quick brown fox",
            "aaaaaaaaab",
            r#"{"name":"Bob","age":22}"#,
            "ababababab",
            "xyzxyzxyz",
        ];
        let needles = ["", "a", "ab", "Bob", "\"age\"", "xyz", "b\"", "zz", "fox"];
        for h in &hays {
            for n in &needles {
                let ours = Finder::new(n).find(h.as_bytes());
                let std = h.find(n);
                assert_eq!(ours, std, "mismatch for needle {n:?} in {h:?}");
            }
        }
    }

    #[test]
    fn one_shot_helper() {
        assert_eq!(find(b"hello world", b"world"), Some(6));
    }
}
