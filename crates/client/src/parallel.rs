//! Parallel chunk prefiltering.
//!
//! A real log shipper owns more than one core; pattern matching is
//! embarrassingly parallel across chunks (each chunk's bitvectors are
//! independent). This module fans chunks out over a scoped thread pool
//! and returns results **in input order**, bit-identical to the serial
//! path — asserted by tests, relied upon by the loader's framing
//! checks.

use crate::prefilter::{ChunkFilterResult, Prefilter};
use crate::stats::ClientStats;
use ciao_json::RecordChunk;
use parking_lot::Mutex;

/// A prefilter that processes chunk batches across threads.
#[derive(Debug, Clone)]
pub struct ParallelPrefilter {
    prefilter: Prefilter,
    workers: usize,
}

impl ParallelPrefilter {
    /// Wraps a prefilter with a worker count. `workers == 1` degrades
    /// to the serial path with no threads spawned.
    pub fn new(prefilter: Prefilter, workers: usize) -> ParallelPrefilter {
        assert!(workers > 0, "need at least one worker");
        ParallelPrefilter { prefilter, workers }
    }

    /// Uses all available parallelism.
    pub fn with_available_parallelism(prefilter: Prefilter) -> ParallelPrefilter {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::new(prefilter, workers)
    }

    /// The wrapped prefilter.
    pub fn prefilter(&self) -> &Prefilter {
        &self.prefilter
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Prefilters every chunk, returning results in input order and
    /// merging per-worker counters into `stats`.
    pub fn run_chunks(
        &self,
        chunks: &[RecordChunk],
        stats: &mut ClientStats,
    ) -> Vec<ChunkFilterResult> {
        if self.workers == 1 || chunks.len() <= 1 {
            return chunks
                .iter()
                .map(|c| self.prefilter.run_chunk_with_stats(c, stats))
                .collect();
        }

        let mut results: Vec<Option<ChunkFilterResult>> = vec![None; chunks.len()];
        let shared_stats = Mutex::new(ClientStats::default());
        // Static round-robin-free partition: contiguous slices keep
        // result stitching trivial and cache-friendly.
        let per_worker = chunks.len().div_ceil(self.workers);
        std::thread::scope(|scope| {
            for (in_slice, out_slice) in chunks
                .chunks(per_worker)
                .zip(results.chunks_mut(per_worker))
            {
                let prefilter = &self.prefilter;
                let shared = &shared_stats;
                scope.spawn(move || {
                    let mut local = ClientStats::default();
                    for (chunk, slot) in in_slice.iter().zip(out_slice.iter_mut()) {
                        *slot = Some(prefilter.run_chunk_with_stats(chunk, &mut local));
                    }
                    shared.lock().merge(&local);
                });
            }
        });
        stats.merge(&shared_stats.into_inner());
        results
            .into_iter()
            .map(|r| r.expect("every slot filled by its worker"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_predicate::{compile_clause, parse_clause};

    fn chunks(n_chunks: usize, per_chunk: usize) -> Vec<RecordChunk> {
        (0..n_chunks)
            .map(|c| {
                let recs: Vec<String> = (0..per_chunk)
                    .map(|i| {
                        format!(
                            r#"{{"stars":{},"name":"u{}-{}"}}"#,
                            (c * per_chunk + i) % 5 + 1,
                            c,
                            i
                        )
                    })
                    .collect();
                RecordChunk::from_records(&recs).unwrap()
            })
            .collect()
    }

    fn prefilter() -> Prefilter {
        Prefilter::new([
            (
                0,
                compile_clause(&parse_clause("stars = 5").unwrap()).unwrap(),
            ),
            (
                1,
                compile_clause(&parse_clause(r#"name LIKE "%u3-%""#).unwrap()).unwrap(),
            ),
        ])
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let cs = chunks(13, 47);
        let pf = prefilter();

        let mut serial_stats = ClientStats::default();
        let serial: Vec<_> = cs
            .iter()
            .map(|c| pf.run_chunk_with_stats(c, &mut serial_stats))
            .collect();

        for workers in [1, 2, 3, 8, 32] {
            let par = ParallelPrefilter::new(pf.clone(), workers);
            let mut par_stats = ClientStats::default();
            let results = par.run_chunks(&cs, &mut par_stats);
            assert_eq!(results.len(), serial.len());
            for (a, b) in results.iter().zip(&serial) {
                assert_eq!(a.bitvecs, b.bitvecs, "workers={workers}");
                assert_eq!(a.predicate_ids, b.predicate_ids);
            }
            assert_eq!(par_stats.records_processed, serial_stats.records_processed);
            assert_eq!(par_stats.matches_for(0), serial_stats.matches_for(0));
            assert_eq!(par_stats.matches_for(1), serial_stats.matches_for(1));
        }
    }

    #[test]
    fn more_workers_than_chunks() {
        let cs = chunks(2, 10);
        let par = ParallelPrefilter::new(prefilter(), 16);
        let mut stats = ClientStats::default();
        let results = par.run_chunks(&cs, &mut stats);
        assert_eq!(results.len(), 2);
        assert_eq!(stats.records_processed, 20);
    }

    #[test]
    fn empty_chunk_list() {
        let par = ParallelPrefilter::new(prefilter(), 4);
        let mut stats = ClientStats::default();
        assert!(par.run_chunks(&[], &mut stats).is_empty());
        assert_eq!(stats.records_processed, 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        ParallelPrefilter::new(prefilter(), 0);
    }

    #[test]
    fn available_parallelism_constructor() {
        let par = ParallelPrefilter::with_available_parallelism(prefilter());
        assert!(par.workers() >= 1);
    }
}
