//! SWAR (SIMD-within-a-register) byte-scan primitives.
//!
//! The client's hot loop is "find a byte (or a byte pair) in a raw
//! record". These helpers process the haystack a `u64` at a time:
//! broadcast the wanted byte across a word, XOR against eight haystack
//! bytes loaded at once, and use the classic zero-byte trick to get a
//! per-lane candidate mask. One iteration inspects eight positions for
//! a handful of ALU ops instead of eight bounds-checked loads.
//!
//! The candidate mask is **conservative**: a lane's bit is always set
//! when the lane matches, and may rarely be set when it does not (the
//! zero-byte trick borrows across lanes). Every caller re-verifies the
//! candidate byte(s), so false positives cost a compare, never a wrong
//! answer — the same FP-but-never-FN contract the rest of CIAO runs on.

/// `0x01` in every lane.
pub const LO: u64 = 0x0101_0101_0101_0101;
/// `0x80` in every lane.
pub const HI: u64 = 0x8080_8080_8080_8080;

/// Broadcasts one byte to all eight lanes.
#[inline(always)]
pub fn broadcast(b: u8) -> u64 {
    LO * b as u64
}

/// Loads 8 haystack bytes starting at `i` as a little-endian word, so
/// lane `j` (bits `8j..8j+8`) is byte `haystack[i + j]` regardless of
/// host endianness.
///
/// # Panics
///
/// Panics when fewer than 8 bytes remain at `i`.
#[inline(always)]
pub fn load_le(haystack: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(haystack[i..i + 8].try_into().unwrap())
}

/// Candidate-match mask: bit 7 of lane `j` is set when byte `j` of
/// `chunk` *may* equal the byte broadcast into `pattern`.
///
/// Exact for the lowest candidate lane; lanes above a true match can be
/// false positives (subtraction borrow), so callers must verify.
#[inline(always)]
pub fn eq_mask(chunk: u64, pattern: u64) -> u64 {
    let x = chunk ^ pattern;
    x.wrapping_sub(LO) & !x & HI
}

/// Index of the lowest candidate lane in a non-zero [`eq_mask`] result.
#[inline(always)]
pub fn first_lane(mask: u64) -> usize {
    (mask.trailing_zeros() as usize) >> 3
}

/// Clears the lowest candidate lane of a mask.
#[inline(always)]
pub fn clear_first_lane(mask: u64) -> u64 {
    mask & (mask - 1)
}

/// SWAR `memchr`: first occurrence of `b` in `haystack[start..]`,
/// as an index into `haystack`.
#[inline]
pub fn memchr_from(b: u8, haystack: &[u8], start: usize) -> Option<usize> {
    let n = haystack.len();
    if start >= n {
        return None;
    }
    let pat = broadcast(b);
    let mut i = start;
    while i + 8 <= n {
        let mut m = eq_mask(load_le(haystack, i), pat);
        while m != 0 {
            let at = i + first_lane(m);
            // Verify: eq_mask may set lanes above a true match.
            if haystack[at] == b {
                return Some(at);
            }
            m = clear_first_lane(m);
        }
        i += 8;
    }
    haystack[i..].iter().position(|&x| x == b).map(|p| p + i)
}

/// SWAR `memchr` over a whole slice.
#[inline]
pub fn memchr(b: u8, haystack: &[u8]) -> Option<usize> {
    memchr_from(b, haystack, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_fills_lanes() {
        assert_eq!(broadcast(0xAB), 0xABAB_ABAB_ABAB_ABAB);
        assert_eq!(broadcast(0), 0);
    }

    #[test]
    fn eq_mask_finds_every_true_lane() {
        // The mask must never miss a genuine match (no false negatives),
        // whatever the surrounding bytes are.
        for lane in 0..8 {
            let mut bytes = [0x55u8; 8];
            bytes[lane] = 0x7F;
            let chunk = u64::from_le_bytes(bytes);
            let m = eq_mask(chunk, broadcast(0x7F));
            assert_ne!(m & (0x80u64 << (8 * lane)), 0, "lane {lane} missed");
        }
    }

    #[test]
    fn eq_mask_borrow_false_positive_is_verifiable() {
        // 0x00 then 0x01 with pattern 0x00: the borrow from lane 0 can
        // flag lane 1 too — callers verify, so document the behaviour.
        let chunk = u64::from_le_bytes([0x00, 0x01, 2, 3, 4, 5, 6, 7]);
        let m = eq_mask(chunk, broadcast(0x00));
        assert_ne!(m & 0x80, 0, "true match in lane 0 must be flagged");
    }

    #[test]
    fn memchr_matches_naive_on_exhaustive_small_inputs() {
        let hay: Vec<u8> = (0..64u8).map(|i| i % 7).collect();
        for b in 0..8u8 {
            for start in 0..=hay.len() + 1 {
                let ours = memchr_from(b, &hay, start);
                let naive = hay
                    .iter()
                    .enumerate()
                    .skip(start.min(hay.len()))
                    .find(|&(_, &x)| x == b)
                    .map(|(i, _)| i);
                assert_eq!(ours, naive, "byte {b} from {start}");
            }
        }
    }

    #[test]
    fn memchr_tail_shorter_than_a_word() {
        assert_eq!(memchr(b'x', b"abcx"), Some(3));
        assert_eq!(memchr(b'x', b"abc"), None);
        assert_eq!(memchr(b'x', b""), None);
        assert_eq!(memchr(0xFF, &[0u8, 0xFF]), Some(1));
    }
}
