//! Runtime budget enforcement.
//!
//! The optimizer already guarantees that the *modeled* cost of the
//! pushed predicate set fits the administrator's budget `B` (µs per
//! record). Real clients still need a hard backstop: a slow device, a
//! hypervisor stall, or a mis-calibrated model must not let prefiltering
//! starve the client's actual workload.
//!
//! [`BudgetedPrefilter`] therefore tracks measured time per chunk and,
//! once the chunk exceeds its allowance, **degrades conservatively**:
//! all remaining (record, predicate) bits are forced to 1. A 1-bit only
//! ever costs the server wasted verification work — it can never drop a
//! result — so degradation preserves CIAO's no-false-negative contract.

use crate::prefilter::{ChunkFilterResult, Prefilter};
use crate::stats::ClientStats;
use ciao_bitvec::BitVec;
use ciao_json::RecordChunk;
use std::time::{Duration, Instant};

/// A per-record computation budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    /// Average microseconds of predicate evaluation allowed per record
    /// (the paper's `B`).
    pub micros_per_record: f64,
}

impl Budget {
    /// Creates a budget. Panics on negative or non-finite values.
    pub fn per_record_micros(micros: f64) -> Budget {
        assert!(
            micros >= 0.0 && micros.is_finite(),
            "budget must be a non-negative finite number of microseconds"
        );
        Budget {
            micros_per_record: micros,
        }
    }

    /// The unlimited budget (no runtime enforcement).
    pub fn unlimited() -> Budget {
        Budget {
            micros_per_record: f64::INFINITY,
        }
    }

    /// Total allowance for a chunk of `records` records.
    pub fn chunk_allowance(&self, records: usize) -> Duration {
        if self.micros_per_record.is_infinite() {
            return Duration::MAX;
        }
        Duration::from_secs_f64(self.micros_per_record * records as f64 / 1e6)
    }
}

/// A prefilter wrapped with hard budget enforcement.
#[derive(Debug, Clone)]
pub struct BudgetedPrefilter {
    prefilter: Prefilter,
    budget: Budget,
    /// How often (in records) to re-check the clock; checking per
    /// record would itself blow small budgets.
    check_interval: usize,
    /// Multiplier on the allowance before degrading; absorbs scheduler
    /// noise so that a single slow record doesn't trigger degradation.
    slack: f64,
}

impl BudgetedPrefilter {
    /// Wraps a prefilter with a budget.
    pub fn new(prefilter: Prefilter, budget: Budget) -> BudgetedPrefilter {
        BudgetedPrefilter {
            prefilter,
            budget,
            check_interval: 64,
            slack: 4.0,
        }
    }

    /// Overrides the clock-check interval (mainly for tests).
    pub fn with_check_interval(mut self, records: usize) -> BudgetedPrefilter {
        assert!(records > 0, "check interval must be positive");
        self.check_interval = records;
        self
    }

    /// Overrides the slack multiplier (mainly for tests).
    pub fn with_slack(mut self, slack: f64) -> BudgetedPrefilter {
        assert!(slack >= 1.0, "slack must be at least 1");
        self.slack = slack;
        self
    }

    /// The wrapped prefilter.
    pub fn prefilter(&self) -> &Prefilter {
        &self.prefilter
    }

    /// The enforced budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Runs one chunk under the budget. On overrun, every remaining bit
    /// is set to 1 (conservative) and `stats.degraded_chunks` is bumped.
    pub fn run_chunk(&self, chunk: &RecordChunk, stats: &mut ClientStats) -> ChunkFilterResult {
        let n = chunk.len();
        let preds = self.prefilter.predicates();
        let allowance = if self.budget.micros_per_record.is_infinite() {
            Duration::MAX
        } else {
            Duration::from_secs_f64(self.budget.micros_per_record * n as f64 * self.slack / 1e6)
        };
        let start = Instant::now();
        let mut bitvecs: Vec<BitVec> = preds.iter().map(|_| BitVec::zeros(n)).collect();
        let mut degraded_from: Option<usize> = None;

        for (r, record) in chunk.iter().enumerate() {
            if r % self.check_interval == 0 && start.elapsed() > allowance {
                degraded_from = Some(r);
                break;
            }
            let bytes = record.as_bytes();
            for (p, pred) in preds.iter().enumerate() {
                if pred.is_match(bytes) {
                    bitvecs[p].set(r, true);
                }
            }
        }

        if let Some(from) = degraded_from {
            for bv in &mut bitvecs {
                for r in from..n {
                    bv.set(r, true);
                }
            }
            stats.degraded_chunks += 1;
        }

        let elapsed = start.elapsed();
        stats.record_chunk(n, preds.len(), elapsed);
        for (p, bv) in bitvecs.iter().enumerate() {
            stats.record_matches(preds[p].id, bv.count_ones());
        }
        ChunkFilterResult {
            predicate_ids: preds.iter().map(|p| p.id).collect(),
            bitvecs,
            records: n,
            elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_predicate::{compile_clause, parse_clause, ClausePattern};

    fn pattern(text: &str) -> ClausePattern {
        compile_clause(&parse_clause(text).unwrap()).unwrap()
    }

    fn big_chunk(n: usize) -> RecordChunk {
        let recs: Vec<String> = (0..n)
            .map(|i| format!(r#"{{"name":"user{}","stars":{}}}"#, i, i % 5 + 1))
            .collect();
        RecordChunk::from_records(&recs).unwrap()
    }

    #[test]
    fn budget_constructors() {
        let b = Budget::per_record_micros(1.0);
        assert_eq!(b.chunk_allowance(1000), Duration::from_millis(1));
        assert_eq!(
            Budget::unlimited().chunk_allowance(1_000_000),
            Duration::MAX
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_budget_rejected() {
        Budget::per_record_micros(-1.0);
    }

    #[test]
    fn generous_budget_matches_plain_prefilter() {
        let chunk = big_chunk(200);
        let pf = Prefilter::new([(0, pattern("stars = 5"))]);
        let plain = pf.run_chunk(&chunk);
        let mut stats = ClientStats::default();
        let budgeted =
            BudgetedPrefilter::new(pf, Budget::unlimited()).run_chunk(&chunk, &mut stats);
        assert_eq!(plain.bitvecs, budgeted.bitvecs);
        assert_eq!(stats.degraded_chunks, 0);
    }

    #[test]
    fn zero_budget_degrades_to_all_ones() {
        let chunk = big_chunk(500);
        let pf = Prefilter::new([(0, pattern("stars = 5")), (1, pattern(r#"name = "user1""#))]);
        let mut stats = ClientStats::default();
        let budgeted = BudgetedPrefilter::new(pf, Budget::per_record_micros(0.0))
            .with_check_interval(1)
            .with_slack(1.0);
        // Force the clock check to trigger immediately by using a zero
        // allowance; the first check happens at record 0 only if any
        // time has already elapsed, so run until we observe degradation.
        let res = budgeted.run_chunk(&chunk, &mut stats);
        assert_eq!(stats.degraded_chunks, 1);
        // Degraded bits are 1 — conservative, no false negatives.
        assert!(res.bitvecs[0].count_ones() >= res.bitvecs[0].len() - 1);
        assert_eq!(res.bitvecs[0].len(), 500);
    }

    #[test]
    fn degraded_result_is_superset_of_true_matches() {
        let chunk = big_chunk(300);
        let pf = Prefilter::new([(0, pattern("stars = 3"))]);
        let truth = pf.run_chunk(&chunk);
        let mut stats = ClientStats::default();
        let res = BudgetedPrefilter::new(pf, Budget::per_record_micros(0.0))
            .with_check_interval(1)
            .with_slack(1.0)
            .run_chunk(&chunk, &mut stats);
        assert!(truth.bitvecs[0].is_subset_of(&res.bitvecs[0]));
    }

    #[test]
    fn empty_chunk_never_degrades() {
        let pf = Prefilter::new([(0, pattern("stars = 5"))]);
        let mut stats = ClientStats::default();
        let res = BudgetedPrefilter::new(pf, Budget::per_record_micros(0.0))
            .run_chunk(&RecordChunk::from_ndjson(""), &mut stats);
        assert_eq!(res.records, 0);
        assert_eq!(stats.degraded_chunks, 0);
    }
}
