//! Chunk-level prefiltering: raw records in, bitvectors out.
//!
//! Since the hot-path rework, the chunk loop evaluates **all**
//! predicates in one pass per record via a compiled
//! [`PatternSet`](crate::pattern_set::PatternSet) instead of one
//! haystack traversal per predicate. The per-needle loop survives as
//! [`Prefilter::run_chunk_scalar`] — the differential-test oracle and
//! the benchmark baseline.

use crate::pattern_set::PatternSet;
use crate::raw_eval::CompiledClause;
use crate::stats::ClientStats;
use ciao_bitvec::BitVec;
use ciao_json::RecordChunk;
use ciao_predicate::ClausePattern;
use std::time::{Duration, Instant};

/// A pushed-down predicate as the client sees it: a server-assigned id
/// plus compiled pattern strings.
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    /// Server-assigned predicate id (indexes the bitvector set).
    pub id: u32,
    clause: CompiledClause,
}

impl CompiledPredicate {
    /// Compiles the clause pattern shipped by the server.
    pub fn new(id: u32, pattern: &ClausePattern) -> CompiledPredicate {
        CompiledPredicate {
            id,
            clause: CompiledClause::new(pattern),
        }
    }

    /// Evaluates against one raw record.
    #[inline]
    pub fn is_match(&self, record: &[u8]) -> bool {
        self.clause.is_match(record)
    }

    /// Total pattern bytes (for cost accounting).
    pub fn pattern_len(&self) -> usize {
        self.clause.pattern_len()
    }
}

/// The result of prefiltering one chunk: one bitvector per predicate,
/// aligned with the prefilter's predicate order.
#[derive(Debug, Clone)]
pub struct ChunkFilterResult {
    /// Predicate ids, parallel to `bitvecs`.
    pub predicate_ids: Vec<u32>,
    /// `bitvecs[i].bit(r)` ⇔ record `r` may satisfy predicate `i`.
    pub bitvecs: Vec<BitVec>,
    /// Records evaluated.
    pub records: usize,
    /// Wall-clock time spent matching.
    pub elapsed: Duration,
}

impl ChunkFilterResult {
    /// The bitvector for a predicate id, if that predicate was pushed.
    pub fn bitvec_for(&self, id: u32) -> Option<&BitVec> {
        self.predicate_ids
            .iter()
            .position(|&p| p == id)
            .map(|i| &self.bitvecs[i])
    }

    /// OR of all bitvectors — the partial-loading admission mask
    /// (paper §VI-A: load a record iff it is valid for ≥1 predicate).
    /// `None` when no predicates were pushed (then everything loads).
    pub fn admission_mask(&self) -> Option<BitVec> {
        let refs: Vec<&BitVec> = self.bitvecs.iter().collect();
        BitVec::union_all(&refs)
    }

    /// Mean matching cost per record in microseconds.
    pub fn micros_per_record(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.elapsed.as_secs_f64() * 1e6 / self.records as f64
        }
    }
}

/// Evaluates a fixed set of pushed predicates over raw chunks.
#[derive(Debug, Clone, Default)]
pub struct Prefilter {
    predicates: Vec<CompiledPredicate>,
    /// All clauses compiled for one-pass batched evaluation; order
    /// matches `predicates`.
    set: PatternSet,
}

impl Prefilter {
    /// Builds a prefilter from `(id, pattern)` pairs.
    pub fn new(predicates: impl IntoIterator<Item = (u32, ClausePattern)>) -> Prefilter {
        let pairs: Vec<(u32, ClausePattern)> = predicates.into_iter().collect();
        let set = PatternSet::new(pairs.iter().map(|(_, p)| p));
        Prefilter {
            predicates: pairs
                .iter()
                .map(|(id, p)| CompiledPredicate::new(*id, p))
                .collect(),
            set,
        }
    }

    /// Builds a prefilter straight from predicate clauses — e.g. the
    /// `WHERE` clauses of a compiled SQL plan — compiling each to its
    /// pattern form. Clauses with no compilable pattern (none exist
    /// today) are skipped rather than pushed as always-false.
    pub fn for_clauses<'a>(
        clauses: impl IntoIterator<Item = (u32, &'a ciao_predicate::Clause)>,
    ) -> Prefilter {
        Prefilter::new(
            clauses
                .into_iter()
                .filter_map(|(id, c)| ciao_predicate::compile_clause(c).map(|p| (id, p))),
        )
    }

    /// Number of pushed predicates.
    pub fn predicate_count(&self) -> usize {
        self.predicates.len()
    }

    /// The compiled predicates in evaluation order.
    pub fn predicates(&self) -> &[CompiledPredicate] {
        &self.predicates
    }

    /// Evaluates every predicate on every record of `chunk`.
    pub fn run_chunk(&self, chunk: &RecordChunk) -> ChunkFilterResult {
        self.run_chunk_with_stats(chunk, &mut ClientStats::default())
    }

    /// Like [`Prefilter::run_chunk`], also accumulating counters.
    ///
    /// One pass per record: the compiled [`PatternSet`] answers every
    /// predicate from a single traversal instead of `P` of them.
    pub fn run_chunk_with_stats(
        &self,
        chunk: &RecordChunk,
        stats: &mut ClientStats,
    ) -> ChunkFilterResult {
        let start = Instant::now();
        let n = chunk.len();
        let mut bitvecs: Vec<BitVec> = self.predicates.iter().map(|_| BitVec::zeros(n)).collect();
        let mut matched = Vec::with_capacity(self.predicates.len());
        for (r, record) in chunk.iter().enumerate() {
            self.set.eval_into(record.as_bytes(), &mut matched);
            for (p, &hit) in matched.iter().enumerate() {
                if hit {
                    bitvecs[p].set(r, true);
                }
            }
        }
        let elapsed = start.elapsed();
        self.finish_result(bitvecs, n, elapsed, stats)
    }

    /// The pre-batching reference: one haystack traversal per
    /// predicate. Kept as the differential-test oracle and the
    /// benchmark baseline for the one-pass path.
    pub fn run_chunk_scalar(&self, chunk: &RecordChunk) -> ChunkFilterResult {
        let start = Instant::now();
        let n = chunk.len();
        let mut bitvecs: Vec<BitVec> = self.predicates.iter().map(|_| BitVec::zeros(n)).collect();
        for (r, record) in chunk.iter().enumerate() {
            let bytes = record.as_bytes();
            for (p, pred) in self.predicates.iter().enumerate() {
                if pred.is_match(bytes) {
                    bitvecs[p].set(r, true);
                }
            }
        }
        let elapsed = start.elapsed();
        self.finish_result(bitvecs, n, elapsed, &mut ClientStats::default())
    }

    fn finish_result(
        &self,
        bitvecs: Vec<BitVec>,
        records: usize,
        elapsed: Duration,
        stats: &mut ClientStats,
    ) -> ChunkFilterResult {
        stats.record_chunk(records, self.predicates.len(), elapsed);
        for (p, bv) in bitvecs.iter().enumerate() {
            stats.record_matches(self.predicates[p].id, bv.count_ones());
        }
        ChunkFilterResult {
            predicate_ids: self.predicates.iter().map(|p| p.id).collect(),
            bitvecs,
            records,
            elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_predicate::{compile_clause, parse_clause};

    fn pattern(text: &str) -> ClausePattern {
        compile_clause(&parse_clause(text).unwrap()).unwrap()
    }

    fn chunk() -> RecordChunk {
        RecordChunk::from_records(&[
            r#"{"name":"Bob","stars":5}"#,
            r#"{"name":"Alice","stars":3}"#,
            r#"{"name":"John","stars":5}"#,
            r#"{"name":"Carol","stars":1}"#,
        ])
        .unwrap()
    }

    #[test]
    fn produces_one_bitvec_per_predicate() {
        let pf = Prefilter::new([(7, pattern(r#"name = "Bob""#)), (9, pattern("stars = 5"))]);
        let res = pf.run_chunk(&chunk());
        assert_eq!(res.predicate_ids, vec![7, 9]);
        assert_eq!(res.records, 4);
        assert_eq!(res.bitvecs.len(), 2);
        assert_eq!(res.bitvecs[0].ones_positions(), vec![0]);
        assert_eq!(res.bitvecs[1].ones_positions(), vec![0, 2]);
    }

    #[test]
    fn bitvec_for_lookup() {
        let pf = Prefilter::new([(7, pattern(r#"name = "Bob""#))]);
        let res = pf.run_chunk(&chunk());
        assert!(res.bitvec_for(7).is_some());
        assert!(res.bitvec_for(8).is_none());
    }

    #[test]
    fn admission_mask_is_union() {
        let pf = Prefilter::new([(0, pattern(r#"name = "Bob""#)), (1, pattern("stars = 1"))]);
        let res = pf.run_chunk(&chunk());
        let mask = res.admission_mask().unwrap();
        assert_eq!(mask.ones_positions(), vec![0, 3]);
    }

    #[test]
    fn no_predicates_means_no_mask() {
        let pf = Prefilter::new([]);
        let res = pf.run_chunk(&chunk());
        assert!(res.admission_mask().is_none());
        assert_eq!(res.bitvecs.len(), 0);
    }

    #[test]
    fn empty_chunk() {
        let pf = Prefilter::new([(0, pattern("stars = 5"))]);
        let res = pf.run_chunk(&RecordChunk::from_ndjson(""));
        assert_eq!(res.records, 0);
        assert_eq!(res.bitvecs[0].len(), 0);
        assert_eq!(res.micros_per_record(), 0.0);
    }

    #[test]
    fn disjunction_predicate() {
        let pf = Prefilter::new([(0, pattern(r#"name IN ("Bob","John")"#))]);
        let res = pf.run_chunk(&chunk());
        assert_eq!(res.bitvecs[0].ones_positions(), vec![0, 2]);
    }

    #[test]
    fn batched_path_matches_scalar_path() {
        let pf = Prefilter::new([
            (0, pattern(r#"name = "Bob""#)),
            (1, pattern("stars = 5")),
            (2, pattern(r#"name IN ("Bob","John")"#)),
            (3, pattern("stars = 1")),
        ]);
        let batched = pf.run_chunk(&chunk());
        let scalar = pf.run_chunk_scalar(&chunk());
        assert_eq!(batched.predicate_ids, scalar.predicate_ids);
        assert_eq!(batched.bitvecs, scalar.bitvecs);
    }

    #[test]
    fn for_clauses_matches_manual_compilation() {
        let clauses = [
            parse_clause(r#"name = "Bob""#).unwrap(),
            parse_clause("stars = 5").unwrap(),
        ];
        let from_clauses =
            Prefilter::for_clauses(clauses.iter().enumerate().map(|(i, c)| (i as u32, c)));
        let manual = Prefilter::new([(0, pattern(r#"name = "Bob""#)), (1, pattern("stars = 5"))]);
        let a = from_clauses.run_chunk(&chunk());
        let b = manual.run_chunk(&chunk());
        assert_eq!(a.predicate_ids, b.predicate_ids);
        assert_eq!(a.bitvecs, b.bitvecs);
    }

    #[test]
    fn stats_accumulate() {
        let mut stats = ClientStats::default();
        let pf = Prefilter::new([(3, pattern("stars = 5"))]);
        pf.run_chunk_with_stats(&chunk(), &mut stats);
        pf.run_chunk_with_stats(&chunk(), &mut stats);
        assert_eq!(stats.records_processed, 8);
        assert_eq!(stats.predicate_evals, 8);
        assert_eq!(stats.matches_for(3), 4);
    }
}
