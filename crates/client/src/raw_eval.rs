//! Raw-text pattern evaluation (paper §IV-B).
//!
//! Matching is deliberately conservative. The one place this
//! implementation strengthens the paper's prose: for key-value match we
//! examine **every** occurrence of the key string, not only the first.
//! A record like `{"person":{"age":99},"age":10}` contains the key
//! pattern `"age"` twice; checking only the first window (which ends at
//! the next comma) would miss the real top-level `age:10` pair and
//! produce a false negative — the one failure mode the system must
//! never have.

use crate::search::Finder;
use ciao_predicate::{ClausePattern, Pattern};

/// A pattern compiled to reusable searchers.
#[derive(Debug, Clone)]
pub enum CompiledPattern {
    /// Single substring search.
    Find(Finder),
    /// Key search then value search in the window up to the next `,`.
    KeyThenValue {
        /// Searcher for the quoted key.
        key: Finder,
        /// Searcher for the value text.
        value: Finder,
        /// Searcher for the window delimiter.
        delim: Finder,
    },
}

impl CompiledPattern {
    /// Compiles one pattern.
    pub fn new(pattern: &Pattern) -> CompiledPattern {
        match pattern {
            Pattern::Find { needle } => CompiledPattern::Find(Finder::new(needle)),
            Pattern::KeyThenValue { key, value } => CompiledPattern::KeyThenValue {
                key: Finder::new(key),
                value: Finder::new(value),
                delim: Finder::new(","),
            },
        }
    }

    /// Evaluates against one raw record.
    pub fn is_match(&self, record: &[u8]) -> bool {
        match self {
            CompiledPattern::Find(f) => f.is_match(record),
            CompiledPattern::KeyThenValue { key, value, delim } => {
                let mut pos = 0;
                while let Some(at) = key.find_from(record, pos) {
                    let wstart = at + key.len();
                    let wend = delim.find_from(record, wstart).unwrap_or(record.len());
                    if value.find_from(&record[..wend], wstart).is_some() {
                        return true;
                    }
                    pos = at + 1;
                }
                false
            }
        }
    }

    /// Total pattern bytes, mirroring [`Pattern::pattern_len`].
    pub fn pattern_len(&self) -> usize {
        match self {
            CompiledPattern::Find(f) => f.len(),
            CompiledPattern::KeyThenValue { key, value, .. } => key.len() + value.len(),
        }
    }
}

/// A compiled disjunctive clause: matches when any disjunct matches.
#[derive(Debug, Clone)]
pub struct CompiledClause {
    patterns: Vec<CompiledPattern>,
}

impl CompiledClause {
    /// Compiles a clause pattern.
    pub fn new(clause: &ClausePattern) -> CompiledClause {
        CompiledClause {
            patterns: clause.patterns.iter().map(CompiledPattern::new).collect(),
        }
    }

    /// Evaluates the disjunction against one raw record.
    #[inline]
    pub fn is_match(&self, record: &[u8]) -> bool {
        self.patterns.iter().any(|p| p.is_match(record))
    }

    /// Number of disjunct patterns.
    pub fn arity(&self) -> usize {
        self.patterns.len()
    }

    /// Summed pattern bytes across disjuncts.
    pub fn pattern_len(&self) -> usize {
        self.patterns.iter().map(CompiledPattern::pattern_len).sum()
    }
}

/// One-shot pattern match (compiles throwaway searchers).
pub fn match_pattern(record: &str, pattern: &Pattern) -> bool {
    CompiledPattern::new(pattern).is_match(record.as_bytes())
}

/// One-shot clause match.
pub fn match_clause(record: &str, clause: &ClausePattern) -> bool {
    CompiledClause::new(clause).is_match(record.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_predicate::{compile_clause, compile_simple, Clause, SimplePredicate};

    fn pat(p: &SimplePredicate) -> Pattern {
        compile_simple(p).expect("pushable")
    }

    #[test]
    fn exact_match_quoted_operand() {
        let p = pat(&SimplePredicate::StrEq {
            key: "name".into(),
            value: "Bob".into(),
        });
        assert!(match_pattern(r#"{"name":"Bob","age":22}"#, &p));
        assert!(!match_pattern(r#"{"name":"Alice","age":22}"#, &p));
        // False positive by design: "Bob" under a different key still hits.
        assert!(match_pattern(r#"{"friend":"Bob"}"#, &p));
        // Substring of a longer value does NOT hit (quotes anchor it).
        assert!(!match_pattern(r#"{"name":"Bobby"}"#, &p));
    }

    #[test]
    fn substring_match() {
        let p = pat(&SimplePredicate::StrContains {
            key: "text".into(),
            needle: "delicious".into(),
        });
        assert!(match_pattern(r#"{"text":"so delicious!"}"#, &p));
        assert!(!match_pattern(r#"{"text":"awful"}"#, &p));
        // False positive: needle in another field is still a hit.
        assert!(match_pattern(r#"{"title":"delicious"}"#, &p));
    }

    #[test]
    fn key_presence() {
        let p = pat(&SimplePredicate::NotNull {
            key: "email".into(),
        });
        assert!(match_pattern(r#"{"email":"x@y.z"}"#, &p));
        assert!(!match_pattern(r#"{"phone":"123"}"#, &p));
        // False positive: key present but null still matches raw.
        assert!(match_pattern(r#"{"email":null}"#, &p));
    }

    #[test]
    fn key_value_two_phase() {
        let p = pat(&SimplePredicate::IntEq {
            key: "age".into(),
            value: 10,
        });
        assert!(match_pattern(r#"{"age":10,"x":1}"#, &p));
        assert!(match_pattern(r#"{"x":1,"age":10}"#, &p)); // value at end, no trailing comma
        assert!(!match_pattern(r#"{"age":11,"x":10}"#, &p)); // 10 after the comma
        assert!(!match_pattern(r#"{"x":10}"#, &p)); // key absent
    }

    #[test]
    fn key_value_false_positive_on_prefix_digits() {
        // "age":100 contains the digits "10" in the window — a false
        // positive the server must re-verify away.
        let p = pat(&SimplePredicate::IntEq {
            key: "age".into(),
            value: 10,
        });
        assert!(match_pattern(r#"{"age":100}"#, &p));
    }

    #[test]
    fn key_value_checks_every_key_occurrence() {
        // The first occurrence of `"age"` is a *nested* key whose window
        // (up to the next comma) lacks "10"; the real top-level pair
        // comes later. First-occurrence-only matching would produce a
        // false negative — the failure mode CIAO forbids.
        let rec = r#"{"person":{"age":99},"age":10}"#;
        let p = pat(&SimplePredicate::IntEq {
            key: "age".into(),
            value: 10,
        });
        assert!(match_pattern(rec, &p));
    }

    #[test]
    fn bool_key_value() {
        let p = pat(&SimplePredicate::BoolEq {
            key: "isActive".into(),
            value: true,
        });
        assert!(match_pattern(r#"{"isActive":true}"#, &p));
        assert!(!match_pattern(r#"{"isActive":false}"#, &p));
    }

    #[test]
    fn clause_disjunction() {
        let clause = Clause::new(vec![
            SimplePredicate::StrEq {
                key: "name".into(),
                value: "Bob".into(),
            },
            SimplePredicate::StrEq {
                key: "name".into(),
                value: "John".into(),
            },
        ]);
        let cp = compile_clause(&clause).unwrap();
        assert!(match_clause(r#"{"name":"John"}"#, &cp));
        assert!(match_clause(r#"{"name":"Bob"}"#, &cp));
        assert!(!match_clause(r#"{"name":"Carol"}"#, &cp));
        let cc = CompiledClause::new(&cp);
        assert_eq!(cc.arity(), 2);
        assert_eq!(cc.pattern_len(), 11);
    }

    #[test]
    fn compiled_reuse_matches_one_shot() {
        let p = pat(&SimplePredicate::IntEq {
            key: "stars".into(),
            value: 5,
        });
        let compiled = CompiledPattern::new(&p);
        for rec in [
            r#"{"stars":5}"#,
            r#"{"stars":4}"#,
            r#"{"stars":50}"#,
            r#"{"rating":5}"#,
        ] {
            assert_eq!(
                compiled.is_match(rec.as_bytes()),
                match_pattern(rec, &p),
                "{rec}"
            );
        }
    }
}
