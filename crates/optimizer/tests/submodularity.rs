//! Property tests for the optimization core:
//!
//! 1. `f` is monotone and submodular on random instances (the paper's
//!    §V-B proof, checked empirically):
//!    `f(S) + f(T) ≥ f(S∪T) + f(S∩T)`.
//! 2. The combined greedy stays within the Khuller–Moss–Naor
//!    `½(1−1/e)` bound of the exhaustive optimum.
//! 3. Greedy outputs are always budget-feasible.

use ciao_optimizer::{solve, solve_exhaustive, solve_partial_enum, Candidate, Instance, QueryRef};
use ciao_predicate::{Clause, SimplePredicate};
use proptest::prelude::*;

fn clause(tag: usize) -> Clause {
    Clause::single(SimplePredicate::IntEq {
        key: format!("k{tag}"),
        value: tag as i64,
    })
}

/// Random instance: up to 10 candidates, up to 6 queries, each query
/// referencing a random non-empty candidate subset.
fn arb_instance() -> impl Strategy<Value = Instance> {
    (2usize..=10, 1usize..=6).prop_flat_map(|(n, m)| {
        let candidates = prop::collection::vec((0.01f64..=1.0, 0.1f64..=5.0), n);
        let queries =
            prop::collection::vec((prop::collection::vec(0..n, 1..=n.min(4)), 0.1f64..=2.0), m);
        let budget = 0.0f64..=12.0;
        (candidates, queries, budget).prop_map(move |(cands, qs, budget)| Instance {
            candidates: cands
                .into_iter()
                .enumerate()
                .map(|(i, (selectivity, cost))| Candidate {
                    clause: clause(i),
                    selectivity,
                    cost,
                })
                .collect(),
            queries: qs
                .into_iter()
                .enumerate()
                .map(|(i, (mut cand_idxs, freq))| {
                    cand_idxs.sort_unstable();
                    cand_idxs.dedup();
                    QueryRef {
                        name: format!("q{i}"),
                        freq,
                        candidates: cand_idxs,
                    }
                })
                .collect(),
            budget,
        })
    })
}

/// A random subset mask of size `n`, derived from a u64 seed.
fn mask_from_bits(bits: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| bits >> (i % 64) & 1 == 1).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn objective_is_submodular(inst in arb_instance(), s_bits: u64, t_bits: u64) {
        let n = inst.len();
        let s = mask_from_bits(s_bits, n);
        let t = mask_from_bits(t_bits, n);
        let union: Vec<bool> = s.iter().zip(&t).map(|(a, b)| *a || *b).collect();
        let inter: Vec<bool> = s.iter().zip(&t).map(|(a, b)| *a && *b).collect();
        let lhs = inst.objective(&s) + inst.objective(&t);
        let rhs = inst.objective(&union) + inst.objective(&inter);
        prop_assert!(
            lhs >= rhs - 1e-9,
            "submodularity violated: f(S)+f(T)={lhs} < f(S∪T)+f(S∩T)={rhs}"
        );
    }

    #[test]
    fn objective_is_monotone(inst in arb_instance(), s_bits: u64, extra in 0usize..10) {
        let n = inst.len();
        let s = mask_from_bits(s_bits, n);
        let mut bigger = s.clone();
        bigger[extra % n] = true;
        prop_assert!(inst.objective(&bigger) >= inst.objective(&s) - 1e-12);
    }

    #[test]
    fn objective_bounded(inst in arb_instance(), s_bits: u64) {
        let s = mask_from_bits(s_bits, inst.len());
        let f = inst.objective(&s);
        prop_assert!(f >= -1e-12);
        prop_assert!(f <= inst.objective_upper_bound() + 1e-12);
    }

    #[test]
    fn greedy_within_bound_of_optimal(inst in arb_instance()) {
        let opt = solve_exhaustive(&inst);
        let report = solve(&inst);
        let bound = 0.5 * (1.0 - (-1.0f64).exp());
        prop_assert!(
            report.best().objective >= bound * opt.objective - 1e-9,
            "greedy {} < {} × optimal {}",
            report.best().objective,
            bound,
            opt.objective
        );
        // Greedy can never beat the optimum.
        prop_assert!(report.best().objective <= opt.objective + 1e-9);
    }

    #[test]
    fn partial_enum_dominates_greedy_and_respects_bound(inst in arb_instance()) {
        let opt = solve_exhaustive(&inst);
        let greedy = solve(&inst);
        let pe = solve_partial_enum(&inst, 2);
        prop_assert!(pe.objective >= greedy.best().objective - 1e-9,
            "partial enum {} below greedy {}", pe.objective, greedy.best().objective);
        prop_assert!(pe.objective <= opt.objective + 1e-9);
        let bound = 1.0 - (-1.0f64).exp();
        prop_assert!(pe.objective >= bound * opt.objective - 1e-9,
            "partial enum {} below (1-1/e) × optimal {}", pe.objective, opt.objective);
        prop_assert!(pe.cost <= inst.budget + 1e-9);
    }

    #[test]
    fn greedy_selections_feasible(inst in arb_instance()) {
        let report = solve(&inst);
        for sel in [&report.benefit_greedy, &report.ratio_greedy] {
            prop_assert!(sel.cost <= inst.budget + 1e-9);
            let mask = sel.mask(inst.len());
            prop_assert!(inst.is_feasible(&mask));
            // Reported objective must match a recomputation.
            prop_assert!((inst.objective(&mask) - sel.objective).abs() < 1e-9);
        }
    }

    #[test]
    fn no_duplicate_selections(inst in arb_instance()) {
        let report = solve(&inst);
        for sel in [&report.benefit_greedy, &report.ratio_greedy] {
            let mut seen = std::collections::HashSet::new();
            for &i in &sel.selected {
                prop_assert!(seen.insert(i), "candidate {i} selected twice");
            }
        }
    }
}
