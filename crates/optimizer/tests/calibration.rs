//! End-to-end cost-model calibration against the simulated hardware
//! profiles — the Table IV pipeline in miniature.

use ciao_client::HardwareProfile;
use ciao_optimizer::{CalibrationSample, CostModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates calibration samples the way the paper does (§VII-F): 100
/// random predicates evaluated over a sample, recording time and
/// selectivity for each.
fn calibrate(hw: &HardwareProfile, seed: u64) -> CostModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::new();
    for _ in 0..100 {
        let pattern_len = rng.gen_range(3.0..30.0f64);
        let record_len = rng.gen_range(80.0..1500.0f64);
        let selectivity = rng.gen_range(0.0..1.0f64);
        // Average many per-record measurements, as a real harness would.
        let reps = 50;
        let measured: f64 = (0..reps)
            .map(|_| hw.measure(pattern_len, record_len, selectivity, &mut rng))
            .sum::<f64>()
            / reps as f64;
        samples.push(CalibrationSample {
            pattern_len,
            record_len,
            selectivity,
            measured_micros: measured,
        });
    }
    CostModel::fit(&samples).expect("well-conditioned calibration")
}

#[test]
fn bare_metal_fits_well() {
    let model = calibrate(&HardwareProfile::local_server(), 11);
    assert!(
        model.r_squared > 0.80,
        "local server R² = {} too low",
        model.r_squared
    );
}

#[test]
fn cluster_fits_best() {
    let pku = calibrate(&HardwareProfile::pku_weiming(), 13);
    assert!(pku.r_squared > 0.93, "PKU R² = {}", pku.r_squared);
}

#[test]
fn cloud_fits_worst() {
    let local = calibrate(&HardwareProfile::local_server(), 17);
    let cloud = calibrate(&HardwareProfile::alibaba_cloud(), 17);
    let pku = calibrate(&HardwareProfile::pku_weiming(), 17);
    // Table IV ordering: PKU (0.978) > local (0.897) > cloud (0.666).
    assert!(
        pku.r_squared > local.r_squared,
        "pku {} vs local {}",
        pku.r_squared,
        local.r_squared
    );
    assert!(
        local.r_squared > cloud.r_squared,
        "local {} vs cloud {}",
        local.r_squared,
        cloud.r_squared
    );
}

#[test]
fn calibrated_model_predicts_truth() {
    let hw = HardwareProfile::pku_weiming();
    let model = calibrate(&hw, 23);
    // Predictions should track the profile's ground-truth model.
    for (lp, lt, sel) in [(5.0, 100.0, 0.1), (20.0, 800.0, 0.5), (10.0, 400.0, 0.9)] {
        let truth = hw.true_cost(lp, lt, sel);
        let pred = model.predict(lp, lt, sel);
        assert!(
            (pred - truth).abs() / truth < 0.25,
            "prediction {pred} far from truth {truth} at ({lp},{lt},{sel})"
        );
    }
}
