//! Ordinary least squares, from scratch.
//!
//! The cost model of §V-D is linear in five features; the paper fits it
//! with multivariate linear regression and reports R² per platform
//! (Table IV). This module solves the normal equations `XᵀX β = Xᵀy`
//! by Gaussian elimination with partial pivoting — more than adequate
//! for 5-feature problems — and computes R².

/// A fitted linear model.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsFit {
    /// Coefficients, one per feature column.
    pub beta: Vec<f64>,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
}

impl OlsFit {
    /// Predicts `y` for one feature row.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.beta.len(), "feature arity mismatch");
        features.iter().zip(&self.beta).map(|(x, b)| x * b).sum()
    }
}

/// Why a fit could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegressionError {
    /// Fewer samples than features.
    Underdetermined {
        /// Sample count.
        samples: usize,
        /// Feature count.
        features: usize,
    },
    /// Feature rows of inconsistent arity.
    RaggedRows,
    /// `XᵀX` is singular (collinear features).
    Singular,
}

impl std::fmt::Display for RegressionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegressionError::Underdetermined { samples, features } => write!(
                f,
                "underdetermined system: {samples} samples for {features} features"
            ),
            RegressionError::RaggedRows => write!(f, "feature rows have inconsistent lengths"),
            RegressionError::Singular => write!(f, "normal equations are singular"),
        }
    }
}

impl std::error::Error for RegressionError {}

/// Fits `y ≈ X β` by OLS. `x` is row-major: one inner slice per sample.
// Index-based loops mirror the textbook normal-equation formulation;
// iterator adaptors obscure the symmetric-matrix structure here.
#[allow(clippy::needless_range_loop)]
pub fn ols_fit(x: &[Vec<f64>], y: &[f64]) -> Result<OlsFit, RegressionError> {
    let n = x.len();
    assert_eq!(n, y.len(), "feature/target length mismatch");
    let Some(first) = x.first() else {
        return Err(RegressionError::Underdetermined {
            samples: 0,
            features: 0,
        });
    };
    let k = first.len();
    if x.iter().any(|row| row.len() != k) {
        return Err(RegressionError::RaggedRows);
    }
    if n < k {
        return Err(RegressionError::Underdetermined {
            samples: n,
            features: k,
        });
    }

    // Normal equations: A = XᵀX (k×k), b = Xᵀy (k).
    let mut a = vec![vec![0.0f64; k]; k];
    let mut b = vec![0.0f64; k];
    for (row, &target) in x.iter().zip(y) {
        for i in 0..k {
            b[i] += row[i] * target;
            for j in i..k {
                a[i][j] += row[i] * row[j];
            }
        }
    }
    for i in 0..k {
        for j in 0..i {
            a[i][j] = a[j][i];
        }
    }

    let beta = solve_linear(a, b).ok_or(RegressionError::Singular)?;

    // R² against the training data.
    let fit = OlsFit {
        r_squared: 0.0,
        beta,
    };
    let predictions: Vec<f64> = x.iter().map(|row| fit.predict(row)).collect();
    let r2 = r_squared(y, &predictions);
    Ok(OlsFit {
        r_squared: r2,
        ..fit
    })
}

/// `R² = 1 − Σ(y−ŷ)² / Σ(y−ȳ)²`. Returns 1.0 when the targets are
/// constant and perfectly predicted, 0.0 when constant but mispredicted.
pub fn r_squared(y: &[f64], y_hat: &[f64]) -> f64 {
    assert_eq!(y.len(), y_hat.len(), "length mismatch");
    if y.is_empty() {
        return 1.0;
    }
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    let ss_res: f64 = y.iter().zip(y_hat).map(|(a, b)| (a - b).powi(2)).sum();
    let ss_tot: f64 = y.iter().map(|a| (a - mean).powi(2)).sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
#[allow(clippy::needless_range_loop)]
fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot: largest absolute value in this column at/below `col`.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite matrix entries")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                a[row][j] -= factor * a[col][j];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for j in i + 1..n {
            sum -= a[i][j] * x[j];
        }
        x[i] = sum / a[i][i];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_on_noiseless_data() {
        // y = 2a + 3b + 1 (with an intercept column of ones).
        let x: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let a = i as f64;
                let b = (i * i % 7) as f64;
                vec![a, b, 1.0]
            })
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] + 3.0 * r[1] + 1.0).collect();
        let fit = ols_fit(&x, &y).unwrap();
        assert!((fit.beta[0] - 2.0).abs() < 1e-9);
        assert!((fit.beta[1] - 3.0).abs() < 1e-9);
        assert!((fit.beta[2] - 1.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn noisy_fit_has_lower_r2() {
        // Deterministic pseudo-noise.
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 1.0]).collect();
        let noise = |i: usize| ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
        let y_clean: Vec<f64> = x.iter().map(|r| 0.5 * r[0] + 2.0).collect();
        let y_noisy: Vec<f64> = y_clean
            .iter()
            .enumerate()
            .map(|(i, v)| v + 20.0 * noise(i))
            .collect();
        let clean = ols_fit(&x, &y_clean).unwrap();
        let noisy = ols_fit(&x, &y_noisy).unwrap();
        assert!(clean.r_squared > noisy.r_squared);
        assert!(noisy.r_squared > 0.5, "slope still dominates the noise");
    }

    #[test]
    fn underdetermined_rejected() {
        let x = vec![vec![1.0, 2.0, 3.0]];
        let y = vec![1.0];
        assert_eq!(
            ols_fit(&x, &y).unwrap_err(),
            RegressionError::Underdetermined {
                samples: 1,
                features: 3
            }
        );
        assert!(matches!(
            ols_fit(&[], &[]).unwrap_err(),
            RegressionError::Underdetermined { .. }
        ));
    }

    #[test]
    fn ragged_rows_rejected() {
        let x = vec![vec![1.0, 2.0], vec![1.0]];
        let y = vec![1.0, 2.0];
        assert_eq!(ols_fit(&x, &y).unwrap_err(), RegressionError::RaggedRows);
    }

    #[test]
    fn collinear_features_singular() {
        // Second column is 2× the first.
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(ols_fit(&x, &y).unwrap_err(), RegressionError::Singular);
    }

    #[test]
    fn r_squared_edges() {
        assert_eq!(r_squared(&[], &[]), 1.0);
        assert_eq!(r_squared(&[3.0, 3.0], &[3.0, 3.0]), 1.0);
        assert_eq!(r_squared(&[3.0, 3.0], &[1.0, 5.0]), 0.0);
        // Predicting the mean gives exactly 0.
        let y = [1.0, 2.0, 3.0];
        let mean = [2.0, 2.0, 2.0];
        assert!(r_squared(&y, &mean).abs() < 1e-12);
        // Worse than the mean goes negative.
        assert!(r_squared(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) < 0.0);
    }

    #[test]
    fn predict_checks_arity() {
        let fit = OlsFit {
            beta: vec![1.0, 2.0],
            r_squared: 1.0,
        };
        assert_eq!(fit.predict(&[3.0, 4.0]), 11.0);
    }
}
