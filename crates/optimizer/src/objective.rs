//! Problem instance and objective function.

use ciao_predicate::{Clause, Query, SelectivityMap};

/// One pushdown candidate: a pushable clause with its estimated
/// selectivity and modeled client-side evaluation cost.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The clause itself.
    pub clause: Clause,
    /// Estimated fraction of records satisfying the clause, in `[0,1]`.
    pub selectivity: f64,
    /// Modeled cost of evaluating the clause on one record (µs).
    pub cost: f64,
}

/// A query projected onto the candidate set: its frequency and the
/// indices of its clauses that are candidates (`P_i`).
#[derive(Debug, Clone)]
pub struct QueryRef {
    /// Query name (reporting only).
    pub name: String,
    /// Relative frequency `freq(q)`.
    pub freq: f64,
    /// Indices into [`Instance::candidates`].
    pub candidates: Vec<usize>,
}

/// A fully specified selection problem.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Deduplicated candidate clauses.
    pub candidates: Vec<Candidate>,
    /// Queries with candidate references.
    pub queries: Vec<QueryRef>,
    /// Knapsack budget `B` (µs per record).
    pub budget: f64,
}

impl Instance {
    /// Evaluates `f(S)` for a selection given as a boolean mask over
    /// candidates.
    pub fn objective(&self, selected: &[bool]) -> f64 {
        assert_eq!(
            selected.len(),
            self.candidates.len(),
            "mask length mismatch"
        );
        self.queries
            .iter()
            .map(|q| q.freq * self.query_benefit(q, selected))
            .sum()
    }

    /// `f(q, S) = 1 − Π_{p ∈ P_q ∩ S} sel(p)`; 0 when no clause of `q`
    /// is selected (empty product = 1).
    pub fn query_benefit(&self, q: &QueryRef, selected: &[bool]) -> f64 {
        let mut product = 1.0;
        let mut any = false;
        for &i in &q.candidates {
            if selected[i] {
                product *= self.candidates[i].selectivity;
                any = true;
            }
        }
        if any {
            1.0 - product
        } else {
            0.0
        }
    }

    /// Total modeled cost of a selection.
    pub fn total_cost(&self, selected: &[bool]) -> f64 {
        selected
            .iter()
            .zip(&self.candidates)
            .filter_map(|(&s, c)| s.then_some(c.cost))
            .sum()
    }

    /// True when the selection respects the budget.
    pub fn is_feasible(&self, selected: &[bool]) -> bool {
        self.total_cost(selected) <= self.budget + 1e-9
    }

    /// Upper bound on `f`: every query fully filtered.
    pub fn objective_upper_bound(&self) -> f64 {
        self.queries.iter().map(|q| q.freq).sum()
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True when there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

/// Builds an [`Instance`] from a workload: dedups pushable clauses
/// across queries, attaches selectivities and costs, drops
/// non-candidates (paper §V-A).
#[derive(Debug)]
pub struct InstanceBuilder<'a> {
    selectivities: &'a SelectivityMap,
    budget: f64,
}

impl<'a> InstanceBuilder<'a> {
    /// Creates a builder with the estimated selectivities and budget.
    pub fn new(selectivities: &'a SelectivityMap, budget: f64) -> Self {
        assert!(
            budget >= 0.0 && budget.is_finite(),
            "budget must be finite and non-negative"
        );
        InstanceBuilder {
            selectivities,
            budget,
        }
    }

    /// Assembles the instance. `cost_of` maps each distinct pushable
    /// clause to its modeled per-record cost (µs).
    pub fn build(&self, queries: &[Query], mut cost_of: impl FnMut(&Clause) -> f64) -> Instance {
        let mut candidates: Vec<Candidate> = Vec::new();
        let mut index: std::collections::HashMap<Clause, usize> = std::collections::HashMap::new();
        let mut query_refs = Vec::with_capacity(queries.len());

        for q in queries {
            let mut cand_idxs = Vec::new();
            for clause in q.pushable_clauses() {
                let idx = *index.entry(clause.clone()).or_insert_with(|| {
                    let cost = cost_of(clause);
                    assert!(
                        cost >= 0.0 && cost.is_finite(),
                        "cost model produced invalid cost {cost} for {clause}"
                    );
                    candidates.push(Candidate {
                        clause: clause.clone(),
                        selectivity: self.selectivities.get(clause),
                        cost,
                    });
                    candidates.len() - 1
                });
                if !cand_idxs.contains(&idx) {
                    cand_idxs.push(idx);
                }
            }
            query_refs.push(QueryRef {
                name: q.name.clone(),
                freq: q.freq,
                candidates: cand_idxs,
            });
        }

        Instance {
            candidates,
            queries: query_refs,
            budget: self.budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_predicate::{parse_query, SimplePredicate};

    fn sels(entries: &[(&str, f64)]) -> SelectivityMap {
        let mut m = SelectivityMap::with_default(1.0);
        for (text, s) in entries {
            m.insert(ciao_predicate::parse_clause(text).unwrap(), *s);
        }
        m
    }

    fn simple_instance() -> Instance {
        // q0: a AND b ; q1: b AND c — b is shared.
        let queries = vec![
            parse_query("q0", r#"name = "a" AND stars = 1"#).unwrap(),
            parse_query("q1", r#"stars = 1 AND city = "x""#).unwrap(),
        ];
        let m = sels(&[
            (r#"name = "a""#, 0.5),
            ("stars = 1", 0.2),
            (r#"city = "x""#, 0.4),
        ]);
        InstanceBuilder::new(&m, 10.0).build(&queries, |_| 1.0)
    }

    #[test]
    fn builder_dedups_shared_clauses() {
        let inst = simple_instance();
        assert_eq!(inst.len(), 3);
        assert_eq!(inst.queries.len(), 2);
        // `stars = 1` appears in both queries but is one candidate.
        let shared: Vec<_> = inst.queries.iter().map(|q| q.candidates.clone()).collect();
        let common: Vec<usize> = shared[0]
            .iter()
            .filter(|i| shared[1].contains(i))
            .copied()
            .collect();
        assert_eq!(common.len(), 1);
        assert!((inst.candidates[common[0]].selectivity - 0.2).abs() < 1e-12);
    }

    #[test]
    fn objective_matches_hand_computation() {
        let inst = simple_instance();
        // Select only the shared clause (sel 0.2).
        let shared = {
            let q0 = &inst.queries[0].candidates;
            let q1 = &inst.queries[1].candidates;
            *q0.iter().find(|i| q1.contains(i)).unwrap()
        };
        let mut mask = vec![false; inst.len()];
        mask[shared] = true;
        // f = (1-0.2) + (1-0.2) = 1.6 with uniform freq 1.
        assert!((inst.objective(&mask) - 1.6).abs() < 1e-12);
        assert!((inst.total_cost(&mask) - 1.0).abs() < 1e-12);

        // Select everything: q0: 1 - 0.5*0.2 = 0.9 ; q1: 1 - 0.2*0.4 = 0.92.
        let all = vec![true; inst.len()];
        assert!((inst.objective(&all) - (0.9 + 0.92)).abs() < 1e-12);
    }

    #[test]
    fn empty_selection_is_zero() {
        let inst = simple_instance();
        assert_eq!(inst.objective(&vec![false; inst.len()]), 0.0);
    }

    #[test]
    fn frequency_weights_scale_benefit() {
        let mut queries = vec![parse_query("q0", "stars = 1").unwrap()];
        queries[0].freq = 3.0;
        let m = sels(&[("stars = 1", 0.25)]);
        let inst = InstanceBuilder::new(&m, 5.0).build(&queries, |_| 1.0);
        assert!((inst.objective(&[true]) - 3.0 * 0.75).abs() < 1e-12);
        assert!((inst.objective_upper_bound() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn unsupported_clauses_excluded() {
        let queries = vec![parse_query("q0", r#"stars = 1 AND age < 30"#).unwrap()];
        let m = sels(&[("stars = 1", 0.2)]);
        let inst = InstanceBuilder::new(&m, 5.0).build(&queries, |_| 1.0);
        // Only `stars = 1` is a candidate; the range clause is dropped.
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.queries[0].candidates.len(), 1);
    }

    #[test]
    fn clause_with_unsupported_disjunct_excluded() {
        use ciao_predicate::{Clause, Query};
        let mixed = Clause::new(vec![
            SimplePredicate::StrEq {
                key: "a".into(),
                value: "x".into(),
            },
            SimplePredicate::FloatEq {
                key: "b".into(),
                value: 2.4,
            },
        ]);
        let q = Query::new("q", vec![mixed]);
        let m = SelectivityMap::with_default(1.0);
        let inst = InstanceBuilder::new(&m, 5.0).build(&[q], |_| 1.0);
        assert!(inst.is_empty());
    }

    #[test]
    fn feasibility() {
        let inst = simple_instance();
        let all = vec![true; inst.len()];
        assert!(inst.is_feasible(&all)); // 3 × 1.0 ≤ 10
        let tight = Instance {
            budget: 2.5,
            ..inst
        };
        assert!(!tight.is_feasible(&all));
    }

    #[test]
    fn duplicate_clause_within_query_counted_once() {
        // Same clause twice in one query must not square its selectivity.
        let q = parse_query("q", r#"stars = 1 AND stars = 1"#).unwrap();
        let m = sels(&[("stars = 1", 0.5)]);
        let inst = InstanceBuilder::new(&m, 5.0).build(&[q], |_| 1.0);
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.queries[0].candidates.len(), 1);
        assert!((inst.objective(&[true]) - 0.5).abs() < 1e-12);
    }
}
