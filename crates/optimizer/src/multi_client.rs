//! Multi-client budget allocation.
//!
//! The paper's abstract promises that CIAO "will address the trade-off
//! between client cost and server savings by setting different budgets
//! for different clients". This module implements that extension: given
//! a fleet of heterogeneous clients (each with a speed factor and a
//! share of the incoming data) and one **global** budget pool, allocate
//! per-client predicate sets.
//!
//! The objective is `Σ_c share(c) · f(S_c)` — each client's selection
//! only filters the records that client produces. A predicate costs
//! `speed(c) · cost(p)` on client `c` (slow edge devices pay more for
//! the same search). This remains monotone submodular over the ground
//! set `clients × candidates`, so the same greedy-pair recipe applies;
//! we expose the ratio greedy, which dominates in practice for the
//! water-filling shape of this problem, plus the plain variant for
//! ablation.

use crate::objective::Instance;

/// One client's hardware/share description.
#[derive(Debug, Clone)]
pub struct ClientSpec {
    /// Display name.
    pub name: String,
    /// Cost multiplier relative to the calibration platform (2.0 =
    /// twice as slow).
    pub speed_factor: f64,
    /// Fraction of incoming records produced by this client (weights
    /// its filtering benefit). Need not sum to 1 across clients.
    pub data_share: f64,
}

impl ClientSpec {
    /// Creates a spec, validating ranges.
    pub fn new(name: impl Into<String>, speed_factor: f64, data_share: f64) -> ClientSpec {
        assert!(
            speed_factor > 0.0 && speed_factor.is_finite(),
            "speed factor must be positive"
        );
        assert!(
            data_share >= 0.0 && data_share.is_finite(),
            "data share must be non-negative"
        );
        ClientSpec {
            name: name.into(),
            speed_factor,
            data_share,
        }
    }
}

/// The allocation outcome.
#[derive(Debug, Clone)]
pub struct MultiClientPlan {
    /// Per-client selected candidate indices (into the instance's
    /// candidate list), parallel to the input client slice.
    pub selections: Vec<Vec<usize>>,
    /// Per-client spent budget (µs/record on that client's hardware).
    pub spent: Vec<f64>,
    /// Weighted objective achieved.
    pub objective: f64,
}

impl MultiClientPlan {
    /// Total budget consumed across clients.
    pub fn total_spent(&self) -> f64 {
        self.spent.iter().sum()
    }
}

/// Greedily allocates a global budget across clients by benefit-cost
/// ratio over (client, candidate) pairs.
///
/// `instance.budget` is interpreted as the **global** pool; a pick of
/// candidate `p` on client `c` consumes `speed(c) · cost(p)` from it.
pub fn allocate_budgets(instance: &Instance, clients: &[ClientSpec]) -> MultiClientPlan {
    let n = instance.len();
    let m = clients.len();
    let mut masks: Vec<Vec<bool>> = vec![vec![false; n]; m];
    let mut objs: Vec<f64> = vec![0.0; m];
    let mut spent = vec![0.0f64; m];
    let mut pool = instance.budget;
    let mut total_obj = 0.0;

    loop {
        let mut best: Option<(usize, usize, f64, f64, f64)> = None; // (c, p, ratio, gain, cost)
        for (c, client) in clients.iter().enumerate() {
            for p in 0..n {
                if masks[c][p] {
                    continue;
                }
                let cost = instance.candidates[p].cost * client.speed_factor;
                if cost > pool + 1e-9 {
                    continue;
                }
                masks[c][p] = true;
                let obj = instance.objective(&masks[c]);
                masks[c][p] = false;
                let gain = client.data_share * (obj - objs[c]);
                if gain <= 1e-15 {
                    continue;
                }
                let ratio = if cost > 0.0 {
                    gain / cost
                } else {
                    f64::INFINITY
                };
                if best.is_none_or(|(_, _, br, _, _)| ratio > br + 1e-15) {
                    best = Some((c, p, ratio, gain, cost));
                }
            }
        }
        let Some((c, p, _, gain, cost)) = best else {
            break;
        };
        masks[c][p] = true;
        objs[c] += gain / clients[c].data_share.max(f64::MIN_POSITIVE);
        spent[c] += cost;
        pool -= cost;
        total_obj += gain;
    }

    MultiClientPlan {
        selections: masks
            .iter()
            .map(|mask| (0..n).filter(|&i| mask[i]).collect())
            .collect(),
        spent,
        objective: total_obj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{Candidate, QueryRef};
    use ciao_predicate::{Clause, SimplePredicate};

    fn clause(tag: u32) -> Clause {
        Clause::single(SimplePredicate::IntEq {
            key: format!("k{tag}"),
            value: tag as i64,
        })
    }

    fn instance(specs: &[(f64, f64)], budget: f64) -> Instance {
        Instance {
            candidates: specs
                .iter()
                .enumerate()
                .map(|(i, &(selectivity, cost))| Candidate {
                    clause: clause(i as u32),
                    selectivity,
                    cost,
                })
                .collect(),
            queries: (0..specs.len())
                .map(|i| QueryRef {
                    name: format!("q{i}"),
                    freq: 1.0,
                    candidates: vec![i],
                })
                .collect(),
            budget,
        }
    }

    #[test]
    fn fast_client_gets_work_first() {
        let inst = instance(&[(0.2, 1.0)], 1.0);
        let clients = vec![
            ClientSpec::new("slow-edge", 4.0, 0.5),
            ClientSpec::new("fast-edge", 1.0, 0.5),
        ];
        let plan = allocate_budgets(&inst, &clients);
        // Pool of 1.0 affords the predicate only on the fast client.
        assert!(plan.selections[0].is_empty());
        assert_eq!(plan.selections[1], vec![0]);
        assert!((plan.spent[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn high_share_client_prioritized() {
        let inst = instance(&[(0.2, 1.0)], 1.0);
        let clients = vec![
            ClientSpec::new("minor", 1.0, 0.1),
            ClientSpec::new("major", 1.0, 0.9),
        ];
        let plan = allocate_budgets(&inst, &clients);
        assert!(plan.selections[0].is_empty());
        assert_eq!(plan.selections[1], vec![0]);
    }

    #[test]
    fn pool_spreads_across_clients() {
        let inst = instance(&[(0.2, 1.0), (0.3, 1.0)], 4.0);
        let clients = vec![
            ClientSpec::new("a", 1.0, 0.5),
            ClientSpec::new("b", 1.0, 0.5),
        ];
        let plan = allocate_budgets(&inst, &clients);
        // Budget 4 affords both predicates on both clients.
        assert_eq!(plan.selections[0].len(), 2);
        assert_eq!(plan.selections[1].len(), 2);
        assert!((plan.total_spent() - 4.0).abs() < 1e-12);
        // Each client: share 0.5 × f = 0.5 × (0.8 + 0.7) = 0.75; total 1.5.
        assert!((plan.objective - 1.5).abs() < 1e-9);
    }

    #[test]
    fn zero_budget_allocates_nothing() {
        let inst = instance(&[(0.2, 1.0)], 0.0);
        let clients = vec![ClientSpec::new("a", 1.0, 1.0)];
        let plan = allocate_budgets(&inst, &clients);
        assert!(plan.selections[0].is_empty());
        assert_eq!(plan.objective, 0.0);
    }

    #[test]
    fn no_clients() {
        let inst = instance(&[(0.2, 1.0)], 5.0);
        let plan = allocate_budgets(&inst, &[]);
        assert!(plan.selections.is_empty());
        assert_eq!(plan.objective, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_speed_rejected() {
        ClientSpec::new("bad", 0.0, 1.0);
    }
}
