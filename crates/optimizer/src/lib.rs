//! CIAO's predicate-selection optimizer (paper §V).
//!
//! Given a workload of queries whose `WHERE` clauses are conjunctions
//! of disjunctive clauses, choose the subset `S` of (pushable) clauses
//! to evaluate on clients, maximizing the expected filtering benefit
//!
//! ```text
//! f(S) = Σ_q freq(q) · (1 − Π_{p ∈ P_q ∩ S} sel(p))
//! ```
//!
//! subject to the knapsack budget `Σ_{p∈S} cost(p) ≤ B`.
//!
//! `f` is monotone submodular (proved in §V-B; property-tested here in
//! `tests/submodularity.rs`), so the classic budgeted-max-coverage
//! recipe applies: run the plain greedy (Algorithm 1) and the
//! benefit-cost-ratio greedy (Algorithm 2), return the better of the
//! two — guaranteed within `½(1 − 1/e) ≈ 0.316` of optimal
//! (Khuller–Moss–Naor).
//!
//! The per-predicate costs come from the calibrated linear cost model
//! of §V-D ([`CostModel`]), fit with ordinary least squares
//! ([`regression`]).

#![warn(missing_docs)]

pub mod cost_model;
pub mod exhaustive;
pub mod greedy;
pub mod multi_client;
pub mod objective;
pub mod partial_enum;
pub mod regression;
pub mod solver;

pub use cost_model::{CalibrationSample, CostModel};
pub use exhaustive::solve_exhaustive;
pub use greedy::{greedy_benefit, greedy_ratio, Selection};
pub use multi_client::{allocate_budgets, ClientSpec, MultiClientPlan};
pub use objective::{Candidate, Instance, InstanceBuilder, QueryRef};
pub use partial_enum::solve_partial_enum;
pub use regression::{ols_fit, r_squared, OlsFit, RegressionError};
pub use solver::{solve, SolveReport};
