//! The two greedy algorithms of paper §V-C.
//!
//! Algorithm 1 ("naive greedy") repeatedly adds the feasible candidate
//! with the largest absolute objective gain. Algorithm 2 adds the
//! feasible candidate with the largest gain **per unit cost**. Each can
//! be arbitrarily bad alone; their maximum is a `½(1−1/e)`
//! approximation (see [`crate::solver`]).

use crate::objective::Instance;

/// The outcome of one selection algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Selected candidate indices, in the order chosen.
    pub selected: Vec<usize>,
    /// `f(S)` of the selection.
    pub objective: f64,
    /// Total modeled cost.
    pub cost: f64,
}

impl Selection {
    /// The empty selection.
    pub fn empty() -> Selection {
        Selection {
            selected: Vec::new(),
            objective: 0.0,
            cost: 0.0,
        }
    }

    /// Boolean mask over `n` candidates.
    pub fn mask(&self, n: usize) -> Vec<bool> {
        let mut m = vec![false; n];
        for &i in &self.selected {
            m[i] = true;
        }
        m
    }
}

/// Algorithm 1: pick the feasible candidate maximizing `f(S ∪ {p})`.
pub fn greedy_benefit(instance: &Instance) -> Selection {
    greedy_by(instance, |gain, _cost| gain)
}

/// Algorithm 2: pick the feasible candidate maximizing
/// `(f(S ∪ {p}) − f(S)) / cost(p)`.
pub fn greedy_ratio(instance: &Instance) -> Selection {
    greedy_by(instance, |gain, cost| {
        if cost > 0.0 {
            gain / cost
        } else {
            // Zero-cost candidates with positive gain are infinitely
            // attractive; order among them by raw gain.
            if gain > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        }
    })
}

/// Shared greedy skeleton parameterized by the scoring rule.
fn greedy_by(instance: &Instance, score: impl Fn(f64, f64) -> f64) -> Selection {
    let n = instance.len();
    let mut mask = vec![false; n];
    let mut selected = Vec::new();
    let mut current_cost = 0.0;
    let mut current_obj = 0.0;

    loop {
        let mut best: Option<(usize, f64, f64)> = None; // (idx, score, gain)
        for i in 0..n {
            if mask[i] {
                continue;
            }
            let c = instance.candidates[i].cost;
            if current_cost + c > instance.budget + 1e-9 {
                continue;
            }
            mask[i] = true;
            let obj = instance.objective(&mask);
            mask[i] = false;
            let gain = obj - current_obj;
            let s = score(gain, c);
            let better = match best {
                None => true,
                // Deterministic tie-break on index keeps runs reproducible.
                Some((_, bs, _)) => s > bs + 1e-15,
            };
            if better {
                best = Some((i, s, gain));
            }
        }
        match best {
            // Stop when nothing feasible improves the objective. The
            // paper's loop adds any feasible predicate; skipping
            // zero-gain picks changes nothing about f(S) but keeps the
            // client from burning budget on useless work.
            Some((i, _, gain)) if gain > 1e-15 => {
                mask[i] = true;
                selected.push(i);
                current_cost += instance.candidates[i].cost;
                current_obj += gain;
            }
            _ => break,
        }
    }

    Selection {
        selected,
        objective: current_obj,
        cost: current_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{Candidate, QueryRef};
    use ciao_predicate::{Clause, SimplePredicate};

    fn clause(tag: u32) -> Clause {
        Clause::single(SimplePredicate::IntEq {
            key: format!("k{tag}"),
            value: tag as i64,
        })
    }

    /// Builds an instance where each candidate i belongs to query i
    /// only (no sharing), with the given (sel, cost) pairs.
    fn disjoint_instance(specs: &[(f64, f64)], budget: f64) -> Instance {
        let candidates = specs
            .iter()
            .enumerate()
            .map(|(i, &(selectivity, cost))| Candidate {
                clause: clause(i as u32),
                selectivity,
                cost,
            })
            .collect::<Vec<_>>();
        let queries = (0..specs.len())
            .map(|i| QueryRef {
                name: format!("q{i}"),
                freq: 1.0,
                candidates: vec![i],
            })
            .collect();
        Instance {
            candidates,
            queries,
            budget,
        }
    }

    #[test]
    fn naive_greedy_prefers_raw_gain() {
        // Candidate 0: huge gain, huge cost. Candidate 1+2: smaller
        // gains, tiny costs. Budget fits either 0 alone or 1 and 2.
        let inst = disjoint_instance(&[(0.1, 10.0), (0.5, 1.0), (0.5, 1.0)], 10.0);
        let naive = greedy_benefit(&inst);
        assert_eq!(naive.selected, vec![0]);
        assert!((naive.objective - 0.9).abs() < 1e-12);
        // Ratio greedy goes for the cheap pair: 0.5 + 0.5 = 1.0 > 0.9.
        let ratio = greedy_ratio(&inst);
        assert_eq!(ratio.selected.len(), 2);
        assert!((ratio.objective - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_greedy_can_lose_to_naive() {
        // Classic counterexample: one expensive candidate with most of
        // the value vs a cheap one with a better ratio that blocks it.
        let inst = disjoint_instance(&[(0.01, 10.0), (0.2, 1.0)], 10.0);
        // ratio(0) = 0.99/10 ≈ 0.099; ratio(1) = 0.8/1 = 0.8. Ratio
        // greedy takes 1 first, then cannot afford 0 (cost 10 > 9 left).
        let ratio = greedy_ratio(&inst);
        assert_eq!(ratio.selected, vec![1]);
        let naive = greedy_benefit(&inst);
        assert_eq!(naive.selected, vec![0]);
        assert!(naive.objective > ratio.objective);
    }

    #[test]
    fn budget_respected() {
        let inst = disjoint_instance(&[(0.5, 3.0), (0.5, 3.0), (0.5, 3.0)], 7.0);
        for sel in [greedy_benefit(&inst), greedy_ratio(&inst)] {
            assert!(sel.cost <= 7.0 + 1e-9);
            assert_eq!(sel.selected.len(), 2);
        }
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let inst = disjoint_instance(&[(0.5, 1.0)], 0.0);
        assert_eq!(greedy_benefit(&inst).selected.len(), 0);
        assert_eq!(greedy_ratio(&inst).selected.len(), 0);
    }

    #[test]
    fn zero_cost_candidates_always_taken() {
        let inst = disjoint_instance(&[(0.5, 0.0), (0.9, 0.0)], 0.0);
        let sel = greedy_ratio(&inst);
        assert_eq!(sel.selected.len(), 2);
        assert!((sel.objective - 0.6).abs() < 1e-12);
    }

    #[test]
    fn useless_candidates_skipped() {
        // Selectivity 1.0 means the clause filters nothing: gain 0.
        let inst = disjoint_instance(&[(1.0, 1.0), (0.5, 1.0)], 10.0);
        let sel = greedy_benefit(&inst);
        assert_eq!(sel.selected, vec![1]);
    }

    #[test]
    fn empty_instance() {
        let inst = disjoint_instance(&[], 5.0);
        assert_eq!(greedy_benefit(&inst), Selection::empty());
    }

    #[test]
    fn shared_clause_diminishing_returns() {
        // One query with two candidates: selecting the second has a
        // smaller marginal gain (submodularity in action).
        let candidates = vec![
            Candidate {
                clause: clause(0),
                selectivity: 0.5,
                cost: 1.0,
            },
            Candidate {
                clause: clause(1),
                selectivity: 0.5,
                cost: 1.0,
            },
        ];
        let queries = vec![QueryRef {
            name: "q".into(),
            freq: 1.0,
            candidates: vec![0, 1],
        }];
        let inst = Instance {
            candidates,
            queries,
            budget: 10.0,
        };
        let sel = greedy_benefit(&inst);
        // First pick gains 0.5; second gains only 0.25.
        assert_eq!(sel.selected.len(), 2);
        assert!((sel.objective - 0.75).abs() < 1e-12);
    }

    #[test]
    fn selection_mask() {
        let sel = Selection {
            selected: vec![2, 0],
            objective: 0.0,
            cost: 0.0,
        };
        assert_eq!(sel.mask(4), vec![true, false, true, false]);
    }
}
