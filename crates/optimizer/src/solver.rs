//! The combined solver: max(Algorithm 1, Algorithm 2).
//!
//! Khuller, Moss & Naor (IPL '99) prove that for budgeted maximum
//! coverage — and by extension monotone submodular maximization under a
//! knapsack — the better of (a) plain greedy and (b) benefit-cost
//! greedy achieves at least `½(1 − 1/e) ≈ 0.316` of the optimum. The
//! paper adopts exactly this recipe (§V-C).

use crate::greedy::{greedy_benefit, greedy_ratio, Selection};
use crate::objective::Instance;

/// Everything a caller may want to inspect about one solve.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// Algorithm 1 outcome.
    pub benefit_greedy: Selection,
    /// Algorithm 2 outcome.
    pub ratio_greedy: Selection,
    /// Which algorithm won ("benefit" or "ratio").
    pub winner: &'static str,
}

impl SolveReport {
    /// The winning selection.
    pub fn best(&self) -> &Selection {
        if self.winner == "benefit" {
            &self.benefit_greedy
        } else {
            &self.ratio_greedy
        }
    }
}

/// Runs both greedy variants and returns the better selection along
/// with the full report.
pub fn solve(instance: &Instance) -> SolveReport {
    let benefit = greedy_benefit(instance);
    let ratio = greedy_ratio(instance);
    let winner = if benefit.objective >= ratio.objective {
        "benefit"
    } else {
        "ratio"
    };
    SolveReport {
        benefit_greedy: benefit,
        ratio_greedy: ratio,
        winner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{Candidate, QueryRef};
    use ciao_predicate::{Clause, SimplePredicate};

    fn clause(tag: u32) -> Clause {
        Clause::single(SimplePredicate::IntEq {
            key: format!("k{tag}"),
            value: tag as i64,
        })
    }

    fn instance(specs: &[(f64, f64)], budget: f64) -> Instance {
        Instance {
            candidates: specs
                .iter()
                .enumerate()
                .map(|(i, &(selectivity, cost))| Candidate {
                    clause: clause(i as u32),
                    selectivity,
                    cost,
                })
                .collect(),
            queries: (0..specs.len())
                .map(|i| QueryRef {
                    name: format!("q{i}"),
                    freq: 1.0,
                    candidates: vec![i],
                })
                .collect(),
            budget,
        }
    }

    #[test]
    fn picks_whichever_greedy_wins() {
        // Ratio greedy wins here (see greedy.rs tests).
        let inst = instance(&[(0.1, 10.0), (0.5, 1.0), (0.5, 1.0)], 10.0);
        let report = solve(&inst);
        assert_eq!(report.winner, "ratio");
        assert!((report.best().objective - 1.0).abs() < 1e-12);

        // Naive greedy wins here.
        let inst2 = instance(&[(0.01, 10.0), (0.2, 1.0)], 10.0);
        let report2 = solve(&inst2);
        assert_eq!(report2.winner, "benefit");
        assert!((report2.best().objective - 0.99).abs() < 1e-12);
    }

    #[test]
    fn best_is_max_of_both() {
        let inst = instance(&[(0.3, 2.0), (0.6, 1.0), (0.2, 4.0)], 5.0);
        let report = solve(&inst);
        assert!(
            report.best().objective
                >= report
                    .benefit_greedy
                    .objective
                    .max(report.ratio_greedy.objective)
                    - 1e-12
        );
    }

    #[test]
    fn ties_prefer_benefit_label() {
        let inst = instance(&[(0.5, 1.0)], 10.0);
        let report = solve(&inst);
        assert_eq!(report.winner, "benefit");
    }
}
