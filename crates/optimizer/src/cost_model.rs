//! The client-side predicate evaluation cost model (paper §V-D).
//!
//! ```text
//! T = sel(p) · (k1·len(p) + k2·len(t))
//!   + (1 − sel(p)) · (k3·len(p) + k4·len(t))
//!   + c
//! ```
//!
//! `len(p)` is the pattern-string length, `len(t)` the mean record
//! length, and the two branches model the found / not-found cases of a
//! substring search. The five constants are hardware-dependent and
//! estimated from historical measurements by OLS ([`CostModel::fit`]).
//! A disjunctive clause costs the sum of its disjuncts' costs.

use crate::regression::{ols_fit, RegressionError};
use ciao_predicate::{ClausePattern, Pattern};
use serde::{Deserialize, Serialize};

/// One calibration observation: a predicate evaluated over a sample of
/// records, with its measured mean per-record cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationSample {
    /// Pattern string length (bytes).
    pub pattern_len: f64,
    /// Mean record length (bytes).
    pub record_len: f64,
    /// Observed selectivity of the pattern, in `[0,1]`.
    pub selectivity: f64,
    /// Measured mean evaluation cost (µs per record).
    pub measured_micros: f64,
}

impl CalibrationSample {
    /// The §V-D feature vector `[sel·lp, sel·lt, (1−sel)·lp, (1−sel)·lt, 1]`.
    pub fn features(&self) -> Vec<f64> {
        let s = self.selectivity;
        vec![
            s * self.pattern_len,
            s * self.record_len,
            (1.0 - s) * self.pattern_len,
            (1.0 - s) * self.record_len,
            1.0,
        ]
    }
}

/// A calibrated cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// `[k1, k2, k3, k4]` in µs per byte.
    pub k: [f64; 4],
    /// Startup cost `c` in µs.
    pub c: f64,
    /// Goodness of fit from calibration (1.0 for hand-built models).
    pub r_squared: f64,
}

impl CostModel {
    /// A model with explicitly chosen coefficients.
    pub fn from_coefficients(k: [f64; 4], c: f64) -> CostModel {
        CostModel {
            k,
            c,
            r_squared: 1.0,
        }
    }

    /// A deliberately simple default used when no calibration data is
    /// available: symmetric found/not-found costs of ~1 ns/byte on the
    /// record and 4 ns/byte on the pattern, 50 ns startup. Matches the
    /// order of magnitude of `string::find` on commodity hardware.
    pub fn default_uncalibrated() -> CostModel {
        CostModel {
            k: [0.004, 0.001, 0.004, 0.001],
            c: 0.05,
            r_squared: 1.0,
        }
    }

    /// Fits the model from calibration samples by OLS.
    pub fn fit(samples: &[CalibrationSample]) -> Result<CostModel, RegressionError> {
        let x: Vec<Vec<f64>> = samples.iter().map(CalibrationSample::features).collect();
        let y: Vec<f64> = samples.iter().map(|s| s.measured_micros).collect();
        let fit = ols_fit(&x, &y)?;
        Ok(CostModel {
            k: [fit.beta[0], fit.beta[1], fit.beta[2], fit.beta[3]],
            c: fit.beta[4],
            r_squared: fit.r_squared,
        })
    }

    /// Expected cost (µs) of one substring search with the given
    /// pattern length, record length, and hit probability.
    pub fn predict(&self, pattern_len: f64, record_len: f64, selectivity: f64) -> f64 {
        let s = selectivity.clamp(0.0, 1.0);
        let found = self.k[0] * pattern_len + self.k[1] * record_len;
        let missed = self.k[2] * pattern_len + self.k[3] * record_len;
        (s * found + (1.0 - s) * missed + self.c).max(0.0)
    }

    /// Cost of one compiled pattern (a key-value match is two searches:
    /// the key probe plus the windowed value probe).
    pub fn pattern_cost(&self, pattern: &Pattern, record_len: f64, selectivity: f64) -> f64 {
        match pattern {
            Pattern::Find { needle } => self.predict(needle.len() as f64, record_len, selectivity),
            Pattern::KeyThenValue { key, value } => {
                // The key probe scans the record; the value probe scans
                // only the (short) window, modeled as a small constant
                // fraction of the record.
                let key_cost = self.predict(key.len() as f64, record_len, selectivity);
                let window = (record_len / 8.0).max(value.len() as f64);
                let value_cost = self.predict(value.len() as f64, window, selectivity);
                key_cost + value_cost
            }
        }
    }

    /// Cost of a disjunctive clause: sum over disjunct patterns (§V-D).
    pub fn clause_cost(&self, clause: &ClausePattern, record_len: f64, selectivity: f64) -> f64 {
        clause
            .patterns
            .iter()
            .map(|p| self.pattern_cost(p, record_len, selectivity))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_matches_formula() {
        let m = CostModel::from_coefficients([0.004, 0.0011, 0.002, 0.0009], 0.05);
        let (lp, lt, s) = (12.0, 300.0, 0.25);
        let expected =
            s * (0.004 * lp + 0.0011 * lt) + (1.0 - s) * (0.002 * lp + 0.0009 * lt) + 0.05;
        assert!((m.predict(lp, lt, s) - expected).abs() < 1e-12);
    }

    #[test]
    fn selectivity_clamped() {
        let m = CostModel::default_uncalibrated();
        assert_eq!(m.predict(10.0, 100.0, -0.5), m.predict(10.0, 100.0, 0.0));
        assert_eq!(m.predict(10.0, 100.0, 1.5), m.predict(10.0, 100.0, 1.0));
    }

    #[test]
    fn fit_recovers_known_coefficients() {
        let truth = CostModel::from_coefficients([0.005, 0.0012, 0.0021, 0.0008], 0.07);
        // Spread of (lp, lt, sel) combinations with exact targets.
        let mut samples = Vec::new();
        for lp in [3.0, 8.0, 15.0, 24.0] {
            for lt in [80.0, 200.0, 500.0, 1200.0] {
                for sel in [0.05, 0.2, 0.5, 0.8] {
                    samples.push(CalibrationSample {
                        pattern_len: lp,
                        record_len: lt,
                        selectivity: sel,
                        measured_micros: truth.predict(lp, lt, sel),
                    });
                }
            }
        }
        let fit = CostModel::fit(&samples).unwrap();
        for i in 0..4 {
            assert!(
                (fit.k[i] - truth.k[i]).abs() < 1e-6,
                "k{i}: {} vs {}",
                fit.k[i],
                truth.k[i]
            );
        }
        assert!((fit.c - truth.c).abs() < 1e-6);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn fit_needs_enough_samples() {
        let s = CalibrationSample {
            pattern_len: 5.0,
            record_len: 100.0,
            selectivity: 0.5,
            measured_micros: 1.0,
        };
        assert!(matches!(
            CostModel::fit(&[s, s, s]).unwrap_err(),
            RegressionError::Underdetermined { .. }
        ));
    }

    #[test]
    fn clause_cost_sums_disjuncts() {
        use ciao_predicate::{compile_clause, parse_clause};
        let m = CostModel::default_uncalibrated();
        let single = compile_clause(&parse_clause(r#"name = "Bob""#).unwrap()).unwrap();
        let pair = compile_clause(&parse_clause(r#"name IN ("Bob","Bob")"#).unwrap()).unwrap();
        let c1 = m.clause_cost(&single, 200.0, 0.1);
        let c2 = m.clause_cost(&pair, 200.0, 0.1);
        assert!((c2 - 2.0 * c1).abs() < 1e-12);
    }

    #[test]
    fn key_value_costs_more_than_plain_find() {
        use ciao_predicate::{compile_clause, parse_clause};
        let m = CostModel::default_uncalibrated();
        let find = compile_clause(&parse_clause(r#"name = "abcd""#).unwrap()).unwrap();
        let kv = compile_clause(&parse_clause("abcd = 1").unwrap()).unwrap();
        // Same dominant key/needle length; the kv match adds a second probe.
        assert!(m.clause_cost(&kv, 300.0, 0.1) > m.clause_cost(&find, 300.0, 0.1));
    }

    #[test]
    fn costs_are_non_negative() {
        let m = CostModel::from_coefficients([-1.0, -1.0, -1.0, -1.0], -1.0);
        assert_eq!(m.predict(10.0, 10.0, 0.5), 0.0);
    }
}
