//! Partial enumeration: the full `(1 − 1/e)` algorithm.
//!
//! The paper settles for the cheap `½(1−1/e)` max-of-two-greedys
//! recipe (§V-C). The same Khuller–Moss–Naor / Sviridenko line of work
//! gives the stronger `(1 − 1/e) ≈ 0.632` guarantee by *partial
//! enumeration*: try every feasible seed set of size < 3, plus every
//! feasible seed triple greedily extended by benefit-cost ratio, and
//! keep the best. Cost is `O(n³)` greedy runs — practical for CIAO's
//! pool sizes (hundreds) when planning is offline, and exposed here as
//! the quality-over-speed option (ablated in the optimizer bench).

use crate::greedy::Selection;
use crate::objective::Instance;

/// Solves by partial enumeration with seed sets of size ≤ `seed_size`
/// (the classic guarantee needs `seed_size = 3`; smaller values trade
/// quality for time).
pub fn solve_partial_enum(instance: &Instance, seed_size: usize) -> Selection {
    let n = instance.len();

    // Start from the paper's greedy pair so the result dominates it by
    // construction (enumeration can only improve on max-of-two).
    let pair = crate::solver::solve(instance);
    let mut best = pair.best().clone();

    // Size-0 seed = plain ratio-greedy from scratch.
    consider(instance, &[], &mut best);

    if seed_size >= 1 {
        for i in 0..n {
            consider(instance, &[i], &mut best);
        }
    }
    if seed_size >= 2 {
        for i in 0..n {
            for j in i + 1..n {
                consider(instance, &[i, j], &mut best);
            }
        }
    }
    if seed_size >= 3 {
        for i in 0..n {
            for j in i + 1..n {
                for k in j + 1..n {
                    consider(instance, &[i, j, k], &mut best);
                }
            }
        }
    }
    best
}

/// Greedily extends `seed` by benefit-cost ratio; updates `best`.
fn consider(instance: &Instance, seed: &[usize], best: &mut Selection) {
    let n = instance.len();
    let mut mask = vec![false; n];
    let mut cost = 0.0;
    for &i in seed {
        mask[i] = true;
        cost += instance.candidates[i].cost;
    }
    if cost > instance.budget + 1e-9 {
        return;
    }
    let mut objective = instance.objective(&mask);
    let mut selected: Vec<usize> = seed.to_vec();

    loop {
        let mut pick: Option<(usize, f64, f64)> = None; // (idx, ratio, gain)
        for i in 0..n {
            if mask[i] {
                continue;
            }
            let c = instance.candidates[i].cost;
            if cost + c > instance.budget + 1e-9 {
                continue;
            }
            mask[i] = true;
            let obj = instance.objective(&mask);
            mask[i] = false;
            let gain = obj - objective;
            if gain <= 1e-15 {
                continue;
            }
            let ratio = if c > 0.0 { gain / c } else { f64::INFINITY };
            if pick.is_none_or(|(_, br, _)| ratio > br + 1e-15) {
                pick = Some((i, ratio, gain));
            }
        }
        let Some((i, _, gain)) = pick else { break };
        mask[i] = true;
        selected.push(i);
        cost += instance.candidates[i].cost;
        objective += gain;
    }

    if objective > best.objective + 1e-15 {
        *best = Selection {
            selected,
            objective,
            cost,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::solve_exhaustive;
    use crate::objective::{Candidate, QueryRef};
    use crate::solver::solve;
    use ciao_predicate::{Clause, SimplePredicate};

    fn clause(tag: u32) -> Clause {
        Clause::single(SimplePredicate::IntEq {
            key: format!("k{tag}"),
            value: tag as i64,
        })
    }

    fn instance(specs: &[(f64, f64)], budget: f64) -> Instance {
        Instance {
            candidates: specs
                .iter()
                .enumerate()
                .map(|(i, &(selectivity, cost))| Candidate {
                    clause: clause(i as u32),
                    selectivity,
                    cost,
                })
                .collect(),
            queries: (0..specs.len())
                .map(|i| QueryRef {
                    name: format!("q{i}"),
                    freq: 1.0,
                    candidates: vec![i],
                })
                .collect(),
            budget,
        }
    }

    #[test]
    fn dominates_the_greedy_pair() {
        // Both greedys fail here: the benefit greedy grabs X (gain .9,
        // cost 10) and fills the budget; the ratio greedy grabs W
        // (ratio .3) whose cost then blocks the {Y, Z} pair. Optimal is
        // {Y, Z} = 1.0 at cost 10. Partial enumeration recovers it from
        // the {Y, Z} seed.
        let inst = instance(&[(0.1, 10.0), (0.5, 5.0), (0.5, 5.0), (0.7, 1.0)], 10.0);
        let greedy = solve(&inst);
        let opt = solve_exhaustive(&inst);
        assert!(
            greedy.best().objective < opt.objective - 1e-9,
            "instance must actually defeat the greedy pair ({} vs {})",
            greedy.best().objective,
            opt.objective
        );
        let pe = solve_partial_enum(&inst, 2);
        assert!(
            (pe.objective - opt.objective).abs() < 1e-9,
            "pe {} vs opt {}",
            pe.objective,
            opt.objective
        );
        assert!(pe.objective > greedy.best().objective + 1e-9);
    }

    #[test]
    fn within_one_minus_inv_e_of_optimal() {
        let bound = 1.0 - (-1.0f64).exp(); // ≈ 0.632
        let cases: Vec<(Vec<(f64, f64)>, f64)> = vec![
            (vec![(0.01, 10.0), (0.2, 1.0)], 10.0),
            (vec![(0.1, 10.0), (0.5, 1.0), (0.5, 1.0)], 10.0),
            (vec![(0.5, 1.0), (0.5, 2.0), (0.5, 3.0), (0.5, 4.0)], 6.0),
            (vec![(0.9, 0.5), (0.05, 5.0), (0.3, 2.0), (0.4, 1.5)], 5.5),
            (vec![(0.2, 1.0), (0.45, 5.0), (0.45, 5.0)], 10.0),
        ];
        for (specs, budget) in cases {
            let inst = instance(&specs, budget);
            let pe = solve_partial_enum(&inst, 3);
            let opt = solve_exhaustive(&inst);
            assert!(
                pe.objective >= bound * opt.objective - 1e-9,
                "partial enum {} below (1-1/e) of optimal {} on {specs:?}",
                pe.objective,
                opt.objective
            );
            assert!(pe.cost <= budget + 1e-9);
        }
    }

    #[test]
    fn seed_size_zero_equals_ratio_greedy_or_better() {
        let inst = instance(&[(0.3, 2.0), (0.6, 1.0), (0.2, 4.0)], 5.0);
        let pe0 = solve_partial_enum(&inst, 0);
        let ratio = crate::greedy::greedy_ratio(&inst);
        assert!(pe0.objective >= ratio.objective - 1e-12);
    }

    #[test]
    fn empty_instance() {
        let inst = instance(&[], 5.0);
        let pe = solve_partial_enum(&inst, 3);
        assert!(pe.selected.is_empty());
        assert_eq!(pe.objective, 0.0);
    }

    #[test]
    fn infeasible_seeds_skipped() {
        // Every single item blows the budget: result must be empty.
        let inst = instance(&[(0.5, 100.0), (0.5, 100.0)], 1.0);
        let pe = solve_partial_enum(&inst, 3);
        assert!(pe.selected.is_empty());
    }
}
