//! Exhaustive (optimal) solver for small instances.
//!
//! Used as the oracle in tests and ablation benches: the combined
//! greedy must stay within the `½(1−1/e)` bound of this optimum.

use crate::greedy::Selection;
use crate::objective::Instance;

/// Enumerates all `2^n` subsets. Panics above 25 candidates — this is
/// a test oracle, not a production path.
pub fn solve_exhaustive(instance: &Instance) -> Selection {
    let n = instance.len();
    assert!(
        n <= 25,
        "exhaustive solver is for small instances (n = {n})"
    );
    let mut best = Selection::empty();
    let mut mask = vec![false; n];
    for bits in 0u64..(1u64 << n) {
        for (i, m) in mask.iter_mut().enumerate() {
            *m = bits >> i & 1 == 1;
        }
        let cost = instance.total_cost(&mask);
        if cost > instance.budget + 1e-9 {
            continue;
        }
        let obj = instance.objective(&mask);
        if obj > best.objective + 1e-15 {
            best = Selection {
                selected: (0..n).filter(|&i| mask[i]).collect(),
                objective: obj,
                cost,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{Candidate, QueryRef};
    use crate::solver::solve;
    use ciao_predicate::{Clause, SimplePredicate};

    fn clause(tag: u32) -> Clause {
        Clause::single(SimplePredicate::IntEq {
            key: format!("k{tag}"),
            value: tag as i64,
        })
    }

    fn instance(specs: &[(f64, f64)], budget: f64) -> Instance {
        Instance {
            candidates: specs
                .iter()
                .enumerate()
                .map(|(i, &(selectivity, cost))| Candidate {
                    clause: clause(i as u32),
                    selectivity,
                    cost,
                })
                .collect(),
            queries: (0..specs.len())
                .map(|i| QueryRef {
                    name: format!("q{i}"),
                    freq: 1.0,
                    candidates: vec![i],
                })
                .collect(),
            budget,
        }
    }

    #[test]
    fn finds_knapsack_optimum() {
        // Budget 5: best is {1, 2} (gains 0.8 + 0.7 = 1.5, cost 5),
        // not the naive {0} (gain 0.99, cost 5).
        let inst = instance(&[(0.01, 5.0), (0.2, 2.0), (0.3, 3.0)], 5.0);
        let opt = solve_exhaustive(&inst);
        assert_eq!(opt.selected, vec![1, 2]);
        assert!((opt.objective - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_instance_gives_empty() {
        let inst = instance(&[], 1.0);
        let opt = solve_exhaustive(&inst);
        assert!(opt.selected.is_empty());
        assert_eq!(opt.objective, 0.0);
    }

    #[test]
    fn greedy_within_khuller_bound() {
        // Deterministic mini-sweep of adversarial-ish instances.
        let cases: Vec<(Vec<(f64, f64)>, f64)> = vec![
            (vec![(0.01, 10.0), (0.2, 1.0)], 10.0),
            (vec![(0.1, 10.0), (0.5, 1.0), (0.5, 1.0)], 10.0),
            (vec![(0.5, 1.0), (0.5, 2.0), (0.5, 3.0), (0.5, 4.0)], 6.0),
            (vec![(0.9, 0.5), (0.05, 5.0), (0.3, 2.0)], 5.5),
        ];
        let bound = 0.5 * (1.0 - (-1.0f64).exp()); // ½(1 − 1/e)
        for (specs, budget) in cases {
            let inst = instance(&specs, budget);
            let opt = solve_exhaustive(&inst);
            let greedy = solve(&inst);
            assert!(
                greedy.best().objective >= bound * opt.objective - 1e-12,
                "greedy {} below bound of optimal {} on {specs:?}",
                greedy.best().objective,
                opt.objective
            );
        }
    }

    #[test]
    #[should_panic(expected = "small instances")]
    fn refuses_large_instances() {
        let specs: Vec<(f64, f64)> = (0..26).map(|_| (0.5, 1.0)).collect();
        let inst = instance(&specs, 100.0);
        solve_exhaustive(&inst);
    }
}
