//! Span-carrying errors with caret-rendered source context.
//!
//! Every stage of the frontend (lexer, parser, analyzer) reports
//! failures as a [`SqlError`]: a message, the [`Stage`] that raised it,
//! and a byte [`Span`] into the original statement text.
//! [`SqlError::render`] turns that into the familiar compiler-style
//! two-line excerpt with a caret underline, so a typo in a 300-byte
//! statement is pointed at, not described.

/// A half-open byte range `[start, end)` into the source text.
///
/// A zero-length span (`start == end`) marks a *position* — used for
/// "expected X, found end of input" errors at the end of the text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// First byte of the offending region.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// Builds a span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// A zero-width span at one position.
    pub fn point(offset: usize) -> Span {
        Span {
            start: offset,
            end: offset,
        }
    }

    /// The smallest span covering both operands.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Span width in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True for a zero-width (position-only) span.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which frontend stage rejected the statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Tokenization (bad character, unterminated string, malformed
    /// number).
    Lex,
    /// Grammar (unexpected token, missing keyword).
    Parse,
    /// Typed analysis against the schema (unknown column, type
    /// mismatch, aggregate misuse).
    Analyze,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Stage::Lex => "lex",
            Stage::Parse => "parse",
            Stage::Analyze => "analyze",
        })
    }
}

/// A frontend failure: stage, human-readable message, and source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// The stage that raised the error.
    pub stage: Stage,
    /// Human-readable description.
    pub message: String,
    /// Byte span of the offending region in the statement text.
    pub span: Span,
}

impl SqlError {
    /// Builds an error for a stage.
    pub fn new(stage: Stage, message: impl Into<String>, span: Span) -> SqlError {
        SqlError {
            stage,
            message: message.into(),
            span,
        }
    }

    /// A lexer error.
    pub fn lex(message: impl Into<String>, span: Span) -> SqlError {
        SqlError::new(Stage::Lex, message, span)
    }

    /// A parser error.
    pub fn parse(message: impl Into<String>, span: Span) -> SqlError {
        SqlError::new(Stage::Parse, message, span)
    }

    /// An analyzer error.
    pub fn analyze(message: impl Into<String>, span: Span) -> SqlError {
        SqlError::new(Stage::Analyze, message, span)
    }

    /// Renders the error with a caret-underlined excerpt of `source`
    /// (the statement text the span indexes into):
    ///
    /// ```text
    /// analyze error: unknown column `strs`
    ///   |
    /// 1 | SELECT strs FROM t
    ///   |        ^^^^
    /// ```
    ///
    /// Multi-line sources are handled (the excerpt shows the line
    /// containing the span's start); a span past the end of the text
    /// points one column past the last character.
    pub fn render(&self, source: &str) -> String {
        let start = self.span.start.min(source.len());
        // Line containing the span start, 1-based.
        let line_start = source[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_number = source[..start].matches('\n').count() + 1;
        let line_end = source[line_start..]
            .find('\n')
            .map_or(source.len(), |i| line_start + i);
        let line = &source[line_start..line_end];
        let column = start - line_start;
        // Caret width: clamp the span to this line, minimum one caret.
        let span_on_line = self.span.end.clamp(start, line_end) - start;
        let carets = "^".repeat(span_on_line.max(1));
        let gutter = line_number.to_string();
        let pad = " ".repeat(gutter.len());
        format!(
            "{self}\n{pad} |\n{gutter} | {line}\n{pad} | {caret_pad}{carets}",
            caret_pad = " ".repeat(column),
        )
    }
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} error at byte {}: {}",
            self.stage, self.span.start, self.message
        )
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_algebra() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(a.len(), 3);
        assert!(Span::point(4).is_empty());
    }

    #[test]
    fn render_underlines_the_span() {
        let source = "SELECT strs FROM t";
        let err = SqlError::analyze("unknown column `strs`", Span::new(7, 11));
        let rendered = err.render(source);
        assert!(rendered.contains("unknown column `strs`"));
        assert!(rendered.contains("1 | SELECT strs FROM t"));
        assert!(rendered.contains("  |        ^^^^"));
    }

    #[test]
    fn render_handles_multiline_and_eof_spans() {
        let source = "SELECT *\nFROM t WHERE";
        let err = SqlError::parse("expected a key identifier", Span::point(source.len()));
        let rendered = err.render(source);
        assert!(rendered.contains("2 | FROM t WHERE"));
        // A zero-width span still draws one caret.
        assert!(rendered.lines().last().unwrap().trim_end().ends_with('^'));
    }

    #[test]
    fn display_carries_stage_and_offset() {
        let err = SqlError::lex("unexpected character `~`", Span::new(5, 6));
        assert_eq!(
            err.to_string(),
            "lex error at byte 5: unexpected character `~`"
        );
    }
}
