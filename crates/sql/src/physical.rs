//! Physical planning: [`LogicalPlan`] → [`PhysicalPlan`].
//!
//! The physical plan is what executors consume. It spells out the scan
//! contract: which WHERE clauses to push at the block scanner (all of
//! them — the engine decides per-clause whether a prefilter bitvector
//! backs it), which columns the operator reads from each block, and
//! the finalize steps (output mapping, sort keys, limit).

use crate::analyzer::{AggCall, ColumnRef, OutputColumn, SortKey};
use crate::ast::WhereClause;
use crate::logical::LogicalPlan;

/// The row-producing operator at the heart of a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalOp {
    /// Emit one output row per matching scanned row.
    ProjectScan {
        /// Columns to read, in output order.
        columns: Vec<ColumnRef>,
    },
    /// Fold matching rows into per-group aggregate states; emit one
    /// row per group at finalize.
    HashAggregate {
        /// GROUP BY key columns (empty: one global group).
        group: Vec<ColumnRef>,
        /// Aggregate calls in projection order.
        aggs: Vec<AggCall>,
    },
}

/// An executable plan for one SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// WHERE conjunction, evaluated on every candidate row; clauses
    /// with pushed-down prefilter bits double as skip-mask inputs.
    pub filter: Vec<WhereClause>,
    /// The row-producing operator.
    pub op: PhysicalOp,
    /// Output column descriptors (names + types + sources).
    pub output: Vec<OutputColumn>,
    /// Sort keys over output columns, applied at finalize.
    pub order_by: Vec<SortKey>,
    /// Row cap, applied after sorting.
    pub limit: Option<usize>,
    /// Names of every column the operator reads (dedup'd, in first-use
    /// order) — lets executors resolve block column indices once.
    pub needed_columns: Vec<String>,
}

/// Lowers a logical plan into a physical plan.
pub fn build_physical(logical: LogicalPlan) -> PhysicalPlan {
    let (core, op) = match logical {
        LogicalPlan::Projection { core, columns } => (core, PhysicalOp::ProjectScan { columns }),
        LogicalPlan::Aggregation {
            core,
            group_by,
            aggregates,
        } => (
            core,
            PhysicalOp::HashAggregate {
                group: group_by,
                aggs: aggregates,
            },
        ),
    };
    let mut needed_columns: Vec<String> = Vec::new();
    let mut need = |name: &str| {
        if !needed_columns.iter().any(|n| n == name) {
            needed_columns.push(name.to_owned());
        }
    };
    match &op {
        PhysicalOp::ProjectScan { columns } => {
            for c in columns {
                need(&c.name);
            }
        }
        PhysicalOp::HashAggregate { group, aggs } => {
            for c in group {
                need(&c.name);
            }
            for a in aggs {
                if let crate::analyzer::AggArgRef::Column(c) = &a.arg {
                    need(&c.name);
                }
            }
        }
    }
    PhysicalPlan {
        filter: core.filter,
        op,
        output: core.output,
        order_by: core.order_by,
        limit: core.limit,
        needed_columns,
    }
}
