//! Runtime values and types for query results.
//!
//! [`SqlValue`] is the cell type of a [`crate::QueryResult`] row. It
//! carries a *total* ordering (NULL first, then booleans, then
//! numbers, then strings) so ORDER BY and GROUP BY are deterministic
//! for any mix of values, and its JSON coercion mirrors
//! `ciao_columnar::ColumnBuilder` exactly — a parked raw record and a
//! sealed block must feed identical values into an aggregate or the
//! full-scan oracle property breaks.

use ciao_columnar::{Cell, DataType};
use ciao_json::JsonValue;
use std::cmp::Ordering;

/// The type of an output column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    /// UTF-8 string.
    Str,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// Nested JSON, surfaced as its serialized text.
    Json,
}

impl SqlType {
    /// Maps a columnar storage type to its SQL-facing type.
    pub fn from_data_type(dtype: DataType) -> SqlType {
        match dtype {
            DataType::Str => SqlType::Str,
            DataType::Int => SqlType::Int,
            DataType::Float => SqlType::Float,
            DataType::Bool => SqlType::Bool,
            DataType::Json => SqlType::Json,
        }
    }

    /// True for `Int` and `Float`.
    pub fn is_numeric(&self) -> bool {
        matches!(self, SqlType::Int | SqlType::Float)
    }
}

impl std::fmt::Display for SqlType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Same names the columnar schema prints.
        f.write_str(match self {
            SqlType::Str => "str",
            SqlType::Int => "int",
            SqlType::Float => "float",
            SqlType::Bool => "bool",
            SqlType::Json => "json",
        })
    }
}

/// One cell of a query result.
#[derive(Debug, Clone)]
pub enum SqlValue {
    /// SQL NULL (absent key, JSON null, or coercion failure).
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String (also serialized JSON for `json` columns).
    Str(String),
}

impl SqlValue {
    /// True for [`SqlValue::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, SqlValue::Null)
    }

    /// Converts a columnar cell. A null cell becomes NULL; a `Json`
    /// cell surfaces as its serialized text.
    pub fn from_cell(cell: Cell<'_>) -> SqlValue {
        match cell {
            Cell::Null => SqlValue::Null,
            Cell::Str(s) => SqlValue::Str(s.to_owned()),
            Cell::Int(i) => SqlValue::Int(i),
            Cell::Float(x) => SqlValue::Float(x),
            Cell::Bool(b) => SqlValue::Bool(b),
            Cell::Json(s) => SqlValue::Str(s.to_owned()),
        }
    }

    /// Converts a raw JSON field under a column type, mirroring
    /// `ColumnBuilder::push` coercion exactly: a missing key, JSON
    /// null, or type mismatch is NULL; `Float` columns accept any
    /// number; `Int` columns accept only integral numbers.
    pub fn from_json(value: Option<&JsonValue>, ty: SqlType) -> SqlValue {
        let Some(v) = value else {
            return SqlValue::Null;
        };
        match (ty, v) {
            (_, JsonValue::Null) => SqlValue::Null,
            (SqlType::Str, JsonValue::String(s)) => SqlValue::Str(s.clone()),
            (SqlType::Int, JsonValue::Number(n)) if n.is_int() => {
                SqlValue::Int(n.as_i64().unwrap_or(0))
            }
            (SqlType::Float, JsonValue::Number(n)) => SqlValue::Float(n.as_f64()),
            (SqlType::Bool, JsonValue::Bool(b)) => SqlValue::Bool(*b),
            (SqlType::Json, JsonValue::Array(_) | JsonValue::Object(_)) => {
                SqlValue::Str(ciao_json::to_string(v))
            }
            _ => SqlValue::Null,
        }
    }
}

impl std::fmt::Display for SqlValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlValue::Null => f.write_str("NULL"),
            SqlValue::Int(i) => write!(f, "{i}"),
            SqlValue::Float(x) => write!(f, "{x}"),
            SqlValue::Bool(b) => write!(f, "{b}"),
            SqlValue::Str(s) => f.write_str(s),
        }
    }
}

impl PartialEq for SqlValue {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for SqlValue {}

impl std::hash::Hash for SqlValue {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            SqlValue::Null => state.write_u8(0),
            SqlValue::Int(i) => {
                state.write_u8(1);
                i.hash(state);
            }
            SqlValue::Float(x) => {
                state.write_u8(2);
                x.to_bits().hash(state);
            }
            SqlValue::Bool(b) => {
                state.write_u8(3);
                b.hash(state);
            }
            SqlValue::Str(s) => {
                state.write_u8(4);
                s.hash(state);
            }
        }
    }
}

impl PartialOrd for SqlValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SqlValue {
    /// Total order: NULL < booleans < numbers < strings. Ints and
    /// floats compare cross-type by value (`total_cmp`), with `Int`
    /// ordered before an exactly-equal `Float` to keep the order
    /// total.
    fn cmp(&self, other: &Self) -> Ordering {
        use SqlValue::*;
        fn rank(v: &SqlValue) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b).then(Ordering::Less),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)).then(Ordering::Greater),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_null_first() {
        let mut vals = [
            SqlValue::Str("a".into()),
            SqlValue::Float(1.5),
            SqlValue::Int(2),
            SqlValue::Null,
            SqlValue::Bool(true),
            SqlValue::Bool(false),
            SqlValue::Int(1),
        ];
        vals.sort();
        assert!(vals[0].is_null());
        assert_eq!(vals[1], SqlValue::Bool(false));
        assert_eq!(vals[2], SqlValue::Bool(true));
        assert_eq!(vals[3], SqlValue::Int(1));
        assert_eq!(vals[4], SqlValue::Float(1.5));
        assert_eq!(vals[5], SqlValue::Int(2));
        assert_eq!(vals[6], SqlValue::Str("a".into()));
    }

    #[test]
    fn strings_compare_lexicographically() {
        assert!(SqlValue::Str("a".into()) < SqlValue::Str("b".into()));
        assert_eq!(SqlValue::Str("c1".into()), SqlValue::Str("c1".into()));
        assert!(SqlValue::Str("c0".into()) != SqlValue::Str("c1".into()));
    }

    #[test]
    fn int_float_cross_comparison() {
        assert_eq!(SqlValue::Int(2), SqlValue::Int(2));
        // 2 and 2.0 compare adjacent but not equal (total order).
        assert!(SqlValue::Int(2) < SqlValue::Float(2.0));
        assert!(SqlValue::Float(1.9) < SqlValue::Int(2));
    }

    #[test]
    fn json_coercion_mirrors_column_builder() {
        let int = ciao_json::parse("42").unwrap();
        let float = ciao_json::parse("2.5").unwrap();
        let s = ciao_json::parse("\"hi\"").unwrap();
        let null = ciao_json::parse("null").unwrap();
        assert_eq!(
            SqlValue::from_json(Some(&int), SqlType::Int),
            SqlValue::Int(42)
        );
        // Int column rejects a fractional number.
        assert!(SqlValue::from_json(Some(&float), SqlType::Int).is_null());
        // Float column accepts any number.
        assert_eq!(
            SqlValue::from_json(Some(&int), SqlType::Float),
            SqlValue::Float(42.0)
        );
        assert!(SqlValue::from_json(Some(&s), SqlType::Int).is_null());
        assert_eq!(
            SqlValue::from_json(Some(&s), SqlType::Str),
            SqlValue::Str("hi".into())
        );
        assert!(SqlValue::from_json(Some(&null), SqlType::Str).is_null());
        assert!(SqlValue::from_json(None, SqlType::Str).is_null());
        let obj = ciao_json::parse(r#"{"a":1}"#).unwrap();
        assert!(matches!(
            SqlValue::from_json(Some(&obj), SqlType::Json),
            SqlValue::Str(_)
        ));
        assert!(SqlValue::from_json(Some(&obj), SqlType::Str).is_null());
    }

    #[test]
    fn display_forms() {
        assert_eq!(SqlValue::Null.to_string(), "NULL");
        assert_eq!(SqlValue::Int(-3).to_string(), "-3");
        assert_eq!(SqlValue::Float(2.5).to_string(), "2.5");
        assert_eq!(SqlValue::Bool(true).to_string(), "true");
        assert_eq!(SqlValue::Str("x".into()).to_string(), "x");
    }
}
