//! SQL frontend for CIAO: lexer → AST → typed analyzer → logical plan
//! → physical plan.
//!
//! The crate turns statement text into a [`PhysicalPlan`] validated
//! against a columnar [`Schema`](ciao_columnar::Schema):
//!
//! ```
//! use ciao_columnar::{DataType, Field, Schema};
//!
//! let schema = Schema::new(vec![
//!     Field::new("city", DataType::Str),
//!     Field::new("stars", DataType::Int),
//! ])
//! .unwrap();
//! let plan = ciao_sql::compile(
//!     "SELECT city, COUNT(*) FROM reviews WHERE stars = 5 \
//!      GROUP BY city ORDER BY 2 DESC LIMIT 3",
//!     &schema,
//! )
//! .unwrap();
//! assert_eq!(plan.output.len(), 2);
//! ```
//!
//! Execution lives in `ciao_engine` (single shard) and `ciao_service`
//! (fan-out with partial-aggregate merge); this crate stays pure —
//! text and schema in, plan out — so every layer above shares one
//! grammar and one error type. The WHERE sub-grammar is the old
//! `ciao_predicate` predicate grammar, which now re-exports a shim
//! over [`parse_where_body`], and the supported predicate shapes
//! deliberately stay within `SimplePredicate` so SQL filters keep
//! flowing through pushdown plans, `PatternSet` prefilters, zone
//! maps, and fused bitvec skip-masks unchanged.

#![warn(missing_docs)]

mod analyzer;
mod ast;
mod error;
mod explain;
mod logical;
mod parser;
mod physical;
mod token;
mod value;

pub use analyzer::{
    analyze, AggArgRef, AggCall, AnalyzedSelect, ColumnRef, OutputColumn, OutputSource, SortKey,
};
pub use ast::{
    AggArg, AggExpr, AggFunc, Ident, OrderKey, OrderTarget, Select, SelectItem, SqlPredicate,
    Statement, WhereClause,
};
pub use error::{Span, SqlError, Stage};
pub use explain::{render_clause, render_plan};
pub use logical::{build_logical, LogicalPlan, PlanCore};
pub use parser::{parse, parse_where_body};
pub use physical::{build_physical, PhysicalOp, PhysicalPlan};
pub use token::{lex, Spanned, Token};
pub use value::{SqlType, SqlValue};

use ciao_columnar::Schema;

/// Plans a parsed statement against a schema: analyze → logical →
/// physical.
pub fn plan(stmt: &Statement, schema: &Schema) -> Result<PhysicalPlan, SqlError> {
    let analyzed = analyze(stmt, schema)?;
    Ok(build_physical(build_logical(analyzed)))
}

/// One-shot convenience: parse and plan a statement.
pub fn compile(sql: &str, schema: &Schema) -> Result<PhysicalPlan, SqlError> {
    plan(&parse(sql)?, schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_columnar::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("city", DataType::Str),
            Field::new("stars", DataType::Int),
            Field::new("score", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn compile_grouped_aggregate() {
        let plan = compile(
            "SELECT city, COUNT(*), AVG(score) FROM t WHERE stars = 5 \
             GROUP BY city ORDER BY 2 DESC LIMIT 3",
            &schema(),
        )
        .unwrap();
        assert_eq!(plan.filter.len(), 1);
        assert!(matches!(&plan.op, PhysicalOp::HashAggregate { group, aggs }
            if group.len() == 1 && aggs.len() == 2));
        assert_eq!(plan.needed_columns, vec!["city", "score"]);
        assert_eq!(plan.limit, Some(3));
    }

    #[test]
    fn compile_projection() {
        let plan = compile("SELECT city, stars FROM t WHERE stars > 3", &schema()).unwrap();
        assert!(matches!(&plan.op, PhysicalOp::ProjectScan { columns } if columns.len() == 2));
        assert_eq!(plan.needed_columns, vec!["city", "stars"]);
    }

    #[test]
    fn errors_flow_from_every_stage() {
        assert_eq!(
            compile("SELECT ~", &schema()).unwrap_err().stage,
            Stage::Lex
        );
        assert_eq!(
            compile("SELECT", &schema()).unwrap_err().stage,
            Stage::Parse
        );
        assert_eq!(
            compile("SELECT nope FROM t", &schema()).unwrap_err().stage,
            Stage::Analyze
        );
    }
}
