//! Logical planning: [`AnalyzedSelect`] → [`LogicalPlan`].
//!
//! The logical plan names *what* to compute — a filtered projection or
//! a filtered aggregation — independent of how the engine iterates
//! blocks. It is deliberately small: CIAO has one table and no joins,
//! so the planner's job is choosing between the two operator shapes
//! and carrying the analyzer's resolved structures forward.

use crate::analyzer::{AggCall, AnalyzedSelect, ColumnRef, OutputColumn, OutputSource, SortKey};
use crate::ast::WhereClause;

/// A logical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan → filter → project columns, then order/limit.
    Projection {
        /// The common scan/order/limit envelope.
        core: PlanCore,
        /// Projected columns, in output order.
        columns: Vec<ColumnRef>,
    },
    /// Scan → filter → group and aggregate, then order/limit.
    Aggregation {
        /// The common scan/order/limit envelope.
        core: PlanCore,
        /// GROUP BY keys (possibly empty: one global group).
        group_by: Vec<ColumnRef>,
        /// Aggregate calls in projection order.
        aggregates: Vec<AggCall>,
    },
}

/// The parts both logical operators share.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCore {
    /// Type-checked WHERE conjunction.
    pub filter: Vec<WhereClause>,
    /// Output column descriptors.
    pub output: Vec<OutputColumn>,
    /// Resolved ORDER BY keys (over output columns).
    pub order_by: Vec<SortKey>,
    /// Row cap.
    pub limit: Option<usize>,
}

/// Lowers an analyzed select into a logical plan.
pub fn build_logical(analyzed: AnalyzedSelect) -> LogicalPlan {
    let AnalyzedSelect {
        filter,
        group_by,
        aggregates,
        output,
        order_by,
        limit,
        grouped,
    } = analyzed;
    let core = PlanCore {
        filter,
        output,
        order_by,
        limit,
    };
    if grouped {
        LogicalPlan::Aggregation {
            core,
            group_by,
            aggregates,
        }
    } else {
        let columns = core
            .output
            .iter()
            .map(|o| match &o.source {
                OutputSource::Column(c) => c.clone(),
                _ => unreachable!("ungrouped output only projects columns"),
            })
            .collect();
        LogicalPlan::Projection { core, columns }
    }
}
