//! The abstract syntax tree produced by the parser.
//!
//! The AST is untyped and schema-free: names are plain [`Ident`]s and
//! WHERE predicates are [`SqlPredicate`]s that structurally mirror
//! `ciao_predicate::SimplePredicate` without depending on that crate
//! (the dependency points the other way — `ciao_predicate` bridges
//! *from* this AST). Every node keeps the [`Span`] it came from so the
//! analyzer can point errors at source text.

use crate::error::Span;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A `SELECT` statement.
    Select(Select),
    /// `EXPLAIN [ANALYZE] <select>` — render the physical plan tree,
    /// annotated with live execution counters when `analyze` is set.
    Explain {
        /// True for `EXPLAIN ANALYZE` (execute, then annotate).
        analyze: bool,
        /// The statement being explained.
        select: Select,
    },
}

/// The body of a `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Projected items, in output order.
    pub items: Vec<SelectItem>,
    /// Optional `FROM` table name. CIAO has a single logical table per
    /// service, so the name is accepted and ignored by the analyzer.
    pub from: Option<Ident>,
    /// `WHERE` conjunction (empty means no filter).
    pub where_clauses: Vec<WhereClause>,
    /// `GROUP BY` column names.
    pub group_by: Vec<Ident>,
    /// `ORDER BY` keys, in priority order.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT` row count, with the literal's span.
    pub limit: Option<(i64, Span)>,
}

/// An identifier with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Ident {
    /// The identifier text (dotted keys like `address.city` allowed).
    pub name: String,
    /// Where it appeared.
    pub span: Span,
}

/// One item in the `SELECT` projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — every schema column.
    Star(Span),
    /// A bare column, optionally aliased with `AS`.
    Column {
        /// The column name.
        name: Ident,
        /// Optional output alias.
        alias: Option<Ident>,
    },
    /// An aggregate call, optionally aliased with `AS`.
    Aggregate {
        /// The call itself.
        call: AggExpr,
        /// Optional output alias.
        alias: Option<Ident>,
    },
}

/// An unanalyzed aggregate call, e.g. `AVG(score)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// Which aggregate function.
    pub func: AggFunc,
    /// The argument list as written (arity is checked by the
    /// analyzer, not the parser).
    pub args: Vec<AggArg>,
    /// Span of the whole call, `AVG` through `)`.
    pub span: Span,
}

/// The supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(col)`.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
    /// `AVG(col)`.
    Avg,
}

impl AggFunc {
    /// The canonical upper-case name (`COUNT`, `SUM`, ...).
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }

    /// Parses a function name case-insensitively.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        if name.eq_ignore_ascii_case("count") {
            Some(AggFunc::Count)
        } else if name.eq_ignore_ascii_case("sum") {
            Some(AggFunc::Sum)
        } else if name.eq_ignore_ascii_case("min") {
            Some(AggFunc::Min)
        } else if name.eq_ignore_ascii_case("max") {
            Some(AggFunc::Max)
        } else if name.eq_ignore_ascii_case("avg") {
            Some(AggFunc::Avg)
        } else {
            None
        }
    }
}

/// One argument to an aggregate call.
#[derive(Debug, Clone, PartialEq)]
pub enum AggArg {
    /// `*` — only meaningful for `COUNT`.
    Star(Span),
    /// A column name.
    Column(Ident),
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// What to sort by.
    pub target: OrderTarget,
    /// `DESC` if true, `ASC` (the default) otherwise.
    pub desc: bool,
}

/// The target of an `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderTarget {
    /// A 1-based output-column position, e.g. `ORDER BY 2`.
    Position {
        /// The 1-based position as written.
        index: i64,
        /// Where the literal appeared.
        span: Span,
    },
    /// An output alias or column name.
    Name(Ident),
}

/// One simple predicate in a WHERE clause. Structurally mirrors
/// `ciao_predicate::SimplePredicate`, with spans on the keys so the
/// analyzer can report type mismatches precisely.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlPredicate {
    /// `key = "value"`.
    StrEq {
        /// Record key.
        key: Ident,
        /// Exact string to match.
        value: String,
    },
    /// `key LIKE "%needle%"`.
    StrContains {
        /// Record key.
        key: Ident,
        /// Substring to search for.
        needle: String,
    },
    /// `key != NULL` / `key IS NOT NULL`.
    NotNull {
        /// Record key.
        key: Ident,
    },
    /// `key = 42`.
    IntEq {
        /// Record key.
        key: Ident,
        /// Exact integer to match.
        value: i64,
    },
    /// `key = true`.
    BoolEq {
        /// Record key.
        key: Ident,
        /// Boolean to match.
        value: bool,
    },
    /// `key < 42` (also produced by `key <= 41`).
    IntLt {
        /// Record key.
        key: Ident,
        /// Exclusive upper bound.
        value: i64,
    },
    /// `key > 42` (also produced by `key >= 43`).
    IntGt {
        /// Record key.
        key: Ident,
        /// Exclusive lower bound.
        value: i64,
    },
    /// `key = 2.5`.
    FloatEq {
        /// Record key.
        key: Ident,
        /// Float to match (exact bit comparison downstream).
        value: f64,
    },
}

impl SqlPredicate {
    /// The record key this predicate inspects.
    pub fn key(&self) -> &Ident {
        match self {
            SqlPredicate::StrEq { key, .. }
            | SqlPredicate::StrContains { key, .. }
            | SqlPredicate::NotNull { key }
            | SqlPredicate::IntEq { key, .. }
            | SqlPredicate::BoolEq { key, .. }
            | SqlPredicate::IntLt { key, .. }
            | SqlPredicate::IntGt { key, .. }
            | SqlPredicate::FloatEq { key, .. } => key,
        }
    }
}

/// One clause of the WHERE conjunction: a disjunction of simple
/// predicates (usually a single one). Mirrors
/// `ciao_predicate::Clause`.
#[derive(Debug, Clone, PartialEq)]
pub struct WhereClause {
    /// The OR'd predicates; never empty.
    pub disjuncts: Vec<SqlPredicate>,
    /// Span of the whole clause.
    pub span: Span,
}
