//! `EXPLAIN` rendering: a [`PhysicalPlan`] as a deterministic text
//! tree.
//!
//! The renderer reads *only* the plan, never the data or the pushdown
//! state, so the same statement explains identically on a 1-shard
//! budget-0 oracle and a sharded budgeted service — the golden
//! conformance suite compares the two byte-for-byte. Predicates are
//! rendered in the exact display form `ciao_predicate::Clause` uses,
//! so `EXPLAIN ANALYZE`'s per-clause profile lines (keyed by clause
//! text) line up with the `Filter:` line of the tree.

use crate::analyzer::{AggArgRef, AggCall, OutputSource};
use crate::ast::{SqlPredicate, WhereClause};
use crate::physical::{PhysicalOp, PhysicalPlan};

/// Renders the physical plan as a stable text tree, one line per
/// entry: the operator, then indented `Filter:` / `Output:` /
/// `OrderBy:` / `Limit:` lines (each omitted when absent).
pub fn render_plan(plan: &PhysicalPlan) -> Vec<String> {
    let mut lines = Vec::new();
    match &plan.op {
        PhysicalOp::ProjectScan { columns } => {
            let cols: Vec<&str> = columns.iter().map(|c| c.name.as_str()).collect();
            lines.push(format!("ProjectScan columns=[{}]", cols.join(", ")));
        }
        PhysicalOp::HashAggregate { group, aggs } => {
            let keys: Vec<&str> = group.iter().map(|c| c.name.as_str()).collect();
            let calls: Vec<String> = aggs.iter().map(render_agg).collect();
            lines.push(format!(
                "HashAggregate group=[{}] aggs=[{}]",
                keys.join(", "),
                calls.join(", ")
            ));
        }
    }
    if !plan.filter.is_empty() {
        let clauses: Vec<String> = plan.filter.iter().map(render_clause).collect();
        lines.push(format!("  Filter: {}", clauses.join(" AND ")));
    }
    let outputs: Vec<String> = plan
        .output
        .iter()
        .map(|o| {
            let src = match &o.source {
                OutputSource::Group(i) => format!("group#{i}"),
                OutputSource::Agg(i) => format!("agg#{i}"),
                OutputSource::Column(_) => "scan".to_owned(),
            };
            format!("{}:{} <- {src}", o.name, o.ty)
        })
        .collect();
    lines.push(format!("  Output: {}", outputs.join(", ")));
    if !plan.order_by.is_empty() {
        let keys: Vec<String> = plan
            .order_by
            .iter()
            .map(|k| format!("#{} {}", k.output + 1, if k.desc { "DESC" } else { "ASC" }))
            .collect();
        lines.push(format!("  OrderBy: {}", keys.join(", ")));
    }
    if let Some(limit) = plan.limit {
        lines.push(format!("  Limit: {limit}"));
    }
    lines
}

/// One aggregate call in its derived-name form, e.g. `count(*)`.
fn render_agg(call: &AggCall) -> String {
    let arg = match &call.arg {
        AggArgRef::Star => "*",
        AggArgRef::Column(c) => c.name.as_str(),
    };
    format!("{}({arg})", call.func.name().to_lowercase())
}

/// One WHERE clause in `ciao_predicate::Clause` display form: a lone
/// disjunct renders bare, a disjunction is parenthesized with ` OR `.
pub fn render_clause(clause: &WhereClause) -> String {
    let parts: Vec<String> = clause.disjuncts.iter().map(render_predicate).collect();
    if parts.len() == 1 {
        parts.into_iter().next().expect("disjuncts never empty")
    } else {
        format!("({})", parts.join(" OR "))
    }
}

/// One simple predicate in `ciao_predicate::SimplePredicate` display
/// form.
fn render_predicate(p: &SqlPredicate) -> String {
    match p {
        SqlPredicate::StrEq { key, value } => format!("{} = \"{value}\"", key.name),
        SqlPredicate::StrContains { key, needle } => {
            format!("{} LIKE \"%{needle}%\"", key.name)
        }
        SqlPredicate::NotNull { key } => format!("{} != NULL", key.name),
        SqlPredicate::IntEq { key, value } => format!("{} = {value}", key.name),
        SqlPredicate::BoolEq { key, value } => format!("{} = {value}", key.name),
        SqlPredicate::IntLt { key, value } => format!("{} < {value}", key.name),
        SqlPredicate::IntGt { key, value } => format!("{} > {value}", key.name),
        SqlPredicate::FloatEq { key, value } => format!("{} = {value}", key.name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use ciao_columnar::{DataType, Field, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("city", DataType::Str),
            Field::new("stars", DataType::Int),
            Field::new("score", DataType::Float),
            Field::new("active", DataType::Bool),
        ])
        .unwrap()
    }

    #[test]
    fn aggregate_plan_renders_every_section() {
        let plan = compile(
            "SELECT city, COUNT(*) AS n FROM t \
             WHERE stars = 5 AND (city = \"a\" OR city = \"b\") \
             GROUP BY city ORDER BY 2 DESC LIMIT 3",
            &schema(),
        )
        .unwrap();
        assert_eq!(
            render_plan(&plan),
            vec![
                "HashAggregate group=[city] aggs=[count(*)]",
                "  Filter: stars = 5 AND (city = \"a\" OR city = \"b\")",
                "  Output: city:str <- group#0, n:int <- agg#0",
                "  OrderBy: #2 DESC",
                "  Limit: 3",
            ]
        );
    }

    #[test]
    fn projection_omits_absent_sections() {
        let plan = compile("SELECT city, stars FROM t", &schema()).unwrap();
        assert_eq!(
            render_plan(&plan),
            vec![
                "ProjectScan columns=[city, stars]",
                "  Output: city:str <- scan, stars:int <- scan",
            ]
        );
    }

    #[test]
    fn predicate_forms_match_clause_display() {
        // Every predicate shape renders in the exact text the engine's
        // per-clause profile uses (ciao_predicate's Display impls).
        let plan = compile(
            "SELECT city FROM t WHERE city LIKE \"%x%\" AND score != NULL \
             AND stars < 4 AND stars > 1 AND active = true AND score = 2.5",
            &schema(),
        )
        .unwrap();
        assert_eq!(
            render_plan(&plan)[1],
            "  Filter: city LIKE \"%x%\" AND score != NULL AND stars < 4 \
             AND stars > 1 AND active = true AND score = 2.5"
        );
    }
}
