//! Typed analysis: AST + columnar [`Schema`] → [`AnalyzedSelect`].
//!
//! This stage resolves every name, type-checks the WHERE conjunction
//! against column types (rewriting `k = 3` into a float equality when
//! `k` is a float column, so integer literals behave), validates
//! aggregate arity and argument types, enforces SQL grouping rules,
//! and resolves ORDER BY targets to output-column indices. Everything
//! after it operates on indices, never names.

use crate::ast::{
    AggArg, AggFunc, Ident, OrderTarget, SelectItem, SqlPredicate, Statement, WhereClause,
};
use crate::error::SqlError;
use crate::value::SqlType;
use ciao_columnar::Schema;

/// A resolved reference to a schema column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Column name as spelled in the schema.
    pub name: String,
    /// Index into the schema's field list.
    pub index: usize,
    /// The column's SQL-facing type.
    pub ty: SqlType,
}

/// A resolved aggregate argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggArgRef {
    /// `COUNT(*)` — count rows, no column read.
    Star,
    /// Aggregate over one column.
    Column(ColumnRef),
}

/// A fully resolved aggregate call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggCall {
    /// Which function.
    pub func: AggFunc,
    /// Its argument.
    pub arg: AggArgRef,
    /// The result type (`COUNT` → int, `AVG` → float, `SUM` over int →
    /// int, over float → float, `MIN`/`MAX` → the column type).
    pub output: SqlType,
}

/// Where one output column's values come from at finalize time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputSource {
    /// The i-th GROUP BY key.
    Group(usize),
    /// The i-th aggregate.
    Agg(usize),
    /// A scanned column (ungrouped projection).
    Column(ColumnRef),
}

/// One column of the result set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputColumn {
    /// Output name: the alias if given, else the column name, else a
    /// derived name like `avg(score)`.
    pub name: String,
    /// The value type.
    pub ty: SqlType,
    /// Where values come from.
    pub source: OutputSource,
}

/// One resolved ORDER BY key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    /// Index into the output columns.
    pub output: usize,
    /// Descending if true.
    pub desc: bool,
}

/// The analyzer's result: a typed, name-free description of the query.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedSelect {
    /// Type-checked (and possibly rewritten) WHERE conjunction.
    pub filter: Vec<WhereClause>,
    /// GROUP BY keys, in declaration order.
    pub group_by: Vec<ColumnRef>,
    /// Aggregate calls, in projection order.
    pub aggregates: Vec<AggCall>,
    /// Output columns, in projection order.
    pub output: Vec<OutputColumn>,
    /// Resolved ORDER BY keys.
    pub order_by: Vec<SortKey>,
    /// Row cap.
    pub limit: Option<usize>,
    /// True when the query aggregates (has aggregate calls or a
    /// GROUP BY — the latter alone acts as DISTINCT).
    pub grouped: bool,
}

/// Analyzes a statement against the schema. An `EXPLAIN [ANALYZE]`
/// statement analyzes (and therefore plans) its inner SELECT — the
/// caller decides whether to render or execute the resulting plan.
pub fn analyze(stmt: &Statement, schema: &Schema) -> Result<AnalyzedSelect, SqlError> {
    let select = match stmt {
        Statement::Select(select) | Statement::Explain { select, .. } => select,
    };

    let filter = check_filter(&select.where_clauses, schema)?;

    let group_by = select
        .group_by
        .iter()
        .map(|ident| {
            let col = resolve(ident, schema)?;
            if col.ty == SqlType::Json {
                return Err(SqlError::analyze(
                    format!("cannot group by json column `{}`", col.name),
                    ident.span,
                ));
            }
            Ok(col)
        })
        .collect::<Result<Vec<_>, _>>()?;

    let has_aggregate = select
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Aggregate { .. }));
    let grouped = has_aggregate || !group_by.is_empty();

    let mut aggregates = Vec::new();
    let mut output = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Star(span) => {
                if grouped {
                    return Err(SqlError::analyze(
                        "SELECT * cannot be combined with aggregates or GROUP BY",
                        *span,
                    ));
                }
                for (index, field) in schema.fields().iter().enumerate() {
                    let ty = SqlType::from_data_type(field.dtype);
                    output.push(OutputColumn {
                        name: field.name.clone(),
                        ty,
                        source: OutputSource::Column(ColumnRef {
                            name: field.name.clone(),
                            index,
                            ty,
                        }),
                    });
                }
            }
            SelectItem::Column { name, alias } => {
                let col = resolve(name, schema)?;
                let source = if grouped {
                    let pos = group_by
                        .iter()
                        .position(|g| g.index == col.index)
                        .ok_or_else(|| {
                            SqlError::analyze(
                                format!(
                                    "column `{}` must appear in GROUP BY or inside an aggregate",
                                    col.name
                                ),
                                name.span,
                            )
                        })?;
                    OutputSource::Group(pos)
                } else {
                    OutputSource::Column(col.clone())
                };
                output.push(OutputColumn {
                    name: alias.as_ref().map_or(col.name.clone(), |a| a.name.clone()),
                    ty: col.ty,
                    source,
                });
            }
            SelectItem::Aggregate { call, alias } => {
                let agg = check_aggregate(call, schema)?;
                let name = alias.as_ref().map(|a| a.name.clone()).unwrap_or_else(|| {
                    let arg = match &agg.arg {
                        AggArgRef::Star => "*",
                        AggArgRef::Column(c) => c.name.as_str(),
                    };
                    format!("{}({})", call.func.name().to_lowercase(), arg)
                });
                output.push(OutputColumn {
                    name,
                    ty: agg.output,
                    source: OutputSource::Agg(aggregates.len()),
                });
                aggregates.push(agg);
            }
        }
    }

    let order_by = select
        .order_by
        .iter()
        .map(|key| {
            let index = match &key.target {
                OrderTarget::Position { index, span } => {
                    if *index < 1 || *index > output.len() as i64 {
                        return Err(SqlError::analyze(
                            format!(
                                "ORDER BY position {index} is out of range (1..={})",
                                output.len()
                            ),
                            *span,
                        ));
                    }
                    (*index - 1) as usize
                }
                OrderTarget::Name(ident) => output
                    .iter()
                    .position(|o| o.name == ident.name)
                    .ok_or_else(|| {
                        SqlError::analyze(
                            format!("unknown ORDER BY column `{}`", ident.name),
                            ident.span,
                        )
                    })?,
            };
            Ok(SortKey {
                output: index,
                desc: key.desc,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;

    Ok(AnalyzedSelect {
        filter,
        group_by,
        aggregates,
        output,
        order_by,
        limit: select.limit.map(|(n, _)| n as usize),
        grouped,
    })
}

/// Resolves an identifier against the schema, with a did-you-mean hint
/// for case mistakes.
fn resolve(ident: &Ident, schema: &Schema) -> Result<ColumnRef, SqlError> {
    if let Some(index) = schema.index_of(&ident.name) {
        let field = &schema.fields()[index];
        return Ok(ColumnRef {
            name: field.name.clone(),
            index,
            ty: SqlType::from_data_type(field.dtype),
        });
    }
    let hint = schema
        .fields()
        .iter()
        .find(|f| f.name.eq_ignore_ascii_case(&ident.name))
        .map(|f| format!(" (did you mean `{}`?)", f.name))
        .unwrap_or_default();
    Err(SqlError::analyze(
        format!("unknown column `{}`{hint}", ident.name),
        ident.span,
    ))
}

/// Type-checks the WHERE conjunction, rewriting integer equalities on
/// float columns into float equalities.
fn check_filter(clauses: &[WhereClause], schema: &Schema) -> Result<Vec<WhereClause>, SqlError> {
    clauses
        .iter()
        .map(|clause| {
            let disjuncts = clause
                .disjuncts
                .iter()
                .map(|p| check_predicate(p, schema))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(WhereClause {
                disjuncts,
                span: clause.span,
            })
        })
        .collect()
}

fn check_predicate(p: &SqlPredicate, schema: &Schema) -> Result<SqlPredicate, SqlError> {
    let key = p.key();
    let col = resolve(key, schema)?;
    let mismatch = |compared_to: &str| {
        SqlError::analyze(
            format!(
                "type mismatch: column `{}` has type {} but is compared to {compared_to}",
                col.name, col.ty
            ),
            key.span,
        )
    };
    if col.ty == SqlType::Json && !matches!(p, SqlPredicate::NotNull { .. }) {
        return Err(SqlError::analyze(
            format!(
                "column `{}` has type json and only supports IS NOT NULL",
                col.name
            ),
            key.span,
        ));
    }
    match p {
        SqlPredicate::StrEq { .. } | SqlPredicate::StrContains { .. } => {
            if col.ty != SqlType::Str {
                return Err(mismatch("a string"));
            }
        }
        SqlPredicate::NotNull { .. } => {}
        SqlPredicate::IntEq { key, value } => match col.ty {
            SqlType::Int => {}
            // Row evaluation of an int equality never matches float
            // cells; lower onto float equality so `score = 2` works.
            SqlType::Float => {
                return Ok(SqlPredicate::FloatEq {
                    key: key.clone(),
                    value: *value as f64,
                })
            }
            _ => return Err(mismatch("an integer")),
        },
        SqlPredicate::IntLt { .. } | SqlPredicate::IntGt { .. } => {
            if col.ty != SqlType::Int {
                return Err(mismatch("an integer range"));
            }
        }
        SqlPredicate::BoolEq { .. } => {
            if col.ty != SqlType::Bool {
                return Err(mismatch("a boolean"));
            }
        }
        SqlPredicate::FloatEq { .. } => {
            if !col.ty.is_numeric() {
                return Err(mismatch("a float"));
            }
        }
    }
    Ok(p.clone())
}

fn check_aggregate(call: &crate::ast::AggExpr, schema: &Schema) -> Result<AggCall, SqlError> {
    if call.args.len() != 1 {
        return Err(SqlError::analyze(
            format!(
                "{} takes exactly one argument, found {}",
                call.func.name(),
                call.args.len()
            ),
            call.span,
        ));
    }
    let arg = match &call.args[0] {
        AggArg::Star(span) => {
            if call.func != AggFunc::Count {
                return Err(SqlError::analyze(
                    format!("{} requires a column argument, not `*`", call.func.name()),
                    *span,
                ));
            }
            AggArgRef::Star
        }
        AggArg::Column(ident) => AggArgRef::Column(resolve(ident, schema)?),
    };
    let col_ty = match &arg {
        AggArgRef::Star => None,
        AggArgRef::Column(c) => Some(c.ty),
    };
    match call.func {
        AggFunc::Count => {}
        AggFunc::Sum | AggFunc::Avg => {
            let ty = col_ty.expect("star rejected above");
            if !ty.is_numeric() {
                let name = match &arg {
                    AggArgRef::Column(c) => c.name.as_str(),
                    AggArgRef::Star => unreachable!(),
                };
                return Err(SqlError::analyze(
                    format!(
                        "{} requires a numeric column, but `{name}` has type {ty}",
                        call.func.name()
                    ),
                    call.span,
                ));
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let ty = col_ty.expect("star rejected above");
            if ty == SqlType::Json {
                let name = match &arg {
                    AggArgRef::Column(c) => c.name.as_str(),
                    AggArgRef::Star => unreachable!(),
                };
                return Err(SqlError::analyze(
                    format!("{} cannot aggregate json column `{name}`", call.func.name()),
                    call.span,
                ));
            }
        }
    }
    let output = match call.func {
        AggFunc::Count => SqlType::Int,
        AggFunc::Avg => SqlType::Float,
        AggFunc::Sum => match col_ty.expect("star rejected above") {
            SqlType::Int => SqlType::Int,
            _ => SqlType::Float,
        },
        AggFunc::Min | AggFunc::Max => col_ty.expect("star rejected above"),
    };
    Ok(AggCall {
        func: call.func,
        arg,
        output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use ciao_columnar::{DataType, Field, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("name", DataType::Str),
            Field::new("stars", DataType::Int),
            Field::new("score", DataType::Float),
            Field::new("active", DataType::Bool),
            Field::new("payload", DataType::Json),
        ])
        .unwrap()
    }

    fn analyze_sql(sql: &str) -> Result<AnalyzedSelect, SqlError> {
        analyze(&parse(sql)?, &schema())
    }

    #[test]
    fn grouped_aggregate_resolves_sources() {
        let a = analyze_sql(
            "SELECT stars, COUNT(*) AS n, AVG(score) FROM t \
             GROUP BY stars ORDER BY n DESC, 1 LIMIT 3",
        )
        .unwrap();
        assert!(a.grouped);
        assert_eq!(a.group_by.len(), 1);
        assert_eq!(a.aggregates.len(), 2);
        assert_eq!(a.output[0].source, OutputSource::Group(0));
        assert_eq!(a.output[1].name, "n");
        assert_eq!(a.output[1].ty, SqlType::Int);
        assert_eq!(a.output[2].name, "avg(score)");
        assert_eq!(a.output[2].ty, SqlType::Float);
        assert_eq!(
            a.order_by,
            vec![
                SortKey {
                    output: 1,
                    desc: true
                },
                SortKey {
                    output: 0,
                    desc: false
                }
            ]
        );
        assert_eq!(a.limit, Some(3));
    }

    #[test]
    fn star_expands_schema_in_order() {
        let a = analyze_sql("SELECT * FROM t").unwrap();
        assert_eq!(a.output.len(), 5);
        assert_eq!(a.output[4].name, "payload");
        assert_eq!(a.output[4].ty, SqlType::Json);
        assert!(!a.grouped);
    }

    #[test]
    fn sum_output_type_follows_column() {
        let a = analyze_sql("SELECT SUM(stars), SUM(score) FROM t").unwrap();
        assert_eq!(a.output[0].ty, SqlType::Int);
        assert_eq!(a.output[1].ty, SqlType::Float);
    }

    #[test]
    fn int_equality_on_float_column_is_rewritten() {
        let a = analyze_sql("SELECT name FROM t WHERE score = 2").unwrap();
        assert!(matches!(
            &a.filter[0].disjuncts[0],
            SqlPredicate::FloatEq { value, .. } if *value == 2.0
        ));
    }

    // The top user mistakes, each pointing at the offending span.

    #[test]
    fn mistake_unknown_column() {
        let err = analyze_sql("SELECT strs FROM t").unwrap_err();
        assert_eq!(err.message, "unknown column `strs`");
        assert_eq!(err.span.start, 7);
    }

    #[test]
    fn mistake_wrong_case_gets_hint() {
        let err = analyze_sql("SELECT Stars FROM t").unwrap_err();
        assert_eq!(
            err.message,
            "unknown column `Stars` (did you mean `stars`?)"
        );
    }

    #[test]
    fn mistake_type_mismatch_in_where() {
        let err = analyze_sql(r#"SELECT * WHERE stars = "five""#).unwrap_err();
        assert_eq!(
            err.message,
            "type mismatch: column `stars` has type int but is compared to a string"
        );
        let err = analyze_sql("SELECT * WHERE name = 5").unwrap_err();
        assert_eq!(
            err.message,
            "type mismatch: column `name` has type str but is compared to an integer"
        );
        let err = analyze_sql("SELECT * WHERE score < 5").unwrap_err();
        assert!(err.message.contains("integer range"));
        let err = analyze_sql("SELECT * WHERE name = true").unwrap_err();
        assert!(err.message.contains("a boolean"));
    }

    #[test]
    fn mistake_json_column_predicate() {
        let err = analyze_sql(r#"SELECT * WHERE payload = "x""#).unwrap_err();
        assert_eq!(
            err.message,
            "column `payload` has type json and only supports IS NOT NULL"
        );
        assert!(analyze_sql("SELECT * WHERE payload IS NOT NULL").is_ok());
    }

    #[test]
    fn mistake_bad_aggregate_arity() {
        let err = analyze_sql("SELECT COUNT() FROM t").unwrap_err();
        assert_eq!(err.message, "COUNT takes exactly one argument, found 0");
        let err = analyze_sql("SELECT SUM(stars, score) FROM t").unwrap_err();
        assert_eq!(err.message, "SUM takes exactly one argument, found 2");
    }

    #[test]
    fn mistake_star_into_non_count() {
        let err = analyze_sql("SELECT AVG(*) FROM t").unwrap_err();
        assert_eq!(err.message, "AVG requires a column argument, not `*`");
    }

    #[test]
    fn mistake_non_numeric_sum() {
        let err = analyze_sql("SELECT SUM(name) FROM t").unwrap_err();
        assert_eq!(
            err.message,
            "SUM requires a numeric column, but `name` has type str"
        );
        let err = analyze_sql("SELECT MIN(payload) FROM t").unwrap_err();
        assert!(err.message.contains("cannot aggregate json column"));
    }

    #[test]
    fn mistake_bare_column_next_to_aggregate() {
        let err = analyze_sql("SELECT name, COUNT(*) FROM t").unwrap_err();
        assert_eq!(
            err.message,
            "column `name` must appear in GROUP BY or inside an aggregate"
        );
    }

    #[test]
    fn mistake_star_with_group_by() {
        let err = analyze_sql("SELECT * FROM t GROUP BY stars").unwrap_err();
        assert_eq!(
            err.message,
            "SELECT * cannot be combined with aggregates or GROUP BY"
        );
    }

    #[test]
    fn mistake_order_by_out_of_range() {
        let err = analyze_sql("SELECT name FROM t ORDER BY 2").unwrap_err();
        assert_eq!(err.message, "ORDER BY position 2 is out of range (1..=1)");
        let err = analyze_sql("SELECT name FROM t ORDER BY nope").unwrap_err();
        assert_eq!(err.message, "unknown ORDER BY column `nope`");
    }

    #[test]
    fn mistake_group_by_json() {
        let err = analyze_sql("SELECT COUNT(*) FROM t GROUP BY payload").unwrap_err();
        assert_eq!(err.message, "cannot group by json column `payload`");
    }

    #[test]
    fn group_by_without_aggregates_is_distinct() {
        let a = analyze_sql("SELECT stars FROM t GROUP BY stars").unwrap();
        assert!(a.grouped);
        assert!(a.aggregates.is_empty());
    }

    #[test]
    fn caret_rendering_end_to_end() {
        let sql = "SELECT strs FROM t";
        let err = analyze_sql(sql).unwrap_err();
        let rendered = err.render(sql);
        assert!(rendered.contains("^^^^"));
        assert!(rendered.contains("SELECT strs FROM t"));
    }
}
