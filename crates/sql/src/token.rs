//! The lexer: statement text → spanned tokens.
//!
//! Deliberately a strict superset of the old
//! `ciao_predicate::parser` lexer, because that parser is now a shim
//! over this one and every WHERE body the seed corpus accepted must
//! tokenize identically: identifiers may contain dots (`address.city`),
//! strings take either quote with no escapes, and `-`/digits start a
//! number with the same greedy consumption rules. New on top: `*`,
//! `;`, `<=`, `>=`, `<>`, and `--` line comments.

use crate::error::{Span, SqlError};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized contextually,
    /// case-insensitively — `count` is a fine column name).
    Ident(String),
    /// String literal (either quote style, no escapes).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `*`
    Star,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semicolon,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Neq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

impl Token {
    /// True when this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(w) if w.eq_ignore_ascii_case(kw))
    }

    /// Human-readable description for "found X" error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(w) => format!("`{w}`"),
            Token::Str(_) => "a string literal".to_owned(),
            Token::Int(i) => format!("`{i}`"),
            Token::Float(x) => format!("`{x}`"),
            Token::Star => "`*`".to_owned(),
            Token::Comma => "`,`".to_owned(),
            Token::LParen => "`(`".to_owned(),
            Token::RParen => "`)`".to_owned(),
            Token::Semicolon => "`;`".to_owned(),
            Token::Eq => "`=`".to_owned(),
            Token::Neq => "`!=`".to_owned(),
            Token::Lt => "`<`".to_owned(),
            Token::Gt => "`>`".to_owned(),
            Token::Le => "`<=`".to_owned(),
            Token::Ge => "`>=`".to_owned(),
        }
    }
}

/// A token plus its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Its byte span in the source.
    pub span: Span,
}

/// Tokenizes a statement. Whitespace separates tokens; `--` starts a
/// comment running to end of line.
pub fn lex(input: &str) -> Result<Vec<Spanned>, SqlError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let start = pos;
        let b = bytes[pos];
        let mut push = |token: Token, end: usize| {
            out.push(Spanned {
                token,
                span: Span::new(start, end),
            });
        };
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => {
                pos += 1;
            }
            b'-' if bytes.get(pos + 1) == Some(&b'-') => {
                // Line comment.
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'*' => {
                pos += 1;
                push(Token::Star, pos);
            }
            b'(' => {
                pos += 1;
                push(Token::LParen, pos);
            }
            b')' => {
                pos += 1;
                push(Token::RParen, pos);
            }
            b',' => {
                pos += 1;
                push(Token::Comma, pos);
            }
            b';' => {
                pos += 1;
                push(Token::Semicolon, pos);
            }
            b'=' => {
                pos += 1;
                push(Token::Eq, pos);
            }
            b'<' => match bytes.get(pos + 1) {
                Some(b'=') => {
                    pos += 2;
                    push(Token::Le, pos);
                }
                Some(b'>') => {
                    pos += 2;
                    push(Token::Neq, pos);
                }
                _ => {
                    pos += 1;
                    push(Token::Lt, pos);
                }
            },
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    pos += 2;
                    push(Token::Ge, pos);
                } else {
                    pos += 1;
                    push(Token::Gt, pos);
                }
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    pos += 2;
                    push(Token::Neq, pos);
                } else {
                    return Err(SqlError::lex("expected `!=`", Span::new(pos, pos + 1)));
                }
            }
            b'"' | b'\'' => {
                let quote = b;
                pos += 1;
                let content_start = pos;
                while pos < bytes.len() && bytes[pos] != quote {
                    pos += 1;
                }
                if pos == bytes.len() {
                    return Err(SqlError::lex(
                        "unterminated string literal",
                        Span::new(start, pos),
                    ));
                }
                push(Token::Str(input[content_start..pos].to_owned()), pos + 1);
                pos += 1;
            }
            b'-' | b'0'..=b'9' => {
                pos += 1;
                while pos < bytes.len()
                    && matches!(bytes[pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                {
                    // Stop `-` from being consumed as part of a second
                    // number (same rule as the seed predicate lexer).
                    if matches!(bytes[pos], b'+' | b'-') && !matches!(bytes[pos - 1], b'e' | b'E') {
                        break;
                    }
                    pos += 1;
                }
                let text = &input[start..pos];
                if let Ok(i) = text.parse::<i64>() {
                    push(Token::Int(i), pos);
                } else if let Ok(f) = text.parse::<f64>() {
                    push(Token::Float(f), pos);
                } else {
                    return Err(SqlError::lex(
                        format!("malformed number `{text}`"),
                        Span::new(start, pos),
                    ));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || matches!(bytes[pos], b'_' | b'.'))
                {
                    pos += 1;
                }
                push(Token::Ident(input[start..pos].to_owned()), pos);
            }
            other => {
                return Err(SqlError::lex(
                    format!("unexpected character `{}`", other as char),
                    Span::new(pos, pos + 1),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<Token> {
        lex(input).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn basic_tokens_and_spans() {
        let toks = lex(r#"SELECT name, COUNT(*) FROM t WHERE a <= 5;"#).unwrap();
        assert_eq!(toks[0].token, Token::Ident("SELECT".into()));
        assert_eq!(toks[0].span, Span::new(0, 6));
        assert!(toks.iter().any(|t| t.token == Token::Star));
        assert!(toks.iter().any(|t| t.token == Token::Le));
        assert_eq!(toks.last().unwrap().token, Token::Semicolon);
    }

    #[test]
    fn numbers_match_seed_lexer_semantics() {
        assert_eq!(kinds("-5"), vec![Token::Int(-5)]);
        assert_eq!(kinds("2.5"), vec![Token::Float(2.5)]);
        assert_eq!(kinds("1e3"), vec![Token::Float(1000.0)]);
        // `5-3` is two numbers, not subtraction.
        assert_eq!(kinds("5 -3"), vec![Token::Int(5), Token::Int(-3)]);
        let err = lex("1.2.3").unwrap_err();
        assert!(err.message.contains("malformed number"));
    }

    #[test]
    fn strings_both_quotes_no_escapes() {
        assert_eq!(kinds(r#""Bob""#), vec![Token::Str("Bob".into())]);
        assert_eq!(kinds("'Bob'"), vec![Token::Str("Bob".into())]);
        let err = lex("\"unterminated").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn dotted_identifiers() {
        assert_eq!(
            kinds("address.city"),
            vec![Token::Ident("address.city".into())]
        );
    }

    #[test]
    fn comments_and_comparison_digraphs() {
        assert_eq!(
            kinds("a -- trailing comment\n= 1"),
            vec![Token::Ident("a".into()), Token::Eq, Token::Int(1)]
        );
        assert_eq!(kinds("<>"), vec![Token::Neq]);
        assert_eq!(kinds(">="), vec![Token::Ge]);
    }

    #[test]
    fn bad_characters_error_with_spans() {
        let err = lex("name ~ 5").unwrap_err();
        assert_eq!(err.span, Span::new(5, 6));
        let err = lex("a ! b").unwrap_err();
        assert!(err.message.contains("expected `!=`"));
    }
}
