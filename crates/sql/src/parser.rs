//! Recursive-descent parser: tokens → [`Statement`].
//!
//! The WHERE sub-grammar is byte-for-byte the old
//! `ciao_predicate::parser` grammar (same productions, same error
//! messages) so the back-compat shim can delegate here and every
//! workload file that parsed before still parses. The statement
//! grammar wraps it:
//!
//! ```text
//! statement := [EXPLAIN [ANALYZE]] select [';']
//! select    := SELECT item (',' item)*
//!              [FROM ident] [WHERE where] [GROUP BY ident (',' ident)*]
//!              [ORDER BY key (',' key)*] [LIMIT int]
//! item      := '*' | column [AS ident] | agg '(' args ')' [AS ident]
//! agg       := COUNT | SUM | MIN | MAX | AVG
//! args      := '*' | ident (',' ident)*        -- arity checked later
//! key       := (int | ident) [ASC | DESC]
//! where     := clause (AND clause)*
//! clause    := '(' simple (OR simple)* ')'
//!            | key IN '(' literal (',' literal)* ')'
//!            | simple
//! simple    := key '=' literal | key LIKE string
//!            | key '!=' NULL | key IS NOT NULL | key '<>' NULL
//!            | key '<' int | key '>' int | key '<=' int | key '>=' int
//! ```

use crate::ast::{
    AggArg, AggExpr, AggFunc, Ident, OrderKey, OrderTarget, Select, SelectItem, SqlPredicate,
    Statement, WhereClause,
};
use crate::error::{Span, SqlError};
use crate::token::{lex, Spanned, Token};

/// Parses a full SQL statement.
pub fn parse(sql: &str) -> Result<Statement, SqlError> {
    let mut p = Parser::new(sql)?;
    let explain = p.eat_kw("explain");
    let analyze = explain && p.eat_kw("analyze");
    let select = p.parse_select()?;
    if p.peek() == Some(&Token::Semicolon) {
        p.next();
    }
    if let Some(tok) = p.peek() {
        return Err(p.err_here(format!(
            "expected end of statement, found {}",
            tok.describe()
        )));
    }
    Ok(if explain {
        Statement::Explain { analyze, select }
    } else {
        Statement::Select(select)
    })
}

/// Parses a bare WHERE body (no `WHERE` keyword) into its conjunctive
/// clauses — the entry point used by the `ciao_predicate` shim.
pub fn parse_where_body(input: &str) -> Result<Vec<WhereClause>, SqlError> {
    let mut p = Parser::new(input)?;
    let clauses = p.parse_where_clauses()?;
    if p.peek().is_some() {
        return Err(p.err_here("trailing input after predicates"));
    }
    Ok(clauses)
}

struct Parser {
    tokens: Vec<Spanned>,
    idx: usize,
    input_len: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Parser, SqlError> {
        Ok(Parser {
            tokens: lex(input)?,
            idx: 0,
            input_len: input.len(),
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.idx).map(|s| &s.token)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.idx).cloned();
        if t.is_some() {
            self.idx += 1;
        }
        t
    }

    /// Span of the token about to be consumed, or a zero-width span at
    /// end of input.
    fn span_here(&self) -> Span {
        self.tokens
            .get(self.idx)
            .map_or(Span::point(self.input_len), |s| s.span)
    }

    /// End offset of the most recently consumed token.
    fn prev_end(&self) -> usize {
        if self.idx == 0 {
            0
        } else {
            self.tokens[self.idx - 1].span.end
        }
    }

    fn err_here(&self, message: impl Into<String>) -> SqlError {
        SqlError::parse(message, self.span_here())
    }

    fn peek_is_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_is_kw(kw) {
            self.idx += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        let span = self.span_here();
        match self.next() {
            Some(s) if s.token.is_kw(kw) => Ok(()),
            _ => Err(SqlError::parse(format!("expected keyword `{kw}`"), span)),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<Ident, SqlError> {
        let span = self.span_here();
        match self.next() {
            Some(Spanned {
                token: Token::Ident(name),
                span,
            }) => Ok(Ident { name, span }),
            _ => Err(SqlError::parse(format!("expected {what}"), span)),
        }
    }

    // ------------------------------------------------------------------
    // Statement grammar
    // ------------------------------------------------------------------

    fn parse_select(&mut self) -> Result<Select, SqlError> {
        self.expect_kw("SELECT")?;
        let mut items = vec![self.parse_select_item()?];
        while self.peek() == Some(&Token::Comma) {
            self.next();
            items.push(self.parse_select_item()?);
        }
        let from = if self.eat_kw("from") {
            Some(self.expect_ident("a table name after FROM")?)
        } else {
            None
        };
        let where_clauses = if self.eat_kw("where") {
            self.parse_where_clauses()?
        } else {
            Vec::new()
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("BY")?;
            group_by.push(self.expect_ident("a column name in GROUP BY")?);
            while self.peek() == Some(&Token::Comma) {
                self.next();
                group_by.push(self.expect_ident("a column name in GROUP BY")?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("BY")?;
            order_by.push(self.parse_order_key()?);
            while self.peek() == Some(&Token::Comma) {
                self.next();
                order_by.push(self.parse_order_key()?);
            }
        }
        let limit = if self.eat_kw("limit") {
            let span = self.span_here();
            match self.next() {
                Some(Spanned {
                    token: Token::Int(n),
                    span,
                }) => {
                    if n < 0 {
                        return Err(SqlError::parse("LIMIT must be non-negative", span));
                    }
                    Some((n, span))
                }
                _ => return Err(SqlError::parse("expected an integer after LIMIT", span)),
            }
        } else {
            None
        };
        Ok(Select {
            items,
            from,
            where_clauses,
            group_by,
            order_by,
            limit,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, SqlError> {
        match self.peek() {
            Some(Token::Star) => {
                let span = self.span_here();
                self.next();
                Ok(SelectItem::Star(span))
            }
            Some(Token::Ident(name)) => {
                let is_agg_call = AggFunc::from_name(name).is_some()
                    && self.tokens.get(self.idx + 1).map(|s| &s.token) == Some(&Token::LParen);
                if is_agg_call {
                    let call = self.parse_agg_call()?;
                    let alias = self.parse_alias()?;
                    Ok(SelectItem::Aggregate { call, alias })
                } else {
                    let name = self.expect_ident("a column name")?;
                    let alias = self.parse_alias()?;
                    Ok(SelectItem::Column { name, alias })
                }
            }
            _ => Err(self.err_here("expected a column, aggregate, or `*` in SELECT list")),
        }
    }

    fn parse_agg_call(&mut self) -> Result<AggExpr, SqlError> {
        let fname = self.expect_ident("an aggregate name")?;
        let func = AggFunc::from_name(&fname.name).expect("caller checked the name");
        self.next(); // the `(` the caller looked ahead at
        let mut args = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                match self.peek() {
                    Some(Token::Star) => {
                        args.push(AggArg::Star(self.span_here()));
                        self.next();
                    }
                    Some(Token::Ident(_)) => {
                        args.push(AggArg::Column(
                            self.expect_ident("a column name in aggregate argument")?,
                        ));
                    }
                    _ => {
                        return Err(
                            self.err_here("expected a column name or `*` in aggregate argument")
                        )
                    }
                }
                if self.peek() == Some(&Token::Comma) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        let close = self.span_here();
        match self.next() {
            Some(Spanned {
                token: Token::RParen,
                ..
            }) => Ok(AggExpr {
                func,
                args,
                span: fname.span.to(close),
            }),
            _ => Err(SqlError::parse(
                format!("expected `)` to close {}(...)", func.name()),
                close,
            )),
        }
    }

    fn parse_alias(&mut self) -> Result<Option<Ident>, SqlError> {
        if self.eat_kw("as") {
            Ok(Some(self.expect_ident("an alias after AS")?))
        } else {
            Ok(None)
        }
    }

    fn parse_order_key(&mut self) -> Result<OrderKey, SqlError> {
        let target = match self.peek() {
            Some(Token::Int(n)) => {
                let span = self.span_here();
                let index = *n;
                self.next();
                OrderTarget::Position { index, span }
            }
            Some(Token::Ident(_)) => {
                OrderTarget::Name(self.expect_ident("a column name or position in ORDER BY")?)
            }
            _ => return Err(self.err_here("expected a column name or position in ORDER BY")),
        };
        let desc = if self.eat_kw("desc") {
            true
        } else {
            self.eat_kw("asc");
            false
        };
        Ok(OrderKey { target, desc })
    }

    // ------------------------------------------------------------------
    // WHERE grammar — mirrors the seed `ciao_predicate::parser` exactly
    // ------------------------------------------------------------------

    fn parse_where_clauses(&mut self) -> Result<Vec<WhereClause>, SqlError> {
        let mut clauses = vec![self.parse_where_clause()?];
        while self.peek_is_kw("and") {
            self.next();
            clauses.push(self.parse_where_clause()?);
        }
        Ok(clauses)
    }

    fn parse_where_clause(&mut self) -> Result<WhereClause, SqlError> {
        let start = self.span_here().start;
        if self.peek() == Some(&Token::LParen) {
            self.next();
            let mut disjuncts = vec![self.parse_simple()?];
            while self.peek_is_kw("or") {
                self.next();
                disjuncts.push(self.parse_simple()?);
            }
            let close = self.span_here();
            match self.next() {
                Some(Spanned {
                    token: Token::RParen,
                    ..
                }) => Ok(WhereClause {
                    disjuncts,
                    span: Span::new(start, self.prev_end()),
                }),
                _ => Err(SqlError::parse("expected `)` to close disjunction", close)),
            }
        } else {
            self.parse_simple_or_in()
        }
    }

    fn parse_simple_or_in(&mut self) -> Result<WhereClause, SqlError> {
        // Look ahead: key IN '(' ... ')' desugars to a disjunction.
        let save = self.idx;
        let start = self.span_here().start;
        if let Some(Spanned {
            token: Token::Ident(name),
            span,
        }) = self.next()
        {
            if self.peek_is_kw("in") {
                let key = Ident { name, span };
                self.next();
                let open_span = self.span_here();
                if !matches!(self.next(), Some(s) if s.token == Token::LParen) {
                    return Err(SqlError::parse("expected `(` after IN", open_span));
                }
                let mut disjuncts = Vec::new();
                loop {
                    let lit_span = self.span_here();
                    let p = match self.next().map(|s| s.token) {
                        Some(Token::Str(value)) => SqlPredicate::StrEq {
                            key: key.clone(),
                            value,
                        },
                        Some(Token::Int(value)) => SqlPredicate::IntEq {
                            key: key.clone(),
                            value,
                        },
                        _ => {
                            return Err(SqlError::parse(
                                "expected string or integer literal in IN list",
                                lit_span,
                            ))
                        }
                    };
                    disjuncts.push(p);
                    let sep_span = self.span_here();
                    match self.next().map(|s| s.token) {
                        Some(Token::Comma) => continue,
                        Some(Token::RParen) => break,
                        _ => {
                            return Err(SqlError::parse("expected `,` or `)` in IN list", sep_span))
                        }
                    }
                }
                return Ok(WhereClause {
                    disjuncts,
                    span: Span::new(start, self.prev_end()),
                });
            }
        }
        self.idx = save;
        let p = self.parse_simple()?;
        Ok(WhereClause {
            disjuncts: vec![p],
            span: Span::new(start, self.prev_end()),
        })
    }

    fn parse_simple(&mut self) -> Result<SqlPredicate, SqlError> {
        let key_span = self.span_here();
        let key = match self.next() {
            Some(Spanned {
                token: Token::Ident(name),
                span,
            }) => Ident { name, span },
            _ => return Err(SqlError::parse("expected a key identifier", key_span)),
        };
        let op_span = self.span_here();
        match self.next().map(|s| s.token) {
            Some(Token::Eq) => {
                let lit_span = self.span_here();
                match self.next().map(|s| s.token) {
                    Some(Token::Str(value)) => Ok(SqlPredicate::StrEq { key, value }),
                    Some(Token::Int(value)) => Ok(SqlPredicate::IntEq { key, value }),
                    Some(Token::Float(value)) => Ok(SqlPredicate::FloatEq { key, value }),
                    Some(Token::Ident(w)) if w.eq_ignore_ascii_case("true") => {
                        Ok(SqlPredicate::BoolEq { key, value: true })
                    }
                    Some(Token::Ident(w)) if w.eq_ignore_ascii_case("false") => {
                        Ok(SqlPredicate::BoolEq { key, value: false })
                    }
                    _ => Err(SqlError::parse("expected literal after `=`", lit_span)),
                }
            }
            Some(Token::Neq) => {
                let lit_span = self.span_here();
                match self.next().map(|s| s.token) {
                    Some(Token::Ident(w)) if w.eq_ignore_ascii_case("null") => {
                        Ok(SqlPredicate::NotNull { key })
                    }
                    _ => Err(SqlError::parse(
                        "only `!= NULL` is supported after `!=`",
                        lit_span,
                    )),
                }
            }
            Some(Token::Lt) => {
                let lit_span = self.span_here();
                match self.next().map(|s| s.token) {
                    Some(Token::Int(value)) => Ok(SqlPredicate::IntLt { key, value }),
                    _ => Err(SqlError::parse("expected integer after `<`", lit_span)),
                }
            }
            Some(Token::Gt) => {
                let lit_span = self.span_here();
                match self.next().map(|s| s.token) {
                    Some(Token::Int(value)) => Ok(SqlPredicate::IntGt { key, value }),
                    _ => Err(SqlError::parse("expected integer after `>`", lit_span)),
                }
            }
            Some(Token::Le) => {
                let lit_span = self.span_here();
                match self.next().map(|s| s.token) {
                    // `k <= v` lowers onto the existing exclusive
                    // bound: `k < v+1`.
                    Some(Token::Int(value)) => match value.checked_add(1) {
                        Some(bound) => Ok(SqlPredicate::IntLt { key, value: bound }),
                        None => Err(SqlError::parse("integer overflow in `<=` bound", lit_span)),
                    },
                    _ => Err(SqlError::parse("expected integer after `<=`", lit_span)),
                }
            }
            Some(Token::Ge) => {
                let lit_span = self.span_here();
                match self.next().map(|s| s.token) {
                    Some(Token::Int(value)) => match value.checked_sub(1) {
                        Some(bound) => Ok(SqlPredicate::IntGt { key, value: bound }),
                        None => Err(SqlError::parse("integer overflow in `>=` bound", lit_span)),
                    },
                    _ => Err(SqlError::parse("expected integer after `>=`", lit_span)),
                }
            }
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case("like") => {
                let lit_span = self.span_here();
                match self.next().map(|s| s.token) {
                    Some(Token::Str(s)) => {
                        let needle = s
                            .strip_prefix('%')
                            .and_then(|s| s.strip_suffix('%'))
                            .ok_or_else(|| {
                                SqlError::parse("LIKE pattern must be \"%needle%\"", lit_span)
                            })?;
                        if needle.contains('%') || needle.is_empty() {
                            return Err(SqlError::parse(
                                "LIKE pattern must be \"%needle%\" with a non-empty needle",
                                lit_span,
                            ));
                        }
                        Ok(SqlPredicate::StrContains {
                            key,
                            needle: needle.to_owned(),
                        })
                    }
                    _ => Err(SqlError::parse(
                        "expected string pattern after LIKE",
                        lit_span,
                    )),
                }
            }
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case("is") => {
                self.expect_kw("NOT")?;
                self.expect_kw("NULL")?;
                Ok(SqlPredicate::NotNull { key })
            }
            _ => Err(SqlError::parse(
                "expected an operator (=, !=, <, >, LIKE, IS NOT NULL, IN)",
                op_span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(sql: &str) -> Select {
        match parse(sql).unwrap() {
            Statement::Select(s) => s,
            Statement::Explain { .. } => panic!("expected a bare SELECT"),
        }
    }

    #[test]
    fn full_statement_shape() {
        let s = select(
            "SELECT city, COUNT(*) AS n, AVG(score) FROM reviews \
             WHERE stars = 5 AND active = true \
             GROUP BY city ORDER BY 2 DESC, city LIMIT 10;",
        );
        assert_eq!(s.items.len(), 3);
        assert!(matches!(
            &s.items[1],
            SelectItem::Aggregate {
                call: AggExpr {
                    func: AggFunc::Count,
                    ..
                },
                alias: Some(a),
            } if a.name == "n"
        ));
        assert_eq!(s.from.as_ref().unwrap().name, "reviews");
        assert_eq!(s.where_clauses.len(), 2);
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].desc);
        assert!(!s.order_by[1].desc);
        assert_eq!(s.limit, Some((10, s.limit.unwrap().1)));
    }

    #[test]
    fn star_and_keywords_case_insensitive() {
        let s = select("select * from t where a = 1 order by a asc limit 3");
        assert!(matches!(s.items[0], SelectItem::Star(_)));
        assert_eq!(s.where_clauses.len(), 1);
    }

    #[test]
    fn aggregate_names_are_valid_columns() {
        // `count` with no `(` is an ordinary column reference.
        let s = select("SELECT count FROM t");
        assert!(matches!(&s.items[0], SelectItem::Column { name, .. } if name.name == "count"));
    }

    #[test]
    fn where_grammar_matches_seed_parser() {
        let s = select(
            r#"SELECT * WHERE name IN ("Bob","John") AND (a = 1 OR b = 2) AND c LIKE "%x%""#,
        );
        assert_eq!(s.where_clauses.len(), 3);
        assert_eq!(s.where_clauses[0].disjuncts.len(), 2);
        assert_eq!(s.where_clauses[1].disjuncts.len(), 2);
    }

    #[test]
    fn le_ge_lower_onto_exclusive_bounds() {
        let s = select("SELECT * WHERE a <= 5 AND b >= 3");
        assert!(matches!(
            &s.where_clauses[0].disjuncts[0],
            SqlPredicate::IntLt { value: 6, .. }
        ));
        assert!(matches!(
            &s.where_clauses[1].disjuncts[0],
            SqlPredicate::IntGt { value: 2, .. }
        ));
        let err = parse(&format!("SELECT * WHERE a <= {}", i64::MAX)).unwrap_err();
        assert!(err.message.contains("overflow"));
    }

    #[test]
    fn parse_where_body_requires_full_consumption() {
        assert_eq!(parse_where_body("a = 1 AND b = 2").unwrap().len(), 2);
        let err = parse_where_body("a = 1 extra").unwrap_err();
        assert_eq!(err.message, "trailing input after predicates");
        assert_eq!(err.span.start, 6);
    }

    #[test]
    fn statement_errors_carry_spans() {
        let err = parse("SELECT , x").unwrap_err();
        assert_eq!(err.span.start, 7);
        assert!(err.message.contains("SELECT list"));
        let err = parse("SELECT a LIMIT -1").unwrap_err();
        assert_eq!(err.message, "LIMIT must be non-negative");
        let err = parse("SELECT a FROM t GROUP city").unwrap_err();
        assert_eq!(err.message, "expected keyword `BY`");
        let err = parse("SELECT a FROM t; SELECT b").unwrap_err();
        assert!(err.message.contains("expected end of statement"));
    }

    #[test]
    fn explain_wraps_a_select() {
        let s = parse("EXPLAIN SELECT * FROM t WHERE a = 1").unwrap();
        assert!(matches!(s, Statement::Explain { analyze: false, .. }));
        let s = parse("explain analyze select a from t limit 3;").unwrap();
        assert!(matches!(s, Statement::Explain { analyze: true, .. }));
        // ANALYZE alone is not a statement, and EXPLAIN needs a SELECT.
        assert!(parse("ANALYZE SELECT a FROM t").is_err());
        assert!(parse("EXPLAIN").is_err());
        // `explain` with no `(` stays a valid column name in SELECT.
        let s = select("SELECT explain FROM t");
        assert!(matches!(&s.items[0], SelectItem::Column { name, .. } if name.name == "explain"));
    }

    #[test]
    fn aggregate_call_errors() {
        let err = parse("SELECT COUNT(").unwrap_err();
        assert!(err.message.contains("aggregate argument"));
        let err = parse("SELECT SUM(a").unwrap_err();
        assert!(err.message.contains("expected `)` to close SUM(...)"));
    }
}
