//! Query-workload generation (paper §VII-C).
//!
//! All experiment queries share one template —
//! `SELECT COUNT(*) FROM <dataset> WHERE <conjunctive predicates>` —
//! and differ only in how their predicates are drawn from a
//! dataset-specific **predicate pool** built from the templates of
//! paper Table II. Draw distributions (uniform vs Zipfian) control
//! predicate overlap and skewness; Table III's workloads A/B/C are
//! concrete presets.

#![warn(missing_docs)]

pub mod generate;
pub mod pool;
pub mod skewness;
pub mod templates;

pub use generate::{WorkloadConfig, WorkloadKind};
pub use pool::{build_pool, PredicatePool};
pub use skewness::{predicate_counts, skewness_factor};
pub use templates::{template_summaries, TemplateSummary};
