//! Concrete predicate pools instantiating the Table II templates.

use ciao_datagen::{winlog, ycsb, yelp, Dataset};
use ciao_predicate::{Clause, SimplePredicate};

/// A dataset's pool of candidate clauses (all single-disjunct; the
/// workload generator builds IN-lists on top when asked to).
#[derive(Debug, Clone)]
pub struct PredicatePool {
    /// The dataset the pool targets.
    pub dataset: Dataset,
    /// Candidate clauses, ordered template by template.
    pub clauses: Vec<Clause>,
}

impl PredicatePool {
    /// Number of candidate predicates.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// True when empty (never the case for the three datasets).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }
}

fn str_eq(key: &str, value: impl Into<String>) -> Clause {
    Clause::single(SimplePredicate::StrEq {
        key: key.into(),
        value: value.into(),
    })
}

fn int_eq(key: &str, value: i64) -> Clause {
    Clause::single(SimplePredicate::IntEq {
        key: key.into(),
        value,
    })
}

fn contains(key: &str, needle: impl Into<String>) -> Clause {
    Clause::single(SimplePredicate::StrContains {
        key: key.into(),
        needle: needle.into(),
    })
}

fn bool_eq(key: &str, value: bool) -> Clause {
    Clause::single(SimplePredicate::BoolEq {
        key: key.into(),
        value,
    })
}

/// Builds the full predicate pool for a dataset (paper Table II).
pub fn build_pool(dataset: Dataset) -> PredicatePool {
    let mut clauses = Vec::new();
    match dataset {
        Dataset::Yelp => {
            for key in ["useful", "cool", "funny"] {
                for v in 0..100 {
                    clauses.push(int_eq(key, v));
                }
            }
            for v in 1..=5 {
                clauses.push(int_eq("stars", v));
            }
            for user in yelp::POPULAR_USERS {
                clauses.push(str_eq("user_id", user));
            }
            for kw in ciao_datagen::text::YELP_KEYWORDS {
                clauses.push(contains("text", *kw));
            }
            for year in 2004..2018 {
                clauses.push(contains("date", year.to_string()));
            }
            for month in 1..=12 {
                clauses.push(contains("date", format!("-{month:02}-")));
            }
        }
        Dataset::WinLog => {
            for kw in ciao_datagen::text::keyword_pool(200) {
                clauses.push(contains("info", kw));
            }
            for month in 1..=12 {
                clauses.push(contains("time", format!("-{month:02}-")));
            }
            for day in 1..=30 {
                clauses.push(contains("time", format!("-{day:02} ")));
            }
            for hour in 0..24 {
                clauses.push(contains("time", format!(" {hour:02}:")));
            }
            for minute in 0..60 {
                clauses.push(contains("time", format!(":{minute:02}:")));
            }
            for second in 0..60 {
                clauses.push(contains("time", format!(":{second:02},")));
            }
        }
        Dataset::Ycsb => {
            clauses.push(bool_eq("isActive", true));
            clauses.push(bool_eq("isActive", false));
            for v in 0..100 {
                clauses.push(int_eq("linear_score", v));
            }
            for v in 0..100 {
                clauses.push(int_eq("weighted_score", v));
            }
            for c in ycsb::PHONE_COUNTRIES {
                clauses.push(str_eq("phone_country", c));
            }
            for g in ycsb::AGE_GROUPS {
                clauses.push(str_eq("age_group", g));
            }
            for v in 0..100 {
                clauses.push(int_eq("age_by_group", v));
            }
            for d in ycsb::URL_DOMAINS {
                clauses.push(contains("url", format!(".{d}/")));
            }
            for s in ycsb::URL_SITES {
                clauses.push(contains("url", format!("//{s}.")));
            }
            for e in ycsb::EMAIL_DOMAINS {
                clauses.push(contains("email", e));
            }
        }
    }
    // The level predicates used by the §VII-E selectivity
    // micro-benchmarks ride along for WinLog.
    if dataset == Dataset::WinLog {
        for (level, _) in winlog::LEVELS {
            clauses.push(str_eq("level", level));
        }
    }
    PredicatePool { dataset, clauses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::pool_size;

    #[test]
    fn pool_sizes_match_table2() {
        assert_eq!(build_pool(Dataset::Yelp).len(), pool_size(Dataset::Yelp));
        // +4 level predicates for the micro-benchmarks.
        assert_eq!(
            build_pool(Dataset::WinLog).len(),
            pool_size(Dataset::WinLog) + 4
        );
        assert_eq!(build_pool(Dataset::Ycsb).len(), pool_size(Dataset::Ycsb));
    }

    #[test]
    fn pools_are_duplicate_free() {
        for ds in Dataset::all() {
            let pool = build_pool(ds);
            let set: std::collections::HashSet<_> = pool.clauses.iter().collect();
            assert_eq!(set.len(), pool.len(), "{ds} pool has duplicates");
        }
    }

    #[test]
    fn all_pool_predicates_are_pushable() {
        // Table II only contains client-supported predicate forms.
        for ds in Dataset::all() {
            for c in &build_pool(ds).clauses {
                assert!(c.is_pushable(), "{c} not pushable");
            }
        }
    }

    #[test]
    fn pool_predicates_hit_generated_data() {
        // Sanity: a healthy fraction of pool predicates match at least
        // one record in a generated sample, i.e. templates and
        // generators agree on value domains.
        for ds in Dataset::all() {
            let records = ds.generate(99, 500);
            let pool = build_pool(ds);
            let matching = pool
                .clauses
                .iter()
                .filter(|c| records.iter().any(|r| ciao_predicate::eval_clause(c, r)))
                .count();
            let frac = matching as f64 / pool.len() as f64;
            assert!(
                frac > 0.5,
                "{ds}: only {matching}/{} pool predicates match any record",
                pool.len()
            );
        }
    }
}
