//! The paper's skewness factor (§VII-E-3):
//!
//! ```text
//!           Σ_{i=1..N} (X_i − X̄)³
//! skew = ─────────────────────────
//!              (N − 1) · σ³
//! ```
//!
//! where `X_i` is the number of queries containing distinct predicate
//! `i`, `X̄` its mean, and `σ` the (population) standard deviation.

use ciao_predicate::{Clause, Query};
use std::collections::HashMap;

/// Counts, for every distinct clause, how many queries include it.
pub fn predicate_counts(queries: &[Query]) -> HashMap<Clause, usize> {
    let mut counts: HashMap<Clause, usize> = HashMap::new();
    for q in queries {
        // A clause appearing twice in one query still counts once.
        let mut seen: Vec<&Clause> = Vec::new();
        for c in &q.clauses {
            if !seen.contains(&c) {
                seen.push(c);
                *counts.entry(c.clone()).or_insert(0) += 1;
            }
        }
    }
    counts
}

/// The skewness factor over the occurrence counts. Returns 0 for
/// degenerate inputs (fewer than 2 distinct predicates, or zero
/// variance).
pub fn skewness_factor(counts: &HashMap<Clause, usize>) -> f64 {
    let n = counts.len();
    if n < 2 {
        return 0.0;
    }
    let xs: Vec<f64> = counts.values().map(|&c| c as f64).collect();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let variance = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    let sigma = variance.sqrt();
    if sigma == 0.0 {
        return 0.0;
    }
    let third: f64 = xs.iter().map(|x| (x - mean).powi(3)).sum();
    third / ((n as f64 - 1.0) * sigma.powi(3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_predicate::parse_query;

    fn queries(specs: &[&str]) -> Vec<Query> {
        specs
            .iter()
            .enumerate()
            .map(|(i, s)| parse_query(&format!("q{i}"), s).unwrap())
            .collect()
    }

    #[test]
    fn counts_distinct_per_query() {
        let qs = queries(&[
            "a = 1 AND b = 2",
            "a = 1",
            "a = 1 AND a = 1", // duplicate within one query counts once
        ]);
        let counts = predicate_counts(&qs);
        assert_eq!(counts.len(), 2);
        let a = ciao_predicate::parse_clause("a = 1").unwrap();
        let b = ciao_predicate::parse_clause("b = 2").unwrap();
        assert_eq!(counts[&a], 3);
        assert_eq!(counts[&b], 1);
    }

    #[test]
    fn uniform_counts_have_zero_skew() {
        let qs = queries(&["a = 1 AND b = 2", "a = 1 AND b = 2"]);
        let counts = predicate_counts(&qs);
        assert_eq!(skewness_factor(&counts), 0.0); // zero variance
    }

    #[test]
    fn right_skewed_counts_are_positive() {
        // One predicate in nearly every query, many singletons — the
        // "head-heavy" shape workload A produces.
        let qs = queries(&[
            "hot = 1 AND c1 = 1",
            "hot = 1 AND c2 = 1",
            "hot = 1 AND c3 = 1",
            "hot = 1 AND c4 = 1",
            "hot = 1 AND c5 = 1",
        ]);
        let skew = skewness_factor(&predicate_counts(&qs));
        assert!(skew > 1.0, "expected strong positive skew, got {skew}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(skewness_factor(&HashMap::new()), 0.0);
        let one = predicate_counts(&queries(&["a = 1"]));
        assert_eq!(skewness_factor(&one), 0.0);
    }
}
