//! Predicate templates per dataset (paper Table II).

use ciao_datagen::Dataset;

/// One row of Table II: a predicate template and its candidate count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateSummary {
    /// Template text, as printed in the paper.
    pub template: &'static str,
    /// Number of candidate values for the template.
    pub candidates: usize,
}

/// The Table II rows for a dataset. The candidate counts are the
/// ground truth `pool.rs` is tested against.
pub fn template_summaries(dataset: Dataset) -> Vec<TemplateSummary> {
    let rows: &[(&'static str, usize)] = match dataset {
        Dataset::Yelp => &[
            ("useful = <int>", 100),
            ("cool = <int>", 100),
            ("funny = <int>", 100),
            ("stars = <int>", 5),
            ("user_id = <string>", 5),
            ("text LIKE <string>", 5),
            ("date LIKE \"%20[0-1][0-9]%\" (year)", 14),
            ("date LIKE \"%-[0-1][0-9]-%\" (month)", 12),
        ],
        Dataset::WinLog => &[
            ("info LIKE <string>", 200),
            ("time LIKE \"%-[0-1][0-9]-%\" (month)", 12),
            ("time LIKE \"%-[0-3][0-9] %\" (day)", 30),
            ("time LIKE \"%[0-2][0-9]:%\" (hour)", 24),
            ("time LIKE \"%:[0-5][0-9]:%\" (minute)", 60),
            ("time LIKE \"%:[0-5][0-9],%\" (second)", 60),
        ],
        Dataset::Ycsb => &[
            ("isActive = <boolean>", 2),
            ("linear_score = <int>", 100),
            ("weighted_score = <int>", 100),
            ("phone_country = <string>", 3),
            ("age_group = <string>", 4),
            ("age_by_group = <int>", 100),
            ("url_domain LIKE <string>", 12),
            ("url_site LIKE <string>", 14),
            ("email LIKE <string>", 2),
        ],
    };
    rows.iter()
        .map(|&(template, candidates)| TemplateSummary {
            template,
            candidates,
        })
        .collect()
}

/// Total pool size for a dataset.
pub fn pool_size(dataset: Dataset) -> usize {
    template_summaries(dataset)
        .iter()
        .map(|t| t.candidates)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_counts_match_paper() {
        assert_eq!(template_summaries(Dataset::Yelp).len(), 8);
        assert_eq!(template_summaries(Dataset::WinLog).len(), 6);
        assert_eq!(template_summaries(Dataset::Ycsb).len(), 9);
    }

    #[test]
    fn pool_sizes() {
        assert_eq!(pool_size(Dataset::Yelp), 341);
        // Paper prints 31 days; our simplified calendar has 30.
        assert_eq!(pool_size(Dataset::WinLog), 386);
        assert_eq!(pool_size(Dataset::Ycsb), 337);
    }
}
