//! Workload generation (paper §VII-C, Table III).
//!
//! Every predicate in the pool gets a selection probability; a query
//! includes predicate `i` independently with probability `p_i`. All
//! workloads share the same **expected** number of predicates per
//! query; the *distribution* of the `p_i` sets overlap and skewness:
//!
//! * `Uniform` — every predicate equally likely (workload C);
//! * `Zipf { exponent }` — rank-`i` predicate weighted `1/(i+1)^s`.
//!
//! Note on parameters: numpy's Zipf parameterization (used by the
//! paper, where *smaller* parameter = more skew) differs from ours,
//! where a **larger exponent is more skewed**. Presets A/B map to
//! exponents 2.0/1.2 to reproduce Table III's "A is most skewed"
//! ordering.

use crate::pool::PredicatePool;
use ciao_datagen::Dataset;
use ciao_predicate::Query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How selection probabilities are distributed over the pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// Equal probability for every pool predicate.
    Uniform,
    /// Zipfian probabilities by pool rank; larger exponent = fewer
    /// distinct predicates dominate = more overlap across queries.
    Zipf {
        /// The Zipf exponent `s` (> 0).
        exponent: f64,
    },
}

impl WorkloadKind {
    /// Display label for reports.
    pub fn label(&self) -> String {
        match self {
            WorkloadKind::Uniform => "Uniform".into(),
            WorkloadKind::Zipf { exponent } => format!("Zipfian(s={exponent})"),
        }
    }
}

/// A complete workload specification.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Target dataset.
    pub dataset: Dataset,
    /// Draw distribution.
    pub kind: WorkloadKind,
    /// Number of queries (paper end-to-end runs use 200).
    pub queries: usize,
    /// Expected predicates per query (paper default 3).
    pub expected_predicates: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// Paper workload A: highly skewed, high overlap (the "easy" case).
    pub fn workload_a(dataset: Dataset, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            dataset,
            kind: WorkloadKind::Zipf { exponent: 2.0 },
            queries: 200,
            expected_predicates: 3.0,
            seed,
        }
    }

    /// Paper workload B: moderately skewed.
    pub fn workload_b(dataset: Dataset, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            dataset,
            kind: WorkloadKind::Zipf { exponent: 1.2 },
            queries: 200,
            expected_predicates: 3.0,
            seed,
        }
    }

    /// Paper workload C: uniform, low overlap (the "challenging" case).
    pub fn workload_c(dataset: Dataset, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            dataset,
            kind: WorkloadKind::Uniform,
            queries: 200,
            expected_predicates: 3.0,
            seed,
        }
    }

    /// All three presets with their paper labels.
    pub fn presets(dataset: Dataset, seed: u64) -> [(char, WorkloadConfig); 3] {
        [
            ('A', Self::workload_a(dataset, seed)),
            ('B', Self::workload_b(dataset, seed)),
            ('C', Self::workload_c(dataset, seed)),
        ]
    }

    /// Per-predicate selection probabilities over a pool of `n`,
    /// scaled so the expected per-query predicate count is
    /// `expected_predicates`.
    fn probabilities(&self, n: usize) -> Vec<f64> {
        let weights: Vec<f64> = match self.kind {
            WorkloadKind::Uniform => vec![1.0; n],
            WorkloadKind::Zipf { exponent } => (0..n)
                .map(|i| 1.0 / ((i + 1) as f64).powf(exponent))
                .collect(),
        };
        let total: f64 = weights.iter().sum();
        weights
            .into_iter()
            .map(|w| (w / total * self.expected_predicates).min(1.0))
            .collect()
    }

    /// Generates the workload from a pool. Queries are named
    /// `q0..qN-1` with uniform frequency (as in the paper's runs).
    /// Every query gets at least one predicate.
    pub fn generate(&self, pool: &PredicatePool) -> Vec<Query> {
        assert_eq!(pool.dataset, self.dataset, "pool/config dataset mismatch");
        assert!(!pool.is_empty(), "cannot draw from an empty pool");
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x574b4c44); // "WKLD"
        let probs = self.probabilities(pool.len());
        // Shuffle ranks so Zipf head predicates aren't always the first
        // template's values.
        let mut rank_of: Vec<usize> = (0..pool.len()).collect();
        for i in (1..rank_of.len()).rev() {
            rank_of.swap(i, rng.gen_range(0..=i));
        }

        (0..self.queries)
            .map(|qi| {
                let mut clauses = Vec::new();
                for (idx, clause) in pool.clauses.iter().enumerate() {
                    if rng.gen_bool(probs[rank_of[idx]]) {
                        clauses.push(clause.clone());
                    }
                }
                if clauses.is_empty() {
                    // Force one draw, weighted like the distribution.
                    let pick = weighted_pick(&mut rng, &probs);
                    let idx = rank_of
                        .iter()
                        .position(|&r| r == pick)
                        .expect("permutation");
                    clauses.push(pool.clauses[idx].clone());
                }
                Query::new(format!("q{qi}"), clauses)
            })
            .collect()
    }
}

fn weighted_pick(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut t = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if t < *w {
            return i;
        }
        t -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::build_pool;
    use crate::skewness::{predicate_counts, skewness_factor};

    #[test]
    fn expected_predicate_count_respected() {
        let pool = build_pool(Dataset::WinLog);
        for kind in [WorkloadKind::Uniform, WorkloadKind::Zipf { exponent: 1.5 }] {
            let cfg = WorkloadConfig {
                dataset: Dataset::WinLog,
                kind,
                queries: 400,
                expected_predicates: 3.0,
                seed: 5,
            };
            let queries = cfg.generate(&pool);
            let total: usize = queries.iter().map(|q| q.clauses.len()).sum();
            let mean = total as f64 / queries.len() as f64;
            assert!(
                (mean - 3.0).abs() < 0.4,
                "{:?}: mean predicates {mean}",
                kind
            );
        }
    }

    #[test]
    fn every_query_has_a_predicate() {
        let pool = build_pool(Dataset::Ycsb);
        let cfg = WorkloadConfig {
            dataset: Dataset::Ycsb,
            kind: WorkloadKind::Zipf { exponent: 3.0 },
            queries: 300,
            expected_predicates: 1.0,
            seed: 9,
        };
        for q in cfg.generate(&pool) {
            assert!(!q.clauses.is_empty());
        }
    }

    #[test]
    fn zipf_more_skewed_than_uniform() {
        let pool = build_pool(Dataset::WinLog);
        let skew_of = |cfg: &WorkloadConfig| {
            let queries = cfg.generate(&pool);
            skewness_factor(&predicate_counts(&queries))
        };
        let a = skew_of(&WorkloadConfig::workload_a(Dataset::WinLog, 1));
        let b = skew_of(&WorkloadConfig::workload_b(Dataset::WinLog, 1));
        let c = skew_of(&WorkloadConfig::workload_c(Dataset::WinLog, 1));
        // The skewness *factor* is not monotone in the Zipf exponent
        // (probability capping at 1.0 bimodalizes the counts at extreme
        // skew), but both Zipf workloads must out-skew uniform.
        assert!(a > c, "A ({a}) should be more skewed than C ({c})");
        assert!(b > c, "B ({b}) should be more skewed than C ({c})");

        // Concentration, the operative property for CIAO, *is*
        // monotone: A reuses fewer distinct predicates than B than C.
        let distinct = |cfg: &WorkloadConfig| predicate_counts(&cfg.generate(&pool)).len();
        let da = distinct(&WorkloadConfig::workload_a(Dataset::WinLog, 1));
        let db = distinct(&WorkloadConfig::workload_b(Dataset::WinLog, 1));
        let dc = distinct(&WorkloadConfig::workload_c(Dataset::WinLog, 1));
        assert!(
            da < db && db < dc,
            "concentration ordering violated: {da}, {db}, {dc}"
        );
    }

    #[test]
    fn zipf_concentrates_on_fewer_predicates() {
        let pool = build_pool(Dataset::Yelp);
        let distinct = |cfg: &WorkloadConfig| predicate_counts(&cfg.generate(&pool)).len();
        let a = distinct(&WorkloadConfig::workload_a(Dataset::Yelp, 2));
        let c = distinct(&WorkloadConfig::workload_c(Dataset::Yelp, 2));
        assert!(
            a < c / 2,
            "skewed workload should reuse far fewer distinct predicates: {a} vs {c}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let pool = build_pool(Dataset::Yelp);
        let cfg = WorkloadConfig::workload_b(Dataset::Yelp, 77);
        let q1 = cfg.generate(&pool);
        let q2 = cfg.generate(&pool);
        assert_eq!(q1, q2);
    }

    #[test]
    #[should_panic(expected = "dataset mismatch")]
    fn dataset_mismatch_rejected() {
        let pool = build_pool(Dataset::Yelp);
        WorkloadConfig::workload_a(Dataset::Ycsb, 0).generate(&pool);
    }

    #[test]
    fn preset_labels() {
        let presets = WorkloadConfig::presets(Dataset::WinLog, 0);
        assert_eq!(presets[0].0, 'A');
        assert_eq!(presets[2].1.kind, WorkloadKind::Uniform);
        assert_eq!(WorkloadKind::Uniform.label(), "Uniform");
        assert!(WorkloadKind::Zipf { exponent: 2.0 }.label().contains("2"));
    }
}
