//! Physical-plan execution: projections and aggregates over the
//! columnar table plus the parked raw records.
//!
//! This is the engine half of the SQL stack. A [`PhysicalPlan`]'s
//! WHERE conjunction is lowered into predicate [`Clause`]s (via
//! `ciao_predicate::sql_bridge`) so the routing decision is exactly
//! the one [`Executor::execute_count`] makes: any pushed clause means
//! the scan consumes fused bitvec skip-masks and never touches the
//! parked side; zone maps prune blocks on both paths. The difference
//! is what happens per surviving row — instead of counting, rows feed
//! a projection buffer or per-group aggregate states.
//!
//! Execution is deliberately split in two so a sharded service can
//! fan out: [`Executor::execute_plan`] produces a mergeable
//! [`PartialResult`] per shard, and [`finalize`] turns the merged
//! partial into the ordered, limited [`QueryResult`]. Determinism is
//! load-bearing (the tests compare against a full-scan oracle
//! bit-for-bit): integer sums/averages accumulate exactly in `i128`,
//! groups live in a `BTreeMap` so output is key-ordered before ORDER
//! BY, and sorting tie-breaks on the whole row.

use crate::exec::Executor;
use crate::metrics::QueryMetrics;
use crate::profile::{ClauseProfile, QueryProfile};
use crate::result::{ColumnDesc, QueryResult};
use ciao_columnar::{Block, Table};
use ciao_predicate::{clauses_from_sql, eval_clause, Query};
use ciao_sql::{
    AggArgRef, AggCall, AggFunc, OutputSource, PhysicalOp, PhysicalPlan, SqlType, SqlValue,
};
use std::collections::BTreeMap;
use std::time::Instant;

/// Running state of one aggregate over one group.
///
/// NULLs are ignored (SQL semantics): `COUNT(col)` counts non-null
/// values, `SUM`/`AVG`/`MIN`/`MAX` of an all-null group finalize to
/// NULL. `COUNT(*)` is fed a non-null marker per row, so it counts
/// rows. Integer sums accumulate in `i128` so shard merge order can
/// never change the answer through intermediate overflow.
#[derive(Debug, Clone)]
pub enum AggState {
    /// `COUNT(*)` / `COUNT(col)`.
    Count {
        /// Non-null values seen.
        n: i64,
    },
    /// `SUM` over an int column (exact).
    SumInt {
        /// Exact running sum.
        sum: i128,
        /// Whether any non-null value was seen.
        seen: bool,
    },
    /// `SUM` over a float column.
    SumFloat {
        /// Running sum.
        sum: f64,
        /// Whether any non-null value was seen.
        seen: bool,
    },
    /// `MIN` over any comparable column.
    Min {
        /// Smallest value seen, if any.
        v: Option<SqlValue>,
    },
    /// `MAX` over any comparable column.
    Max {
        /// Largest value seen, if any.
        v: Option<SqlValue>,
    },
    /// `AVG` over an int column (exact sum, float finalize).
    AvgInt {
        /// Exact running sum.
        sum: i128,
        /// Non-null values seen.
        n: i64,
    },
    /// `AVG` over a float column.
    AvgFloat {
        /// Running sum.
        sum: f64,
        /// Non-null values seen.
        n: i64,
    },
}

impl AggState {
    /// Fresh state for one aggregate call.
    pub fn new(call: &AggCall) -> AggState {
        let col_ty = match &call.arg {
            AggArgRef::Star => None,
            AggArgRef::Column(c) => Some(c.ty),
        };
        match call.func {
            AggFunc::Count => AggState::Count { n: 0 },
            AggFunc::Sum => match col_ty {
                Some(SqlType::Int) => AggState::SumInt {
                    sum: 0,
                    seen: false,
                },
                _ => AggState::SumFloat {
                    sum: 0.0,
                    seen: false,
                },
            },
            AggFunc::Avg => match col_ty {
                Some(SqlType::Int) => AggState::AvgInt { sum: 0, n: 0 },
                _ => AggState::AvgFloat { sum: 0.0, n: 0 },
            },
            AggFunc::Min => AggState::Min { v: None },
            AggFunc::Max => AggState::Max { v: None },
        }
    }

    /// Folds one value in. NULLs are ignored for every variant.
    pub fn update(&mut self, value: &SqlValue) {
        if value.is_null() {
            return;
        }
        match self {
            AggState::Count { n } => *n += 1,
            AggState::SumInt { sum, seen } => {
                if let SqlValue::Int(i) = value {
                    *sum += *i as i128;
                    *seen = true;
                }
            }
            AggState::SumFloat { sum, seen } => {
                if let Some(x) = as_f64(value) {
                    *sum += x;
                    *seen = true;
                }
            }
            AggState::Min { v } => {
                if v.as_ref().is_none_or(|cur| value < cur) {
                    *v = Some(value.clone());
                }
            }
            AggState::Max { v } => {
                if v.as_ref().is_none_or(|cur| value > cur) {
                    *v = Some(value.clone());
                }
            }
            AggState::AvgInt { sum, n } => {
                if let SqlValue::Int(i) = value {
                    *sum += *i as i128;
                    *n += 1;
                }
            }
            AggState::AvgFloat { sum, n } => {
                if let Some(x) = as_f64(value) {
                    *sum += x;
                    *n += 1;
                }
            }
        }
    }

    /// Merges another shard's state for the same aggregate and group.
    pub fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Count { n }, AggState::Count { n: m }) => *n += m,
            (AggState::SumInt { sum, seen }, AggState::SumInt { sum: s, seen: sn }) => {
                *sum += s;
                *seen |= sn;
            }
            (AggState::SumFloat { sum, seen }, AggState::SumFloat { sum: s, seen: sn }) => {
                *sum += s;
                *seen |= sn;
            }
            (AggState::Min { v }, AggState::Min { v: Some(o) }) => {
                if v.as_ref().is_none_or(|cur| o < *cur) {
                    *v = Some(o);
                }
            }
            (AggState::Max { v }, AggState::Max { v: Some(o) }) => {
                if v.as_ref().is_none_or(|cur| o > *cur) {
                    *v = Some(o);
                }
            }
            (AggState::Min { .. }, AggState::Min { v: None })
            | (AggState::Max { .. }, AggState::Max { v: None }) => {}
            (AggState::AvgInt { sum, n }, AggState::AvgInt { sum: s, n: m }) => {
                *sum += s;
                *n += m;
            }
            (AggState::AvgFloat { sum, n }, AggState::AvgFloat { sum: s, n: m }) => {
                *sum += s;
                *n += m;
            }
            _ => unreachable!("merging aggregate states from different plans"),
        }
    }

    /// Produces the final value.
    pub fn finalize(self) -> SqlValue {
        match self {
            AggState::Count { n } => SqlValue::Int(n),
            AggState::SumInt { seen: false, .. } | AggState::SumFloat { seen: false, .. } => {
                SqlValue::Null
            }
            AggState::SumInt { sum, .. } => match i64::try_from(sum) {
                Ok(i) => SqlValue::Int(i),
                Err(_) => SqlValue::Float(sum as f64),
            },
            AggState::SumFloat { sum, .. } => SqlValue::Float(sum),
            AggState::Min { v } | AggState::Max { v } => v.unwrap_or(SqlValue::Null),
            AggState::AvgInt { n: 0, .. } | AggState::AvgFloat { n: 0, .. } => SqlValue::Null,
            AggState::AvgInt { sum, n } => SqlValue::Float(sum as f64 / n as f64),
            AggState::AvgFloat { sum, n } => SqlValue::Float(sum / n as f64),
        }
    }
}

fn as_f64(value: &SqlValue) -> Option<f64> {
    match value {
        SqlValue::Int(i) => Some(*i as f64),
        SqlValue::Float(x) => Some(*x),
        _ => None,
    }
}

/// The mergeable, order-free part of a plan execution.
#[derive(Debug, Clone)]
pub enum PartialData {
    /// Projection rows, in scan order.
    Rows(Vec<Vec<SqlValue>>),
    /// Per-group aggregate states, keyed by GROUP BY values. A
    /// `BTreeMap` (with [`SqlValue`]'s total order) makes iteration —
    /// and therefore unsorted output — deterministic.
    Groups(BTreeMap<Vec<SqlValue>, Vec<AggState>>),
}

/// One shard's contribution to a plan execution.
#[derive(Debug, Clone)]
pub struct PartialResult {
    /// Rows or group states.
    pub data: PartialData,
    /// This shard's scan counters and timings.
    pub metrics: QueryMetrics,
    /// This shard's per-block / per-clause execution profile.
    pub profile: QueryProfile,
}

impl PartialResult {
    /// An empty partial matching the plan's operator shape, the
    /// identity for [`PartialResult::merge`].
    pub fn empty(plan: &PhysicalPlan) -> PartialResult {
        let data = match &plan.op {
            PhysicalOp::ProjectScan { .. } => PartialData::Rows(Vec::new()),
            PhysicalOp::HashAggregate { .. } => PartialData::Groups(BTreeMap::new()),
        };
        PartialResult {
            data,
            metrics: QueryMetrics::default(),
            profile: QueryProfile::default(),
        }
    }

    /// Folds another shard's partial in: projection rows append in
    /// merge order; group states merge per key; metrics merge per
    /// [`QueryMetrics::merge`]; profiles merge per
    /// [`QueryProfile::merge`].
    pub fn merge(&mut self, other: PartialResult) {
        self.metrics.merge(&other.metrics);
        self.profile.merge(&other.profile);
        match (&mut self.data, other.data) {
            (PartialData::Rows(rows), PartialData::Rows(more)) => rows.extend(more),
            (PartialData::Groups(groups), PartialData::Groups(more)) => {
                for (key, states) in more {
                    match groups.entry(key) {
                        std::collections::btree_map::Entry::Vacant(e) => {
                            e.insert(states);
                        }
                        std::collections::btree_map::Entry::Occupied(mut e) => {
                            for (cur, inc) in e.get_mut().iter_mut().zip(states) {
                                cur.merge(inc);
                            }
                        }
                    }
                }
            }
            _ => unreachable!("merging partials from different plans"),
        }
    }
}

/// How the operator reads one block: pre-resolved column indices so
/// the per-row loop never does name lookups.
enum BlockCols {
    Project(Vec<Option<usize>>),
    Aggregate {
        group: Vec<Option<usize>>,
        args: Vec<BlockArg>,
    },
}

enum BlockArg {
    Star,
    Col(Option<usize>),
}

fn resolve_block_cols(op: &PhysicalOp, block: &Block) -> BlockCols {
    let idx = |name: &str| block.schema().index_of(name);
    match op {
        PhysicalOp::ProjectScan { columns } => {
            BlockCols::Project(columns.iter().map(|c| idx(&c.name)).collect())
        }
        PhysicalOp::HashAggregate { group, aggs } => BlockCols::Aggregate {
            group: group.iter().map(|c| idx(&c.name)).collect(),
            args: aggs
                .iter()
                .map(|a| match &a.arg {
                    AggArgRef::Star => BlockArg::Star,
                    AggArgRef::Column(c) => BlockArg::Col(idx(&c.name)),
                })
                .collect(),
        },
    }
}

fn block_value(block: &Block, row: usize, idx: Option<usize>) -> SqlValue {
    idx.map_or(SqlValue::Null, |i| {
        SqlValue::from_cell(block.column(i).cell(row))
    })
}

impl Executor {
    /// Executes a SQL physical plan over this shard's (table, parked)
    /// pair, producing a mergeable partial.
    ///
    /// Routing matches [`Executor::execute_count`]: with ≥1 pushed
    /// WHERE clause the scan uses the pushed bitvectors as a fused
    /// skip-mask and never reads the parked side; otherwise it scans
    /// the whole table and JIT-parses every parked record. Zone maps
    /// prune blocks on both paths — including pure aggregate scans, so
    /// data skipping accelerates aggregates, not just filters. Every
    /// surviving row is re-verified with full typed evaluation before
    /// it feeds the operator (client bits admit false positives).
    pub fn execute_plan<S: AsRef<str>>(
        &self,
        table: &Table,
        parked: &[S],
        plan: &PhysicalPlan,
    ) -> PartialResult {
        let start = Instant::now();
        let query = Query::new("sql", clauses_from_sql(&plan.filter));
        let pushed_ids = self.pushed_ids_for(&query);
        let mut out = PartialResult::empty(plan);
        out.profile.clauses = query
            .clauses
            .iter()
            .map(|c| ClauseProfile {
                text: c.to_string(),
                pushed: self.is_pushed(c),
                rows_evaluated: 0,
                rows_passed: 0,
            })
            .collect();
        let group_count = match &plan.op {
            PhysicalOp::HashAggregate { group, .. } => group.len(),
            PhysicalOp::ProjectScan { .. } => 0,
        };
        let aggs = match &plan.op {
            PhysicalOp::HashAggregate { aggs, .. } => aggs.clone(),
            PhysicalOp::ProjectScan { .. } => Vec::new(),
        };

        // Columnar side: the scan_count loop with an operator feed
        // instead of a counter.
        for block in table.blocks() {
            out.profile.blocks_total += 1;
            if !crate::zone::block_can_match(&query, block) {
                out.metrics.table_scan.blocks_pruned += 1;
                out.metrics.table_scan.rows_skipped += block.row_count();
                out.profile.blocks_pruned_zone += 1;
                out.profile.rows_skipped_zone += block.row_count() as u64;
                continue;
            }
            out.metrics.table_scan.blocks_visited += 1;
            let cols = resolve_block_cols(&plan.op, block);
            let mask = if pushed_ids.is_empty() {
                None
            } else {
                // A missing bitvector makes skip_mask return None →
                // conservative full scan of the block.
                block.metadata().skip_mask(&pushed_ids)
            };
            if let Some(mask) = &mask {
                let zeros = mask.count_zeros();
                out.metrics.table_scan.rows_skipped += zeros;
                out.profile.rows_skipped_mask += zeros as u64;
                if zeros == block.row_count() {
                    // Opened, but the fused mask excluded every row.
                    out.profile.blocks_pruned_mask += 1;
                }
            }
            let mut feed = |row: usize| {
                out.metrics.table_scan.rows_scanned += 1;
                out.profile.rows_scanned += 1;
                // The clause conjunction, short-circuited exactly like
                // eval_query_on_block — but counting per-clause
                // evaluations and passes for the profile.
                for (ci, clause) in query.clauses.iter().enumerate() {
                    out.profile.clauses[ci].rows_evaluated += 1;
                    if !crate::row_eval::eval_clause_on_block(clause, block, row) {
                        return;
                    }
                    out.profile.clauses[ci].rows_passed += 1;
                }
                out.metrics.table_scan.rows_matched += 1;
                out.profile.rows_matched += 1;
                match (&mut out.data, &cols) {
                    (PartialData::Rows(rows), BlockCols::Project(idxs)) => {
                        rows.push(idxs.iter().map(|&i| block_value(block, row, i)).collect());
                    }
                    (PartialData::Groups(groups), BlockCols::Aggregate { group, args }) => {
                        let key: Vec<SqlValue> =
                            group.iter().map(|&i| block_value(block, row, i)).collect();
                        let states = groups
                            .entry(key)
                            .or_insert_with(|| aggs.iter().map(AggState::new).collect());
                        for (state, arg) in states.iter_mut().zip(args) {
                            match arg {
                                BlockArg::Star => state.update(&SqlValue::Int(1)),
                                BlockArg::Col(i) => state.update(&block_value(block, row, *i)),
                            }
                        }
                    }
                    _ => unreachable!("operator/partial shape mismatch"),
                }
            };
            match &mask {
                Some(mask) => {
                    for row in mask.iter_ones() {
                        feed(row);
                    }
                }
                None => {
                    for row in 0..block.row_count() {
                        feed(row);
                    }
                }
            }
        }
        out.metrics.table_scan_time = start.elapsed();

        // Parked side: only reachable when nothing was pushed (a
        // parked record can never satisfy a pushed clause).
        if pushed_ids.is_empty() {
            let raw_start = Instant::now();
            out.metrics.scanned_parked = true;
            'parked: for rec in parked {
                out.metrics.raw_scan.records_parsed += 1;
                out.metrics.raw_scan.rows_scanned += 1;
                out.profile.parked_rows_parsed += 1;
                let Ok(value) = ciao_json::parse(rec.as_ref()) else {
                    // Malformed parked record: cannot match anything.
                    continue;
                };
                for (ci, clause) in query.clauses.iter().enumerate() {
                    out.profile.clauses[ci].rows_evaluated += 1;
                    if !eval_clause(clause, &value) {
                        continue 'parked;
                    }
                    out.profile.clauses[ci].rows_passed += 1;
                }
                out.metrics.raw_scan.rows_matched += 1;
                out.profile.parked_rows_matched += 1;
                match (&mut out.data, &plan.op) {
                    (PartialData::Rows(rows), PhysicalOp::ProjectScan { columns }) => {
                        rows.push(
                            columns
                                .iter()
                                .map(|c| SqlValue::from_json(value.get(&c.name), c.ty))
                                .collect(),
                        );
                    }
                    (PartialData::Groups(groups), PhysicalOp::HashAggregate { group, .. }) => {
                        let key: Vec<SqlValue> = group
                            .iter()
                            .map(|c| SqlValue::from_json(value.get(&c.name), c.ty))
                            .collect();
                        debug_assert_eq!(key.len(), group_count);
                        let states = groups
                            .entry(key)
                            .or_insert_with(|| aggs.iter().map(AggState::new).collect());
                        for (state, call) in states.iter_mut().zip(&aggs) {
                            match &call.arg {
                                AggArgRef::Star => state.update(&SqlValue::Int(1)),
                                AggArgRef::Column(c) => {
                                    state.update(&SqlValue::from_json(value.get(&c.name), c.ty))
                                }
                            }
                        }
                    }
                    _ => unreachable!("operator/partial shape mismatch"),
                }
            }
            out.metrics.raw_scan_time = raw_start.elapsed();
        } else {
            out.metrics.used_skipping = true;
        }

        out.metrics.elapsed = start.elapsed();
        out
    }
}

/// Turns the merged partials into the final answer: finalize group
/// states (or take projection rows), apply ORDER BY with a full-row
/// tie-break, then LIMIT.
pub fn finalize(plan: &PhysicalPlan, partial: PartialResult) -> QueryResult {
    let PartialResult {
        data,
        metrics,
        profile,
    } = partial;
    let mut rows: Vec<Vec<SqlValue>> = match data {
        PartialData::Rows(rows) => rows,
        PartialData::Groups(groups) => {
            let aggs = match &plan.op {
                PhysicalOp::HashAggregate { aggs, .. } => aggs,
                PhysicalOp::ProjectScan { .. } => {
                    unreachable!("grouped partial from a projection plan")
                }
            };
            let emit = |key: &[SqlValue], agg_vals: &[SqlValue]| -> Vec<SqlValue> {
                plan.output
                    .iter()
                    .map(|o| match &o.source {
                        OutputSource::Group(i) => key[*i].clone(),
                        OutputSource::Agg(i) => agg_vals[*i].clone(),
                        OutputSource::Column(_) => {
                            unreachable!("bare column in an aggregate plan")
                        }
                    })
                    .collect()
            };
            let grouped_by_keys = match &plan.op {
                PhysicalOp::HashAggregate { group, .. } => !group.is_empty(),
                PhysicalOp::ProjectScan { .. } => false,
            };
            if groups.is_empty() && !grouped_by_keys {
                // SQL: an ungrouped aggregate over zero rows still
                // yields one row (COUNT = 0, the rest NULL).
                let agg_vals: Vec<SqlValue> = aggs
                    .iter()
                    .map(|call| AggState::new(call).finalize())
                    .collect();
                vec![emit(&[], &agg_vals)]
            } else {
                groups
                    .into_iter()
                    .map(|(key, states)| {
                        let agg_vals: Vec<SqlValue> =
                            states.into_iter().map(AggState::finalize).collect();
                        emit(&key, &agg_vals)
                    })
                    .collect()
            }
        }
    };

    if !plan.order_by.is_empty() {
        rows.sort_by(|a, b| {
            for key in &plan.order_by {
                let ord = a[key.output].cmp(&b[key.output]);
                let ord = if key.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            // Full-row tie-break: output never depends on shard count
            // or merge order.
            a.cmp(b)
        });
    }
    if let Some(limit) = plan.limit {
        rows.truncate(limit);
    }

    QueryResult {
        columns: plan
            .output
            .iter()
            .map(|o| ColumnDesc {
                name: o.name.clone(),
                ty: o.ty,
            })
            .collect(),
        rows,
        metrics,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_columnar::{Schema, TableBuilder};
    use ciao_json::{parse, JsonValue};
    use ciao_predicate::parse_clause;
    use std::collections::BTreeMap as Map;
    use std::sync::Arc;

    /// 60 records; stars = 5 rows admitted to the table with exact
    /// predicate-1 bits, the rest parked as raw JSON. Records carry an
    /// occasionally-null float score.
    struct Env {
        table: ciao_columnar::Table,
        parked: Vec<String>,
        exec: Executor,
        schema: Schema,
        all: Vec<JsonValue>,
    }

    fn record(i: usize) -> String {
        let score = if i.is_multiple_of(7) {
            "null".to_owned()
        } else {
            format!("{}.5", i % 4)
        };
        format!(
            r#"{{"name":"u{}","stars":{},"score":{},"city":"c{}"}}"#,
            i,
            i % 5 + 1,
            score,
            i % 3
        )
    }

    fn env() -> Env {
        let all: Vec<JsonValue> = (0..60).map(|i| parse(&record(i)).unwrap()).collect();
        let schema = Schema::infer(&all).unwrap();
        let mut tb = TableBuilder::with_block_size(Arc::new(schema.clone()), &[1], 8);
        let mut parked = Vec::new();
        for rec in &all {
            if rec.get("stars").unwrap().as_i64() == Some(5) {
                tb.push_record(rec, &Map::from([(1, true)]));
            } else {
                parked.push(ciao_json::to_string(rec));
            }
        }
        Env {
            table: tb.finish(),
            parked,
            exec: Executor::new([(parse_clause("stars = 5").unwrap(), 1)]),
            schema,
            all,
        }
    }

    fn run(e: &Env, sql: &str) -> QueryResult {
        let plan = ciao_sql::compile(sql, &e.schema).unwrap();
        finalize(&plan, e.exec.execute_plan(&e.table, &e.parked, &plan))
    }

    #[test]
    fn count_star_matches_execute_count() {
        let e = env();
        let r = run(&e, "SELECT COUNT(*) FROM t WHERE stars = 5");
        assert_eq!(r.rows, vec![vec![SqlValue::Int(12)]]);
        assert!(r.metrics.used_skipping);
        assert!(!r.metrics.scanned_parked);
    }

    #[test]
    fn grouped_aggregate_matches_oracle() {
        let e = env();
        let r = run(
            &e,
            "SELECT city, COUNT(*), SUM(stars), AVG(score) FROM t GROUP BY city ORDER BY city",
        );
        // Oracle: fold the raw records by hand with exact int sums.
        let mut oracle: Map<String, (i64, i64, f64, i64)> = Map::new();
        for rec in &e.all {
            let city = rec.get("city").unwrap().as_str().unwrap().to_owned();
            let stars = rec.get("stars").unwrap().as_i64().unwrap();
            let entry = oracle.entry(city).or_insert((0, 0, 0.0, 0));
            entry.0 += 1;
            entry.1 += stars;
            if let Some(s) = rec.get("score").and_then(|v| v.as_f64()) {
                entry.2 += s;
                entry.3 += 1;
            }
        }
        let expected: Vec<Vec<SqlValue>> = oracle
            .into_iter()
            .map(|(city, (n, sum, ssum, sn))| {
                vec![
                    SqlValue::Str(city),
                    SqlValue::Int(n),
                    SqlValue::Int(sum),
                    SqlValue::Float(ssum / sn as f64),
                ]
            })
            .collect();
        assert_eq!(r.rows, expected);
        // Uncovered aggregate: full scan plus the parked fallback.
        assert!(r.metrics.scanned_parked);
        assert_eq!(r.metrics.raw_scan.records_parsed, e.parked.len());
    }

    #[test]
    fn covered_aggregate_uses_skip_masks() {
        let e = env();
        let r = run(
            &e,
            "SELECT MIN(name), MAX(name), COUNT(score) FROM t WHERE stars = 5",
        );
        assert!(r.metrics.used_skipping);
        assert!(!r.metrics.scanned_parked);
        // 12 stars=5 rows: u4, u9, ..., u59; lexicographic min/max.
        assert_eq!(r.rows[0][0], SqlValue::Str("u14".into()));
        assert_eq!(r.rows[0][1], SqlValue::Str("u9".into()));
        // score is null when i % 7 == 0 → u14, u49 excluded from COUNT(score).
        assert_eq!(r.rows[0][2], SqlValue::Int(10));
    }

    #[test]
    fn projection_reads_both_sides() {
        let e = env();
        let r = run(
            &e,
            "SELECT name, stars FROM t WHERE stars < 3 ORDER BY name LIMIT 5",
        );
        assert_eq!(r.rows.len(), 5);
        assert_eq!(r.columns[0].name, "name");
        for row in &r.rows {
            assert!(matches!(row[1], SqlValue::Int(s) if s < 3));
        }
    }

    #[test]
    fn empty_ungrouped_aggregate_yields_one_row() {
        let e = env();
        let r = run(
            &e,
            "SELECT COUNT(*), SUM(stars), AVG(score) FROM t WHERE stars > 99",
        );
        assert_eq!(
            r.rows,
            vec![vec![SqlValue::Int(0), SqlValue::Null, SqlValue::Null]]
        );
        let grouped = run(
            &e,
            "SELECT city, COUNT(*) FROM t WHERE stars > 99 GROUP BY city",
        );
        assert!(grouped.rows.is_empty());
    }

    #[test]
    fn sharded_merge_equals_single_shard() {
        let e = env();
        let plan = ciao_sql::compile(
            "SELECT city, COUNT(*), AVG(score) FROM t GROUP BY city ORDER BY 2 DESC LIMIT 2",
            &e.schema,
        )
        .unwrap();
        let whole = finalize(&plan, e.exec.execute_plan(&e.table, &e.parked, &plan));

        let (left, right) = e.parked.split_at(e.parked.len() / 2);
        let mut merged = e.exec.execute_plan(&e.table, left, &plan);
        merged.merge(
            e.exec
                .execute_plan(&ciao_columnar::Table::default(), right, &plan),
        );
        let sharded = finalize(&plan, merged);
        assert_eq!(whole.rows, sharded.rows);
    }

    #[test]
    fn profile_reconciles_with_metrics_on_both_paths() {
        let e = env();
        // Covered path: skip-masks, no parked fallback.
        let covered = run(&e, "SELECT COUNT(*) FROM t WHERE stars = 5");
        assert!(
            covered.profile.reconciles_with(&covered.metrics),
            "covered: {:?} vs {:?}",
            covered.profile,
            covered.metrics
        );
        assert_eq!(covered.profile.parked_rows_parsed, 0);
        assert_eq!(covered.profile.clauses.len(), 1);
        assert!(covered.profile.clauses[0].pushed);
        assert_eq!(covered.profile.clauses[0].text, "stars = 5");
        // Every surviving skip-mask row re-verified true.
        assert_eq!(covered.profile.clauses[0].selectivity(), Some(1.0));

        // Uncovered path: full scan plus the parked JIT fallback, with
        // short-circuited per-clause counters.
        let uncovered = run(&e, r#"SELECT name FROM t WHERE stars < 3 AND city = "c0""#);
        assert!(
            uncovered.profile.reconciles_with(&uncovered.metrics),
            "uncovered: {:?} vs {:?}",
            uncovered.profile,
            uncovered.metrics
        );
        assert_eq!(uncovered.profile.parked_rows_parsed, e.parked.len() as u64);
        let [first, second] = &uncovered.profile.clauses[..] else {
            panic!("expected two clause profiles");
        };
        assert!(!first.pushed && !second.pushed);
        // The first clause runs on every row actually fed to the
        // operator (zone maps pruned the stars=5 table blocks); the
        // second only on rows that survived the first.
        assert_eq!(
            first.rows_evaluated,
            uncovered.profile.rows_scanned + uncovered.profile.parked_rows_parsed
        );
        assert_eq!(second.rows_evaluated, first.rows_passed);
        assert_eq!(
            second.rows_passed,
            uncovered.profile.total_matched(),
            "last clause's passes are the match count"
        );
        assert_eq!(
            uncovered.rows.len() as u64,
            uncovered.profile.total_matched()
        );
    }

    #[test]
    fn sharded_profile_merge_reconciles() {
        let e = env();
        let plan =
            ciao_sql::compile("SELECT city, COUNT(*) FROM t GROUP BY city", &e.schema).unwrap();
        let (left, right) = e.parked.split_at(e.parked.len() / 2);
        let mut merged = e.exec.execute_plan(&e.table, left, &plan);
        merged.merge(
            e.exec
                .execute_plan(&ciao_columnar::Table::default(), right, &plan),
        );
        let r = finalize(&plan, merged);
        assert!(r.profile.reconciles_with(&r.metrics));
        assert_eq!(r.profile.parked_rows_parsed, e.parked.len() as u64);
    }

    #[test]
    fn zone_maps_prune_aggregate_scans() {
        // Clustered data: stars monotone over rows, so most blocks are
        // prunable for a narrow range query.
        let recs: Vec<JsonValue> = (0..128)
            .map(|i| parse(&format!(r#"{{"k":{},"v":{}}}"#, i / 16, i)).unwrap())
            .collect();
        let schema = Schema::infer(&recs).unwrap();
        let mut tb = TableBuilder::with_block_size(Arc::new(schema.clone()), &[], 16);
        for rec in &recs {
            tb.push_record(rec, &Map::new());
        }
        let table = tb.finish();
        let exec = Executor::default();
        let plan = ciao_sql::compile("SELECT SUM(v) FROM t WHERE k = 3", &schema).unwrap();
        let r = finalize(&plan, exec.execute_plan::<String>(&table, &[], &plan));
        let expected: i64 = (48..64).sum();
        assert_eq!(r.rows, vec![vec![SqlValue::Int(expected)]]);
        assert!(r.metrics.table_scan.blocks_pruned >= 6);
        assert_eq!(r.metrics.table_scan.blocks_visited, 1);
    }
}
