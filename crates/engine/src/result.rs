//! The typed result set a SQL plan execution produces.

use crate::metrics::QueryMetrics;
use crate::profile::QueryProfile;
use ciao_sql::{SqlType, SqlValue};

/// One output column's name and type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDesc {
    /// Output name (alias or derived, e.g. `avg(score)`).
    pub name: String,
    /// Value type.
    pub ty: SqlType,
}

/// A fully materialized query answer: named+typed columns, rows, and
/// the merged execution metrics. This one type replaces the old
/// count/select split — `COUNT(*)` is simply a one-cell result.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Output columns, in projection order.
    pub columns: Vec<ColumnDesc>,
    /// Result rows; each row has one [`SqlValue`] per column.
    pub rows: Vec<Vec<SqlValue>>,
    /// Merged scan counters and timings across every shard touched.
    pub metrics: QueryMetrics,
    /// Merged per-stage / per-clause execution profile (the EXPLAIN
    /// ANALYZE payload).
    pub profile: QueryProfile,
}

impl QueryResult {
    /// Renders the `EXPLAIN ANALYZE` annotation section from this
    /// result's profile and row count: a `-- analyze --` separator,
    /// then per-stage counters and one line per WHERE clause.
    ///
    /// Deliberately free of wall-clock timings so the rendering is
    /// deterministic for a fixed dataset and shard layout (the golden
    /// conformance suite snapshots it). `rows matched` / `rows
    /// returned` are additionally config-invariant — they restate the
    /// query's answer, not the skipping strategy — and are the lines
    /// the suite compares across service configurations.
    pub fn analyze_lines(&self) -> Vec<String> {
        let p = &self.profile;
        let mut lines = vec![
            "-- analyze --".to_owned(),
            format!("rows matched: {}", p.total_matched()),
            format!("rows returned: {}", self.rows.len()),
            format!(
                "blocks: total={} pruned_zone={} pruned_mask={} visited={}",
                p.blocks_total,
                p.blocks_pruned_zone,
                p.blocks_pruned_mask,
                p.blocks_total - p.blocks_pruned_zone
            ),
            format!(
                "rows: scanned={} skipped_zone={} skipped_mask={}",
                p.rows_scanned, p.rows_skipped_zone, p.rows_skipped_mask
            ),
            format!(
                "parked fallback: parsed={} matched={}",
                p.parked_rows_parsed, p.parked_rows_matched
            ),
        ];
        for c in &p.clauses {
            let selectivity = c
                .selectivity()
                .map_or_else(|| "n/a".to_owned(), |s| format!("{s:.3}"));
            lines.push(format!(
                "clause {}: pushed={} evaluated={} passed={} selectivity={selectivity}",
                c.text, c.pushed, c.rows_evaluated, c.rows_passed
            ));
        }
        lines
    }

    /// Renders the result as stable, diff-friendly text: a `name:type`
    /// header, then one `|`-separated line per row. Used by the golden
    /// conformance suite, so the format must stay deterministic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .map(|c| format!("{}:{}", c.name, c.ty))
            .collect();
        out.push_str(&header.join(" | "));
        for row in &self.rows {
            out.push('\n');
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&cells.join(" | "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_stable() {
        let r = QueryResult {
            columns: vec![
                ColumnDesc {
                    name: "city".into(),
                    ty: SqlType::Str,
                },
                ColumnDesc {
                    name: "count(*)".into(),
                    ty: SqlType::Int,
                },
            ],
            rows: vec![
                vec![SqlValue::Str("Chicago".into()), SqlValue::Int(3)],
                vec![SqlValue::Null, SqlValue::Int(1)],
            ],
            metrics: QueryMetrics::default(),
            profile: QueryProfile::default(),
        };
        assert_eq!(r.render(), "city:str | count(*):int\nChicago | 3\nNULL | 1");
    }
}
